//! # silo — a full reproduction of *Silo: Predictable Message Latency in
//! # the Cloud* (SIGCOMM 2015)
//!
//! This umbrella crate re-exports the whole workspace so examples and
//! downstream users need a single dependency:
//!
//! * [`core`] — the Silo controller: tenant guarantees,
//!   admission, pacer configuration, message-latency bounds.
//! * [`placement`] — the network-calculus placement
//!   manager plus the Oktopus and Locality baselines.
//! * [`pacer`] — token-bucket hierarchy and paced IO batching
//!   with void packets.
//! * [`netcalc`] — arrival/service curves and queue bounds.
//! * [`topology`] — multi-rooted tree datacenters.
//! * [`simnet`] — the packet-level simulator (TCP, DCTCP,
//!   HULL, Oktopus, Silo datapaths).
//! * [`flowsim`] — the datacenter-scale flow-level
//!   simulator.
//! * [`workload`] — ETC/memcached, Poisson, OLDI and
//!   shuffle workload generators.
//!
//! See `examples/quickstart.rs` for the five-minute tour and DESIGN.md
//! for the experiment index.

pub use silo_base as base;
pub use silo_core as core;
pub use silo_flowsim as flowsim;
pub use silo_netcalc as netcalc;
pub use silo_pacer as pacer;
pub use silo_placement as placement;
pub use silo_simnet as simnet;
pub use silo_topology as topology;
pub use silo_workload as workload;
