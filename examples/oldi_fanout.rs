//! An OLDI partition/aggregate tenant (web-search style) under incast:
//! every worker answers the aggregator simultaneously. Demonstrates why
//! the burst allowance exists, how Silo's placement absorbs synchronized
//! bursts, and what happens to the same workload without guarantees.
//!
//! Run with: `cargo run --release --example oldi_fanout`

use silo::base::{Bytes, Dur, Rate};
use silo::placement::{Guarantee, Placer, SiloPlacer, TenantRequest};
use silo::simnet::{Sim, SimConfig, TenantSpec, TenantWorkload, TransportMode};
use silo::topology::{HostId, Topology, TreeParams};

fn main() {
    // One rack of ten servers.
    let topo = Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: 10,
        vm_slots_per_server: 8,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    });

    // 25 workers + 1 aggregator, 15 KB answers, 1 ms delay guarantee.
    let guarantee = Guarantee {
        b: Rate::from_mbps(500),
        s: Bytes::from_kb(15),
        bmax: Rate::from_gbps(1),
        delay: Some(Dur::from_ms(1)),
    };
    let req = TenantRequest::new(26, guarantee);

    // Ask Silo's placement manager where these VMs may go: it must spread
    // them so that the synchronized 25 x 15 KB = 375 KB burst (draining
    // at line rate while it arrives) never overflows the 312 KB port
    // toward the aggregator. Try 34 VMs: Silo refuses — that burst
    // genuinely cannot be absorbed.
    let mut placer = SiloPlacer::new(topo.clone());
    let placement = placer.try_place(&req).expect("one rack suffices");
    println!("Silo placement ({:?}):", placement.span);
    for &(h, k) in &placement.hosts {
        println!("  host {:?}: {k} VMs", h);
    }
    let mut vm_hosts: Vec<HostId> = Vec::new();
    for &(h, k) in &placement.hosts {
        for _ in 0..k {
            vm_hosts.push(h);
        }
    }

    // Offered load ~30% of the aggregator's hose (Table 1's regime where
    // the burst allowance covers nearly every message).
    let workload = TenantWorkload::OldiAllToOne {
        msg_mean: Bytes::from_kb(13),
        interval: Dur::from_ms(18),
    };
    let bound = guarantee.message_latency_bound(Bytes::from_kb(13)).unwrap();
    println!("\nper-answer latency bound: {bound}");

    for mode in [TransportMode::Silo, TransportMode::Tcp] {
        let cfg = SimConfig::new(mode, Dur::from_ms(300), 7);
        let spec = TenantSpec {
            vm_hosts: vm_hosts.clone(),
            b: guarantee.b,
            s: guarantee.s,
            bmax: guarantee.bmax,
            prio: 0,
            delay: None,
            workload: workload.clone(),
        };
        let m = Sim::new(topo.clone(), cfg, vec![spec]).run();
        let mut lat = m.latencies_us(0);
        let p99 = lat.p99().unwrap_or(f64::NAN);
        println!(
            "{}: {} answers, p50 {:.0} us, p99 {:.0} us, drops {}, RTOs {}{}",
            mode.label(),
            lat.len(),
            lat.median().unwrap_or(f64::NAN),
            p99,
            m.drops,
            m.rtos,
            if mode == TransportMode::Silo && p99 * 1e3 <= bound.as_ns_f64() {
                "  <- within the guarantee"
            } else {
                ""
            }
        );
    }
}
