//! A microscope on the pacer: stamp a bursty VM's packets through the
//! Fig. 8 token-bucket hierarchy, assemble paced-IO batches, and print
//! the literal wire schedule — data frames landing on their stamps with
//! void frames occupying every gap (Fig. 9).
//!
//! Run with: `cargo run --example pacer_wire_view`

use silo::base::{Bytes, Dur, Rate, Time};
use silo::pacer::{BucketChain, FrameKind, PacedBatcher, TokenBucket};

fn main() {
    let link = Rate::from_gbps(10);
    // Guarantee: B = 2 Gbps, S = 15 KB burst at Bmax = 5 Gbps.
    let mut chain = BucketChain::new(vec![
        TokenBucket::new(Rate::from_gbps(5), Bytes(1500)), // Bmax
        TokenBucket::new(Rate::from_gbps(2), Bytes::from_kb(15)), // {B, S}
    ]);
    let mut batcher = PacedBatcher::new(link, Dur::from_us(50), Bytes(1500));

    // The VM dumps a 30 KB message at t = 0: the first 15 KB rides the
    // burst at Bmax spacing, the rest drains at B.
    for i in 0..20u32 {
        let stamp = chain.stamp(Time::ZERO, Bytes(1500));
        batcher.enqueue(stamp, Bytes(1500), i);
    }

    println!("wire schedule (10 GbE):");
    println!("{:>10}  {:>6}  {:>5}  note", "start", "bytes", "kind");
    let mut now = Time::ZERO;
    let mut voids = 0u32;
    loop {
        let batch = batcher.next_batch(now);
        if batch.is_empty() {
            match batcher.next_stamp() {
                Some(s) => {
                    now = s;
                    continue;
                }
                None => break,
            }
        }
        for f in &batch.frames {
            match f.kind {
                FrameKind::Data => println!(
                    "{:>10}  {:>6}  data   packet #{}",
                    format!("{}", f.start),
                    f.size.as_u64(),
                    f.payload.unwrap()
                ),
                FrameKind::Void => {
                    voids += 1;
                    println!(
                        "{:>10}  {:>6}  void   (dropped by first-hop switch)",
                        format!("{}", f.start),
                        f.size.as_u64()
                    );
                }
            }
        }
        now = batch.done_at;
    }
    println!("\n{voids} void frames kept the data packets exactly on their stamps");
    println!("while the NIC transmitted each batch back-to-back (Paced IO Batching).");
}
