//! Datacenter-scale admission: run the flow-level simulator with all
//! three placement algorithms at 75% target occupancy and compare who
//! admits what and how much of the network actually gets used (§6.3).
//!
//! Run with: `cargo run --release --example datacenter_admission`

use silo::base::{Bytes, Dur, Rate};
use silo::flowsim::{Allocator, FlowSim, FlowSimConfig};
use silo::placement::{LocalityPlacer, OktopusPlacer, SiloPlacer};
use silo::topology::{Topology, TreeParams};

fn main() {
    let topo = Topology::build(TreeParams {
        pods: 4,
        racks_per_pod: 10,
        servers_per_rack: 50,
        vm_slots_per_server: 4,
        host_link: Rate::from_gbps(10),
        tor_oversub: 5.0,
        agg_oversub: 5.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    });
    println!(
        "datacenter: {} servers, {} VM slots\n",
        topo.num_hosts(),
        topo.params().num_vm_slots()
    );
    let cfg = FlowSimConfig {
        occupancy: 0.75,
        duration: Dur::from_secs(1_200),
        warmup: Dur::from_secs(300),
        seed: 3,
        ..FlowSimConfig::default()
    };
    println!("scheme   admitted  classA  classB  utilization  mean-occupancy  stretch");
    for scheme in ["Locality", "Oktopus", "Silo"] {
        let r = match scheme {
            "Locality" => FlowSim::new(
                LocalityPlacer::new(topo.clone()),
                Allocator::FairShare,
                cfg.clone(),
            )
            .run(),
            "Oktopus" => FlowSim::new(
                OktopusPlacer::new(topo.clone()),
                Allocator::Guaranteed,
                cfg.clone(),
            )
            .run(),
            _ => FlowSim::new(
                SiloPlacer::new(topo.clone()),
                Allocator::Guaranteed,
                cfg.clone(),
            )
            .run(),
        };
        println!(
            "{:<8} {:>6.1}%  {:>5.1}%  {:>5.1}%  {:>10.3}  {:>13.2}  {:>6.2}",
            scheme,
            r.admitted_frac() * 100.0,
            r.admitted_frac_a() * 100.0,
            r.admitted_frac_b() * 100.0,
            r.utilization,
            r.mean_occupancy,
            r.mean_stretch,
        );
    }
    println!("\nSilo refuses the big bursty class-A tenants whose synchronized");
    println!("bursts genuinely cannot be absorbed (exact C1 bounds are stricter");
    println!("than the paper's arithmetic) and, in exchange, every admitted");
    println!("tenant finishes at stretch ~1 — deterministic, not best-effort.");
}
