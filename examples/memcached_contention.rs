//! The paper's motivating experiment (Fig. 1 / §6.1), end to end: a
//! memcached tenant sharing five servers with a bandwidth-hungry netperf
//! tenant, first over plain TCP, then with Silo's guarantees enforced by
//! the hypervisor pacer.
//!
//! Run with: `cargo run --release --example memcached_contention`

use silo::base::{Bytes, Dur, Rate};
use silo::simnet::{Sim, SimConfig, TenantSpec, TenantWorkload, TransportMode};
use silo::topology::{HostId, Topology, TreeParams};

fn tenants() -> Vec<TenantSpec> {
    // Tenant A: memcached — VM 0 is the server, 14 clients, three VMs per
    // host. Tenant B: netperf all-to-all on the remaining slots.
    let hosts: Vec<HostId> = (0..5u32).flat_map(|h| [HostId(h); 3]).collect();
    vec![
        TenantSpec {
            vm_hosts: hosts.clone(),
            b: Rate::from_mbps(210),
            s: Bytes(1500),
            bmax: Rate::from_gbps(1),
            prio: 0,
            delay: None,
            workload: TenantWorkload::Etc {
                load: 0.09,
                concurrency: 4,
            },
        },
        TenantSpec {
            vm_hosts: hosts,
            b: Rate::from_mbps(3123),
            s: Bytes(1500),
            bmax: Rate::from_mbps(3123),
            prio: 0,
            delay: None,
            workload: TenantWorkload::BulkAllToAll {
                msg: Bytes::from_mb(1),
            },
        },
    ]
}

fn main() {
    let topo = Topology::build(TreeParams::testbed());
    let dur = Dur::from_ms(200);
    for mode in [TransportMode::Tcp, TransportMode::Silo] {
        let mut cfg = SimConfig::new(mode, dur, 42);
        cfg.min_rto = Dur::from_ms(200); // a stock TCP stack
        let metrics = Sim::new(topo.clone(), cfg, tenants()).run();
        let mut lat = metrics.txn_latencies_us(0);
        println!(
            "{}: {} transactions, p50 {:.0} us, p99 {:.0} us, p99.9 {:.0} us; \
             netperf goodput {:.2} Gbps; drops {}",
            mode.label(),
            lat.len(),
            lat.median().unwrap_or(f64::NAN),
            lat.p99().unwrap_or(f64::NAN),
            lat.p999().unwrap_or(f64::NAN),
            metrics.goodput[1] as f64 * 8.0 / dur.as_secs_f64() / 1e9,
            metrics.drops,
        );
    }
    println!("\nSilo keeps the memcached tail within its 2.01 ms guarantee while");
    println!("the bulk tenant retains its guaranteed bandwidth — Fig. 11's story.");
}
