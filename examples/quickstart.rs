//! Quickstart: admit a tenant with Silo guarantees, read back its pacer
//! configuration, and bound its message latency — the §4.1 tenant-facing
//! arithmetic in a dozen lines.
//!
//! Run with: `cargo run --example quickstart`

use silo::base::{Bytes, Dur, Rate};
use silo::core::{Guarantee, SiloController, TenantRequest};
use silo::topology::{Topology, TreeParams};

fn main() {
    // A small cloud: the paper's 5-server testbed shape.
    let topo = Topology::build(TreeParams::testbed());
    let mut silo = SiloController::new(topo);

    // Tenant: 6 VMs, each guaranteed 210 Mbps sustained, a 1.5 KB burst
    // at up to 1 Gbps, and 1 ms NIC-to-NIC packet delay (Table 2 req1).
    let req = TenantRequest::new(
        6,
        Guarantee {
            b: Rate::from_mbps(210),
            s: Bytes(1500),
            bmax: Rate::from_gbps(1),
            delay: Some(Dur::from_ms(1)),
        },
    );
    let tenant = silo.admit(&req).expect("an empty testbed has room");
    println!(
        "tenant {:?} admitted, span: {:?}",
        tenant.id, tenant.placement.span
    );
    for p in &tenant.pacers {
        println!(
            "  VM {} on host {:?}: pace to {} (burst {} at {})",
            p.vm, p.host, p.rate, p.burst, p.burst_rate
        );
    }

    // The whole point (§4.1): the tenant can bound its own message
    // latency without trusting anyone else's behavior.
    for size in [Bytes(400), Bytes(1024), Bytes::from_kb(16)] {
        let bound = silo.message_latency_bound(tenant.id, size).unwrap();
        println!("a {size} message is delivered within {bound}");
    }

    // A memcached-style request/response transaction bound:
    let rtt = silo.message_latency_bound(tenant.id, Bytes(400)).unwrap()
        + silo.message_latency_bound(tenant.id, Bytes(1024)).unwrap();
    println!("request(400 B) + response(1 KB) round trip ≤ {rtt}");
    assert!(rtt < Dur::from_ms(3));

    // The static guarantee uses load-independent queue capacities; the
    // network-calculus concatenation bound over the actual placement is
    // tighter still ("pay bursts only once"):
    if let Some(tight) = silo.tight_delay_bound(tenant.id) {
        println!("tight per-packet delay bound for this placement: {tight}");
        assert!(tight <= Dur::from_ms(1));
    }

    // Don't know your numbers? Ask the advisor (the Cicada role):
    let profile = silo::core::WorkloadProfile {
        msg_size: Bytes(1024),
        msg_rate: 5_000.0,
        fan_in: 14,
        target_latency: Dur::from_ms(2),
    };
    let g = silo::core::recommend(&profile, Rate::from_gbps(1)).unwrap();
    println!(
        "advisor for a 1 KB/5k-rps/fan-in-14 service at 2 ms: B={} S={} d={}",
        g.b,
        g.s,
        g.delay.unwrap()
    );

    // Capacity is finite: keep admitting identical tenants until Silo
    // starts saying no.
    let mut extra = 0;
    while silo.admit(&req).is_ok() {
        extra += 1;
    }
    println!("{extra} more identical tenants fit before admission refuses");
    println!("final occupancy: {:.0}%", silo.occupancy() * 100.0);
}
