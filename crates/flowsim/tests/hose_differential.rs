//! Differential check of the two independent hose-model implementations.
//!
//! `flowsim`'s [`Allocator::Guaranteed`] computes per-flow rates
//! operationally — each flow gets the min of its endpoints' hose shares —
//! while `netcalc`'s `tenant_hose_aggregate` derives the same quantity
//! analytically: the sustained rate a tenant can push across a cut with
//! `m` of its `N` VMs on one side is `min(m, N−m)·B`. If the two
//! disagree, one of the hose models is wrong.
//!
//! For patterns that saturate every endpoint on the smaller side of the
//! cut (a permutation across the cut, or all-to-one into a lone
//! receiver), the operational sum must **equal** the analytic rate. For
//! all-to-all, senders split their hoses across both sides of the cut,
//! so the operational cross-cut sum is strictly *below* the analytic
//! aggregate on interior cuts — the curve is an upper bound on every
//! realizable pattern, and tight only at the edges (`m = 1` or
//! `m = N−1`).

use silo_base::{Bytes, Rate};
use silo_flowsim::AllocFlow;
use silo_netcalc::tenant_hose_aggregate;

const MTU: Bytes = Bytes(1500);
const S: Bytes = Bytes(15_000);

/// Sum of guaranteed flow rates crossing the cut, in bits/sec.
fn cross_cut_rate(flows: &[AllocFlow]) -> f64 {
    flows.iter().map(|f| f.hose_rate()).sum()
}

/// The analytic aggregate's sustained rate across the same cut, converted
/// from the curve's bytes/sec to the allocator's bits/sec.
fn analytic_rate(m: usize, n: usize, b: Rate) -> f64 {
    tenant_hose_aggregate(m, n, b, S, Rate::from_gbps(10), MTU).long_term_rate() * 8.0
}

/// A flow with both endpoint hoses set to `b` (the paths are irrelevant:
/// `hose_rate` is a pure function of hoses and degrees).
fn flow(b: Rate, out_deg: usize, in_deg: usize) -> AllocFlow {
    AllocFlow {
        path: vec![],
        src_hose: b,
        out_deg,
        dst_hose: b,
        in_deg,
    }
}

#[test]
fn permutation_across_the_cut_matches_the_aggregate_exactly() {
    let b = Rate::from_mbps(500);
    for n in 2..=12usize {
        for m in 1..n {
            // Pair off min(m, n−m) senders with distinct receivers across
            // the cut; every endpoint carries exactly one flow.
            let k = m.min(n - m);
            let flows: Vec<AllocFlow> = (0..k).map(|_| flow(b, 1, 1)).collect();
            let got = cross_cut_rate(&flows);
            let want = analytic_rate(m, n, b);
            assert!(
                (got - want).abs() <= 1e-6 * want,
                "n={n} m={m}: allocator {got} vs curve {want}"
            );
        }
    }
}

#[test]
fn all_to_one_into_a_lone_receiver_matches_exactly() {
    let b = Rate::from_mbps(800);
    for n in 2..=12usize {
        // Cut isolates the receiver: m = n−1 senders, each with one
        // outgoing flow; the receiver's hose splits n−1 ways.
        let m = n - 1;
        let flows: Vec<AllocFlow> = (0..m).map(|_| flow(b, 1, m)).collect();
        let got = cross_cut_rate(&flows);
        let want = analytic_rate(m, n, b);
        assert!(
            (got - want).abs() <= 1e-6 * want,
            "n={n}: allocator {got} vs curve {want}"
        );
    }
}

#[test]
fn all_to_all_stays_below_the_aggregate_and_is_tight_at_the_edges() {
    let b = Rate::from_gbps(1);
    for n in 2..=12usize {
        for m in 1..n {
            // Every VM talks to all n−1 others; flows crossing the cut
            // left→right number m·(n−m), each endpoint at degree n−1.
            let flows: Vec<AllocFlow> = (0..m * (n - m)).map(|_| flow(b, n - 1, n - 1)).collect();
            let got = cross_cut_rate(&flows);
            let want = analytic_rate(m, n, b);
            assert!(
                got <= want * (1.0 + 1e-9),
                "n={n} m={m}: allocator exceeded the curve: {got} > {want}"
            );
            if m == 1 || m == n - 1 {
                assert!(
                    (got - want).abs() <= 1e-6 * want,
                    "n={n} m={m}: edge cut must be tight: {got} vs {want}"
                );
            } else {
                assert!(
                    got < want - 1e-6 * want,
                    "n={n} m={m}: interior cut must be strictly loose \
                     (senders split across the cut): {got} vs {want}"
                );
            }
        }
    }
}

#[test]
fn asymmetric_hoses_take_the_receiver_min() {
    // A sender with a 1 G hose into a receiver with a 100 M hose: the
    // operational rate is receiver-limited, exactly like a 2-VM tenant
    // aggregate built from the smaller guarantee.
    let f = AllocFlow {
        path: vec![],
        src_hose: Rate::from_gbps(1),
        out_deg: 1,
        dst_hose: Rate::from_mbps(100),
        in_deg: 1,
    };
    let want = analytic_rate(1, 2, Rate::from_mbps(100));
    assert!((f.hose_rate() - want).abs() <= 1e-6 * want);
}
