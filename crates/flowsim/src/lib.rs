//! Datacenter-scale flow-level simulator (paper §6.3).
//!
//! Tenants arrive as a Poisson process, are admitted (or rejected) by a
//! pluggable placement algorithm, run a job — a set of flows plus a
//! minimum compute time — and depart, releasing their VMs. The questions
//! answered are macroscopic: what fraction of requests each placement
//! algorithm admits (Fig. 15) and how much of the network's capacity is
//! actually used (Fig. 16).
//!
//! Flows are fluid: each has remaining bytes and a rate assigned by an
//! [`Allocator`]:
//!
//! * [`Allocator::Guaranteed`] (Silo, Oktopus) — every flow gets its hose
//!   share `min(B/out_degree(src), B/in_degree(dst))`; no sharing across
//!   tenants, no work conservation.
//! * [`Allocator::FairShare`] (Locality + ideal TCP) — global max-min
//!   fairness via progressive waterfilling on the tree's directed links.
//!
//! Time advances in fixed steps (default 1 s of simulated time): each step
//! recomputes rates, drains flows, completes jobs, and admits new
//! arrivals. The quantization error is negligible against multi-minute
//! job durations and keeps 32 K-server runs tractable.

mod alloc;
mod simulation;

pub use alloc::{waterfill, AllocFlow, Allocator};
pub use simulation::{ClassMix, FlowSim, FlowSimConfig, FlowSimReport};
