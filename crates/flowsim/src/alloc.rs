//! Flow rate allocation: guaranteed hose shares vs. max-min fair sharing.

use silo_base::Rate;
use silo_topology::{PortId, Topology};
use std::collections::HashMap;

/// How flows get bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocator {
    /// Hose-model guarantees, no inter-tenant sharing (Silo/Oktopus).
    Guaranteed,
    /// Ideal-TCP max-min fairness over link capacities (Locality).
    FairShare,
}

/// One fluid flow for allocation purposes.
#[derive(Debug, Clone)]
pub struct AllocFlow {
    /// Directed ports the flow traverses.
    pub path: Vec<PortId>,
    /// Sender hose guarantee and current out-degree (active flows).
    pub src_hose: Rate,
    pub out_deg: usize,
    /// Receiver hose guarantee and current in-degree.
    pub dst_hose: Rate,
    pub in_deg: usize,
}

impl AllocFlow {
    /// The guaranteed allocator's rate.
    pub fn hose_rate(&self) -> f64 {
        let s = self.src_hose.as_bps() as f64 / self.out_deg.max(1) as f64;
        let d = self.dst_hose.as_bps() as f64 / self.in_deg.max(1) as f64;
        s.min(d)
    }
}

/// Progressive-filling max-min fairness: repeatedly find the most
/// constrained link, freeze its flows at the fair share, remove the
/// capacity, repeat. Returns per-flow rates in bits/sec.
///
/// Flows are also capped by their endpoint hoses? No — ideal TCP has no
/// hoses; only link capacities bind (the paper's Locality baseline shares
/// "bandwidth fairly between all flows").
pub fn waterfill(topo: &Topology, flows: &[AllocFlow]) -> Vec<f64> {
    // Per-active-link state, deterministic ordering by port id.
    let mut link_flows: HashMap<u32, Vec<usize>> = HashMap::new();
    for (fi, f) in flows.iter().enumerate() {
        for p in &f.path {
            link_flows.entry(p.0).or_default().push(fi);
        }
    }
    let mut active: Vec<u32> = link_flows.keys().copied().collect();
    active.sort_unstable();
    let mut residual: HashMap<u32, f64> = active
        .iter()
        .map(|&l| (l, topo.port(PortId(l)).rate.as_bps() as f64))
        .collect();
    let mut remaining: HashMap<u32, usize> =
        link_flows.iter().map(|(&l, v)| (l, v.len())).collect();
    let mut rate = vec![f64::INFINITY; flows.len()];
    let mut frozen = vec![false; flows.len()];
    loop {
        // Most constrained link: min residual / remaining flows; ties
        // break toward the lowest port id for determinism.
        let mut best: Option<(u32, f64)> = None;
        for &l in &active {
            let cnt = remaining[&l];
            if cnt == 0 {
                continue;
            }
            let share = residual[&l] / cnt as f64;
            if best.is_none_or(|(_, s)| share < s) {
                best = Some((l, share));
            }
        }
        let Some((bl, share)) = best else { break };
        // Freeze every unfrozen flow on that link.
        for fi in link_flows[&bl].clone() {
            if frozen[fi] {
                continue;
            }
            frozen[fi] = true;
            rate[fi] = share;
            for p in &flows[fi].path {
                if let Some(r) = residual.get_mut(&p.0) {
                    *r = (*r - share).max(0.0);
                }
                if let Some(c) = remaining.get_mut(&p.0) {
                    *c -= 1;
                }
            }
        }
        active.retain(|l| remaining[l] > 0);
        if active.is_empty() {
            break;
        }
    }
    // Same-host flows (empty path) are never constrained; any other
    // unfrozen flow would indicate a bug.
    for (fi, r) in rate.iter_mut().enumerate() {
        if flows[fi].path.is_empty() {
            *r = f64::INFINITY;
        } else {
            debug_assert!(frozen[fi], "flow {fi} escaped the waterfill");
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_base::{Bytes, Dur};
    use silo_topology::{HostId, TreeParams};

    fn topo() -> Topology {
        Topology::build(TreeParams {
            pods: 1,
            racks_per_pod: 2,
            servers_per_rack: 2,
            vm_slots_per_server: 4,
            host_link: Rate::from_gbps(10),
            tor_oversub: 2.0,
            agg_oversub: 1.0,
            switch_buffer: Bytes::from_kb(312),
            nic_buffer: Bytes::from_kb(64),
            prop_delay: Dur::from_ns(500),
        })
    }

    fn flow(topo: &Topology, s: u32, d: u32) -> AllocFlow {
        AllocFlow {
            path: topo.path_ports(HostId(s), HostId(d)),
            src_hose: Rate::from_gbps(1),
            out_deg: 1,
            dst_hose: Rate::from_gbps(1),
            in_deg: 1,
        }
    }

    #[test]
    fn hose_rate_is_min_of_endpoint_shares() {
        let t = topo();
        let mut f = flow(&t, 0, 1);
        f.out_deg = 2;
        f.in_deg = 4;
        // min(1G/2, 1G/4) = 0.25 G.
        assert!((f.hose_rate() - 0.25e9).abs() < 1.0);
    }

    #[test]
    fn single_flow_gets_bottleneck_capacity() {
        let t = topo();
        // Cross-rack: bottleneck is the 10 G ToR uplink (2 servers x 10 /
        // oversub 2 = 10 G).
        let flows = vec![flow(&t, 0, 2)];
        let r = waterfill(&t, &flows);
        assert!((r[0] - 1e10).abs() < 1.0, "{}", r[0]);
    }

    #[test]
    fn two_flows_share_bottleneck_equally() {
        let t = topo();
        let flows = vec![flow(&t, 0, 2), flow(&t, 1, 3)];
        let r = waterfill(&t, &flows);
        // Both cross the 10 G rack-0 uplink: 5 G each.
        assert!((r[0] - 5e9).abs() < 1.0);
        assert!((r[1] - 5e9).abs() < 1.0);
    }

    #[test]
    fn max_min_gives_leftover_to_unconstrained_flow() {
        let t = topo();
        // f0 and f1 share host 0's NIC; f2 runs alone from host 1.
        let flows = vec![flow(&t, 0, 1), flow(&t, 0, 2), flow(&t, 1, 3)];
        let r = waterfill(&t, &flows);
        assert!((r[0] - 5e9).abs() < 1e6, "{:?}", r);
        assert!((r[1] - 5e9).abs() < 1e6);
        // f2: rack uplink shared with f1: f1 already frozen at 5 G,
        // leaving 5 G... both f1 and f2 cross the rack-0 uplink (10 G):
        // fair share 5 G each; f2's own NIC has 10 G. So f2 = 5 G.
        assert!((r[2] - 5e9).abs() < 1e6);
    }

    #[test]
    fn same_host_flows_are_unconstrained() {
        let t = topo();
        let f = AllocFlow {
            path: vec![],
            src_hose: Rate::from_gbps(1),
            out_deg: 1,
            dst_hose: Rate::from_gbps(1),
            in_deg: 1,
        };
        let r = waterfill(&t, &[f]);
        assert!(r[0].is_infinite());
    }
}
