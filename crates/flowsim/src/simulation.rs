//! The time-stepped flow-level simulation driving Figs. 15–16.

use crate::alloc::{waterfill, AllocFlow, Allocator};
use rand::rngs::StdRng;
use rand::Rng;
use silo_base::{exponential, seeded_rng, Dur, Time};
use silo_placement::{Guarantee, Placer, TenantId, TenantRequest};
use silo_topology::{HostId, PortId};
use silo_workload::{all_to_one, permutation_x};

/// Tenant class mix and job-shape parameters (paper Table 3 plus the job
/// model of §6.3: "each tenant runs a job that transfers a given amount of
/// data between its VMs; each job also has a minimum compute time").
#[derive(Debug, Clone)]
pub struct ClassMix {
    /// Fraction of class-A (delay-sensitive, all-to-one) tenants.
    pub class_a_frac: f64,
    pub class_a: Guarantee,
    pub class_b: Guarantee,
    /// Class-B traffic pattern: `Some(x)` = Permutation-x, `None` =
    /// all-to-all.
    pub class_b_x: Option<f64>,
}

impl Default for ClassMix {
    fn default() -> ClassMix {
        ClassMix {
            class_a_frac: 0.5,
            class_a: Guarantee::class_a(),
            class_b: Guarantee::class_b(),
            class_b_x: Some(1.0),
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct FlowSimConfig {
    /// Quantized time step.
    pub step: Dur,
    /// Total simulated time (including warmup).
    pub duration: Dur,
    /// Statistics are collected only after this point.
    pub warmup: Dur,
    /// Target datacenter occupancy in (0, 1]; sets the arrival rate.
    pub occupancy: f64,
    /// Mean tenant size (exponential, as in Oktopus), clamped to
    /// `[2, max_vms]`.
    pub mean_vms: f64,
    pub max_vms: usize,
    /// Mean compute time per job (exponential).
    pub mean_compute: Dur,
    /// Mean *nominal* transfer time per job at full guaranteed rate
    /// (exponential); flow byte counts derive from it.
    pub mean_transfer: Dur,
    pub mix: ClassMix,
    pub seed: u64,
}

impl Default for FlowSimConfig {
    fn default() -> FlowSimConfig {
        FlowSimConfig {
            step: Dur::from_secs(1),
            duration: Dur::from_secs(4_000),
            warmup: Dur::from_secs(1_000),
            occupancy: 0.75,
            mean_vms: 49.0,
            max_vms: 200,
            // Jobs are network-dominated (§2.2: messaging is a large
            // fraction of job time): starving a tenant's flows stretches
            // its slot residency, which is the mechanism behind Fig. 15b.
            mean_compute: Dur::from_secs(100),
            mean_transfer: Dur::from_secs(300),
            mix: ClassMix::default(),
            seed: 1,
        }
    }
}

struct Flow {
    src_host: HostId,
    dst_host: HostId,
    src_vm: usize,
    dst_vm: usize,
    remaining: f64,
}

struct Job {
    tenant: TenantId,
    class_a: bool,
    flows: Vec<Flow>,
    compute_done_at: Time,
    arrived: Time,
}

/// Results of a run.
#[derive(Debug, Clone, Default)]
pub struct FlowSimReport {
    pub offered_a: usize,
    pub offered_b: usize,
    pub admitted_a: usize,
    pub admitted_b: usize,
    pub completed: usize,
    /// Carried bits / capacity over all directed links, post-warmup.
    pub utilization: f64,
    /// Mean job stretch (actual / nominal duration) of completed jobs.
    pub mean_stretch: f64,
    /// Mean datacenter slot occupancy observed post-warmup.
    pub mean_occupancy: f64,
}

impl FlowSimReport {
    pub fn admitted_frac(&self) -> f64 {
        let off = self.offered_a + self.offered_b;
        if off == 0 {
            1.0
        } else {
            (self.admitted_a + self.admitted_b) as f64 / off as f64
        }
    }
    pub fn admitted_frac_a(&self) -> f64 {
        if self.offered_a == 0 {
            1.0
        } else {
            self.admitted_a as f64 / self.offered_a as f64
        }
    }
    pub fn admitted_frac_b(&self) -> f64 {
        if self.offered_b == 0 {
            1.0
        } else {
            self.admitted_b as f64 / self.offered_b as f64
        }
    }
}

/// The simulator, generic over the placement algorithm.
pub struct FlowSim<P: Placer> {
    placer: P,
    alloc: Allocator,
    cfg: FlowSimConfig,
    rng: StdRng,
    now: Time,
    jobs: Vec<Job>,
    report: FlowSimReport,
    stretch_sum: f64,
    stretch_n: usize,
    nominal: Vec<(TenantId, Dur)>,
    carried_bits: f64,
    occupancy_samples: (f64, usize),
}

impl<P: Placer> FlowSim<P> {
    pub fn new(placer: P, alloc: Allocator, cfg: FlowSimConfig) -> FlowSim<P> {
        let rng = seeded_rng(cfg.seed);
        FlowSim {
            placer,
            alloc,
            cfg,
            rng,
            now: Time::ZERO,
            jobs: Vec::new(),
            report: FlowSimReport::default(),
            stretch_sum: 0.0,
            stretch_n: 0,
            nominal: Vec::new(),
            carried_bits: 0.0,
            occupancy_samples: (0.0, 0),
        }
    }

    /// Poisson tenant arrival rate that hits the target occupancy given
    /// the nominal job duration.
    fn arrival_rate(&self) -> f64 {
        let total_slots = self.placer.topology().params().num_vm_slots() as f64;
        let mean_dur = self
            .cfg
            .mean_compute
            .as_secs_f64()
            .max(self.cfg.mean_transfer.as_secs_f64());
        self.cfg.occupancy * total_slots / (self.cfg.mean_vms * mean_dur)
    }

    fn draw_tenant(&mut self) -> (TenantRequest, bool) {
        let n = exponential(&mut self.rng, 1.0 / self.cfg.mean_vms).round() as usize;
        let n = n.clamp(2, self.cfg.max_vms);
        let class_a = self.rng.random::<f64>() < self.cfg.mix.class_a_frac;
        let g = if class_a {
            self.cfg.mix.class_a
        } else {
            self.cfg.mix.class_b
        };
        (TenantRequest::new(n, g), class_a)
    }

    fn spawn_job(
        &mut self,
        req: &TenantRequest,
        class_a: bool,
        tenant: TenantId,
        vm_hosts: Vec<HostId>,
    ) {
        let n = vm_hosts.len();
        let b = req.guarantee.b.as_bps() as f64;
        let t_net = exponential(&mut self.rng, 1.0 / self.cfg.mean_transfer.as_secs_f64());
        let pairs = if class_a {
            all_to_one(n, 0)
        } else {
            match self.cfg.mix.class_b_x {
                Some(x) => permutation_x(n, x, &mut self.rng),
                None => silo_workload::all_to_all(n),
            }
        };
        // Per-flow bytes sized so the whole transfer takes ~t_net at the
        // guaranteed hose rates.
        let mut out_deg = vec![0usize; n];
        let mut in_deg = vec![0usize; n];
        for &(s, d) in &pairs {
            out_deg[s] += 1;
            in_deg[d] += 1;
        }
        let flows: Vec<Flow> = pairs
            .iter()
            .map(|&(s, d)| {
                let rate = (b / out_deg[s].max(1) as f64).min(b / in_deg[d].max(1) as f64);
                Flow {
                    src_host: vm_hosts[s],
                    dst_host: vm_hosts[d],
                    src_vm: s,
                    dst_vm: d,
                    remaining: rate * t_net / 8.0,
                }
            })
            .collect();
        let compute = exponential(&mut self.rng, 1.0 / self.cfg.mean_compute.as_secs_f64());
        let nominal = Dur::from_secs_f64(compute.max(t_net));
        self.nominal.push((tenant, nominal));
        self.jobs.push(Job {
            tenant,
            class_a,
            flows,
            compute_done_at: self.now + Dur::from_secs_f64(compute),
            arrived: self.now,
        });
    }

    fn step_rates(&mut self) -> Vec<(usize, usize, f64)> {
        // (job idx, flow idx, rate bps) for unfinished flows.
        let topo = self.placer.topology();
        let mut metas = Vec::new();
        let mut alloc_flows = Vec::new();
        for (ji, job) in self.jobs.iter().enumerate() {
            // Per-VM active degrees for the hose shares.
            let mut out_deg = vec![0usize; 256];
            let mut in_deg = vec![0usize; 256];
            for f in &job.flows {
                if f.remaining > 0.0 {
                    out_deg[f.src_vm.min(255)] += 1;
                    in_deg[f.dst_vm.min(255)] += 1;
                }
            }
            let g = if job.class_a {
                self.cfg.mix.class_a
            } else {
                self.cfg.mix.class_b
            };
            for (fi, f) in job.flows.iter().enumerate() {
                if f.remaining <= 0.0 {
                    continue;
                }
                metas.push((ji, fi));
                alloc_flows.push(AllocFlow {
                    path: topo.path_ports(f.src_host, f.dst_host),
                    src_hose: g.b,
                    out_deg: out_deg[f.src_vm.min(255)],
                    dst_hose: g.b,
                    in_deg: in_deg[f.dst_vm.min(255)],
                });
            }
        }
        let rates: Vec<f64> = match self.alloc {
            Allocator::Guaranteed => alloc_flows.iter().map(|f| f.hose_rate()).collect(),
            Allocator::FairShare => waterfill(topo, &alloc_flows),
        };
        // Utilization accounting: bits carried on every traversed link.
        let dt = self.cfg.step.as_secs_f64();
        if self.now.as_secs_f64() >= self.cfg.warmup.as_secs_f64() {
            for (af, &r) in alloc_flows.iter().zip(&rates) {
                if r.is_finite() {
                    self.carried_bits += r * dt * af.path.len() as f64;
                }
            }
        }
        metas
            .into_iter()
            .zip(rates)
            .map(|((ji, fi), r)| (ji, fi, r))
            .collect()
    }

    /// Run the simulation and report.
    pub fn run(mut self) -> FlowSimReport {
        let rate = self.arrival_rate();
        let mut next_arrival = Time::ZERO + Dur::from_secs_f64(exponential(&mut self.rng, rate));
        let horizon = Time::ZERO + self.cfg.duration;
        let dt = self.cfg.step.as_secs_f64();
        let measuring =
            |now: Time, cfg: &FlowSimConfig| now.as_secs_f64() >= cfg.warmup.as_secs_f64();
        while self.now < horizon {
            // 1. Admit arrivals due this step.
            while next_arrival <= self.now + self.cfg.step {
                let (req, class_a) = self.draw_tenant();
                if measuring(self.now, &self.cfg) {
                    if class_a {
                        self.report.offered_a += 1;
                    } else {
                        self.report.offered_b += 1;
                    }
                }
                if let Ok(p) = self.placer.try_place(&req) {
                    if measuring(self.now, &self.cfg) {
                        if class_a {
                            self.report.admitted_a += 1;
                        } else {
                            self.report.admitted_b += 1;
                        }
                    }
                    let mut vm_hosts = Vec::with_capacity(req.vms);
                    for &(h, k) in &p.hosts {
                        for _ in 0..k {
                            vm_hosts.push(h);
                        }
                    }
                    self.spawn_job(&req, class_a, p.tenant, vm_hosts);
                }
                next_arrival += Dur::from_secs_f64(exponential(&mut self.rng, rate));
            }
            // 2. Allocate rates and drain flows.
            let rates = self.step_rates();
            for (ji, fi, r) in rates {
                let f = &mut self.jobs[ji].flows[fi];
                if r.is_infinite() {
                    f.remaining = 0.0;
                } else {
                    f.remaining = (f.remaining - r * dt / 8.0).max(0.0);
                }
            }
            self.now += self.cfg.step;
            // 3. Complete jobs.
            let mut i = 0;
            while i < self.jobs.len() {
                let done = self.jobs[i].compute_done_at <= self.now
                    && self.jobs[i].flows.iter().all(|f| f.remaining <= 0.0);
                if done {
                    let job = self.jobs.swap_remove(i);
                    self.placer.remove(job.tenant);
                    if measuring(self.now, &self.cfg) {
                        self.report.completed += 1;
                        if let Some(pos) = self.nominal.iter().position(|&(t, _)| t == job.tenant) {
                            let (_, nominal) = self.nominal.swap_remove(pos);
                            let actual = (self.now - job.arrived).as_secs_f64();
                            self.stretch_sum += actual / nominal.as_secs_f64().max(1.0);
                            self.stretch_n += 1;
                        }
                    }
                } else {
                    i += 1;
                }
            }
            // 4. Occupancy sample.
            if measuring(self.now, &self.cfg) {
                let occ = self.placer.used_slots() as f64
                    / self.placer.topology().params().num_vm_slots() as f64;
                self.occupancy_samples.0 += occ;
                self.occupancy_samples.1 += 1;
            }
        }
        // Utilization: carried bits over total capacity-time.
        let topo = self.placer.topology();
        let mut cap_bits = 0.0;
        for i in 0..topo.num_ports() {
            cap_bits += topo.port(PortId(i as u32)).rate.as_bps() as f64;
        }
        let meas_time = (self.cfg.duration - self.cfg.warmup).as_secs_f64();
        self.report.utilization = self.carried_bits / (cap_bits * meas_time);
        self.report.mean_stretch = if self.stretch_n > 0 {
            self.stretch_sum / self.stretch_n as f64
        } else {
            0.0
        };
        self.report.mean_occupancy = if self.occupancy_samples.1 > 0 {
            self.occupancy_samples.0 / self.occupancy_samples.1 as f64
        } else {
            0.0
        };
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_base::{Bytes, Rate};
    use silo_placement::{LocalityPlacer, OktopusPlacer, SiloPlacer};
    use silo_topology::{Topology, TreeParams};

    fn topo(servers_per_rack: usize) -> Topology {
        Topology::build(TreeParams {
            pods: 2,
            racks_per_pod: 2,
            servers_per_rack,
            vm_slots_per_server: 4,
            host_link: Rate::from_gbps(10),
            tor_oversub: 5.0,
            agg_oversub: 5.0,
            switch_buffer: Bytes::from_kb(312),
            nic_buffer: Bytes::from_kb(64),
            prop_delay: Dur::from_ns(500),
        })
    }

    fn quick_cfg(occupancy: f64, seed: u64) -> FlowSimConfig {
        FlowSimConfig {
            step: Dur::from_secs(1),
            duration: Dur::from_secs(600),
            warmup: Dur::from_secs(150),
            occupancy,
            mean_vms: 8.0,
            max_vms: 24,
            mean_compute: Dur::from_secs(60),
            mean_transfer: Dur::from_secs(50),
            mix: ClassMix::default(),
            seed,
        }
    }

    #[test]
    fn locality_admits_everything_at_low_occupancy() {
        let sim = FlowSim::new(
            LocalityPlacer::new(topo(10)),
            Allocator::FairShare,
            quick_cfg(0.3, 1),
        );
        let r = sim.run();
        assert!(r.offered_a + r.offered_b > 20);
        assert!(r.admitted_frac() > 0.99, "{}", r.admitted_frac());
    }

    #[test]
    fn silo_rejects_some_at_high_occupancy() {
        let sim = FlowSim::new(
            SiloPlacer::new(topo(10)),
            Allocator::Guaranteed,
            quick_cfg(0.9, 2),
        );
        let r = sim.run();
        assert!(r.offered_a + r.offered_b > 50);
        let frac = r.admitted_frac();
        assert!(frac < 1.0, "Silo should reject something at 90%");
        assert!(frac > 0.5, "but not most things: {frac}");
    }

    #[test]
    fn oktopus_admits_no_less_than_silo() {
        let run = |kind: u8| {
            let cfg = quick_cfg(0.9, 3);
            match kind {
                0 => FlowSim::new(SiloPlacer::new(topo(10)), Allocator::Guaranteed, cfg).run(),
                _ => FlowSim::new(OktopusPlacer::new(topo(10)), Allocator::Guaranteed, cfg).run(),
            }
        };
        let silo = run(0);
        let okto = run(1);
        assert!(
            okto.admitted_frac() >= silo.admitted_frac() - 0.02,
            "okto {} vs silo {}",
            okto.admitted_frac(),
            silo.admitted_frac()
        );
    }

    #[test]
    fn utilization_grows_with_occupancy() {
        let run = |occ: f64| {
            FlowSim::new(
                SiloPlacer::new(topo(10)),
                Allocator::Guaranteed,
                quick_cfg(occ, 4),
            )
            .run()
        };
        let low = run(0.2);
        let high = run(0.8);
        assert!(
            high.utilization > low.utilization,
            "{} vs {}",
            high.utilization,
            low.utilization
        );
    }

    #[test]
    fn jobs_complete_and_release_slots() {
        let sim = FlowSim::new(
            SiloPlacer::new(topo(6)),
            Allocator::Guaranteed,
            quick_cfg(0.5, 5),
        );
        let r = sim.run();
        assert!(r.completed > 10, "completed {}", r.completed);
        assert!(r.mean_occupancy > 0.1 && r.mean_occupancy < 0.95);
        assert!(r.mean_stretch >= 0.9, "stretch {}", r.mean_stretch);
    }
}
