//! Satellite property gate: evicted tenants must leave NO residue.
//!
//! Two placers run the same random interleaving of admissions,
//! evictions, link failures and restorations — but placer A additionally
//! admits-and-immediately-evicts transient tenants that placer B never
//! sees. If eviction is exact, A and B must end every script with
//! byte-identical per-port loads, identical slot maps (free counts per
//! host/rack/pod), identical failed-link sets and backlog bounds, and
//! must have made identical decisions on every common operation.
//!
//! This is precisely what the id-order fold invariant in
//! `SiloPlacer::add_contribs`/`sub_contribs` promises; a placer that
//! accumulated float residue (the old `add`/`sub`-with-clamp pairing) or
//! leaked slots fails here with a shrunken counterexample script.
//!
//! TenantIds themselves desynchronize (transients consume ids), so only
//! id-independent state is compared — the relative order of common
//! tenants is preserved, which keeps fault-sweep outcome sequences
//! comparable elementwise.

use silo_base::prop::{forall, shrink_vec, Rng, StdRng};
use silo_base::{Bytes, Dur, Rate};
use silo_placement::{DegradeOutcome, Guarantee, Placer, SiloPlacer, TenantId, TenantRequest};
use silo_topology::{HostId, PortId, Topology, TreeParams};

fn topo() -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 2,
        servers_per_rack: 3,
        vm_slots_per_server: 4,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(360),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

/// Request templates: a spread of sizes, classes and fault-domain
/// demands, indexed mod-N by the script.
fn template(k: u8) -> TenantRequest {
    match k % 6 {
        0 => TenantRequest::new(1, Guarantee::class_a()),
        1 => TenantRequest::new(3, Guarantee::class_a()),
        2 => TenantRequest::new(2, Guarantee::class_b()).with_fault_domains(2),
        3 => TenantRequest::new(5, Guarantee::class_a()),
        4 => TenantRequest::new(4, Guarantee::class_b()),
        _ => TenantRequest::new(6, Guarantee::class_a()).with_fault_domains(3),
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Admit template `k` in BOTH placers (a common tenant).
    Admit(u8),
    /// Evict the `i % live`-th common tenant from both placers.
    Evict(u8),
    /// Fail host `h % hosts`'s access link in both placers.
    Fail(u8),
    /// Restore host `h % hosts`'s access link in both placers.
    Restore(u8),
    /// Transient bracket, placer A only: admit each template, then
    /// immediately evict everything that was admitted. B never sees it —
    /// afterwards A must be indistinguishable from B.
    Bracket(Vec<u8>),
}

/// One placer's view of a script run: its common-tenant id list and the
/// id-independent trace of what happened.
struct Run {
    placer: SiloPlacer,
    live: Vec<TenantId>,
    trace: Vec<String>,
}

impl Run {
    fn new() -> Run {
        Run {
            placer: SiloPlacer::new(topo()),
            live: Vec::new(),
            trace: Vec::new(),
        }
    }

    fn common(&mut self, op: &Op) {
        match *op {
            Op::Admit(k) => match self.placer.try_place(&template(k)) {
                Ok(p) => {
                    self.live.push(p.tenant);
                    self.trace.push(format!("admit {:?}", p.span));
                }
                Err(e) => self.trace.push(format!("reject {e:?}")),
            },
            Op::Evict(i) => {
                if self.live.is_empty() {
                    self.trace.push("evict-noop".into());
                } else {
                    let t = self.live.remove(i as usize % self.live.len());
                    let ok = self.placer.remove(t);
                    self.trace.push(format!("evict {ok}"));
                }
            }
            Op::Fail(h) => {
                let host = HostId(h as u32 % self.placer.topology().num_hosts() as u32);
                let link = self.placer.topology().host_link(host);
                let report = self.placer.fail_link(link);
                let outcomes: Vec<&DegradeOutcome> =
                    report.outcomes.iter().map(|(_, o)| o).collect();
                self.trace.push(format!("fail {h} {outcomes:?}"));
            }
            Op::Restore(h) => {
                let host = HostId(h as u32 % self.placer.topology().num_hosts() as u32);
                let link = self.placer.topology().host_link(host);
                let report = self.placer.restore_link(link);
                let outcomes: Vec<&DegradeOutcome> =
                    report.outcomes.iter().map(|(_, o)| o).collect();
                self.trace.push(format!("restore {h} {outcomes:?}"));
            }
            Op::Bracket(_) => unreachable!("brackets are not common ops"),
        }
    }

    /// Placer A only: admit the bracket's templates, then evict every
    /// admitted transient, leaving (if eviction is exact) no trace.
    fn bracket(&mut self, templates: &[u8]) {
        let mut transients = Vec::new();
        for &k in templates {
            if let Ok(p) = self.placer.try_place(&template(k)) {
                transients.push(p.tenant);
            }
        }
        for t in transients {
            assert!(self.placer.remove(t));
        }
    }
}

/// Compare everything about the two placers that does not involve
/// absolute TenantIds.
fn assert_indistinguishable(a: &Run, b: &Run) -> Result<(), String> {
    if a.trace != b.trace {
        let first = a
            .trace
            .iter()
            .zip(&b.trace)
            .position(|(x, y)| x != y)
            .map(|i| {
                format!(
                    "first divergence at common op {i}: {:?} vs {:?}",
                    a.trace[i], b.trace[i]
                )
            })
            .unwrap_or_else(|| format!("trace lengths {} vs {}", a.trace.len(), b.trace.len()));
        return Err(format!("decision traces diverged: {first}"));
    }
    let (pa, pb) = (&a.placer, &b.placer);
    pa.verify_scratch_consistency()
        .map_err(|e| format!("placer A inconsistent: {e}"))?;
    pb.verify_scratch_consistency()
        .map_err(|e| format!("placer B inconsistent: {e}"))?;
    if pa.failed_links() != pb.failed_links() {
        return Err(format!(
            "failed links diverged: {:?} vs {:?}",
            pa.failed_links(),
            pb.failed_links()
        ));
    }
    if pa.slot_map() != pb.slot_map() {
        return Err("slot maps diverged (leaked or lost slots)".into());
    }
    for p in 0..pa.topology().num_ports() {
        let port = PortId(p as u32);
        let (la, lb) = (pa.port_load(port), pb.port_load(port));
        let bits = |l: &silo_placement::PortLoad| {
            (
                l.rate.to_bits(),
                l.burst.to_bits(),
                l.burst_rate.to_bits(),
                l.mtu_bytes.to_bits(),
                l.unbounded,
            )
        };
        if bits(&la) != bits(&lb) {
            return Err(format!(
                "port {p} load diverged (float residue?): {la:?} vs {lb:?}"
            ));
        }
    }
    if pa.backlog_bounds() != pb.backlog_bounds() {
        return Err("backlog bounds diverged".into());
    }
    Ok(())
}

fn run_script(script: &[Op]) -> Result<(), String> {
    let mut a = Run::new();
    let mut b = Run::new();
    for op in script {
        match op {
            Op::Bracket(ts) => a.bracket(ts),
            common => {
                a.common(common);
                b.common(common);
            }
        }
    }
    assert_indistinguishable(&a, &b)
}

fn gen_op(rng: &mut StdRng) -> Op {
    match rng.random_range(0..10u32) {
        0..=2 => Op::Admit(rng.random_range(0u32..256) as u8),
        3..=4 => Op::Evict(rng.random_range(0u32..256) as u8),
        5 => Op::Fail(rng.random_range(0u32..256) as u8),
        6 => Op::Restore(rng.random_range(0u32..256) as u8),
        _ => {
            let n = rng.random_range(1..4usize);
            Op::Bracket((0..n).map(|_| rng.random_range(0u32..256) as u8).collect())
        }
    }
}

fn shrink_op(op: &Op) -> Vec<Op> {
    match op {
        Op::Bracket(ts) if ts.len() > 1 => (0..ts.len())
            .map(|i| {
                let mut s = ts.clone();
                s.remove(i);
                Op::Bracket(s)
            })
            .collect(),
        _ => Vec::new(),
    }
}

#[test]
fn evicted_tenants_leave_no_residue() {
    forall(
        "evicted tenants leave no residue",
        |rng| {
            let len = rng.random_range(1..24usize);
            (0..len).map(|_| gen_op(rng)).collect::<Vec<Op>>()
        },
        |script| shrink_vec(script, shrink_op),
        |script| run_script(script),
    );
}

/// The pinned, worst-case-shaped script the shrinker would aim for:
/// transients inside an active failure window.
#[test]
fn transients_during_outage_leave_no_residue() {
    let script = vec![
        Op::Admit(1),
        Op::Admit(5),
        Op::Fail(0),
        Op::Bracket(vec![0, 3, 2]),
        Op::Admit(2),
        Op::Evict(0),
        Op::Bracket(vec![4]),
        Op::Restore(0),
        Op::Bracket(vec![1, 1]),
        Op::Evict(1),
    ];
    run_script(&script).unwrap();
}
