//! The tentpole differential gate: the long-running [`AdmissionService`]
//! must be *indistinguishable* from a from-scratch `SiloPlacer` replay.
//!
//! A pinned-seed churn stream (diurnal Poisson arrivals, exponential
//! lifetimes, a flash crowd, correlated failure bursts) of >10k events is
//! applied incrementally. At every probe point we:
//!
//! 1. audit the incremental placer's internal invariants
//!    (`verify_scratch_consistency`: loads vs id-order fold, slots vs
//!    replay, mask vs derivation, memo vs direct computation);
//! 2. replay the event prefix through a *fresh* service and demand the
//!    full decision vector, every port's `backlog_bounds()` and
//!    `reserved_fraction()` (bitwise), and the complete snapshot be
//!    identical.
//!
//! Any drift between the incremental and batch paths — a leaked float, a
//! stale memo, a mask not updated in lockstep — fails here with the
//! offending probe index.

use silo_placement::{AdmissionService, ChurnEvent, Placer};
use silo_topology::{PortId, Topology, TreeParams};
use silo_workload::churn::{self, ChurnConfig, FailureBurst, FlashCrowd};

fn probe_topo() -> Topology {
    // 2 pods × 5 racks × 4 servers × 8 slots: big enough for real
    // contention, small enough to replay from scratch at every probe.
    Topology::build(TreeParams::ns2_scaled(0.1))
}

fn probe_stream(topo: &Topology) -> Vec<(f64, ChurnEvent)> {
    let mut cfg = ChurnConfig::diurnal(0x510_c0de).for_lifetimes(6000);
    cfg.mean_lifetime_s = 30.0; // most departures land inside the horizon
    let cfg = cfg
        .with_flash_crowd(FlashCrowd {
            at_s: 40.0,
            dur_s: 15.0,
            multiplier: 3.0,
        })
        .with_failure_burst(FailureBurst {
            at_s: 60.0,
            dur_s: 25.0,
            hosts: 2,
        })
        .with_failure_burst(FailureBurst {
            at_s: 120.0,
            dur_s: 20.0,
            hosts: 3,
        });
    let evs = churn::generate(topo, &cfg);
    assert!(
        evs.len() >= 10_000,
        "gate needs a 10k-event stream, got {}",
        evs.len()
    );
    evs
}

fn assert_state_matches(inc: &AdmissionService, fresh: &AdmissionService, probe: usize) {
    let (a, b) = (inc.placer(), fresh.placer());
    assert_eq!(
        a.backlog_bounds(),
        b.backlog_bounds(),
        "backlog bounds diverged at probe {probe}"
    );
    for p in 0..a.topology().num_ports() {
        let port = PortId(p as u32);
        assert_eq!(
            a.reserved_fraction(port).to_bits(),
            b.reserved_fraction(port).to_bits(),
            "reserved_fraction diverged at probe {probe}, port {p}"
        );
    }
    assert_eq!(
        inc.snapshot(),
        fresh.snapshot(),
        "snapshot diverged at probe {probe}"
    );
}

#[test]
fn incremental_service_matches_scratch_replay_over_10k_events() {
    let topo = probe_topo();
    let events = probe_stream(&topo);

    let mut svc = AdmissionService::new(topo.clone());
    let mut decisions = Vec::with_capacity(events.len());
    let probe_every = events.len() / 6;

    for (i, (_, ev)) in events.iter().enumerate() {
        decisions.push(svc.apply(ev));

        let at_probe = (i + 1) % probe_every == 0 || i + 1 == events.len();
        if !at_probe {
            continue;
        }
        svc.placer()
            .verify_scratch_consistency()
            .unwrap_or_else(|e| panic!("invariant audit failed at event {i}: {e}"));

        // From-scratch replay of the prefix: decisions and state must be
        // identical, event for event, bit for bit.
        let mut fresh = AdmissionService::new(topo.clone());
        for (j, (_, ev)) in events[..=i].iter().enumerate() {
            let d = fresh.apply(ev);
            assert_eq!(
                d, decisions[j],
                "decision {j} diverged when replaying prefix 0..={i}"
            );
        }
        assert_state_matches(&svc, &fresh, i);
    }

    // The stream must actually exercise every path.
    let s = svc.stats();
    assert!(s.admitted > 0 && s.rejected > 0, "{s:?}");
    assert!(s.evicted > 0 && s.evict_noops > 0, "{s:?}");
    assert!(s.faults > 0 && s.heals > 0, "{s:?}");
}

#[test]
fn snapshot_restore_midstream_is_transparent() {
    let topo = probe_topo();
    let events = probe_stream(&topo);
    let mid = events.len() / 2;

    let mut original = AdmissionService::new(topo);
    for (_, ev) in &events[..mid] {
        original.apply(ev);
    }

    // Round-trip at the midpoint is byte-exact…
    let snap = original.snapshot();
    let mut restored = AdmissionService::restore(&snap).expect("snapshot parses");
    assert_eq!(restored.snapshot(), snap, "restore must round-trip bytes");
    restored.placer().verify_scratch_consistency().unwrap();

    // …and the restored service is behaviorally identical from there on.
    for (i, (_, ev)) in events[mid..].iter().enumerate() {
        let a = original.apply(ev);
        let b = restored.apply(ev);
        assert_eq!(a, b, "decision diverged {i} events after restore");
    }
    assert_eq!(original.snapshot(), restored.snapshot());
    restored.placer().verify_scratch_consistency().unwrap();
}
