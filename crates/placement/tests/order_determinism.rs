//! Satellite gate: admission decisions are a pure function of the
//! request ORDER — never of iteration order of any backing table, hash
//! seed, or allocation address.
//!
//! A pinned-seed request set is run through the service in several
//! Fisher–Yates permutations, on two topologies. Each fixed order runs
//! twice through independently-constructed services; the decision
//! vectors and the full state snapshots must be identical run-to-run.
//! (Different permutations may legitimately produce different decisions —
//! admission is order-sensitive by design — but the same order must
//! reproduce bit-for-bit.)

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use silo_base::seeded_rng;
use silo_placement::{AdmissionService, ChurnEvent, Decision, Guarantee, TenantRequest};
use silo_topology::{Topology, TreeParams};

fn request_set() -> Vec<TenantRequest> {
    let mut rng = seeded_rng(0xdead_07d3);
    (0..40)
        .map(|_| {
            let vms = rng.random_range(1..9usize);
            let g = if rng.random_bool(0.7) {
                Guarantee::class_a()
            } else {
                Guarantee::class_b()
            };
            let mut req = TenantRequest::new(vms, g);
            if vms >= 2 && rng.random_bool(0.3) {
                req = req.with_fault_domains(2 + rng.random_range(0..vms - 1));
            }
            req
        })
        .collect()
}

fn run(topo: &Topology, order: &[TenantRequest]) -> (Vec<Decision>, String) {
    let mut svc = AdmissionService::new(topo.clone());
    let mut decisions = Vec::with_capacity(order.len() * 2);
    for req in order {
        decisions.push(svc.apply(&ChurnEvent::Admit(*req)));
    }
    // Evict every third admission, then admit a tail — mixes the id
    // space so table-order bugs in removal paths surface too.
    for i in (0..order.len() as u32).step_by(3) {
        decisions.push(svc.apply(&ChurnEvent::Evict(i)));
    }
    for req in order.iter().take(8) {
        decisions.push(svc.apply(&ChurnEvent::Admit(*req)));
    }
    let snap = svc.snapshot();
    (decisions, snap)
}

#[test]
fn fixed_order_decisions_are_reproducible() {
    let topos = [
        Topology::build(TreeParams::testbed()),
        Topology::build(TreeParams::ns2_scaled(0.1)),
    ];
    let base = request_set();
    for (ti, topo) in topos.iter().enumerate() {
        for perm_seed in 1..=3u64 {
            let mut order = base.clone();
            let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
            order.shuffle(&mut rng);

            let (d1, s1) = run(topo, &order);
            let (d2, s2) = run(topo, &order);
            assert_eq!(
                d1, d2,
                "decision vector not reproducible (topo {ti}, perm {perm_seed})"
            );
            assert_eq!(
                s1, s2,
                "snapshot not reproducible (topo {ti}, perm {perm_seed})"
            );
        }
    }
}

#[test]
fn permutations_share_invariants_even_when_decisions_differ() {
    // Sanity companion: whatever a permutation decides, the resulting
    // placer must satisfy its own invariants and its snapshot must
    // round-trip.
    let topo = Topology::build(TreeParams::testbed());
    let base = request_set();
    for perm_seed in 1..=3u64 {
        let mut order = base.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        order.shuffle(&mut rng);
        let mut svc = AdmissionService::new(topo.clone());
        for req in &order {
            svc.apply(&ChurnEvent::Admit(*req));
        }
        svc.placer().verify_scratch_consistency().unwrap();
        let snap = svc.snapshot();
        let restored = AdmissionService::restore(&snap).unwrap();
        assert_eq!(restored.snapshot(), snap);
    }
}
