//! VM placement and admission control (paper §4.2).
//!
//! Silo's placement manager maps a tenant's four-parameter guarantee
//! `{B, S, d, Bmax}` onto two switch-level queueing constraints:
//!
//! * **C1 (buffer absorption)** — at every switch port between the tenant's
//!   VMs, the worst-case queue buildup (computed from aggregated arrival
//!   curves, including every already-admitted tenant) must fit the port's
//!   buffer: `Q-bound_p ≤ Q-capacity_p`.
//! * **C2 (delay)** — for every pair of the tenant's VMs, the sum of queue
//!   *capacities* along the path must not exceed the delay guarantee `d`.
//!   Because capacities are static, C2 reduces to a maximum placement
//!   "height" (server → rack → pod → datacenter), which is what makes
//!   admission fast and load-independent.
//!
//! VMs are then placed by a greedy first-fit that minimizes that height,
//! preserving core capacity for future tenants (§4.2.3).
//!
//! Two baselines from the paper's evaluation live here too:
//! [`OktopusPlacer`] (bandwidth-only admission, Ballani et al. SIGCOMM'11)
//! and [`LocalityPlacer`] (network-oblivious greedy packing).
//!
//! # Aggregation strategy
//!
//! Exact per-port aggregate curves would grow with the number of admitted
//! tenants. Instead each port keeps four *linear* accumulators — sustained
//! rate, inflated burst, burst rate, and in-flight (MTU) bytes — whose sums
//! define a two-line concave curve that upper-bounds the true aggregate
//! (`Σ min(f_i, g_i) ≤ min(Σf_i, Σg_i)`), additionally capped by the
//! physical ingress capacity of the switch. Admission against this curve is
//! O(1) per port, slightly conservative, and exactly reversible on tenant
//! departure.

mod degrade;
mod guarantee;
mod load;
mod locality;
mod oktopus;
mod placer;
mod service;
mod silo;

pub use degrade::{DegradeOutcome, FaultReport};
pub use guarantee::{Guarantee, TenantRequest};
pub use load::{Contribution, PortLoad, NIC_HEADROOM};
pub use locality::LocalityPlacer;
pub use oktopus::OktopusPlacer;
pub use placer::{Placement, Placer, RejectReason, SlotMap, TenantId};
pub use service::{AdmissionService, ChurnEvent, Decision, ServiceStats};
pub use silo::SiloPlacer;
