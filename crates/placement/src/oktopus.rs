//! The Oktopus baseline (Ballani et al., SIGCOMM 2011): hose-model
//! *bandwidth-only* admission — no burst absorption, no delay constraint.
//!
//! Oktopus reserves `min(m, N−m)·B` on every link between a tenant's VMs
//! and rejects when a link's reservations would exceed its capacity. The
//! paper's Fig. 5 shows why this is insufficient for delay guarantees:
//! a placement can satisfy every bandwidth reservation yet overflow a
//! switch buffer when VMs burst.

use crate::guarantee::TenantRequest;
use crate::placer::{greedy_place_spread, Placement, Placer, RejectReason, SlotMap, TenantId};
use silo_topology::{HostId, Level, PortId, Topology};
use std::collections::HashMap;

struct TenantRecord {
    hosts: Vec<(HostId, usize)>,
    reservations: Vec<(PortId, f64)>,
}

/// Bandwidth-only hose admission and greedy height-minimizing placement.
pub struct OktopusPlacer {
    topo: Topology,
    slots: SlotMap,
    /// Reserved sustained bandwidth per directed port, bytes/sec.
    reserved: Vec<f64>,
    tenants: HashMap<TenantId, TenantRecord>,
    next_id: u64,
}

impl OktopusPlacer {
    pub fn new(topo: Topology) -> OktopusPlacer {
        let slots = SlotMap::new(&topo);
        let reserved = vec![0.0; topo.num_ports()];
        OktopusPlacer {
            topo,
            slots,
            reserved,
            tenants: HashMap::new(),
            next_id: 0,
        }
    }

    fn check_candidate(
        &self,
        cand: &[(HostId, usize)],
        req: &TenantRequest,
    ) -> Option<Vec<(PortId, f64)>> {
        let n = req.vms;
        let hosts: Vec<HostId> = cand.iter().map(|&(h, _)| h).collect();
        let mut out = Vec::new();
        for p in self.topo.ports_between(&hosts) {
            let m = self.topo.vms_on_sending_side(p, cand);
            if m == 0 || m >= n {
                continue;
            }
            let need = req.guarantee.b.bytes_per_sec() * m.min(n - m) as f64;
            let line = self.topo.port(p).rate.bytes_per_sec();
            if self.reserved[p.0 as usize] + need > line * (1.0 + 1e-9) {
                return None;
            }
            out.push((p, need));
        }
        Some(out)
    }

    /// Fraction of a port's capacity reserved (for utilization reports).
    pub fn reserved_fraction(&self, p: PortId) -> f64 {
        self.reserved[p.0 as usize] / self.topo.port(p).rate.bytes_per_sec()
    }

    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }
}

impl Placer for OktopusPlacer {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn try_place(&mut self, req: &TenantRequest) -> Result<Placement, RejectReason> {
        let n = req.vms;
        let found = greedy_place_spread(
            &self.topo,
            &self.slots,
            n,
            Level::CrossPod,
            req.min_fault_domains,
            &mut |cand, _| self.check_candidate(cand, req).is_some(),
        );
        let Some((cand, level)) = found else {
            return Err(if self.slots.total_free() < n {
                RejectReason::InsufficientSlots
            } else {
                RejectReason::NetworkUnsatisfiable
            });
        };
        let reservations = self
            .check_candidate(&cand, req)
            .expect("accepted candidate must re-check");
        for (p, r) in &reservations {
            self.reserved[p.0 as usize] += r;
        }
        self.slots.alloc(&self.topo, &cand);
        let id = TenantId(self.next_id);
        self.next_id += 1;
        self.tenants.insert(
            id,
            TenantRecord {
                hosts: cand.clone(),
                reservations,
            },
        );
        Ok(Placement {
            tenant: id,
            hosts: cand,
            span: level,
        })
    }

    fn remove(&mut self, tenant: TenantId) -> bool {
        let Some(rec) = self.tenants.remove(&tenant) else {
            return false;
        };
        for (p, r) in &rec.reservations {
            self.reserved[p.0 as usize] = (self.reserved[p.0 as usize] - r).max(0.0);
        }
        self.slots.release(&self.topo, &rec.hosts);
        true
    }

    fn used_slots(&self) -> usize {
        self.slots.used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guarantee::Guarantee;
    use silo_base::{Bytes, Dur, Rate};
    use silo_topology::TreeParams;

    fn small_topo() -> Topology {
        Topology::build(TreeParams {
            pods: 1,
            racks_per_pod: 1,
            servers_per_rack: 3,
            vm_slots_per_server: 5,
            host_link: Rate::from_gbps(10),
            tor_oversub: 1.0,
            agg_oversub: 1.0,
            switch_buffer: Bytes::from_kb(300),
            nic_buffer: Bytes::from_kb(64),
            prop_delay: Dur::from_ns(500),
        })
    }

    #[test]
    fn accepts_fig5_tenant_that_silo_would_balance() {
        // Oktopus only checks bandwidth: the dense 5/4 packing is fine by
        // it (hose min(5,4)·1G = 4G <= 10G everywhere).
        let mut p = OktopusPlacer::new(small_topo());
        let req = TenantRequest::new(
            9,
            Guarantee {
                b: Rate::from_gbps(1),
                s: Bytes::from_kb(100),
                bmax: Rate::from_gbps(10),
                delay: Some(Dur::from_ms(1)),
            },
        );
        let placed = p.try_place(&req).unwrap();
        // First-fit packs densely: 5 + 4 on the first two servers.
        assert_eq!(placed.hosts, vec![(HostId(0), 5), (HostId(1), 4)]);
    }

    #[test]
    fn rejects_bandwidth_overload() {
        let mut p = OktopusPlacer::new(small_topo());
        // 10 VMs at 3 Gbps hose: any split has min(m, n-m) >= 4 somewhere
        // ... actually k=5/5: min(5,5)·3G = 15G > 10G on NICs.
        let req = TenantRequest::new(10, Guarantee::bandwidth_only(Rate::from_gbps(3)));
        assert_eq!(p.try_place(&req), Err(RejectReason::NetworkUnsatisfiable));
    }

    #[test]
    fn reservations_accumulate_and_release() {
        let mut p = OktopusPlacer::new(small_topo());
        let req = TenantRequest::new(6, Guarantee::bandwidth_only(Rate::from_gbps(2)));
        let a = p.try_place(&req).unwrap();
        let b = p.try_place(&req).unwrap();
        // Third tenant of the same shape: slots (15 total, 12 used).
        assert!(p.try_place(&req).is_err());
        assert!(p.remove(a.tenant));
        assert!(p.try_place(&req).is_ok());
        assert!(p.remove(b.tenant));
    }

    #[test]
    fn single_server_tenant_reserves_nothing() {
        let mut p = OktopusPlacer::new(small_topo());
        let req = TenantRequest::new(4, Guarantee::bandwidth_only(Rate::from_gbps(10)));
        let placed = p.try_place(&req).unwrap();
        assert_eq!(placed.span, Level::SameHost);
        assert_eq!(p.tenants[&placed.tenant].reservations.len(), 0);
    }
}
