//! Graceful degradation of admitted guarantees under link failures.
//!
//! When a link dies, the C1/C2 reasoning behind every admitted tenant is
//! stale: pairs of VMs may be disconnected outright (the tree has no
//! alternate paths), and the reservations the tenant holds on ports
//! around the dead link are budget that surviving tenants could use. The
//! policy here is **reclaim-then-readmit**:
//!
//! 1. *Reclaim*: every tenant with a VM pair whose path crosses the
//!    failed link loses its port reservations and VM slots immediately —
//!    all affected tenants at once, so the re-admission pass below sees
//!    the true post-failure residual capacity.
//! 2. *Re-admit*: each affected tenant (in deterministic id order) goes
//!    back through ordinary admission against the degraded topology —
//!    same `{B, S, d, Bmax}` request, same id. Candidates that would
//!    cross any failed link are refused by `check_candidate`, so a
//!    re-admitted tenant's guarantees genuinely hold on what is left of
//!    the network.
//! 3. *Downgrade*: a tenant that no longer fits anywhere is explicitly
//!    downgraded to best-effort with a recorded [`RejectReason`]: it
//!    keeps its VM slots at the original hosts (VMs don't vanish when
//!    the network under them breaks) but holds **no** reservations, and
//!    no longer counts against any port budget.
//!
//! On restoration the same order applies in reverse: a degraded tenant
//! is first re-validated *in place* (original hosts, original span —
//! cheapest, no VM moves), then fully re-placed, and only if both fail
//! does it stay best-effort. See `DESIGN.md` for why this beats
//! LaaS-style full re-placement of every tenant.

use crate::guarantee::TenantRequest;
use crate::placer::{greedy_place_spread, RejectReason, TenantId};
use crate::silo::{SiloPlacer, TenantRecord};
use silo_topology::{HostId, Level, LinkId};

/// What happened to one tenant during a failure or restoration sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradeOutcome {
    /// The tenant was re-placed onto surviving capacity; its guarantees
    /// hold on the degraded topology at the new hosts.
    Replaced {
        hosts: Vec<(HostId, usize)>,
        span: Level,
    },
    /// No placement satisfies the request any more: the tenant keeps its
    /// VM slots but runs best-effort, for this recorded reason.
    Downgraded { reason: RejectReason },
    /// (Restoration only) the tenant's original placement re-validated
    /// in place: reservations are back, no VMs moved.
    Restored,
    /// (Restoration only) still unsatisfiable even on the healed
    /// topology — typically because re-admitted tenants now hold the
    /// budget it needs.
    StillDegraded { reason: RejectReason },
}

/// The outcome of one [`SiloPlacer::fail_link`] / [`SiloPlacer::restore_link`]
/// sweep: which tenants were touched and what became of each.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    pub link: LinkId,
    /// Affected tenants in deterministic id order.
    pub outcomes: Vec<(TenantId, DegradeOutcome)>,
}

impl FaultReport {
    pub fn downgraded(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| {
                matches!(
                    o,
                    DegradeOutcome::Downgraded { .. } | DegradeOutcome::StillDegraded { .. }
                )
            })
            .count()
    }
}

/// Book-keeping for a tenant running best-effort after a failure.
#[derive(Debug, Clone)]
pub(crate) struct DegradedRecord {
    pub(crate) hosts: Vec<(HostId, usize)>,
    pub(crate) req: TenantRequest,
    pub(crate) level: Level,
    pub(crate) reason: RejectReason,
}

impl SiloPlacer {
    /// Links currently failed.
    pub fn failed_links(&self) -> &[LinkId] {
        &self.failed
    }

    /// Tenants currently downgraded to best-effort, with the reason each
    /// one could not be re-admitted. Deterministic id order.
    pub fn degraded_tenants(&self) -> Vec<(TenantId, RejectReason)> {
        self.degraded.iter().map(|(&t, r)| (t, r.reason)).collect()
    }

    pub fn is_degraded(&self, t: TenantId) -> bool {
        self.degraded.contains_key(&t)
    }

    /// Hosts of a tenant whether its guarantees are live or degraded.
    pub fn hosts_of(&self, t: TenantId) -> Option<&[(HostId, usize)]> {
        self.placement_of(t)
            .or_else(|| self.degraded.get(&t).map(|r| r.hosts.as_slice()))
    }

    /// Why re-admission of `req` failed, mirroring `try_place`'s reason
    /// taxonomy.
    fn reject_reason(&self, req: &TenantRequest) -> RejectReason {
        let fits_host = req.vms <= self.topo.slots_per_server() && req.min_fault_domains <= 1;
        if self.max_level(req).is_none() && !fits_host {
            RejectReason::DelayUnsatisfiable
        } else if self.slots.total_free() < req.vms {
            RejectReason::InsufficientSlots
        } else {
            RejectReason::NetworkUnsatisfiable
        }
    }

    /// Ordinary admission of `req` under the current (possibly degraded)
    /// topology, keeping the existing tenant id.
    fn readmit(
        &mut self,
        id: TenantId,
        req: &TenantRequest,
    ) -> Option<(Vec<(HostId, usize)>, Level)> {
        let max_level = match self.max_level(req) {
            Some(l) => l,
            None if req.vms <= self.topo.slots_per_server() && req.min_fault_domains <= 1 => {
                Level::SameHost
            }
            None => return None,
        };
        let (cand, level) = greedy_place_spread(
            &self.topo,
            self.search_slots(),
            req.vms,
            max_level,
            req.min_fault_domains,
            &mut |cand, lvl| self.check_candidate(cand, lvl, req).is_some(),
        )?;
        let contribs = self
            .check_candidate(&cand, level, req)
            .expect("accepted candidate must re-check");
        self.add_contribs(id, &contribs);
        self.alloc_slots(&cand);
        self.tenants.insert(
            id,
            TenantRecord {
                hosts: cand.clone(),
                contribs,
                req: *req,
                level,
            },
        );
        Some((cand, level))
    }

    /// A link fails. Reclaims the reservations and slots of every tenant
    /// whose placement depends on it, then re-admits each against the
    /// degraded topology (reclaim-then-readmit); tenants that no longer
    /// fit are downgraded to best-effort with a recorded reason. New
    /// admissions refuse the dead link until [`SiloPlacer::restore_link`].
    pub fn fail_link(&mut self, link: LinkId) -> FaultReport {
        if !self.failed.contains(&link) {
            self.failed.push(link);
            self.failed.sort_unstable();
        }
        // The dead-host mask is rebuilt once per fault event; every
        // mutation below (and every admission until the next fault event)
        // updates it in lockstep instead of cloning.
        self.rebuild_mask();
        // Phase 1: reclaim every affected tenant's *reservations* at
        // once, so re-admission sees the full post-failure residual
        // bandwidth budget. Slots are NOT bulk-released: a tenant that
        // ends up downgraded never vacates its hosts, so freeing its
        // slots up front would let an earlier-id tenant re-place onto
        // them and double-book the server (a real over-allocation this
        // crate's differential churn suite caught).
        let affected: Vec<TenantId> = self
            .tenants
            .iter()
            .filter(|(_, r)| !self.candidate_connected(&r.hosts))
            .map(|(&t, _)| t)
            .collect();
        let mut reclaimed: Vec<(TenantId, TenantRecord)> = Vec::new();
        for &t in &affected {
            let rec = self.tenants.remove(&t).expect("affected tenant exists");
            self.sub_contribs(t, &rec.contribs);
            reclaimed.push((t, rec));
        }
        // Phase 2: re-admit in id order, releasing and (on downgrade)
        // re-taking each tenant's slots atomically.
        let mut outcomes = Vec::new();
        for (t, rec) in reclaimed {
            self.release_slots(&rec.hosts);
            match self.readmit(t, &rec.req) {
                Some((hosts, span)) => {
                    outcomes.push((t, DegradeOutcome::Replaced { hosts, span }));
                }
                None => {
                    let reason = self.reject_reason(&rec.req);
                    // Best-effort keeps the VMs where they were; the
                    // release just above guarantees this re-alloc fits.
                    self.alloc_slots(&rec.hosts);
                    self.degraded.insert(
                        t,
                        DegradedRecord {
                            hosts: rec.hosts,
                            req: rec.req,
                            level: rec.level,
                            reason,
                        },
                    );
                    outcomes.push((t, DegradeOutcome::Downgraded { reason }));
                }
            }
        }
        FaultReport { link, outcomes }
    }

    /// A failed link heals. Each degraded tenant is re-validated in place
    /// first (original hosts, original span — no VM moves), then fully
    /// re-placed, and stays best-effort only if both fail. Tenants that
    /// were successfully re-placed during the outage are *not* migrated
    /// back: their guarantees already hold where they are.
    pub fn restore_link(&mut self, link: LinkId) -> FaultReport {
        self.failed.retain(|&l| l != link);
        self.rebuild_mask();
        let ids: Vec<TenantId> = self.degraded.keys().copied().collect();
        let mut outcomes = Vec::new();
        for t in ids {
            let rec = self.degraded.remove(&t).expect("degraded tenant exists");
            // Cheapest first: original hosts, original span. The slots
            // are still allocated; only the reservations must re-check.
            if let Some(contribs) = self.check_candidate(&rec.hosts, rec.level, &rec.req) {
                self.add_contribs(t, &contribs);
                self.tenants.insert(
                    t,
                    TenantRecord {
                        hosts: rec.hosts,
                        contribs,
                        req: rec.req,
                        level: rec.level,
                    },
                );
                outcomes.push((t, DegradeOutcome::Restored));
                continue;
            }
            // In-place failed (e.g. re-admitted tenants took the budget):
            // try anywhere.
            self.release_slots(&rec.hosts);
            match self.readmit(t, &rec.req) {
                Some((hosts, span)) => {
                    outcomes.push((t, DegradeOutcome::Replaced { hosts, span }));
                }
                None => {
                    let reason = self.reject_reason(&rec.req);
                    self.alloc_slots(&rec.hosts);
                    self.degraded.insert(t, DegradedRecord { reason, ..rec });
                    outcomes.push((t, DegradeOutcome::StillDegraded { reason }));
                }
            }
        }
        FaultReport { link, outcomes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guarantee::Guarantee;
    use crate::placer::Placer;
    use silo_base::{Bytes, Dur, Rate};
    use silo_topology::{Topology, TreeParams};

    fn two_rack_topo() -> Topology {
        Topology::build(TreeParams {
            pods: 1,
            racks_per_pod: 2,
            servers_per_rack: 3,
            vm_slots_per_server: 4,
            host_link: Rate::from_gbps(10),
            tor_oversub: 1.0,
            agg_oversub: 1.0,
            switch_buffer: Bytes::from_kb(360),
            nic_buffer: Bytes::from_kb(64),
            prop_delay: Dur::from_ns(500),
        })
    }

    fn small_req(vms: usize) -> TenantRequest {
        TenantRequest::new(vms, Guarantee::class_a())
    }

    #[test]
    fn unrelated_tenants_survive_a_link_failure_untouched() {
        let mut p = SiloPlacer::new(two_rack_topo());
        // One tenant per host: all single-host spans.
        let a = p.try_place(&small_req(4)).unwrap();
        let before = a.hosts.clone();
        // Fail another host's access link: no pair of tenant-a VMs
        // crosses it.
        let report = p.fail_link(p.topology().host_link(HostId(5)));
        assert!(report.outcomes.is_empty());
        assert_eq!(p.placement_of(a.tenant).unwrap(), before.as_slice());
        assert!(p.degraded_tenants().is_empty());
    }

    #[test]
    fn tor_failure_reclaims_and_replaces_within_capacity() {
        let mut p = SiloPlacer::new(two_rack_topo());
        // A rack-spanning tenant in rack 0 (force >1 host).
        let placed = p.try_place(&small_req(4).with_fault_domains(2)).unwrap();
        assert!(placed.hosts.len() >= 2);
        let used_before = p.used_slots();
        // Kill rack 0's uplink: intra-rack pairs still work, but this
        // tenant only used rack-0 hosts... ToR down does not cut
        // host-to-host paths inside the rack, so it is unaffected.
        let report = p.fail_link(p.topology().tor_link(0));
        assert!(report.outcomes.is_empty());
        // A host-link failure under one of its VMs does affect it.
        let h = placed.hosts[0].0;
        let report = p.fail_link(p.topology().host_link(h));
        assert_eq!(report.outcomes.len(), 1);
        match &report.outcomes[0].1 {
            DegradeOutcome::Replaced { hosts, .. } => {
                assert!(
                    hosts.iter().all(|&(hh, _)| hh != h),
                    "must avoid the dead host's link: {hosts:?}"
                );
            }
            o => panic!("expected Replaced, got {o:?}"),
        }
        assert_eq!(p.used_slots(), used_before, "slots conserved");
        assert!(p.degraded_tenants().is_empty());
    }

    #[test]
    fn downgrade_when_no_capacity_remains_and_restore_revalidates() {
        let mut p = SiloPlacer::new(two_rack_topo());
        // Fill every slot with 2-host tenants (12 tenants x 2 VMs, spread).
        let mut placed = Vec::new();
        while let Ok(pl) = p.try_place(&small_req(2).with_fault_domains(2)) {
            placed.push(pl);
        }
        assert_eq!(p.used_slots(), 24, "cell fully packed");
        // Kill one host link: the only slots the reclaim frees sit under
        // the dead link itself, so no affected tenant can re-place ->
        // downgraded (network-unsatisfiable), slots retained.
        let h = placed[0].hosts[0].0;
        let report = p.fail_link(p.topology().host_link(h));
        assert!(!report.outcomes.is_empty());
        assert_eq!(report.downgraded(), report.outcomes.len());
        for (_, o) in &report.outcomes {
            assert_eq!(
                *o,
                DegradeOutcome::Downgraded {
                    reason: RejectReason::NetworkUnsatisfiable
                }
            );
        }
        assert_eq!(p.used_slots(), 24, "best-effort keeps its slots");
        let degraded = p.degraded_tenants();
        assert_eq!(degraded.len(), report.outcomes.len());
        // Heal: everyone re-validates in place (budget was reclaimed, the
        // original placement is admissible again).
        let healed = p.restore_link(p.topology().host_link(h));
        assert_eq!(healed.outcomes.len(), degraded.len());
        for (_, o) in &healed.outcomes {
            assert_eq!(*o, DegradeOutcome::Restored);
        }
        assert!(p.degraded_tenants().is_empty());
        assert!(p.failed_links().is_empty());
        assert_eq!(p.used_slots(), 24);
    }

    #[test]
    fn admission_refuses_candidates_across_a_failed_link() {
        let mut p = SiloPlacer::new(two_rack_topo());
        p.fail_link(p.topology().host_link(HostId(0)));
        // A spread tenant can still be admitted — but never on host 0.
        for _ in 0..4 {
            if let Ok(pl) = p.try_place(&small_req(2).with_fault_domains(2)) {
                assert!(pl.hosts.iter().all(|&(h, _)| h != HostId(0)), "{pl:?}");
            }
        }
        // A single-host tenant on host 0 is pure loopback: allowed.
        let single = p.try_place(&small_req(4)).unwrap();
        assert_eq!(single.hosts.len(), 1);
    }

    #[test]
    fn fault_sweeps_are_deterministic() {
        let run = || {
            let mut p = SiloPlacer::new(two_rack_topo());
            let mut placed = Vec::new();
            while let Ok(pl) = p.try_place(&small_req(2).with_fault_domains(2)) {
                placed.push(pl);
            }
            let l = p.topology().host_link(HostId(1));
            let a = p.fail_link(l);
            let b = p.restore_link(l);
            (placed, a, b)
        };
        let (p1, a1, b1) = run();
        let (p2, a2, b2) = run();
        assert_eq!(p1, p2);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn remove_handles_degraded_tenants() {
        let mut p = SiloPlacer::new(two_rack_topo());
        let mut placed = Vec::new();
        while let Ok(pl) = p.try_place(&small_req(2).with_fault_domains(2)) {
            placed.push(pl);
        }
        let h = placed[0].hosts[0].0;
        let report = p.fail_link(p.topology().host_link(h));
        let (victim, _) = report.outcomes[0].clone();
        assert!(p.is_degraded(victim));
        let before = p.used_slots();
        assert!(p.remove(victim));
        assert_eq!(p.used_slots(), before - 2);
        assert!(!p.remove(victim), "double-remove must fail");
    }
}
