//! Tenant network guarantees (paper §4.1, Fig. 4) and latency arithmetic.

use silo_base::{Bytes, Dur, Rate};

/// The `{B, S, d, Bmax}` network guarantee attached to each VM of a tenant.
///
/// * every VM can send and receive at sustained rate `b`;
/// * a VM that under-used its guarantee may burst `s` bytes at up to `bmax`;
/// * each bandwidth-compliant packet is delivered NIC-to-NIC within
///   `delay` (when `Some`; bandwidth-only tenants use `None`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Guarantee {
    pub b: Rate,
    pub s: Bytes,
    pub bmax: Rate,
    pub delay: Option<Dur>,
}

impl Guarantee {
    /// Bandwidth-only guarantee (the paper's class-B / Oktopus-style).
    pub fn bandwidth_only(b: Rate) -> Guarantee {
        Guarantee {
            b,
            s: Bytes(1500),
            bmax: b,
            delay: None,
        }
    }

    /// The paper's class-A preset (Table 3): delay-sensitive OLDI-style
    /// tenants — 0.25 Gbps, 15 KB burst, 1 ms delay, 1 Gbps burst rate.
    pub fn class_a() -> Guarantee {
        Guarantee {
            b: Rate::from_mbps(250),
            s: Bytes::from_kb(15),
            bmax: Rate::from_gbps(1),
            delay: Some(Dur::from_us(1000)),
        }
    }

    /// The paper's class-B preset (Table 3): bandwidth-sensitive tenants —
    /// 2 Gbps, 1.5 KB burst, no delay guarantee.
    pub fn class_b() -> Guarantee {
        Guarantee {
            b: Rate::from_gbps(2),
            s: Bytes(1500),
            bmax: Rate::from_gbps(2),
            delay: None,
        }
    }

    /// The message latency guarantee a tenant can derive for itself
    /// (paper §4.1, "Calculating latency guarantee"):
    ///
    /// * `M ≤ S`: the whole message rides the burst allowance —
    ///   `M/Bmax + d`;
    /// * `M > S`: the burst covers the first `S` bytes —
    ///   `S/Bmax + (M−S)/B + d`.
    ///
    /// Returns `None` for tenants without a delay guarantee (their message
    /// latency depends only on bandwidth and has no deterministic bound).
    pub fn message_latency_bound(&self, msg: Bytes) -> Option<Dur> {
        let d = self.delay?;
        if msg <= self.s {
            Some(self.bmax.tx_time(msg) + d)
        } else {
            Some(self.bmax.tx_time(self.s) + self.b.tx_time(msg - self.s) + d)
        }
    }

    /// The latency *estimate* used for bandwidth-only tenants in the
    /// paper's Fig. 14 (`message size / guaranteed bandwidth`), with the
    /// burst credited at `bmax`.
    pub fn message_latency_estimate(&self, msg: Bytes) -> Dur {
        if msg <= self.s {
            self.bmax.tx_time(msg)
        } else {
            self.bmax.tx_time(self.s) + self.b.tx_time(msg - self.s)
        }
    }
}

/// A tenant's admission request: `vms` identical VMs, each with the given
/// guarantee.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantRequest {
    pub vms: usize,
    pub guarantee: Guarantee,
    /// Fault tolerance (paper §4.2.3): spread the VMs over at least this
    /// many servers (1 = no constraint; 2 = survive one server failure).
    pub min_fault_domains: usize,
}

impl TenantRequest {
    pub fn new(vms: usize, guarantee: Guarantee) -> TenantRequest {
        assert!(vms >= 1, "a tenant needs at least one VM");
        TenantRequest {
            vms,
            guarantee,
            min_fault_domains: 1,
        }
    }

    /// Require the placement to span at least `domains` servers.
    pub fn with_fault_domains(mut self, domains: usize) -> TenantRequest {
        assert!(domains >= 1 && domains <= self.vms);
        self.min_fault_domains = domains;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_latency_bound() {
        // §4.1: message of M ≤ S delivered within M/Bmax + d.
        let g = Guarantee {
            b: Rate::from_mbps(210),
            s: Bytes(1500),
            bmax: Rate::from_gbps(1),
            delay: Some(Dur::from_ms(1)),
        };
        let bound = g.message_latency_bound(Bytes(1500)).unwrap();
        assert_eq!(bound, Dur::from_us(12) + Dur::from_ms(1));
    }

    #[test]
    fn testbed_guarantee_is_about_2ms() {
        // §6.1: "the message latency guarantee for memcached with Silo is
        // 2.01 ms" — a ~1 KB response within the 1.5 KB burst at 1 Gbps
        // plus d = 1 ms, with the request/response round trip ≈ 2.01 ms.
        let g = Guarantee {
            b: Rate::from_mbps(210),
            s: Bytes(1500),
            bmax: Rate::from_gbps(1),
            delay: Some(Dur::from_ms(1)),
        };
        let req = g.message_latency_bound(Bytes(400)).unwrap();
        let resp = g.message_latency_bound(Bytes(1024)).unwrap();
        let rtt_bound = req + resp;
        assert!((rtt_bound.as_ms_f64() - 2.01).abs() < 0.01, "{rtt_bound}");
    }

    #[test]
    fn large_message_uses_sustained_rate() {
        let g = Guarantee {
            b: Rate::from_gbps(1),
            s: Bytes::from_kb(100),
            bmax: Rate::from_gbps(10),
            delay: Some(Dur::from_us(500)),
        };
        let m = Bytes::from_mb(1);
        let bound = g.message_latency_bound(m).unwrap();
        let expect = Rate::from_gbps(10).tx_time(Bytes::from_kb(100))
            + Rate::from_gbps(1).tx_time(Bytes(900_000))
            + Dur::from_us(500);
        assert_eq!(bound, expect);
    }

    #[test]
    fn bandwidth_only_has_no_bound() {
        assert_eq!(
            Guarantee::bandwidth_only(Rate::from_gbps(2)).message_latency_bound(Bytes(1500)),
            None
        );
    }

    #[test]
    fn estimate_monotone_in_size() {
        let g = Guarantee::class_b();
        let small = g.message_latency_estimate(Bytes::from_kb(10));
        let big = g.message_latency_estimate(Bytes::from_mb(1));
        assert!(big > small);
    }
}
