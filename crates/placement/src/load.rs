//! Per-port load accumulators and the O(1) admission check (constraint C1).

use silo_base::{Bytes, Dur, Rate};
use silo_netcalc::{backlog_bound, Curve, Line, ServiceCurve};

/// Headroom factor on every sustained-rate admission check: reservations
/// may claim at most this fraction of a line's rate. A port reserved to
/// exactly 100% is only *marginally* stable — any real pacer's
/// quantization makes its queue random-walk upward — so both the NIC
/// check in `SiloPlacer::check_candidate` and the switch-port check in
/// [`PortLoad::fits`] keep 3% in reserve. Admission, `degrade`
/// re-validation, and `reserved_fraction` reporting must all use this one
/// constant: a tenant admitted at exactly the boundary has to survive a
/// `fail_link`/`restore_link` re-validation cycle unchanged.
pub const NIC_HEADROOM: f64 = 0.97;

/// One tenant's traffic contribution at one port, in curve-summary form.
/// All fields are linear in the tenant, so departures subtract exactly.
///
/// The contribution stands for the two-line curve
/// `min( burst_rate·t + mtu_bytes , rate·t + burst )`. At a tenant's
/// *first* switch hop the burst-rate line is `m·Bmax` (the pacers enforce
/// it). After any switch hop, queues can re-bunch packets up to the
/// upstream *line* rate, so `Bmax` no longer bounds arrival speed — the
/// contribution is then flagged [`Contribution::rate_unbounded`] and the
/// check falls back to the port's physical ingress capacity.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Contribution {
    /// Hose-capped sustained rate crossing the port, bytes/sec:
    /// `min(m, N−m)·B`.
    pub rate: f64,
    /// Worst-case burst crossing the port, bytes, after Kurose inflation
    /// by each upstream switch port's queue capacity.
    pub burst: f64,
    /// Rate at which the burst can arrive, bytes/sec (`m·Bmax`), valid
    /// only when `rate_unbounded` is false.
    pub burst_rate: f64,
    /// In-flight packet allowance, bytes: `m·MTU`.
    pub mtu_bytes: f64,
    /// True once the traffic has crossed a switch queue: its burst can
    /// then arrive at upstream line rate.
    pub rate_unbounded: bool,
}

impl Contribution {
    /// Contribution of a tenant cut with `m` senders out of `n` VMs and
    /// per-VM guarantee `{b, s, bmax}`, after crossing the upstream switch
    /// ports whose queue capacities are `prior` (empty at the first hop).
    ///
    /// Burst propagation follows the paper (§4.2.2): each traversed port
    /// with queue capacity `c` may re-emit everything the cut can send in
    /// an interval `c` as one burst, so the burst becomes `A(c)` of the
    /// ingress curve at that hop.
    pub fn for_cut(
        m: usize,
        n: usize,
        b: Rate,
        s: Bytes,
        bmax: Rate,
        mtu: Bytes,
        prior: &[Dur],
    ) -> Contribution {
        Contribution::for_cut_capped(m, n, b, s, bmax, mtu, prior, Rate(u64::MAX))
    }

    /// Like [`Contribution::for_cut`], additionally capping the burst
    /// arrival rate by `access_cap` — the combined line rate of the
    /// sending-side hosts' NICs, which the burst can never physically
    /// exceed (Fig. 5's "800 KB *at 20 Gbps*").
    #[allow(clippy::too_many_arguments)]
    pub fn for_cut_capped(
        m: usize,
        n: usize,
        b: Rate,
        s: Bytes,
        bmax: Rate,
        mtu: Bytes,
        prior: &[Dur],
        access_cap: Rate,
    ) -> Contribution {
        debug_assert!(m >= 1 && m < n, "cut needs senders and receivers");
        let hose = b.bytes_per_sec() * m.min(n - m) as f64;
        let burst_rate = (bmax.bytes_per_sec() * m as f64).min(access_cap.bytes_per_sec());
        let mtu_b = mtu.as_f64() * m as f64;
        let mut burst = s.as_f64() * m as f64;
        for (k, c) in prior.iter().enumerate() {
            let t = c.as_secs_f64();
            // Ingress curve at this hop: the burst-rate line only applies
            // before the first switch (k == 0).
            let by_rate_line = if k == 0 {
                burst_rate * t + mtu_b
            } else {
                f64::INFINITY
            };
            let a_c = by_rate_line.min(hose * t + burst);
            burst = a_c;
        }
        Contribution {
            rate: hose,
            burst,
            burst_rate,
            mtu_bytes: mtu_b,
            rate_unbounded: !prior.is_empty(),
        }
    }
}

/// Aggregated load at one port: linear sums over admitted tenants'
/// [`Contribution`]s.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PortLoad {
    pub rate: f64,
    pub burst: f64,
    pub burst_rate: f64,
    pub mtu_bytes: f64,
    /// Number of contributions whose burst arrival rate is bounded only by
    /// the physical ingress capacity.
    pub unbounded: u32,
}

impl PortLoad {
    pub fn add(&mut self, c: &Contribution) {
        self.rate += c.rate;
        self.burst += c.burst;
        self.burst_rate += c.burst_rate;
        self.mtu_bytes += c.mtu_bytes;
        if c.rate_unbounded {
            self.unbounded += 1;
        }
    }

    pub fn sub(&mut self, c: &Contribution) {
        self.rate -= c.rate;
        self.burst -= c.burst;
        self.burst_rate -= c.burst_rate;
        self.mtu_bytes -= c.mtu_bytes;
        if c.rate_unbounded {
            self.unbounded -= 1;
        }
        // Clamp tiny negative float residue from repeated add/sub.
        self.rate = self.rate.max(0.0);
        self.burst = self.burst.max(0.0);
        self.burst_rate = self.burst_rate.max(0.0);
        self.mtu_bytes = self.mtu_bytes.max(0.0);
    }

    /// The two-line aggregate arrival curve this load implies, with the
    /// burst rate capped by the switch's physical ingress capacity.
    pub fn curve(&self, ingress_cap: Rate) -> Curve {
        let cap = ingress_cap.bytes_per_sec();
        let r1 = if self.unbounded > 0 {
            cap
        } else {
            self.burst_rate.min(cap)
        };
        Curve::from_lines(vec![
            Line {
                rate: r1,
                burst: self.mtu_bytes,
            },
            Line {
                rate: self.rate,
                burst: self.burst.max(self.mtu_bytes),
            },
        ])
    }

    /// Worst-case buffer occupancy at a port with the given line rate and
    /// ingress capacity; `None` when the sustained rate alone oversubscribes
    /// the line (unbounded queue).
    pub fn backlog(&self, line: Rate, ingress_cap: Rate) -> Option<Bytes> {
        let svc = ServiceCurve::constant_rate(line);
        backlog_bound(&self.curve(ingress_cap), &svc).map(|b| Bytes(b.round() as u64))
    }

    /// Constraint C1: does the worst case fit the port buffer?
    ///
    /// Sustained reservations are additionally capped at
    /// [`NIC_HEADROOM`] × line rate (see the constant for why).
    pub fn fits(&self, line: Rate, ingress_cap: Rate, buffer: Bytes) -> bool {
        if self.rate > line.bytes_per_sec() * NIC_HEADROOM {
            return false;
        }
        match self.backlog(line, ingress_cap) {
            Some(b) => b <= buffer,
            None => false,
        }
    }

    /// The queue (delay) bound this load implies — proportional to the
    /// backlog for a constant-rate server.
    pub fn queue_bound(&self, line: Rate, ingress_cap: Rate) -> Option<Dur> {
        self.backlog(line, ingress_cap).map(|b| line.tx_time(b))
    }

    pub fn with(&self, c: &Contribution) -> PortLoad {
        let mut l = *self;
        l.add(c);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_a_cut(m: usize, n: usize, prior: &[Dur]) -> Contribution {
        Contribution::for_cut(
            m,
            n,
            Rate::from_mbps(250),
            Bytes::from_kb(15),
            Rate::from_gbps(1),
            Bytes(1500),
            prior,
        )
    }

    #[test]
    fn contribution_hose_cap() {
        let c = class_a_cut(6, 9, &[]);
        // min(6,3)·0.25 Gbps = 0.75 Gbps = 93.75 MB/s.
        assert!((c.rate - 0.75e9 / 8.0).abs() < 1.0);
        assert!((c.burst - 90_000.0).abs() < 1e-6);
        assert!((c.burst_rate - 6.0 * 1.25e8).abs() < 1.0);
        assert!(!c.rate_unbounded);
    }

    #[test]
    fn burst_inflation_bounded_by_hose_line() {
        let c0 = class_a_cut(4, 9, &[]);
        let c1 = class_a_cut(4, 9, &[Dur::from_us(250)]);
        // One hop of 250 us inflation: at most hose·c extra, and at most
        // what the burst-rate line allows.
        assert!(c1.burst <= c0.burst + c0.rate * 250e-6 + 1e-6);
        assert!(c1.burst <= c0.burst_rate * 250e-6 + c0.mtu_bytes + 1e-6);
        assert!(c1.rate_unbounded);
    }

    #[test]
    fn second_hop_ignores_bmax() {
        // After the first switch, the Bmax line no longer limits arrivals,
        // so the second hop inflates along the hose line.
        let one = class_a_cut(4, 9, &[Dur::from_us(250)]);
        let two = class_a_cut(4, 9, &[Dur::from_us(250), Dur::from_us(250)]);
        assert!((two.burst - (one.burst + one.rate * 250e-6)).abs() < 1e-6);
    }

    #[test]
    fn add_sub_roundtrip_is_exact_enough() {
        let mut l = PortLoad::default();
        let c1 = class_a_cut(4, 9, &[Dur::from_us(250)]);
        let c2 = class_a_cut(7, 20, &[Dur::from_us(80)]);
        l.add(&c1);
        l.add(&c2);
        l.sub(&c1);
        let mut only2 = PortLoad::default();
        only2.add(&c2);
        assert!((l.rate - only2.rate).abs() < 1e-6);
        assert!((l.burst - only2.burst).abs() < 1e-6);
        assert_eq!(l.unbounded, 1);
        l.sub(&c2);
        assert!(l.rate.abs() < 1e-6 && l.burst.abs() < 1e-6);
        assert_eq!(l.unbounded, 0);
    }

    #[test]
    fn fits_rejects_oversubscribed_rate() {
        let mut l = PortLoad::default();
        // 12 × min(4,4)·0.25 G = 12 Gbps sustained through 10 Gbps.
        for _ in 0..12 {
            l.add(&Contribution::for_cut(
                4,
                8,
                Rate::from_gbps(1),
                Bytes(1500),
                Rate::from_gbps(1),
                Bytes(1500),
                &[],
            ));
        }
        assert!(!l.fits(
            Rate::from_gbps(10),
            Rate::from_gbps(400),
            Bytes::from_kb(312)
        ));
    }

    #[test]
    fn fits_small_load() {
        let l = PortLoad::default().with(&class_a_cut(6, 9, &[]));
        assert!(l.fits(
            Rate::from_gbps(10),
            Rate::from_gbps(400),
            Bytes::from_kb(312)
        ));
    }

    #[test]
    fn ingress_cap_tightens_backlog() {
        // Fig. 5 through the PortLoad API. Tenant: 9 VMs,
        // {1 G, 100 KB, 10 G}; 6 senders cross; ingress physically capped
        // at 20 G (two server NICs).
        let c = Contribution::for_cut(
            6,
            9,
            Rate::from_gbps(1),
            Bytes::from_kb(100),
            Rate::from_gbps(10),
            Bytes(1500),
            &[],
        );
        let l = PortLoad::default().with(&c);
        let capped = l.backlog(Rate::from_gbps(10), Rate::from_gbps(20)).unwrap();
        let uncapped = l
            .backlog(Rate::from_gbps(10), Rate::from_gbps(4000))
            .unwrap();
        assert!(capped < uncapped, "{capped} < {uncapped}");
        // ~354 KB with the cap (paper's simplified arithmetic says 300 KB).
        assert!(
            capped.as_u64() > 330_000 && capped.as_u64() < 370_000,
            "{capped}"
        );
    }

    #[test]
    fn unbounded_contribution_uses_ingress_cap() {
        let c = class_a_cut(6, 9, &[Dur::from_us(250)]);
        let l = PortLoad::default().with(&c);
        // burst_rate sum says 6 Gbps, but the flag forces the cap (80 G).
        let curve = l.curve(Rate::from_gbps(80));
        assert!((curve.slope_at(0.0) - 1e10).abs() < 1.0);
    }

    #[test]
    fn queue_bound_scales_with_line_rate() {
        let l = PortLoad::default().with(&class_a_cut(6, 9, &[]));
        let q10 = l
            .queue_bound(Rate::from_gbps(10), Rate::from_gbps(400))
            .unwrap();
        let q40 = l
            .queue_bound(Rate::from_gbps(40), Rate::from_gbps(400))
            .unwrap();
        assert!(q40 < q10);
    }
}
