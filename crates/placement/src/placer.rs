//! The placement interface shared by Silo and the baseline algorithms:
//! slot bookkeeping, greedy height-minimizing candidate enumeration, and
//! the [`Placer`] trait.

use crate::guarantee::TenantRequest;
use silo_topology::{HostId, Level, Topology};

/// Opaque tenant handle returned by admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

/// A successful placement: how many VMs landed on each host, and the
/// hierarchy level the tenant spans.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    pub tenant: TenantId,
    pub hosts: Vec<(HostId, usize)>,
    pub span: Level,
}

impl Placement {
    pub fn total_vms(&self) -> usize {
        self.hosts.iter().map(|(_, k)| k).sum()
    }
}

/// Why admission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Not enough free VM slots anywhere the tenant is allowed to span.
    InsufficientSlots,
    /// The delay guarantee cannot be met even within a single rack and the
    /// tenant does not fit one server.
    DelayUnsatisfiable,
    /// No placement satisfies the network constraints (C1 for Silo,
    /// residual bandwidth for Oktopus).
    NetworkUnsatisfiable,
}

/// An admission-controlling VM placer.
pub trait Placer {
    fn topology(&self) -> &Topology;

    /// Admit and place a tenant, or reject it. A rejected request leaves
    /// the placer's state untouched.
    fn try_place(&mut self, req: &TenantRequest) -> Result<Placement, RejectReason>;

    /// Release a tenant's VMs and network reservations. Returns false if
    /// the tenant is unknown.
    fn remove(&mut self, tenant: TenantId) -> bool;

    /// Occupied VM slots (for occupancy accounting).
    fn used_slots(&self) -> usize;
}

/// Free-slot bookkeeping with per-rack/per-pod aggregates so candidate
/// subtrees without room are skipped in O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotMap {
    per_host: Vec<usize>,
    per_rack: Vec<usize>,
    per_pod: Vec<usize>,
    total_free: usize,
    total_slots: usize,
}

impl SlotMap {
    pub fn new(topo: &Topology) -> SlotMap {
        let s = topo.slots_per_server();
        let hosts = topo.num_hosts();
        let hosts_per_rack = topo.params().servers_per_rack;
        let hosts_per_pod = hosts_per_rack * topo.params().racks_per_pod;
        SlotMap {
            per_host: vec![s; hosts],
            per_rack: vec![s * hosts_per_rack; topo.num_racks()],
            per_pod: vec![s * hosts_per_pod; topo.num_pods()],
            total_free: s * hosts,
            total_slots: s * hosts,
        }
    }

    pub fn free_host(&self, h: HostId) -> usize {
        self.per_host[h.0 as usize]
    }
    pub fn free_rack(&self, rack: usize) -> usize {
        self.per_rack[rack]
    }
    pub fn free_pod(&self, pod: usize) -> usize {
        self.per_pod[pod]
    }
    pub fn total_free(&self) -> usize {
        self.total_free
    }
    pub fn used(&self) -> usize {
        self.total_slots - self.total_free
    }
    pub fn total(&self) -> usize {
        self.total_slots
    }

    pub fn alloc(&mut self, topo: &Topology, placement: &[(HostId, usize)]) {
        for &(h, k) in placement {
            assert!(self.per_host[h.0 as usize] >= k, "slot over-allocation");
            self.per_host[h.0 as usize] -= k;
            self.per_rack[topo.rack_of(h)] -= k;
            self.per_pod[topo.pod_of(h)] -= k;
            self.total_free -= k;
        }
    }

    pub fn release(&mut self, topo: &Topology, placement: &[(HostId, usize)]) {
        for &(h, k) in placement {
            self.per_host[h.0 as usize] += k;
            self.per_rack[topo.rack_of(h)] += k;
            self.per_pod[topo.pod_of(h)] += k;
            self.total_free += k;
        }
    }
}

/// Distribute `n` VMs over `hosts` (in order), at most `cap` per host and
/// never more than a host's free slots. Returns `None` if they don't fit.
pub(crate) fn distribute(
    slots: &SlotMap,
    hosts: impl Iterator<Item = HostId>,
    n: usize,
    cap: usize,
) -> Option<Vec<(HostId, usize)>> {
    let mut left = n;
    let mut out = Vec::new();
    for h in hosts {
        if left == 0 {
            break;
        }
        let k = slots.free_host(h).min(cap).min(left);
        if k > 0 {
            out.push((h, k));
            left -= k;
        }
    }
    if left == 0 {
        Some(out)
    } else {
        None
    }
}

/// Greedy height-minimizing placement (paper §4.2.3): try a single server,
/// then each rack, each pod, then the whole datacenter — never exceeding
/// `max_level`. Within a multi-server candidate, packing density is relaxed
/// from `slots_per_server` down to a balanced spread until `check` accepts
/// (spreading lowers the per-port cut sizes, cf. Fig. 5).
///
/// `check(placement, level)` validates the candidate against the placer's
/// network constraints. `min_hosts` is the fault-domain constraint: the
/// tenant must span at least that many servers (`1` disables it).
pub(crate) fn greedy_place_spread<F>(
    topo: &Topology,
    slots: &SlotMap,
    n: usize,
    max_level: Level,
    min_hosts: usize,
    check: &mut F,
) -> Option<(Vec<(HostId, usize)>, Level)>
where
    F: FnMut(&[(HostId, usize)], Level) -> bool,
{
    let spp = topo
        .slots_per_server()
        // Capping per-server density at ceil(n / min_hosts) forces the
        // distribution across at least `min_hosts` servers.
        .min(n.div_ceil(min_hosts.max(1)));

    // Level 0: one server (only without a spread requirement).
    if min_hosts <= 1 {
        for h in 0..topo.num_hosts() {
            let h = HostId(h as u32);
            if slots.free_host(h) >= n {
                let cand = vec![(h, n)];
                if check(&cand, Level::SameHost) {
                    return Some((cand, Level::SameHost));
                }
            }
        }
    }

    // Level 1: one rack.
    if max_level >= Level::SameRack {
        for rack in 0..topo.num_racks() {
            if slots.free_rack(rack) < n {
                continue;
            }
            for cap in (1..=spp).rev() {
                if let Some(cand) = distribute(slots, topo.hosts_in_rack(rack), n, cap) {
                    if check(&cand, Level::SameRack) {
                        return Some((cand, Level::SameRack));
                    }
                } else {
                    break; // lower caps fit even less
                }
            }
        }
    }

    // Level 2: one pod.
    if max_level >= Level::SamePod {
        for pod in 0..topo.num_pods() {
            if slots.free_pod(pod) < n {
                continue;
            }
            for cap in (1..=spp).rev() {
                let hosts = topo.racks_in_pod(pod).flat_map(|r| topo.hosts_in_rack(r));
                if let Some(cand) = distribute(slots, hosts, n, cap) {
                    if check(&cand, Level::SamePod) {
                        return Some((cand, Level::SamePod));
                    }
                } else {
                    break;
                }
            }
        }
    }

    // Level 3: anywhere.
    if max_level >= Level::CrossPod && slots.total_free() >= n {
        for cap in (1..=spp).rev() {
            let hosts = (0..topo.num_hosts()).map(|h| HostId(h as u32));
            if let Some(cand) = distribute(slots, hosts, n, cap) {
                if check(&cand, Level::CrossPod) {
                    return Some((cand, Level::CrossPod));
                }
            } else {
                break;
            }
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_topology::TreeParams;

    fn topo() -> Topology {
        Topology::build(TreeParams {
            pods: 2,
            racks_per_pod: 2,
            servers_per_rack: 3,
            vm_slots_per_server: 4,
            ..TreeParams::ns2_paper()
        })
    }

    #[test]
    fn slotmap_accounting() {
        let t = topo();
        let mut s = SlotMap::new(&t);
        assert_eq!(s.total_free(), 48);
        s.alloc(&t, &[(HostId(0), 3), (HostId(3), 2)]);
        assert_eq!(s.free_host(HostId(0)), 1);
        assert_eq!(s.free_rack(0), 9);
        assert_eq!(s.free_rack(1), 10);
        assert_eq!(s.free_pod(0), 19);
        assert_eq!(s.used(), 5);
        s.release(&t, &[(HostId(0), 3), (HostId(3), 2)]);
        assert_eq!(s.total_free(), 48);
    }

    #[test]
    fn distribute_respects_cap_and_free() {
        let t = topo();
        let mut s = SlotMap::new(&t);
        s.alloc(&t, &[(HostId(0), 4)]); // host 0 full
        let d = distribute(&s, t.hosts_in_rack(0), 6, 3).unwrap();
        assert_eq!(d, vec![(HostId(1), 3), (HostId(2), 3)]);
        assert_eq!(distribute(&s, t.hosts_in_rack(0), 9, 4), None);
    }

    #[test]
    fn greedy_prefers_single_server() {
        let t = topo();
        let s = SlotMap::new(&t);
        let (cand, lvl) =
            greedy_place_spread(&t, &s, 3, Level::CrossPod, 1, &mut |_, _| true).unwrap();
        assert_eq!(lvl, Level::SameHost);
        assert_eq!(cand, vec![(HostId(0), 3)]);
    }

    #[test]
    fn greedy_escalates_to_rack() {
        let t = topo();
        let s = SlotMap::new(&t);
        let (cand, lvl) =
            greedy_place_spread(&t, &s, 10, Level::CrossPod, 1, &mut |_, _| true).unwrap();
        assert_eq!(lvl, Level::SameRack);
        assert_eq!(cand.iter().map(|(_, k)| k).sum::<usize>(), 10);
    }

    #[test]
    fn greedy_respects_max_level() {
        let t = topo();
        let s = SlotMap::new(&t);
        // 13 VMs don't fit a rack (12 slots); capped at rack level -> None.
        assert!(greedy_place_spread(&t, &s, 13, Level::SameRack, 1, &mut |_, _| true).is_none());
        assert!(greedy_place_spread(&t, &s, 13, Level::SamePod, 1, &mut |_, _| true).is_some());
    }

    #[test]
    fn greedy_relaxes_packing_when_check_fails_dense() {
        let t = topo();
        let s = SlotMap::new(&t);
        // Reject any placement that puts more than 2 VMs on one host.
        let (cand, lvl) = greedy_place_spread(&t, &s, 6, Level::CrossPod, 1, &mut |cand, _| {
            cand.iter().all(|&(_, k)| k <= 2)
        })
        .unwrap();
        assert_eq!(lvl, Level::SameRack);
        assert!(cand.iter().all(|&(_, k)| k <= 2));
    }

    #[test]
    fn fault_domains_force_spreading() {
        let t = topo();
        let s = SlotMap::new(&t);
        // 4 VMs, at least 2 servers: never a single-server placement.
        let (cand, lvl) =
            greedy_place_spread(&t, &s, 4, Level::CrossPod, 2, &mut |_, _| true).unwrap();
        assert!(cand.len() >= 2, "{cand:?}");
        assert_eq!(lvl, Level::SameRack);
        assert!(cand.iter().all(|&(_, k)| k <= 2));
        // min_hosts = n means one VM per server.
        let (cand, _) =
            greedy_place_spread(&t, &s, 3, Level::CrossPod, 3, &mut |_, _| true).unwrap();
        assert_eq!(cand.len(), 3);
        assert!(cand.iter().all(|&(_, k)| k == 1));
    }

    #[test]
    fn fault_domains_via_tenant_request() {
        use crate::guarantee::{Guarantee, TenantRequest};
        use crate::silo::SiloPlacer;
        use crate::Placer;
        let t = topo();
        let mut p = SiloPlacer::new(t);
        let req = TenantRequest::new(4, Guarantee::class_a()).with_fault_domains(2);
        let placed = p.try_place(&req).unwrap();
        assert!(placed.hosts.len() >= 2, "{:?}", placed.hosts);
    }

    #[test]
    fn greedy_rejects_when_no_slots() {
        let t = topo();
        let mut s = SlotMap::new(&t);
        let all: Vec<_> = (0..t.num_hosts()).map(|h| (HostId(h as u32), 4)).collect();
        s.alloc(&t, &all);
        assert!(greedy_place_spread(&t, &s, 1, Level::CrossPod, 1, &mut |_, _| true).is_none());
    }
}
