//! The long-running admission-control service (ROADMAP item 3).
//!
//! Production Silo is a cluster manager that admits and evicts tenants
//! *continuously*; the sweep harness instead calls `SiloPlacer` in one
//! batch at setup. [`AdmissionService`] closes that gap: it owns a
//! [`SiloPlacer`] and processes a stream of [`ChurnEvent`]s — tenant
//! arrivals, departures, link failures and repairs — exactly the way the
//! batch path would, but with all derived state (per-port netcalc
//! aggregates, backlog-bound memos, the dead-host slot mask) updated
//! incrementally on each event instead of recomputed.
//!
//! Incremental must mean *identical*, not approximately equal: every
//! aggregate the placer holds is defined as a left fold over live
//! tenants in id order (see `SiloPlacer::add_contribs`), so a service
//! that processed a million admit/evict events holds bit-for-bit the
//! state of a fresh placer replaying the surviving prefix. The
//! differential suite (`tests/service_differential.rs`) and
//! `SiloPlacer::verify_scratch_consistency` enforce this at probe points;
//! [`AdmissionService::snapshot`] / [`AdmissionService::restore`] round
//! the same guarantee through a byte-exact serial form (floats travel as
//! IEEE-754 bit patterns, never decimal).

use crate::degrade::DegradedRecord;
use crate::guarantee::{Guarantee, TenantRequest};
use crate::placer::{Placer, RejectReason, TenantId};
use crate::silo::{SiloPlacer, TenantRecord};
use crate::FaultReport;
use silo_base::{Bytes, Dur, Rate};
use silo_topology::{HostId, Level, LinkId, Topology, TreeParams};
use std::collections::BTreeMap;

/// One event of a tenant-churn stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEvent {
    /// A tenant arrives and requests admission.
    Admit(TenantRequest),
    /// The tenant admitted by the `n`-th `Admit` event of the stream
    /// departs. Referencing the admit *event* rather than a `TenantId`
    /// lets generators emit departures without knowing admission
    /// outcomes; evicting a rejected or already-departed admission is a
    /// recorded no-op.
    Evict(u32),
    /// A link fails (`placement::degrade` reclaim-then-readmit sweep).
    FailLink(LinkId),
    /// A failed link heals (revalidate-in-place, then re-place).
    RestoreLink(LinkId),
}

/// What the service did with one event.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    Admitted {
        tenant: TenantId,
        hosts: Vec<(HostId, usize)>,
        span: Level,
    },
    Rejected {
        reason: RejectReason,
    },
    Evicted {
        tenant: TenantId,
    },
    /// The eviction referenced a rejected or already-departed admission.
    EvictNoop,
    Fault {
        report: FaultReport,
    },
    Heal {
        report: FaultReport,
    },
}

/// Running totals over every event the service has processed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    pub admitted: u64,
    pub rejected: u64,
    pub evicted: u64,
    pub evict_noops: u64,
    pub faults: u64,
    pub heals: u64,
}

/// A `SiloPlacer` driven as a long-running service: applies churn events
/// one at a time, maps admit-event indices to live tenant ids, and
/// snapshots/restores its full state byte-exactly.
pub struct AdmissionService {
    placer: SiloPlacer,
    /// Tenant admitted by the n-th `Admit` event, cleared on departure.
    by_admit: Vec<Option<TenantId>>,
    stats: ServiceStats,
}

impl AdmissionService {
    pub fn new(topo: Topology) -> AdmissionService {
        AdmissionService {
            placer: SiloPlacer::new(topo),
            by_admit: Vec::new(),
            stats: ServiceStats::default(),
        }
    }

    pub fn placer(&self) -> &SiloPlacer {
        &self.placer
    }

    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Live (guaranteed) tenants currently placed.
    pub fn live_tenants(&self) -> usize {
        self.placer.num_tenants()
    }

    /// Process one event and report what happened.
    pub fn apply(&mut self, ev: &ChurnEvent) -> Decision {
        match *ev {
            ChurnEvent::Admit(req) => match self.placer.try_place(&req) {
                Ok(p) => {
                    self.by_admit.push(Some(p.tenant));
                    self.stats.admitted += 1;
                    Decision::Admitted {
                        tenant: p.tenant,
                        hosts: p.hosts,
                        span: p.span,
                    }
                }
                Err(reason) => {
                    self.by_admit.push(None);
                    self.stats.rejected += 1;
                    Decision::Rejected { reason }
                }
            },
            ChurnEvent::Evict(idx) => {
                match self.by_admit.get(idx as usize).copied().flatten() {
                    Some(tenant) => {
                        self.by_admit[idx as usize] = None;
                        // The tenant may be live or degraded; remove
                        // handles both.
                        assert!(self.placer.remove(tenant), "indexed tenant must exist");
                        self.stats.evicted += 1;
                        Decision::Evicted { tenant }
                    }
                    None => {
                        self.stats.evict_noops += 1;
                        Decision::EvictNoop
                    }
                }
            }
            ChurnEvent::FailLink(l) => {
                self.stats.faults += 1;
                Decision::Fault {
                    report: self.placer.fail_link(l),
                }
            }
            ChurnEvent::RestoreLink(l) => {
                self.stats.heals += 1;
                Decision::Heal {
                    report: self.placer.restore_link(l),
                }
            }
        }
    }

    /// Serialize the full service state — topology parameters, tenants
    /// with their placements and port contributions, degraded records,
    /// the failed-link set, the admit-index map, and counters — into a
    /// deterministic text form. Floats are emitted as IEEE-754 bit
    /// patterns, so `restore(snapshot(s)).snapshot() == snapshot(s)`
    /// byte-for-byte, and the restored placer's derived state (loads,
    /// slots, caps, locality, mask) is bit-identical to the original's.
    pub fn snapshot(&self) -> String {
        let p = &self.placer;
        let tp = p.topo.params();
        let mut out = String::with_capacity(4096);
        out.push_str("silo-admission-snapshot-v1\n");
        out.push_str(&format!(
            "topo {} {} {} {} {} {} {} {} {} {}\n",
            tp.pods,
            tp.racks_per_pod,
            tp.servers_per_rack,
            tp.vm_slots_per_server,
            tp.host_link.0,
            f64_hex(tp.tor_oversub),
            f64_hex(tp.agg_oversub),
            tp.switch_buffer.0,
            tp.nic_buffer.0,
            tp.prop_delay.as_ps(),
        ));
        out.push_str(&format!("mtu {}\n", p.mtu.0));
        out.push_str(&format!("next-id {}\n", p.next_id));
        out.push_str(&format!("failed {}", p.failed.len()));
        for l in &p.failed {
            out.push_str(&format!(" {}", l.0));
        }
        out.push('\n');
        let s = &self.stats;
        out.push_str(&format!(
            "stats {} {} {} {} {} {}\n",
            s.admitted, s.rejected, s.evicted, s.evict_noops, s.faults, s.heals
        ));
        let live = self.by_admit.iter().flatten().count();
        out.push_str(&format!("admits {} {}\n", self.by_admit.len(), live));
        for (i, t) in self.by_admit.iter().enumerate() {
            if let Some(t) = t {
                out.push_str(&format!("admit {} {}\n", i, t.0));
            }
        }
        out.push_str(&format!("tenants {}\n", p.tenants.len()));
        for (id, rec) in &p.tenants {
            out.push_str(&format!(
                "tenant {} {} {} {}\n",
                id.0,
                level_code(rec.level),
                rec.hosts.len(),
                rec.contribs.len()
            ));
            push_request(&mut out, &rec.req);
            for &(h, k) in &rec.hosts {
                out.push_str(&format!("host {} {}\n", h.0, k));
            }
            for &(port, c) in &rec.contribs {
                out.push_str(&format!(
                    "contrib {} {} {} {} {} {}\n",
                    port.0,
                    f64_hex(c.rate),
                    f64_hex(c.burst),
                    f64_hex(c.burst_rate),
                    f64_hex(c.mtu_bytes),
                    u8::from(c.rate_unbounded)
                ));
            }
        }
        out.push_str(&format!("degraded {}\n", p.degraded.len()));
        for (id, rec) in &p.degraded {
            out.push_str(&format!(
                "victim {} {} {} {}\n",
                id.0,
                level_code(rec.level),
                reason_code(rec.reason),
                rec.hosts.len()
            ));
            push_request(&mut out, &rec.req);
            for &(h, k) in &rec.hosts {
                out.push_str(&format!("host {} {}\n", h.0, k));
            }
        }
        out.push_str("end\n");
        out
    }

    /// Rebuild a service from [`AdmissionService::snapshot`] output.
    pub fn restore(s: &str) -> Result<AdmissionService, String> {
        let mut cur = Cursor::new(s);
        cur.keyword("silo-admission-snapshot-v1")?;
        cur.keyword("topo")?;
        let params = TreeParams {
            pods: cur.num::<usize>()?,
            racks_per_pod: cur.num::<usize>()?,
            servers_per_rack: cur.num::<usize>()?,
            vm_slots_per_server: cur.num::<usize>()?,
            host_link: Rate(cur.num::<u64>()?),
            tor_oversub: cur.f64_bits()?,
            agg_oversub: cur.f64_bits()?,
            switch_buffer: Bytes(cur.num::<u64>()?),
            nic_buffer: Bytes(cur.num::<u64>()?),
            prop_delay: Dur::from_ps(cur.num::<u64>()?),
        };
        cur.keyword("mtu")?;
        let mtu = Bytes(cur.num::<u64>()?);
        cur.keyword("next-id")?;
        let next_id = cur.num::<u64>()?;
        cur.keyword("failed")?;
        let nfailed = cur.num::<usize>()?;
        let mut failed = Vec::with_capacity(nfailed);
        for _ in 0..nfailed {
            failed.push(LinkId(cur.num::<u32>()?));
        }
        cur.keyword("stats")?;
        let stats = ServiceStats {
            admitted: cur.num::<u64>()?,
            rejected: cur.num::<u64>()?,
            evicted: cur.num::<u64>()?,
            evict_noops: cur.num::<u64>()?,
            faults: cur.num::<u64>()?,
            heals: cur.num::<u64>()?,
        };
        cur.keyword("admits")?;
        let nadmits = cur.num::<usize>()?;
        let nlive = cur.num::<usize>()?;
        let mut by_admit: Vec<Option<TenantId>> = vec![None; nadmits];
        for _ in 0..nlive {
            cur.keyword("admit")?;
            let i = cur.num::<usize>()?;
            let t = TenantId(cur.num::<u64>()?);
            *by_admit
                .get_mut(i)
                .ok_or_else(|| format!("admit index {i} out of range"))? = Some(t);
        }
        cur.keyword("tenants")?;
        let ntenants = cur.num::<usize>()?;
        let mut tenants = BTreeMap::new();
        for _ in 0..ntenants {
            cur.keyword("tenant")?;
            let id = TenantId(cur.num::<u64>()?);
            let level = level_from(cur.num::<u64>()?)?;
            let nhosts = cur.num::<usize>()?;
            let ncontribs = cur.num::<usize>()?;
            let req = parse_request(&mut cur)?;
            let mut hosts = Vec::with_capacity(nhosts);
            for _ in 0..nhosts {
                cur.keyword("host")?;
                hosts.push((HostId(cur.num::<u32>()?), cur.num::<usize>()?));
            }
            let mut contribs = Vec::with_capacity(ncontribs);
            for _ in 0..ncontribs {
                cur.keyword("contrib")?;
                let port = silo_topology::PortId(cur.num::<u32>()?);
                contribs.push((
                    port,
                    crate::load::Contribution {
                        rate: cur.f64_bits()?,
                        burst: cur.f64_bits()?,
                        burst_rate: cur.f64_bits()?,
                        mtu_bytes: cur.f64_bits()?,
                        rate_unbounded: cur.num::<u64>()? != 0,
                    },
                ));
            }
            tenants.insert(
                id,
                TenantRecord {
                    hosts,
                    contribs,
                    req,
                    level,
                },
            );
        }
        cur.keyword("degraded")?;
        let ndegraded = cur.num::<usize>()?;
        let mut degraded = BTreeMap::new();
        for _ in 0..ndegraded {
            cur.keyword("victim")?;
            let id = TenantId(cur.num::<u64>()?);
            let level = level_from(cur.num::<u64>()?)?;
            let reason = reason_from(cur.num::<u64>()?)?;
            let nhosts = cur.num::<usize>()?;
            let req = parse_request(&mut cur)?;
            let mut hosts = Vec::with_capacity(nhosts);
            for _ in 0..nhosts {
                cur.keyword("host")?;
                hosts.push((HostId(cur.num::<u32>()?), cur.num::<usize>()?));
            }
            degraded.insert(
                id,
                DegradedRecord {
                    hosts,
                    req,
                    level,
                    reason,
                },
            );
        }
        cur.keyword("end")?;
        let topo = Topology::build(params);
        let placer = SiloPlacer::from_parts(topo, mtu, next_id, failed, tenants, degraded);
        Ok(AdmissionService {
            placer,
            by_admit,
            stats,
        })
    }
}

fn push_request(out: &mut String, req: &TenantRequest) {
    let g = &req.guarantee;
    let delay = match g.delay {
        Some(d) => d.as_ps().to_string(),
        None => "-".to_string(),
    };
    out.push_str(&format!(
        "req {} {} {} {} {} {}\n",
        req.vms, req.min_fault_domains, g.b.0, g.s.0, g.bmax.0, delay
    ));
}

fn parse_request(cur: &mut Cursor<'_>) -> Result<TenantRequest, String> {
    cur.keyword("req")?;
    let vms = cur.num::<usize>()?;
    let min_fault_domains = cur.num::<usize>()?;
    let b = Rate(cur.num::<u64>()?);
    let s = Bytes(cur.num::<u64>()?);
    let bmax = Rate(cur.num::<u64>()?);
    let delay = match cur.token()? {
        "-" => None,
        t => Some(Dur::from_ps(
            t.parse::<u64>()
                .map_err(|e| format!("bad delay {t:?}: {e}"))?,
        )),
    };
    Ok(TenantRequest {
        vms,
        guarantee: Guarantee { b, s, bmax, delay },
        min_fault_domains,
    })
}

fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn level_code(l: Level) -> u8 {
    match l {
        Level::SameHost => 0,
        Level::SameRack => 1,
        Level::SamePod => 2,
        Level::CrossPod => 3,
    }
}

fn level_from(c: u64) -> Result<Level, String> {
    Ok(match c {
        0 => Level::SameHost,
        1 => Level::SameRack,
        2 => Level::SamePod,
        3 => Level::CrossPod,
        _ => return Err(format!("bad level code {c}")),
    })
}

fn reason_code(r: RejectReason) -> u8 {
    match r {
        RejectReason::InsufficientSlots => 0,
        RejectReason::DelayUnsatisfiable => 1,
        RejectReason::NetworkUnsatisfiable => 2,
    }
}

fn reason_from(c: u64) -> Result<RejectReason, String> {
    Ok(match c {
        0 => RejectReason::InsufficientSlots,
        1 => RejectReason::DelayUnsatisfiable,
        2 => RejectReason::NetworkUnsatisfiable,
        _ => return Err(format!("bad reject-reason code {c}")),
    })
}

/// Whitespace-token cursor over a snapshot string.
struct Cursor<'a> {
    tokens: std::str::SplitWhitespace<'a>,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Cursor<'a> {
        Cursor {
            tokens: s.split_whitespace(),
        }
    }

    fn token(&mut self) -> Result<&'a str, String> {
        self.tokens
            .next()
            .ok_or_else(|| "unexpected end of snapshot".to_string())
    }

    fn keyword(&mut self, kw: &str) -> Result<(), String> {
        let t = self.token()?;
        if t == kw {
            Ok(())
        } else {
            Err(format!("expected {kw:?}, found {t:?}"))
        }
    }

    fn num<T: std::str::FromStr>(&mut self) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let t = self.token()?;
        t.parse::<T>().map_err(|e| format!("bad number {t:?}: {e}"))
    }

    fn f64_bits(&mut self) -> Result<f64, String> {
        let t = self.token()?;
        u64::from_str_radix(t, 16)
            .map(f64::from_bits)
            .map_err(|e| format!("bad f64 bits {t:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_base::{Bytes, Dur, Rate};

    fn topo() -> Topology {
        Topology::build(TreeParams {
            pods: 1,
            racks_per_pod: 2,
            servers_per_rack: 3,
            vm_slots_per_server: 4,
            host_link: Rate::from_gbps(10),
            tor_oversub: 1.0,
            agg_oversub: 1.0,
            switch_buffer: Bytes::from_kb(360),
            nic_buffer: Bytes::from_kb(64),
            prop_delay: Dur::from_ns(500),
        })
    }

    fn req(vms: usize) -> TenantRequest {
        TenantRequest::new(vms, Guarantee::class_a())
    }

    #[test]
    fn admit_evict_round_trip() {
        let mut svc = AdmissionService::new(topo());
        let d0 = svc.apply(&ChurnEvent::Admit(req(2)));
        assert!(matches!(d0, Decision::Admitted { .. }));
        let d1 = svc.apply(&ChurnEvent::Evict(0));
        assert!(matches!(d1, Decision::Evicted { .. }));
        assert_eq!(svc.apply(&ChurnEvent::Evict(0)), Decision::EvictNoop);
        assert_eq!(svc.apply(&ChurnEvent::Evict(7)), Decision::EvictNoop);
        assert_eq!(svc.stats().admitted, 1);
        assert_eq!(svc.stats().evicted, 1);
        assert_eq!(svc.stats().evict_noops, 2);
        assert_eq!(svc.live_tenants(), 0);
        svc.placer().verify_scratch_consistency().unwrap();
    }

    #[test]
    fn snapshot_restores_byte_exactly() {
        let mut svc = AdmissionService::new(topo());
        for i in 0..10 {
            svc.apply(&ChurnEvent::Admit(
                req(1 + i % 4).with_fault_domains(1 + i % 2),
            ));
        }
        svc.apply(&ChurnEvent::Evict(3));
        let link = svc.placer().topology().host_link(HostId(0));
        svc.apply(&ChurnEvent::FailLink(link));
        let snap = svc.snapshot();
        let restored = AdmissionService::restore(&snap).expect("snapshot parses");
        assert_eq!(restored.snapshot(), snap, "round-trip must be byte-exact");
        restored.placer().verify_scratch_consistency().unwrap();
        // Derived state bit-identical: bounds and loads agree everywhere.
        assert_eq!(
            restored.placer().backlog_bounds(),
            svc.placer().backlog_bounds()
        );
        assert_eq!(
            restored.placer().failed_links(),
            svc.placer().failed_links()
        );
        assert_eq!(restored.stats(), svc.stats());
    }

    #[test]
    fn restored_service_continues_identically() {
        let mut a = AdmissionService::new(topo());
        for i in 0..8 {
            a.apply(&ChurnEvent::Admit(req(1 + i % 3)));
        }
        a.apply(&ChurnEvent::Evict(2));
        let mut b = AdmissionService::restore(&a.snapshot()).unwrap();
        let link = a.placer().topology().host_link(HostId(1));
        let tail = [
            ChurnEvent::FailLink(link),
            ChurnEvent::Admit(req(2).with_fault_domains(2)),
            ChurnEvent::RestoreLink(link),
            ChurnEvent::Evict(0),
            ChurnEvent::Admit(req(4)),
        ];
        for ev in &tail {
            assert_eq!(a.apply(ev), b.apply(ev), "divergence on {ev:?}");
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(AdmissionService::restore("").is_err());
        assert!(AdmissionService::restore("silo-admission-snapshot-v2\n").is_err());
        let mut svc = AdmissionService::new(topo());
        svc.apply(&ChurnEvent::Admit(req(2)));
        let snap = svc.snapshot();
        let truncated = &snap[..snap.len() - 10];
        assert!(AdmissionService::restore(truncated).is_err());
    }
}
