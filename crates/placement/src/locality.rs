//! The locality-aware baseline: network-oblivious greedy packing.
//!
//! This is the paper's "Locality" strawman (§6.2–6.3): place each tenant's
//! VMs as close together as possible, checking nothing but slot
//! availability. It accepts everything that fits slot-wise — and §6.3 shows
//! how that backfires at high occupancy, when bandwidth-starved outlier
//! tenants drag the whole cloud's throughput down.

use crate::guarantee::TenantRequest;
use crate::placer::{greedy_place_spread, Placement, Placer, RejectReason, SlotMap, TenantId};
use silo_topology::{HostId, Level, Topology};
use std::collections::HashMap;

/// Greedy smallest-subtree packing with no network admission at all.
pub struct LocalityPlacer {
    topo: Topology,
    slots: SlotMap,
    tenants: HashMap<TenantId, Vec<(HostId, usize)>>,
    next_id: u64,
}

impl LocalityPlacer {
    pub fn new(topo: Topology) -> LocalityPlacer {
        let slots = SlotMap::new(&topo);
        LocalityPlacer {
            topo,
            slots,
            tenants: HashMap::new(),
            next_id: 0,
        }
    }

    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }
}

impl Placer for LocalityPlacer {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn try_place(&mut self, req: &TenantRequest) -> Result<Placement, RejectReason> {
        let found = greedy_place_spread(
            &self.topo,
            &self.slots,
            req.vms,
            Level::CrossPod,
            req.min_fault_domains,
            &mut |_, _| true,
        );
        let Some((cand, level)) = found else {
            return Err(RejectReason::InsufficientSlots);
        };
        self.slots.alloc(&self.topo, &cand);
        let id = TenantId(self.next_id);
        self.next_id += 1;
        self.tenants.insert(id, cand.clone());
        Ok(Placement {
            tenant: id,
            hosts: cand,
            span: level,
        })
    }

    fn remove(&mut self, tenant: TenantId) -> bool {
        let Some(hosts) = self.tenants.remove(&tenant) else {
            return false;
        };
        self.slots.release(&self.topo, &hosts);
        true
    }

    fn used_slots(&self) -> usize {
        self.slots.used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guarantee::Guarantee;
    use silo_base::Rate;
    use silo_topology::TreeParams;

    #[test]
    fn accepts_anything_with_slots() {
        let topo = Topology::build(TreeParams {
            pods: 1,
            racks_per_pod: 2,
            servers_per_rack: 2,
            vm_slots_per_server: 4,
            ..TreeParams::ns2_paper()
        });
        let mut p = LocalityPlacer::new(topo);
        // Absurd bandwidth demand: locality doesn't care.
        let req = TenantRequest::new(8, Guarantee::bandwidth_only(Rate::from_gbps(100)));
        assert!(p.try_place(&req).is_ok());
        assert!(p.try_place(&req).is_ok());
        // 16 slots exhausted.
        assert_eq!(
            p.try_place(&TenantRequest::new(1, Guarantee::class_b())),
            Err(RejectReason::InsufficientSlots)
        );
        assert_eq!(p.used_slots(), 16);
    }

    #[test]
    fn packs_densely() {
        let topo = Topology::build(TreeParams {
            pods: 2,
            racks_per_pod: 2,
            servers_per_rack: 2,
            vm_slots_per_server: 4,
            ..TreeParams::ns2_paper()
        });
        let mut p = LocalityPlacer::new(topo);
        let placed = p
            .try_place(&TenantRequest::new(8, Guarantee::class_b()))
            .unwrap();
        // 8 VMs over 2 servers = one rack.
        assert_eq!(placed.span, Level::SameRack);
        assert_eq!(placed.hosts.len(), 2);
        // Next tenant starts in the next rack.
        let placed2 = p
            .try_place(&TenantRequest::new(4, Guarantee::class_b()))
            .unwrap();
        assert_eq!(placed2.hosts, vec![(HostId(2), 4)]);
    }
}
