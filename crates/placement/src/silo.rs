//! Silo's admission control and VM placement manager (paper §4.2.3).

use crate::guarantee::TenantRequest;
use crate::load::{Contribution, PortLoad, NIC_HEADROOM};
use crate::placer::{greedy_place_spread, Placement, Placer, RejectReason, SlotMap, TenantId};
use silo_base::{Bytes, Dur};
use silo_netcalc::BoundCache;
use silo_topology::{HostId, Level, LinkId, PortId, Topology};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Classification of a directed port by tier and direction, used to find
/// the upstream queues that inflate a burst before it arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortKind {
    NicUp,
    HostDown,
    TorUp,
    TorDown,
    AggUp,
    AggDown,
}

/// Queue capacities of one representative port per tier (all racks/pods are
/// symmetric), precomputed once.
#[derive(Debug, Clone, Copy)]
struct TierCaps {
    nic: Dur,
    host_down: Dur,
    tor_up: Dur,
    tor_down: Dur,
    agg_up: Dur,
    agg_down: Dur,
}

impl TierCaps {
    fn compute(topo: &Topology) -> TierCaps {
        let cap = |p: PortId| topo.port(p).queue_capacity();
        let h0 = HostId(0);
        TierCaps {
            nic: cap(PortId::up(topo.host_link(h0))),
            host_down: cap(PortId::down(topo.host_link(h0))),
            tor_up: cap(PortId::up(topo.tor_link(0))),
            tor_down: cap(PortId::down(topo.tor_link(0))),
            agg_up: cap(PortId::up(topo.agg_link(0))),
            agg_down: cap(PortId::down(topo.agg_link(0))),
        }
    }

    /// Constraint C2's path budget: the sum of queue capacities a packet
    /// can see NIC-to-NIC for a tenant spanning `level`.
    fn delay_budget(&self, level: Level) -> Dur {
        match level {
            Level::SameHost => Dur::ZERO,
            Level::SameRack => self.nic + self.host_down,
            Level::SamePod => self.nic + self.tor_up + self.tor_down + self.host_down,
            Level::CrossPod => {
                self.nic
                    + self.tor_up
                    + self.agg_up
                    + self.agg_down
                    + self.tor_down
                    + self.host_down
            }
        }
    }

    /// Queue capacities of the switch ports a packet traverses *before*
    /// reaching a port of the given kind, on the worst-case path of a
    /// tenant spanning `level`. The NIC never appears: pacer output is
    /// conformant by construction.
    fn prior_caps(&self, level: Level, kind: PortKind) -> Vec<Dur> {
        match kind {
            PortKind::NicUp | PortKind::TorUp => vec![],
            PortKind::AggUp => vec![self.tor_up],
            PortKind::AggDown => vec![self.tor_up, self.agg_up],
            PortKind::TorDown => match level {
                Level::CrossPod => vec![self.tor_up, self.agg_up, self.agg_down],
                _ => vec![self.tor_up],
            },
            PortKind::HostDown => match level {
                Level::SameHost | Level::SameRack => vec![],
                Level::SamePod => vec![self.tor_up, self.tor_down],
                Level::CrossPod => {
                    vec![self.tor_up, self.agg_up, self.agg_down, self.tor_down]
                }
            },
        }
    }
}

pub(crate) struct TenantRecord {
    pub(crate) hosts: Vec<(HostId, usize)>,
    pub(crate) contribs: Vec<(PortId, Contribution)>,
    /// The original admission request, kept so a failure can re-validate
    /// or re-place the tenant (see the `degrade` module).
    pub(crate) req: TenantRequest,
    /// Admitted span level (fixes the C2 path budget used at admission).
    pub(crate) level: Level,
}

/// Silo's placement manager. Admission enforces:
///
/// * **C2** via the span level: a delay guarantee `d` restricts the tenant
///   to the largest level whose static path budget fits `d`;
/// * **C1** at every switch port between the tenant's VMs, against the
///   aggregate of all admitted tenants (plus the candidate);
/// * the sustained hose rate at every port, including host NICs.
pub struct SiloPlacer {
    pub(crate) topo: Topology,
    pub(crate) slots: SlotMap,
    /// Aggregate load per port. Invariant: `loads[p]` is always the
    /// *left fold*, in index order, of `port_index[p]` — every mutation
    /// either appends (and folds one more contribution in) or rebuilds
    /// the fold from scratch, so the accumulated value is bit-identical
    /// to a from-scratch recomputation at all times (the admit→evict
    /// exactness the service differential suite asserts).
    pub(crate) loads: Vec<PortLoad>,
    /// Per-port contribution index: `(tenant, contribution)` entries kept
    /// sorted by tenant id. Ids are monotone (`next_id`), so ordinary
    /// admissions append in O(1); only removals and out-of-order inserts
    /// (fault readmits reusing an old id) rebuild the fold.
    pub(crate) port_index: Vec<Vec<(TenantId, Contribution)>>,
    /// Monotone per-port change counters keying `bound_cache`.
    load_version: Vec<u64>,
    /// Version-keyed memo of rounded backlog bounds: `backlog_bound`
    /// recomputes a port's netcalc curve only when the port's load has
    /// changed since the last query.
    bound_cache: RefCell<BoundCache>,
    /// Admitted tenants with live guarantees. `BTreeMap` so every sweep
    /// over tenants (failure handling in particular) is in deterministic
    /// id order.
    pub(crate) tenants: BTreeMap<TenantId, TenantRecord>,
    /// Tenants downgraded to best-effort by a failure: they keep their VM
    /// slots but hold no network reservations (see `degrade`).
    pub(crate) degraded: BTreeMap<TenantId, crate::degrade::DegradedRecord>,
    /// Links currently failed (`degrade::fail_link`), sorted; admission
    /// refuses candidates whose VM pairs would cross any of them.
    pub(crate) failed: Vec<LinkId>,
    /// Slot view with dead hosts' free slots masked out, maintained in
    /// lockstep with `slots` while any access link is failed (`None`
    /// otherwise). Rebuilt only by `fail_link`/`restore_link`.
    masked: Option<SlotMap>,
    /// Times `masked` was rebuilt from scratch (regression counter: must
    /// track fault events, never admissions).
    mask_rebuilds: u64,
    pub(crate) next_id: u64,
    pub(crate) mtu: Bytes,
    caps: TierCaps,
}

/// The left fold of a port's contribution list from the zero load — the
/// canonical "from scratch" aggregate `loads[p]` must always bit-equal.
fn fold_load(list: &[(TenantId, Contribution)]) -> PortLoad {
    let mut l = PortLoad::default();
    for (_, c) in list {
        l.add(c);
    }
    l
}

impl SiloPlacer {
    pub fn new(topo: Topology) -> SiloPlacer {
        let slots = SlotMap::new(&topo);
        let ports = topo.num_ports();
        let caps = TierCaps::compute(&topo);
        SiloPlacer {
            topo,
            slots,
            loads: vec![PortLoad::default(); ports],
            port_index: vec![Vec::new(); ports],
            load_version: vec![0; ports],
            bound_cache: RefCell::new(BoundCache::new(ports)),
            tenants: BTreeMap::new(),
            degraded: BTreeMap::new(),
            failed: Vec::new(),
            masked: None,
            mask_rebuilds: 0,
            next_id: 0,
            mtu: Bytes(1500),
            caps,
        }
    }

    /// Rebuild a placer from its primary state (the snapshot contents):
    /// slots, loads, the contribution index, and the dead-host mask are
    /// all derived. Because loads are rebuilt by the same id-order fold
    /// the incremental paths maintain, the restored placer's float state
    /// is bit-identical to the original's.
    pub(crate) fn from_parts(
        topo: Topology,
        mtu: Bytes,
        next_id: u64,
        mut failed: Vec<LinkId>,
        tenants: BTreeMap<TenantId, TenantRecord>,
        degraded: BTreeMap<TenantId, crate::degrade::DegradedRecord>,
    ) -> SiloPlacer {
        failed.sort_unstable();
        let mut p = SiloPlacer::new(topo);
        p.mtu = mtu;
        p.next_id = next_id;
        p.failed = failed;
        for (&id, rec) in &tenants {
            p.add_contribs(id, &rec.contribs);
            p.slots.alloc(&p.topo, &rec.hosts);
        }
        for rec in degraded.values() {
            p.slots.alloc(&p.topo, &rec.hosts);
        }
        p.tenants = tenants;
        p.degraded = degraded;
        p.rebuild_mask();
        p.mask_rebuilds = 0;
        p
    }

    /// A host whose access link is failed contributes no usable slots.
    fn host_is_dead(&self, h: HostId) -> bool {
        !self.failed.is_empty() && self.failed.binary_search(&self.topo.host_link(h)).is_ok()
    }

    /// Index a tenant's contributions and fold them into the per-port
    /// aggregates. Appends (the common case: fresh ids are monotone) fold
    /// one `add` onto the existing value; an out-of-order insert (a fault
    /// readmit reusing an old id) splices at the sorted position and
    /// rebuilds the fold so the id-order invariant holds bit-exactly.
    pub(crate) fn add_contribs(&mut self, id: TenantId, contribs: &[(PortId, Contribution)]) {
        for &(p, c) in contribs {
            let i = p.0 as usize;
            let list = &mut self.port_index[i];
            match list.last() {
                Some(&(last, _)) if last > id => {
                    let pos = list.partition_point(|&(t, _)| t < id);
                    list.insert(pos, (id, c));
                    self.loads[i] = fold_load(list);
                }
                _ => {
                    list.push((id, c));
                    self.loads[i].add(&c);
                }
            }
            self.load_version[i] += 1;
        }
    }

    /// Remove a tenant's contributions and rebuild each touched port's
    /// fold from the surviving entries — the aggregate is then exactly
    /// what a placer that never saw this tenant would hold (no float
    /// residue, unlike subtract-and-clamp).
    pub(crate) fn sub_contribs(&mut self, id: TenantId, contribs: &[(PortId, Contribution)]) {
        for &(p, _) in contribs {
            let i = p.0 as usize;
            let list = &mut self.port_index[i];
            let pos = list
                .iter()
                .position(|&(t, _)| t == id)
                .expect("contribution is indexed");
            list.remove(pos);
            self.loads[i] = fold_load(list);
            self.load_version[i] += 1;
        }
    }

    /// Allocate slots, keeping the dead-host mask in lockstep (dead
    /// hosts' slots exist only in `slots`: the mask already shows zero
    /// free there).
    pub(crate) fn alloc_slots(&mut self, placement: &[(HostId, usize)]) {
        self.slots.alloc(&self.topo, placement);
        if self.masked.is_some() {
            let live: Vec<(HostId, usize)> = placement
                .iter()
                .copied()
                .filter(|&(h, _)| !self.host_is_dead(h))
                .collect();
            if let (Some(masked), false) = (self.masked.as_mut(), live.is_empty()) {
                masked.alloc(&self.topo, &live);
            }
        }
    }

    /// Release slots, keeping the dead-host mask in lockstep (a release
    /// on a dead host frees real slots, but the mask keeps them hidden
    /// until the link heals).
    pub(crate) fn release_slots(&mut self, placement: &[(HostId, usize)]) {
        self.slots.release(&self.topo, placement);
        if self.masked.is_some() {
            let live: Vec<(HostId, usize)> = placement
                .iter()
                .copied()
                .filter(|&(h, _)| !self.host_is_dead(h))
                .collect();
            if let (Some(masked), false) = (self.masked.as_mut(), live.is_empty()) {
                masked.release(&self.topo, &live);
            }
        }
    }

    /// Recompute the dead-host mask from the current failed set. Called
    /// only by `fail_link`/`restore_link` — every other mutation keeps
    /// the mask incrementally in lockstep, so admissions under faults
    /// never clone the `SlotMap` (the regression
    /// `faulted_admissions_reuse_one_mask` counts rebuilds).
    pub(crate) fn rebuild_mask(&mut self) {
        self.masked = None;
        if self.failed.is_empty() {
            return;
        }
        let dead: Vec<HostId> = (0..self.topo.num_hosts())
            .map(|h| HostId(h as u32))
            .filter(|&h| self.host_is_dead(h))
            .collect();
        if dead.is_empty() {
            return;
        }
        let mut masked = self.slots.clone();
        for h in dead {
            let free = masked.free_host(h);
            if free > 0 {
                masked.alloc(&self.topo, &[(h, free)]);
            }
        }
        self.masked = Some(masked);
        self.mask_rebuilds += 1;
    }

    fn port_kind(&self, p: PortId) -> PortKind {
        let i = p.link().0 as usize;
        let hosts = self.topo.num_hosts();
        let racks = self.topo.num_racks();
        if i < hosts {
            if p.is_up() {
                PortKind::NicUp
            } else {
                PortKind::HostDown
            }
        } else if i < hosts + racks {
            if p.is_up() {
                PortKind::TorUp
            } else {
                PortKind::TorDown
            }
        } else if p.is_up() {
            PortKind::AggUp
        } else {
            PortKind::AggDown
        }
    }

    /// The largest span level compatible with the request's delay
    /// guarantee (C2), or `None` when even one rack is too slow (the
    /// tenant must then fit a single server).
    pub fn max_level(&self, req: &TenantRequest) -> Option<Level> {
        let Some(d) = req.guarantee.delay else {
            return Some(Level::CrossPod);
        };
        [Level::CrossPod, Level::SamePod, Level::SameRack]
            .into_iter()
            .find(|&lvl| self.caps.delay_budget(lvl) <= d)
    }

    /// The slot view candidate generation searches: hosts cut off by a
    /// failed access link contribute no free slots, so the greedy
    /// first-fit routes *around* dead servers instead of proposing
    /// candidates the connectivity check must reject (first-fit never
    /// backtracks past a full subtree). Real allocation still goes
    /// through `self.slots`. The masked view is maintained incrementally
    /// — this is a borrow, never a clone, no matter how many admissions
    /// run during an outage.
    pub(crate) fn search_slots(&self) -> &SlotMap {
        self.masked.as_ref().unwrap_or(&self.slots)
    }

    /// Every VM pair of the candidate can reach each other without
    /// crossing a failed link (always true when nothing has failed).
    pub(crate) fn candidate_connected(&self, cand: &[(HostId, usize)]) -> bool {
        if self.failed.is_empty() {
            return true;
        }
        let hosts: Vec<HostId> = cand.iter().map(|&(h, _)| h).collect();
        hosts.iter().enumerate().all(|(i, &a)| {
            hosts[i + 1..]
                .iter()
                .all(|&b| self.topo.path_intact(a, b, &self.failed))
        })
    }

    /// The contributions a candidate placement would add, or `None` if some
    /// port's constraint fails (or a failed link disconnects the tenant).
    pub(crate) fn check_candidate(
        &self,
        cand: &[(HostId, usize)],
        level: Level,
        req: &TenantRequest,
    ) -> Option<Vec<(PortId, Contribution)>> {
        if !self.candidate_connected(cand) {
            return None;
        }
        let n = req.vms;
        let g = &req.guarantee;
        let hosts: Vec<HostId> = cand.iter().map(|&(h, _)| h).collect();
        let mut out = Vec::new();
        let host_link = self.topo.params().host_link;
        for p in self.topo.ports_between(&hosts) {
            let (m, sending_hosts) = self.topo.cut_stats(p, cand);
            if m == 0 || m >= n {
                continue;
            }
            let kind = self.port_kind(p);
            let prior = self.caps.prior_caps(level, kind);
            let access_cap = host_link * sending_hosts.max(1) as u64;
            let c =
                Contribution::for_cut_capped(m, n, g.b, g.s, g.bmax, self.mtu, &prior, access_cap);
            let info = self.topo.port(p);
            let load = self.loads[p.0 as usize].with(&c);
            if info.is_nic {
                // The NIC queue lives in host memory under the pacer: no
                // loss is possible, only the sustained rate must fit —
                // with the headroom every sustained check shares (see
                // `NIC_HEADROOM`).
                if load.rate > info.rate.bytes_per_sec() * NIC_HEADROOM {
                    return None;
                }
            } else if !load.fits(info.rate, self.topo.ingress_capacity(p), info.buffer) {
                return None;
            }
            out.push((p, c));
        }
        Some(out)
    }

    /// Worst-case buffer occupancy currently reserved at a port — the C1
    /// backlog bound the admitted tenants' curves imply. Any conformant
    /// packet-level execution must stay under this (verified end-to-end
    /// by `silo-bench`'s `verify_queue_bounds`).
    ///
    /// Memoized per port, keyed by the port's load version: repeated
    /// probes (`backlog_bounds()` between admissions) recompute only the
    /// ports an admit/evict actually touched. The memoized value is the
    /// rounded bound, so a hit is bit-identical to a fresh computation.
    pub fn backlog_bound(&self, p: PortId) -> Option<Bytes> {
        let i = p.0 as usize;
        let info = self.topo.port(p);
        self.bound_cache
            .borrow_mut()
            .get_or_insert_with(i, self.load_version[i], || {
                self.loads[i]
                    .backlog(info.rate, self.topo.ingress_capacity(p))
                    .map(Bytes::as_u64)
            })
            .map(Bytes)
    }

    /// [`SiloPlacer::backlog_bound`] for every switch port at once, in
    /// `PortId` order — the shape `silo_simnet::AuditConfig::port_bounds`
    /// consumes. NIC ports are `None`: their queues live in host memory
    /// under the pacer and have no switch-buffer bound to enforce.
    pub fn backlog_bounds(&self) -> Vec<Option<Bytes>> {
        (0..self.topo.num_ports())
            .map(|i| {
                let p = PortId(i as u32);
                if self.topo.port(p).is_nic {
                    None
                } else {
                    self.backlog_bound(p)
                }
            })
            .collect()
    }

    /// Worst-case queueing delay currently reserved at a port (for
    /// reporting and tests). Derived from the memoized backlog bound —
    /// identical to `PortLoad::queue_bound`, which divides the same
    /// rounded backlog by the line rate.
    pub fn queue_bound(&self, p: PortId) -> Option<Dur> {
        let info = self.topo.port(p);
        self.backlog_bound(p).map(|b| info.rate.tx_time(b))
    }

    /// Fraction of a port's line rate reserved by sustained guarantees.
    pub fn reserved_fraction(&self, p: PortId) -> f64 {
        self.loads[p.0 as usize].rate / self.topo.port(p).rate.bytes_per_sec()
    }

    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    pub fn placement_of(&self, t: TenantId) -> Option<&[(HostId, usize)]> {
        self.tenants.get(&t).map(|r| r.hosts.as_slice())
    }

    /// The aggregate load currently reserved at a port (diagnostics and
    /// the differential suites).
    pub fn port_load(&self, p: PortId) -> PortLoad {
        self.loads[p.0 as usize]
    }

    /// Free-slot bookkeeping (per host/rack/pod) for diagnostics.
    pub fn slot_map(&self) -> &SlotMap {
        &self.slots
    }

    /// Times the dead-host mask was rebuilt from scratch. Tracks
    /// `fail_link`/`restore_link` sweeps only — admissions during an
    /// outage must never bump this (the satellite-1 regression).
    pub fn mask_rebuilds(&self) -> u64 {
        self.mask_rebuilds
    }

    /// `(hits, misses)` of the backlog-bound memo.
    pub fn bound_cache_stats(&self) -> (u64, u64) {
        let c = self.bound_cache.borrow();
        (c.hits(), c.misses())
    }

    /// Recompute every piece of incremental state from first principles
    /// and compare bit-for-bit: port loads against an id-order fold over
    /// the live tenants, slots against a fresh allocation replay, the
    /// dead-host mask against a fresh derivation, and the memoized
    /// backlog bounds against direct netcalc recomputation. `Err`
    /// describes the first divergence. This is the incremental-vs-scratch
    /// assertion the admission-service differential gate runs at every
    /// probe point.
    pub fn verify_scratch_consistency(&self) -> Result<(), String> {
        let ports = self.topo.num_ports();
        // 1. Contribution index + loads vs an id-order fold from scratch.
        let mut scratch: Vec<Vec<(TenantId, Contribution)>> = vec![Vec::new(); ports];
        for (&id, rec) in &self.tenants {
            for &(p, c) in &rec.contribs {
                scratch[p.0 as usize].push((id, c));
            }
        }
        for (i, scratch_i) in scratch.iter().enumerate() {
            if *scratch_i != self.port_index[i] {
                return Err(format!(
                    "port {i}: contribution index diverged from live tenants \
                     ({} indexed vs {} expected)",
                    self.port_index[i].len(),
                    scratch_i.len()
                ));
            }
            let fold = fold_load(scratch_i);
            let got = self.loads[i];
            let bits = |l: &PortLoad| {
                (
                    l.rate.to_bits(),
                    l.burst.to_bits(),
                    l.burst_rate.to_bits(),
                    l.mtu_bytes.to_bits(),
                    l.unbounded,
                )
            };
            if bits(&fold) != bits(&got) {
                return Err(format!(
                    "port {i}: incremental load {got:?} != scratch fold {fold:?}"
                ));
            }
        }
        // 2. Slots vs a fresh allocation replay (live + degraded).
        let mut slots = SlotMap::new(&self.topo);
        for rec in self.tenants.values() {
            slots.alloc(&self.topo, &rec.hosts);
        }
        for rec in self.degraded.values() {
            slots.alloc(&self.topo, &rec.hosts);
        }
        if slots != self.slots {
            return Err("slot map diverged from tenant placements".into());
        }
        // 3. Dead-host mask vs a fresh derivation.
        let dead: Vec<HostId> = (0..self.topo.num_hosts())
            .map(|h| HostId(h as u32))
            .filter(|&h| self.host_is_dead(h))
            .collect();
        let fresh_mask = if dead.is_empty() {
            None
        } else {
            let mut m = self.slots.clone();
            for h in dead {
                let free = m.free_host(h);
                if free > 0 {
                    m.alloc(&self.topo, &[(h, free)]);
                }
            }
            Some(m)
        };
        if fresh_mask != self.masked {
            return Err("dead-host mask diverged from fresh derivation".into());
        }
        // 4. Memoized bounds vs direct recomputation.
        for i in 0..ports {
            let p = PortId(i as u32);
            let info = self.topo.port(p);
            let direct = self.loads[i].backlog(info.rate, self.topo.ingress_capacity(p));
            if self.backlog_bound(p) != direct {
                return Err(format!("port {i}: cached bound != direct recomputation"));
            }
        }
        Ok(())
    }
}

impl Placer for SiloPlacer {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn try_place(&mut self, req: &TenantRequest) -> Result<Placement, RejectReason> {
        let n = req.vms;
        let max_level = match self.max_level(req) {
            Some(l) => l,
            None if n <= self.topo.slots_per_server() && req.min_fault_domains <= 1 => {
                Level::SameHost
            }
            None => return Err(RejectReason::DelayUnsatisfiable),
        };
        let found = greedy_place_spread(
            &self.topo,
            self.search_slots(),
            n,
            max_level,
            req.min_fault_domains,
            &mut |cand, lvl| self.check_candidate(cand, lvl, req).is_some(),
        );
        let Some((cand, level)) = found else {
            return Err(if self.slots.total_free() < n {
                RejectReason::InsufficientSlots
            } else {
                RejectReason::NetworkUnsatisfiable
            });
        };
        let contribs = self
            .check_candidate(&cand, level, req)
            .expect("accepted candidate must re-check");
        let id = TenantId(self.next_id);
        self.add_contribs(id, &contribs);
        self.alloc_slots(&cand);
        self.next_id += 1;
        self.tenants.insert(
            id,
            TenantRecord {
                hosts: cand.clone(),
                contribs,
                req: *req,
                level,
            },
        );
        Ok(Placement {
            tenant: id,
            hosts: cand,
            span: level,
        })
    }

    fn remove(&mut self, tenant: TenantId) -> bool {
        if let Some(rec) = self.tenants.remove(&tenant) {
            self.sub_contribs(tenant, &rec.contribs);
            self.release_slots(&rec.hosts);
            return true;
        }
        // Degraded tenants hold slots but no reservations.
        if let Some(rec) = self.degraded.remove(&tenant) {
            self.release_slots(&rec.hosts);
            return true;
        }
        false
    }

    fn used_slots(&self) -> usize {
        self.slots.used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrade::DegradeOutcome;
    use crate::guarantee::Guarantee;
    use silo_base::Rate;
    use silo_topology::TreeParams;

    fn fig5_topo(buffer_kb: u64) -> Topology {
        Topology::build(TreeParams {
            pods: 1,
            racks_per_pod: 1,
            servers_per_rack: 3,
            vm_slots_per_server: 4,
            host_link: Rate::from_gbps(10),
            tor_oversub: 1.0,
            agg_oversub: 1.0,
            switch_buffer: Bytes::from_kb(buffer_kb),
            nic_buffer: Bytes::from_kb(64),
            prop_delay: Dur::from_ns(500),
        })
    }

    fn fig5_request() -> TenantRequest {
        TenantRequest::new(
            9,
            Guarantee {
                b: Rate::from_gbps(1),
                s: Bytes::from_kb(100),
                bmax: Rate::from_gbps(10),
                delay: Some(Dur::from_ms(1)),
            },
        )
    }

    #[test]
    fn fig5_placement_balances_the_tenant() {
        // Dense first-fit would pack 4/4/1 — the Fig. 5(a) shape whose 8
        // converging senders overflow the buffer (exact bound ~422 KB).
        // Silo must relax the packing to 3/3/3 (~356 KB), which fits a
        // 360 KB buffer (the paper's simplified arithmetic says 300 KB).
        let mut p = SiloPlacer::new(fig5_topo(360));
        let placed = p.try_place(&fig5_request()).expect("placement fits");
        assert_eq!(placed.span, Level::SameRack);
        let counts: Vec<usize> = placed.hosts.iter().map(|&(_, k)| k).collect();
        assert_eq!(counts, vec![3, 3, 3], "must balance, got {counts:?}");
    }

    #[test]
    fn fig5_rejects_when_buffer_too_small() {
        // With a buffer below even the balanced bound, no distribution
        // works and admission must refuse.
        let mut p = SiloPlacer::new(fig5_topo(200));
        assert_eq!(
            p.try_place(&fig5_request()),
            Err(RejectReason::NetworkUnsatisfiable)
        );
        assert_eq!(p.used_slots(), 0, "rejection must not leak slots");
    }

    #[test]
    fn single_vm_tenant_always_fits_slotwise() {
        let mut p = SiloPlacer::new(fig5_topo(300));
        let placed = p
            .try_place(&TenantRequest::new(1, Guarantee::class_a()))
            .unwrap();
        assert_eq!(placed.span, Level::SameHost);
        assert_eq!(p.used_slots(), 1);
    }

    #[test]
    fn remove_restores_admissibility() {
        let mut p = SiloPlacer::new(fig5_topo(360));
        let a = p.try_place(&fig5_request()).unwrap();
        // Second identical tenant cannot fit (only 6 slots left anyway).
        assert!(p.try_place(&fig5_request()).is_err());
        assert!(p.remove(a.tenant));
        assert!(p.try_place(&fig5_request()).is_ok());
        assert!(!p.remove(a.tenant), "double-remove must fail");
    }

    #[test]
    fn delay_guarantee_limits_span() {
        let topo = Topology::build(TreeParams::ns2_paper());
        let p = SiloPlacer::new(topo);
        // Class A (1 ms): the cross-pod budget (NIC + 5 × ~250 us) blows
        // the guarantee, the pod budget (~800 us) fits.
        let req = TenantRequest::new(16, Guarantee::class_a());
        assert_eq!(p.max_level(&req), Some(Level::SamePod));
        // A 300 us guarantee only allows rack placement (NIC ~51 us +
        // 249.6 us just fits 301 us; use 310 us to be explicit).
        let mut tight = Guarantee::class_a();
        tight.delay = Some(Dur::from_us(310));
        assert_eq!(
            p.max_level(&TenantRequest::new(16, tight)),
            Some(Level::SameRack)
        );
        // 10 us cannot be met across the network at all.
        let mut impossible = Guarantee::class_a();
        impossible.delay = Some(Dur::from_us(10));
        assert_eq!(p.max_level(&TenantRequest::new(16, impossible)), None);
        // No delay guarantee -> anywhere.
        assert_eq!(
            p.max_level(&TenantRequest::new(16, Guarantee::class_b())),
            Some(Level::CrossPod)
        );
    }

    #[test]
    fn impossible_delay_falls_back_to_single_server() {
        let mut p = SiloPlacer::new(fig5_topo(300));
        let mut g = Guarantee::class_a();
        g.delay = Some(Dur::from_us(1));
        // Fits one server (5 slots): accepted at SameHost.
        let placed = p.try_place(&TenantRequest::new(4, g)).unwrap();
        assert_eq!(placed.span, Level::SameHost);
        // Too big for one server: rejected for delay.
        assert_eq!(
            p.try_place(&TenantRequest::new(6, g)),
            Err(RejectReason::DelayUnsatisfiable)
        );
    }

    #[test]
    fn nic_sustained_rate_is_enforced() {
        // 5 slots per server, B = 3 Gbps: 5 co-located senders would need
        // 15 Gbps of NIC hose; the placer must spread or reject.
        let mut p = SiloPlacer::new(fig5_topo(312));
        let req = TenantRequest::new(
            10,
            Guarantee {
                b: Rate::from_gbps(3),
                s: Bytes(1500),
                bmax: Rate::from_gbps(3),
                delay: None,
            },
        );
        match p.try_place(&req) {
            Ok(placed) => {
                // min(k, 10-k)·3G <= 10G  =>  k <= 3 per server... but with
                // only 3 servers × 5 slots, 10 VMs need k >= 4 somewhere:
                // min(4,6)·3 = 12G > 10G, so acceptance is impossible.
                panic!("should not fit, got {:?}", placed.hosts);
            }
            Err(e) => assert_eq!(e, RejectReason::NetworkUnsatisfiable),
        }
    }

    #[test]
    fn admits_until_slots_or_network_exhausted() {
        let topo = Topology::build(TreeParams {
            pods: 1,
            racks_per_pod: 2,
            servers_per_rack: 4,
            vm_slots_per_server: 4,
            ..TreeParams::ns2_paper()
        });
        let mut p = SiloPlacer::new(topo);
        let mut accepted = 0;
        for _ in 0..20 {
            if p.try_place(&TenantRequest::new(4, Guarantee::class_a()))
                .is_ok()
            {
                accepted += 1;
            }
        }
        // 32 slots / 4 VMs = 8 tenants max; class-A is light enough that
        // slots, not the network, should be the binding constraint here.
        assert_eq!(accepted, 8);
        assert_eq!(p.used_slots(), 32);
    }

    fn two_rack_topo() -> Topology {
        Topology::build(TreeParams {
            pods: 1,
            racks_per_pod: 2,
            servers_per_rack: 3,
            vm_slots_per_server: 4,
            host_link: Rate::from_gbps(10),
            tor_oversub: 1.0,
            agg_oversub: 1.0,
            switch_buffer: Bytes::from_kb(360),
            nic_buffer: Bytes::from_kb(64),
            prop_delay: Dur::from_ns(500),
        })
    }

    /// Satellite regression: under an active failure, admissions must
    /// share ONE incrementally-maintained masked slot map, not clone and
    /// re-mask per admission. `mask_rebuilds` counts the (only) rebuild
    /// sites — fail/restore — and pointer identity proves no admission
    /// swapped the map out.
    #[test]
    fn faulted_admissions_reuse_one_mask() {
        let mut p = SiloPlacer::new(two_rack_topo());
        assert_eq!(p.mask_rebuilds(), 0);
        // Healthy placer: search map IS the slot map.
        assert!(std::ptr::eq(p.search_slots(), p.slot_map()));

        let dead = p.topo.host_link(HostId(0));
        p.fail_link(dead);
        assert_eq!(p.mask_rebuilds(), 1, "one failure, one rebuild");
        let masked0: *const SlotMap = p.search_slots();
        assert!(!std::ptr::eq(p.search_slots(), p.slot_map()));

        // A 1k admit/remove churn while the link is down: the mask must
        // be updated in place, never rebuilt or replaced.
        let req = TenantRequest::new(1, Guarantee::class_a());
        for _ in 0..500 {
            let placed = p.try_place(&req).expect("plenty of live capacity");
            assert!(std::ptr::eq(p.search_slots(), masked0));
            assert!(p.remove(placed.tenant));
            assert!(std::ptr::eq(p.search_slots(), masked0));
        }
        assert_eq!(p.mask_rebuilds(), 1, "churn must not rebuild the mask");
        // The mask never exposes the dead host.
        assert_eq!(p.search_slots().free_host(HostId(0)), 0);
        p.verify_scratch_consistency().unwrap();

        // Healing drops the mask entirely.
        p.restore_link(dead);
        assert!(std::ptr::eq(p.search_slots(), p.slot_map()));
        p.verify_scratch_consistency().unwrap();
    }

    /// Satellite regression: the NIC headroom check must use the single
    /// named constant at every site, so a tenant admitted at exactly the
    /// boundary survives a fail→restore re-validation cycle instead of
    /// being bounced by a mismatched literal.
    #[test]
    fn nic_headroom_boundary_survives_fault_cycle() {
        let topo = two_rack_topo();
        let line = topo.params().host_link;
        let thresh = line.bytes_per_sec() * NIC_HEADROOM;
        // Largest representable rate whose NIC hose (min(1,1)·B for a
        // 2-VM spread tenant) sits at or below the headroom boundary.
        let mut bits = (thresh * 8.0) as u64;
        while Rate(bits).bytes_per_sec() > thresh {
            bits -= 1;
        }
        let boundary = Guarantee {
            b: Rate(bits),
            s: Bytes(1500),
            bmax: Rate(bits),
            delay: None,
        };
        let req = TenantRequest::new(2, boundary).with_fault_domains(2);

        // Sanity: one notch above the boundary is refused outright.
        {
            let mut over = boundary;
            over.b = Rate(bits + 8); // +1 byte/s
            over.bmax = over.b;
            let mut p = SiloPlacer::new(two_rack_topo());
            assert_eq!(
                p.try_place(&TenantRequest::new(2, over).with_fault_domains(2)),
                Err(RejectReason::NetworkUnsatisfiable)
            );
        }

        let mut p = SiloPlacer::new(topo);
        let placed = p.try_place(&req).expect("boundary tenant admits");
        let tenant = placed.tenant;

        // Fail the link under one of its VMs: the sweep reclaims the
        // tenant and re-admits it at the same boundary rate on surviving
        // hosts — which must pass the identical headroom check.
        let victim_host = placed.hosts[0].0;
        let report = p.fail_link(p.topo.host_link(victim_host));
        assert_eq!(report.outcomes.len(), 1);
        assert!(
            matches!(&report.outcomes[0], (t, DegradeOutcome::Replaced { .. }) if *t == tenant),
            "boundary tenant must re-admit, got {:?}",
            report.outcomes
        );

        // Healing re-validates; the tenant must still be guaranteed.
        p.restore_link(p.topo.host_link(victim_host));
        assert!(p.degraded_tenants().is_empty());
        assert!(p.placement_of(tenant).is_some());
        p.verify_scratch_consistency().unwrap();
    }

    #[test]
    fn backlog_bounds_are_memoized_per_version() {
        let mut p = SiloPlacer::new(two_rack_topo());
        // 5 VMs > 4 slots/server forces multi-host spans, so admissions
        // actually load switch ports.
        for _ in 0..4 {
            p.try_place(&TenantRequest::new(5, Guarantee::class_a()))
                .unwrap();
        }
        let first = p.backlog_bounds();
        let (h0, m0) = p.bound_cache_stats();
        let second = p.backlog_bounds();
        let (h1, m1) = p.bound_cache_stats();
        assert_eq!(first, second);
        assert_eq!(m1, m0, "second sweep must not recompute anything");
        // NIC ports never consult the cache; every switch port must hit.
        let switch_ports = (0..p.topo.num_ports())
            .filter(|&i| !p.topo.port(PortId(i as u32)).is_nic)
            .count() as u64;
        assert_eq!(h1, h0 + switch_ports, "second sweep all hits");
        // A new admission bumps versions on the ports it touches; the
        // next sweep recomputes exactly those.
        p.try_place(&TenantRequest::new(2, Guarantee::class_a()).with_fault_domains(2))
            .unwrap();
        let third = p.backlog_bounds();
        let (_, m2) = p.bound_cache_stats();
        assert!(m2 > m1, "touched ports must miss once");
        p.verify_scratch_consistency().unwrap();
        assert_eq!(third, p.backlog_bounds());
    }

    #[test]
    fn queue_bounds_stay_within_capacity_for_admitted_load() {
        let topo = Topology::build(TreeParams::ns2_paper());
        let mut p = SiloPlacer::new(topo);
        for _ in 0..50 {
            let _ = p.try_place(&TenantRequest::new(8, Guarantee::class_a()));
        }
        // C1 implies every port's queue bound <= its capacity.
        for i in 0..p.topo.num_ports() {
            let port = PortId(i as u32);
            let info = p.topo.port(port);
            if info.is_nic {
                continue;
            }
            if let Some(q) = p.queue_bound(port) {
                assert!(
                    q <= info.queue_capacity(),
                    "port {port:?}: bound {q} > capacity {}",
                    info.queue_capacity()
                );
            }
        }
    }
}
