//! Silo's admission control and VM placement manager (paper §4.2.3).

use crate::guarantee::TenantRequest;
use crate::load::{Contribution, PortLoad};
use crate::placer::{greedy_place_spread, Placement, Placer, RejectReason, SlotMap, TenantId};
use silo_base::{Bytes, Dur};
use silo_topology::{HostId, Level, LinkId, PortId, Topology};
use std::collections::BTreeMap;

/// Classification of a directed port by tier and direction, used to find
/// the upstream queues that inflate a burst before it arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortKind {
    NicUp,
    HostDown,
    TorUp,
    TorDown,
    AggUp,
    AggDown,
}

/// Queue capacities of one representative port per tier (all racks/pods are
/// symmetric), precomputed once.
#[derive(Debug, Clone, Copy)]
struct TierCaps {
    nic: Dur,
    host_down: Dur,
    tor_up: Dur,
    tor_down: Dur,
    agg_up: Dur,
    agg_down: Dur,
}

impl TierCaps {
    fn compute(topo: &Topology) -> TierCaps {
        let cap = |p: PortId| topo.port(p).queue_capacity();
        let h0 = HostId(0);
        TierCaps {
            nic: cap(PortId::up(topo.host_link(h0))),
            host_down: cap(PortId::down(topo.host_link(h0))),
            tor_up: cap(PortId::up(topo.tor_link(0))),
            tor_down: cap(PortId::down(topo.tor_link(0))),
            agg_up: cap(PortId::up(topo.agg_link(0))),
            agg_down: cap(PortId::down(topo.agg_link(0))),
        }
    }

    /// Constraint C2's path budget: the sum of queue capacities a packet
    /// can see NIC-to-NIC for a tenant spanning `level`.
    fn delay_budget(&self, level: Level) -> Dur {
        match level {
            Level::SameHost => Dur::ZERO,
            Level::SameRack => self.nic + self.host_down,
            Level::SamePod => self.nic + self.tor_up + self.tor_down + self.host_down,
            Level::CrossPod => {
                self.nic
                    + self.tor_up
                    + self.agg_up
                    + self.agg_down
                    + self.tor_down
                    + self.host_down
            }
        }
    }

    /// Queue capacities of the switch ports a packet traverses *before*
    /// reaching a port of the given kind, on the worst-case path of a
    /// tenant spanning `level`. The NIC never appears: pacer output is
    /// conformant by construction.
    fn prior_caps(&self, level: Level, kind: PortKind) -> Vec<Dur> {
        match kind {
            PortKind::NicUp | PortKind::TorUp => vec![],
            PortKind::AggUp => vec![self.tor_up],
            PortKind::AggDown => vec![self.tor_up, self.agg_up],
            PortKind::TorDown => match level {
                Level::CrossPod => vec![self.tor_up, self.agg_up, self.agg_down],
                _ => vec![self.tor_up],
            },
            PortKind::HostDown => match level {
                Level::SameHost | Level::SameRack => vec![],
                Level::SamePod => vec![self.tor_up, self.tor_down],
                Level::CrossPod => {
                    vec![self.tor_up, self.agg_up, self.agg_down, self.tor_down]
                }
            },
        }
    }
}

pub(crate) struct TenantRecord {
    pub(crate) hosts: Vec<(HostId, usize)>,
    pub(crate) contribs: Vec<(PortId, Contribution)>,
    /// The original admission request, kept so a failure can re-validate
    /// or re-place the tenant (see the `degrade` module).
    pub(crate) req: TenantRequest,
    /// Admitted span level (fixes the C2 path budget used at admission).
    pub(crate) level: Level,
}

/// Silo's placement manager. Admission enforces:
///
/// * **C2** via the span level: a delay guarantee `d` restricts the tenant
///   to the largest level whose static path budget fits `d`;
/// * **C1** at every switch port between the tenant's VMs, against the
///   aggregate of all admitted tenants (plus the candidate);
/// * the sustained hose rate at every port, including host NICs.
pub struct SiloPlacer {
    pub(crate) topo: Topology,
    pub(crate) slots: SlotMap,
    pub(crate) loads: Vec<PortLoad>,
    /// Admitted tenants with live guarantees. `BTreeMap` so every sweep
    /// over tenants (failure handling in particular) is in deterministic
    /// id order.
    pub(crate) tenants: BTreeMap<TenantId, TenantRecord>,
    /// Tenants downgraded to best-effort by a failure: they keep their VM
    /// slots but hold no network reservations (see `degrade`).
    pub(crate) degraded: BTreeMap<TenantId, crate::degrade::DegradedRecord>,
    /// Links currently failed (`degrade::fail_link`); admission refuses
    /// candidates whose VM pairs would cross any of them.
    pub(crate) failed: Vec<LinkId>,
    next_id: u64,
    pub(crate) mtu: Bytes,
    caps: TierCaps,
}

impl SiloPlacer {
    pub fn new(topo: Topology) -> SiloPlacer {
        let slots = SlotMap::new(&topo);
        let loads = vec![PortLoad::default(); topo.num_ports()];
        let caps = TierCaps::compute(&topo);
        SiloPlacer {
            topo,
            slots,
            loads,
            tenants: BTreeMap::new(),
            degraded: BTreeMap::new(),
            failed: Vec::new(),
            next_id: 0,
            mtu: Bytes(1500),
            caps,
        }
    }

    fn port_kind(&self, p: PortId) -> PortKind {
        let i = p.link().0 as usize;
        let hosts = self.topo.num_hosts();
        let racks = self.topo.num_racks();
        if i < hosts {
            if p.is_up() {
                PortKind::NicUp
            } else {
                PortKind::HostDown
            }
        } else if i < hosts + racks {
            if p.is_up() {
                PortKind::TorUp
            } else {
                PortKind::TorDown
            }
        } else if p.is_up() {
            PortKind::AggUp
        } else {
            PortKind::AggDown
        }
    }

    /// The largest span level compatible with the request's delay
    /// guarantee (C2), or `None` when even one rack is too slow (the
    /// tenant must then fit a single server).
    pub fn max_level(&self, req: &TenantRequest) -> Option<Level> {
        let Some(d) = req.guarantee.delay else {
            return Some(Level::CrossPod);
        };
        [Level::CrossPod, Level::SamePod, Level::SameRack]
            .into_iter()
            .find(|&lvl| self.caps.delay_budget(lvl) <= d)
    }

    /// The slot view candidate generation searches: hosts cut off by a
    /// failed access link contribute no free slots, so the greedy
    /// first-fit routes *around* dead servers instead of proposing
    /// candidates the connectivity check must reject (first-fit never
    /// backtracks past a full subtree). Real allocation still goes
    /// through `self.slots`.
    pub(crate) fn search_slots(&self) -> std::borrow::Cow<'_, SlotMap> {
        let dead: Vec<HostId> = (0..self.topo.num_hosts())
            .map(|h| HostId(h as u32))
            .filter(|&h| self.failed.contains(&self.topo.host_link(h)))
            .collect();
        if dead.is_empty() {
            return std::borrow::Cow::Borrowed(&self.slots);
        }
        let mut masked = self.slots.clone();
        for h in dead {
            let free = masked.free_host(h);
            if free > 0 {
                masked.alloc(&self.topo, &[(h, free)]);
            }
        }
        std::borrow::Cow::Owned(masked)
    }

    /// Every VM pair of the candidate can reach each other without
    /// crossing a failed link (always true when nothing has failed).
    pub(crate) fn candidate_connected(&self, cand: &[(HostId, usize)]) -> bool {
        if self.failed.is_empty() {
            return true;
        }
        let hosts: Vec<HostId> = cand.iter().map(|&(h, _)| h).collect();
        hosts.iter().enumerate().all(|(i, &a)| {
            hosts[i + 1..]
                .iter()
                .all(|&b| self.topo.path_intact(a, b, &self.failed))
        })
    }

    /// The contributions a candidate placement would add, or `None` if some
    /// port's constraint fails (or a failed link disconnects the tenant).
    pub(crate) fn check_candidate(
        &self,
        cand: &[(HostId, usize)],
        level: Level,
        req: &TenantRequest,
    ) -> Option<Vec<(PortId, Contribution)>> {
        if !self.candidate_connected(cand) {
            return None;
        }
        let n = req.vms;
        let g = &req.guarantee;
        let hosts: Vec<HostId> = cand.iter().map(|&(h, _)| h).collect();
        let mut out = Vec::new();
        let host_link = self.topo.params().host_link;
        for p in self.topo.ports_between(&hosts) {
            let (m, sending_hosts) = self.topo.cut_stats(p, cand);
            if m == 0 || m >= n {
                continue;
            }
            let kind = self.port_kind(p);
            let prior = self.caps.prior_caps(level, kind);
            let access_cap = host_link * sending_hosts.max(1) as u64;
            let c =
                Contribution::for_cut_capped(m, n, g.b, g.s, g.bmax, self.mtu, &prior, access_cap);
            let info = self.topo.port(p);
            let load = self.loads[p.0 as usize].with(&c);
            if info.is_nic {
                // The NIC queue lives in host memory under the pacer: no
                // loss is possible, only the sustained rate must fit —
                // with a small headroom so paced streams at full
                // reservation stay drainable (a wire reserved to exactly
                // 100% random-walks its backlog upward).
                if load.rate > info.rate.bytes_per_sec() * 0.97 {
                    return None;
                }
            } else if !load.fits(info.rate, self.topo.ingress_capacity(p), info.buffer) {
                return None;
            }
            out.push((p, c));
        }
        Some(out)
    }

    /// Worst-case buffer occupancy currently reserved at a port — the C1
    /// backlog bound the admitted tenants' curves imply. Any conformant
    /// packet-level execution must stay under this (verified end-to-end
    /// by `silo-bench`'s `verify_queue_bounds`).
    pub fn backlog_bound(&self, p: PortId) -> Option<Bytes> {
        let info = self.topo.port(p);
        self.loads[p.0 as usize].backlog(info.rate, self.topo.ingress_capacity(p))
    }

    /// [`SiloPlacer::backlog_bound`] for every switch port at once, in
    /// `PortId` order — the shape `silo_simnet::AuditConfig::port_bounds`
    /// consumes. NIC ports are `None`: their queues live in host memory
    /// under the pacer and have no switch-buffer bound to enforce.
    pub fn backlog_bounds(&self) -> Vec<Option<Bytes>> {
        (0..self.topo.num_ports())
            .map(|i| {
                let p = PortId(i as u32);
                if self.topo.port(p).is_nic {
                    None
                } else {
                    self.backlog_bound(p)
                }
            })
            .collect()
    }

    /// Worst-case queueing delay currently reserved at a port (for
    /// reporting and tests).
    pub fn queue_bound(&self, p: PortId) -> Option<Dur> {
        let info = self.topo.port(p);
        self.loads[p.0 as usize].queue_bound(info.rate, self.topo.ingress_capacity(p))
    }

    /// Fraction of a port's line rate reserved by sustained guarantees.
    pub fn reserved_fraction(&self, p: PortId) -> f64 {
        self.loads[p.0 as usize].rate / self.topo.port(p).rate.bytes_per_sec()
    }

    pub fn num_tenants(&self) -> usize {
        self.tenants.len()
    }

    pub fn placement_of(&self, t: TenantId) -> Option<&[(HostId, usize)]> {
        self.tenants.get(&t).map(|r| r.hosts.as_slice())
    }
}

impl Placer for SiloPlacer {
    fn topology(&self) -> &Topology {
        &self.topo
    }

    fn try_place(&mut self, req: &TenantRequest) -> Result<Placement, RejectReason> {
        let n = req.vms;
        let max_level = match self.max_level(req) {
            Some(l) => l,
            None if n <= self.topo.slots_per_server() && req.min_fault_domains <= 1 => {
                Level::SameHost
            }
            None => return Err(RejectReason::DelayUnsatisfiable),
        };
        let search = self.search_slots();
        let found = greedy_place_spread(
            &self.topo,
            &search,
            n,
            max_level,
            req.min_fault_domains,
            &mut |cand, lvl| self.check_candidate(cand, lvl, req).is_some(),
        );
        drop(search);
        let Some((cand, level)) = found else {
            return Err(if self.slots.total_free() < n {
                RejectReason::InsufficientSlots
            } else {
                RejectReason::NetworkUnsatisfiable
            });
        };
        let contribs = self
            .check_candidate(&cand, level, req)
            .expect("accepted candidate must re-check");
        for (p, c) in &contribs {
            self.loads[p.0 as usize].add(c);
        }
        self.slots.alloc(&self.topo, &cand);
        let id = TenantId(self.next_id);
        self.next_id += 1;
        self.tenants.insert(
            id,
            TenantRecord {
                hosts: cand.clone(),
                contribs,
                req: *req,
                level,
            },
        );
        Ok(Placement {
            tenant: id,
            hosts: cand,
            span: level,
        })
    }

    fn remove(&mut self, tenant: TenantId) -> bool {
        if let Some(rec) = self.tenants.remove(&tenant) {
            for (p, c) in &rec.contribs {
                self.loads[p.0 as usize].sub(c);
            }
            self.slots.release(&self.topo, &rec.hosts);
            return true;
        }
        // Degraded tenants hold slots but no reservations.
        if let Some(rec) = self.degraded.remove(&tenant) {
            self.slots.release(&self.topo, &rec.hosts);
            return true;
        }
        false
    }

    fn used_slots(&self) -> usize {
        self.slots.used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guarantee::Guarantee;
    use silo_base::Rate;
    use silo_topology::TreeParams;

    fn fig5_topo(buffer_kb: u64) -> Topology {
        Topology::build(TreeParams {
            pods: 1,
            racks_per_pod: 1,
            servers_per_rack: 3,
            vm_slots_per_server: 4,
            host_link: Rate::from_gbps(10),
            tor_oversub: 1.0,
            agg_oversub: 1.0,
            switch_buffer: Bytes::from_kb(buffer_kb),
            nic_buffer: Bytes::from_kb(64),
            prop_delay: Dur::from_ns(500),
        })
    }

    fn fig5_request() -> TenantRequest {
        TenantRequest::new(
            9,
            Guarantee {
                b: Rate::from_gbps(1),
                s: Bytes::from_kb(100),
                bmax: Rate::from_gbps(10),
                delay: Some(Dur::from_ms(1)),
            },
        )
    }

    #[test]
    fn fig5_placement_balances_the_tenant() {
        // Dense first-fit would pack 4/4/1 — the Fig. 5(a) shape whose 8
        // converging senders overflow the buffer (exact bound ~422 KB).
        // Silo must relax the packing to 3/3/3 (~356 KB), which fits a
        // 360 KB buffer (the paper's simplified arithmetic says 300 KB).
        let mut p = SiloPlacer::new(fig5_topo(360));
        let placed = p.try_place(&fig5_request()).expect("placement fits");
        assert_eq!(placed.span, Level::SameRack);
        let counts: Vec<usize> = placed.hosts.iter().map(|&(_, k)| k).collect();
        assert_eq!(counts, vec![3, 3, 3], "must balance, got {counts:?}");
    }

    #[test]
    fn fig5_rejects_when_buffer_too_small() {
        // With a buffer below even the balanced bound, no distribution
        // works and admission must refuse.
        let mut p = SiloPlacer::new(fig5_topo(200));
        assert_eq!(
            p.try_place(&fig5_request()),
            Err(RejectReason::NetworkUnsatisfiable)
        );
        assert_eq!(p.used_slots(), 0, "rejection must not leak slots");
    }

    #[test]
    fn single_vm_tenant_always_fits_slotwise() {
        let mut p = SiloPlacer::new(fig5_topo(300));
        let placed = p
            .try_place(&TenantRequest::new(1, Guarantee::class_a()))
            .unwrap();
        assert_eq!(placed.span, Level::SameHost);
        assert_eq!(p.used_slots(), 1);
    }

    #[test]
    fn remove_restores_admissibility() {
        let mut p = SiloPlacer::new(fig5_topo(360));
        let a = p.try_place(&fig5_request()).unwrap();
        // Second identical tenant cannot fit (only 6 slots left anyway).
        assert!(p.try_place(&fig5_request()).is_err());
        assert!(p.remove(a.tenant));
        assert!(p.try_place(&fig5_request()).is_ok());
        assert!(!p.remove(a.tenant), "double-remove must fail");
    }

    #[test]
    fn delay_guarantee_limits_span() {
        let topo = Topology::build(TreeParams::ns2_paper());
        let p = SiloPlacer::new(topo);
        // Class A (1 ms): the cross-pod budget (NIC + 5 × ~250 us) blows
        // the guarantee, the pod budget (~800 us) fits.
        let req = TenantRequest::new(16, Guarantee::class_a());
        assert_eq!(p.max_level(&req), Some(Level::SamePod));
        // A 300 us guarantee only allows rack placement (NIC ~51 us +
        // 249.6 us just fits 301 us; use 310 us to be explicit).
        let mut tight = Guarantee::class_a();
        tight.delay = Some(Dur::from_us(310));
        assert_eq!(
            p.max_level(&TenantRequest::new(16, tight)),
            Some(Level::SameRack)
        );
        // 10 us cannot be met across the network at all.
        let mut impossible = Guarantee::class_a();
        impossible.delay = Some(Dur::from_us(10));
        assert_eq!(p.max_level(&TenantRequest::new(16, impossible)), None);
        // No delay guarantee -> anywhere.
        assert_eq!(
            p.max_level(&TenantRequest::new(16, Guarantee::class_b())),
            Some(Level::CrossPod)
        );
    }

    #[test]
    fn impossible_delay_falls_back_to_single_server() {
        let mut p = SiloPlacer::new(fig5_topo(300));
        let mut g = Guarantee::class_a();
        g.delay = Some(Dur::from_us(1));
        // Fits one server (5 slots): accepted at SameHost.
        let placed = p.try_place(&TenantRequest::new(4, g)).unwrap();
        assert_eq!(placed.span, Level::SameHost);
        // Too big for one server: rejected for delay.
        assert_eq!(
            p.try_place(&TenantRequest::new(6, g)),
            Err(RejectReason::DelayUnsatisfiable)
        );
    }

    #[test]
    fn nic_sustained_rate_is_enforced() {
        // 5 slots per server, B = 3 Gbps: 5 co-located senders would need
        // 15 Gbps of NIC hose; the placer must spread or reject.
        let mut p = SiloPlacer::new(fig5_topo(312));
        let req = TenantRequest::new(
            10,
            Guarantee {
                b: Rate::from_gbps(3),
                s: Bytes(1500),
                bmax: Rate::from_gbps(3),
                delay: None,
            },
        );
        match p.try_place(&req) {
            Ok(placed) => {
                // min(k, 10-k)·3G <= 10G  =>  k <= 3 per server... but with
                // only 3 servers × 5 slots, 10 VMs need k >= 4 somewhere:
                // min(4,6)·3 = 12G > 10G, so acceptance is impossible.
                panic!("should not fit, got {:?}", placed.hosts);
            }
            Err(e) => assert_eq!(e, RejectReason::NetworkUnsatisfiable),
        }
    }

    #[test]
    fn admits_until_slots_or_network_exhausted() {
        let topo = Topology::build(TreeParams {
            pods: 1,
            racks_per_pod: 2,
            servers_per_rack: 4,
            vm_slots_per_server: 4,
            ..TreeParams::ns2_paper()
        });
        let mut p = SiloPlacer::new(topo);
        let mut accepted = 0;
        for _ in 0..20 {
            if p.try_place(&TenantRequest::new(4, Guarantee::class_a()))
                .is_ok()
            {
                accepted += 1;
            }
        }
        // 32 slots / 4 VMs = 8 tenants max; class-A is light enough that
        // slots, not the network, should be the binding constraint here.
        assert_eq!(accepted, 8);
        assert_eq!(p.used_slots(), 32);
    }

    #[test]
    fn queue_bounds_stay_within_capacity_for_admitted_load() {
        let topo = Topology::build(TreeParams::ns2_paper());
        let mut p = SiloPlacer::new(topo);
        for _ in 0..50 {
            let _ = p.try_place(&TenantRequest::new(8, Guarantee::class_a()));
        }
        // C1 implies every port's queue bound <= its capacity.
        for i in 0..p.topo.num_ports() {
            let port = PortId(i as u32);
            let info = p.topo.port(port);
            if info.is_nic {
                continue;
            }
            if let Some(q) = p.queue_bound(port) {
                assert!(
                    q <= info.queue_capacity(),
                    "port {port:?}: bound {q} > capacity {}",
                    info.queue_capacity()
                );
            }
        }
    }
}
