//! Exact fixed-point units for simulated time, data sizes and rates.
//!
//! * [`Time`] — an absolute instant, picoseconds since simulation start.
//! * [`Dur`] — a span of time, picoseconds.
//! * [`Bytes`] — a data size in bytes.
//! * [`Rate`] — a bandwidth in bits per second.
//!
//! The central operation, [`Rate::tx_time`], computes the wire time of a
//! frame exactly: `bytes * 8 * 1e12 / bits_per_second` picoseconds, carried
//! out in `u128` and rounded up (a frame is not done until its last bit is).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

const PS_PER_NS: u64 = 1_000;
const PS_PER_US: u64 = 1_000_000;
const PS_PER_MS: u64 = 1_000_000_000;
const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute instant in simulated time (picoseconds since start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time (picoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

/// A data size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

/// A bandwidth in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rate(pub u64);

impl Time {
    pub const ZERO: Time = Time(0);
    /// A sentinel later than any reachable simulation instant.
    pub const MAX: Time = Time(u64::MAX);

    pub fn from_ns(ns: u64) -> Time {
        Time(ns * PS_PER_NS)
    }
    pub fn from_us(us: u64) -> Time {
        Time(us * PS_PER_US)
    }
    pub fn from_ms(ms: u64) -> Time {
        Time(ms * PS_PER_MS)
    }
    pub fn from_secs(s: u64) -> Time {
        Time(s * PS_PER_S)
    }
    pub fn as_ps(self) -> u64 {
        self.0
    }
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }
    /// Duration since an earlier instant; saturates at zero if `earlier` is later.
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    pub const ZERO: Dur = Dur(0);
    pub const MAX: Dur = Dur(u64::MAX);

    pub fn from_ps(ps: u64) -> Dur {
        Dur(ps)
    }
    pub fn from_ns(ns: u64) -> Dur {
        Dur(ns * PS_PER_NS)
    }
    pub fn from_us(us: u64) -> Dur {
        Dur(us * PS_PER_US)
    }
    pub fn from_ms(ms: u64) -> Dur {
        Dur(ms * PS_PER_MS)
    }
    pub fn from_secs(s: u64) -> Dur {
        Dur(s * PS_PER_S)
    }
    pub fn from_secs_f64(s: f64) -> Dur {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite duration");
        Dur((s * PS_PER_S as f64).round() as u64)
    }
    pub fn as_ps(self) -> u64 {
        self.0
    }
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }
    /// Scale by a non-negative float (rounds to nearest picosecond).
    pub fn mul_f64(self, f: f64) -> Dur {
        assert!(f >= 0.0 && f.is_finite(), "negative or non-finite scale");
        Dur((self.0 as f64 * f).round() as u64)
    }
}

impl Bytes {
    pub const ZERO: Bytes = Bytes(0);

    pub fn from_kb(kb: u64) -> Bytes {
        Bytes(kb * 1_000)
    }
    pub fn from_kib(kib: u64) -> Bytes {
        Bytes(kib * 1_024)
    }
    pub fn from_mb(mb: u64) -> Bytes {
        Bytes(mb * 1_000_000)
    }
    pub fn as_u64(self) -> u64 {
        self.0
    }
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
    pub fn bits(self) -> u64 {
        self.0 * 8
    }
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }
}

impl Rate {
    pub const ZERO: Rate = Rate(0);

    pub fn from_bps(bps: u64) -> Rate {
        Rate(bps)
    }
    pub fn from_kbps(kbps: u64) -> Rate {
        Rate(kbps * 1_000)
    }
    pub fn from_mbps(mbps: u64) -> Rate {
        Rate(mbps * 1_000_000)
    }
    pub fn from_gbps(gbps: u64) -> Rate {
        Rate(gbps * 1_000_000_000)
    }
    pub fn as_bps(self) -> u64 {
        self.0
    }
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Bytes per second as a float (for analytic models).
    pub fn bytes_per_sec(self) -> f64 {
        self.0 as f64 / 8.0
    }
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Exact time to transmit `b` bytes at this rate, rounded **up** to the
    /// next picosecond. Panics on a zero rate (a zero-rate link can never
    /// transmit; callers must special-case it).
    pub fn tx_time(self, b: Bytes) -> Dur {
        assert!(self.0 > 0, "tx_time on zero rate");
        let num = b.0 as u128 * 8 * PS_PER_S as u128;
        Dur(num.div_ceil(self.0 as u128) as u64)
    }

    /// Bytes that can be served in `d` at this rate (rounded down).
    pub fn bytes_in(self, d: Dur) -> Bytes {
        let num = self.0 as u128 * d.0 as u128;
        Bytes((num / (8 * PS_PER_S as u128)) as u64)
    }

    /// Scale by a non-negative float.
    pub fn mul_f64(self, f: f64) -> Rate {
        assert!(f >= 0.0 && f.is_finite(), "negative or non-finite scale");
        Rate((self.0 as f64 * f).round() as u64)
    }

    pub fn saturating_sub(self, other: Rate) -> Rate {
        Rate(self.0.saturating_sub(other.0))
    }
    pub fn min(self, other: Rate) -> Rate {
        Rate(self.0.min(other.0))
    }
    pub fn max(self, other: Rate) -> Rate {
        Rate(self.0.max(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, d: Dur) -> Time {
        Time(self.0 + d.0)
    }
}
impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}
impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, d: Dur) -> Time {
        Time(self.0 - d.0)
    }
}
impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, t: Time) -> Dur {
        Dur(self.0 - t.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, d: Dur) -> Dur {
        Dur(self.0 + d.0)
    }
}
impl AddAssign for Dur {
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}
impl Sub for Dur {
    type Output = Dur;
    fn sub(self, d: Dur) -> Dur {
        Dur(self.0 - d.0)
    }
}
impl SubAssign for Dur {
    fn sub_assign(&mut self, d: Dur) {
        self.0 -= d.0;
    }
}
impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, k: u64) -> Dur {
        Dur(self.0 * k)
    }
}
impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}
impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, b: Bytes) -> Bytes {
        Bytes(self.0 + b.0)
    }
}
impl AddAssign for Bytes {
    fn add_assign(&mut self, b: Bytes) {
        self.0 += b.0;
    }
}
impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, b: Bytes) -> Bytes {
        Bytes(self.0 - b.0)
    }
}
impl SubAssign for Bytes {
    fn sub_assign(&mut self, b: Bytes) {
        self.0 -= b.0;
    }
}
impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, k: u64) -> Bytes {
        Bytes(self.0 * k)
    }
}
impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, r: Rate) -> Rate {
        Rate(self.0 + r.0)
    }
}
impl AddAssign for Rate {
    fn add_assign(&mut self, r: Rate) {
        self.0 += r.0;
    }
}
impl Sub for Rate {
    type Output = Rate;
    fn sub(self, r: Rate) -> Rate {
        Rate(self.0 - r.0)
    }
}
impl Mul<u64> for Rate {
    type Output = Rate;
    fn mul(self, k: u64) -> Rate {
        Rate(self.0 * k)
    }
}
impl Div<u64> for Rate {
    type Output = Rate;
    fn div(self, k: u64) -> Rate {
        Rate(self.0 / k)
    }
}
impl Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        iter.fold(Rate::ZERO, |a, b| a + b)
    }
}
impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}
impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{:.1}ns", self.as_ns_f64())
        }
    }
}
impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}MB", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}KB", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}
impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gbps", self.as_gbps_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.1}Mbps", self.as_mbps_f64())
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn void_frame_tx_time_is_exact() {
        // The paper's headline: an 84-byte frame at 10 Gbps is 67.2 ns.
        let d = Rate::from_gbps(10).tx_time(Bytes(84));
        assert_eq!(d.as_ps(), 67_200);
    }

    #[test]
    fn mtu_frame_at_1gbps() {
        // 1500 B at 1 Gbps = 12 us exactly.
        let d = Rate::from_gbps(1).tx_time(Bytes(1500));
        assert_eq!(d, Dur::from_us(12));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666..s -> must round up.
        let d = Rate::from_bps(3).tx_time(Bytes(1));
        assert_eq!(d.as_ps(), (8_000_000_000_000u64).div_ceil(3));
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let r = Rate::from_gbps(10);
        let b = Bytes(123_456);
        let d = r.tx_time(b);
        let back = r.bytes_in(d);
        assert!(back >= b && back.as_u64() - b.as_u64() <= 1);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_us(5) + Dur::from_ns(500);
        assert_eq!(t.as_ps(), 5_500_000);
        assert_eq!(t - Time::from_us(5), Dur::from_ns(500));
        assert_eq!(Time::from_us(1).since(Time::from_us(2)), Dur::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Dur::from_ns(68)), "68.0ns");
        assert_eq!(format!("{}", Rate::from_gbps(10)), "10.00Gbps");
        assert_eq!(format!("{}", Bytes::from_kb(312)), "312.00KB");
    }

    #[test]
    fn rate_scaling() {
        assert_eq!(Rate::from_gbps(10).mul_f64(0.5), Rate::from_gbps(5));
        assert_eq!(Rate::from_gbps(2) / 4, Rate::from_mbps(500));
    }

    #[test]
    fn queue_capacity_example() {
        // Paper §4.2.1: a 10 Gbps port with a 100 KB buffer has an 80 us
        // queue capacity.
        let d = Rate::from_gbps(10).tx_time(Bytes::from_kb(100));
        assert_eq!(d, Dur::from_us(80));
    }
}
