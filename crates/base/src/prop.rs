//! Minimal property-based testing harness: `forall` with greedy shrinking.
//!
//! The workspace is dependency-free by policy (the build environment has
//! no crate cache), so `proptest` is not available. This module carries
//! the slice of it the netcalc verification suite needs:
//!
//! * seeded random generation over a caller-supplied generator;
//! * a configurable number of cases (`SILO_PROP_CASES`, default 256);
//! * a reproducible stream (`SILO_PROP_SEED`, fixed default — CI pins it
//!   explicitly so failures replay bit-identically);
//! * greedy shrinking: when a case fails, caller-supplied `shrink`
//!   candidates are tried repeatedly until none of them still fail, and
//!   the panic reports that locally-minimal counterexample.
//!
//! The harness is deliberately not generic over strategies: generators
//! and shrinkers are plain closures, which is all the curve-algebra
//! properties require.

use crate::dist::seeded_rng;
use std::fmt::Debug;

pub use rand::rngs::StdRng;
pub use rand::Rng;

/// Knobs for one `forall` run, resolved from the environment.
#[derive(Debug, Clone, Copy)]
pub struct PropConfig {
    /// Base seed of the case stream (`SILO_PROP_SEED`).
    pub seed: u64,
    /// Number of random cases (`SILO_PROP_CASES`).
    pub cases: usize,
    /// Cap on accepted shrink steps, so a pathological shrinker cannot
    /// loop forever.
    pub max_shrink_steps: usize,
}

/// Environment variable naming the base seed of the case stream. Shared
/// with the fault-schedule explorer so one knob replays both harnesses.
pub const SEED_VAR: &str = "SILO_PROP_SEED";
/// Environment variable naming the number of random cases.
pub const CASES_VAR: &str = "SILO_PROP_CASES";

impl PropConfig {
    pub fn from_env() -> PropConfig {
        PropConfig {
            seed: crate::env::parse_or(SEED_VAR, 0x5110_1234),
            cases: crate::env::parse_or(CASES_VAR, 256),
            max_shrink_steps: 10_000,
        }
    }
}

/// A locally-minimal counterexample produced by [`shrink_failure`].
#[derive(Debug, Clone)]
pub struct Shrunk<T> {
    /// The shrunken input; no `shrink` candidate of it still fails.
    pub input: T,
    /// The failure message the property produced on `input`.
    pub why: String,
    /// Accepted shrink steps taken from the original input.
    pub steps: usize,
}

/// Greedily shrink a failing input: repeatedly try the `shrink`
/// candidates of the current counterexample, adopting the first that
/// still fails, until none does (or `max_steps` accepted steps).
///
/// This is the engine under [`forall`]'s reporting, exposed on its own
/// so non-property harnesses can minimize failures too — the
/// fault-schedule explorer feeds it whole `FaultPlan`s with "the
/// simulated run still exhibits the violation" as `fails`.
pub fn shrink_failure<T: Clone>(
    input: T,
    first_why: String,
    shrink: impl Fn(&T) -> Vec<T>,
    mut fails: impl FnMut(&T) -> Option<String>,
    max_steps: usize,
) -> Shrunk<T> {
    let mut cur = input;
    let mut why = first_why;
    let mut steps = 0;
    'shrinking: while steps < max_steps {
        for cand in shrink(&cur) {
            if let Some(w) = fails(&cand) {
                cur = cand;
                why = w;
                steps += 1;
                continue 'shrinking;
            }
        }
        break;
    }
    Shrunk {
        input: cur,
        why,
        steps,
    }
}

/// Check `prop` on `cases` random inputs from `gen`; on failure, shrink
/// greedily via `shrink` and panic with the minimal counterexample.
///
/// `shrink` returns candidate *simpler* inputs (it may return an empty
/// vector to disable shrinking). A candidate is accepted as the new
/// counterexample if the property still fails on it; the loop ends when
/// no candidate fails.
pub fn forall<T: Debug + Clone>(
    name: &str,
    mut gen: impl FnMut(&mut StdRng) -> T,
    shrink: impl Fn(&T) -> Vec<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    let cfg = PropConfig::from_env();
    let mut rng = seeded_rng(cfg.seed);
    for case in 0..cfg.cases {
        let input = gen(&mut rng);
        let Err(first_why) = prop(&input) else {
            continue;
        };
        let min = shrink_failure(
            input,
            first_why,
            &shrink,
            |cand| prop(cand).err(),
            cfg.max_shrink_steps,
        );
        panic!(
            "property '{name}' failed on case {case}/{} (seed {}; rerun with \
             SILO_PROP_SEED={} SILO_PROP_CASES={}):\n  counterexample \
             (after {} shrink steps): {:?}\n  {}",
            cfg.cases, cfg.seed, cfg.seed, cfg.cases, min.steps, min.input, min.why
        );
    }
}

/// Standard shrink candidates for a non-negative `f64`: zero, halves, and
/// round numbers below it — enough to pull curve parameters down to small
/// integers in a handful of steps.
pub fn shrink_f64(x: f64) -> Vec<f64> {
    if x == 0.0 {
        return Vec::new();
    }
    let mut out = vec![0.0, x / 2.0, x.trunc()];
    if x > 1.0 {
        out.push(1.0);
    }
    out.retain(|&c| c.is_finite() && c >= 0.0 && c != x);
    out.dedup();
    out
}

/// Standard shrink candidates for a vector: drop each element in turn,
/// then shrink each element in place with `elem`.
pub fn shrink_vec<T: Clone>(v: &[T], elem: impl Fn(&T) -> Vec<T>) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if v.len() > 1 {
        for i in 0..v.len() {
            let mut smaller = v.to_vec();
            smaller.remove(i);
            out.push(smaller);
        }
    }
    for (i, x) in v.iter().enumerate() {
        for cand in elem(x) {
            let mut copy = v.to_vec();
            copy[i] = cand;
            out.push(copy);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_is_silent() {
        forall(
            "u64 plus one is bigger",
            |rng| rng.random_range(0u64..1_000_000),
            |_| Vec::new(),
            |&x| {
                if x + 1 > x {
                    Ok(())
                } else {
                    Err("overflow".into())
                }
            },
        );
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        // x < 50 fails for every x ≥ 50; shrinking by halving/decrement
        // must land exactly on the boundary value 50.
        let res = std::panic::catch_unwind(|| {
            forall(
                "all values below 50",
                |rng| rng.random_range(0u64..1_000_000),
                |&x| {
                    let mut c = vec![x / 2];
                    if x > 0 {
                        c.push(x - 1);
                    }
                    c
                },
                |&x| {
                    if x < 50 {
                        Ok(())
                    } else {
                        Err(format!("{x} is not below 50"))
                    }
                },
            );
        });
        let msg = *res
            .expect_err("property must fail")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("counterexample"), "{msg}");
        assert!(msg.contains(": 50"), "not shrunk to the boundary: {msg}");
    }

    #[test]
    fn shrink_failure_works_outside_forall() {
        // Minimize a vector against "sum >= 10" the way the explorer
        // minimizes fault plans: drop elements, then shrink them.
        let v = vec![7u64, 8, 9];
        let min = shrink_failure(
            v,
            "seed".into(),
            |v| {
                let mut c: Vec<Vec<u64>> = (0..v.len())
                    .map(|i| {
                        let mut s = v.clone();
                        s.remove(i);
                        s
                    })
                    .collect();
                c.extend((0..v.len()).map(|i| {
                    let mut s = v.clone();
                    s[i] /= 2;
                    s
                }));
                c
            },
            |v| {
                let sum: u64 = v.iter().sum();
                (sum >= 10).then(|| format!("sum {sum}"))
            },
            1_000,
        );
        assert!(min.input.iter().sum::<u64>() >= 10);
        // Locally minimal: no single drop or halving still fails.
        assert_eq!(min.input, vec![1, 9], "greedy floor for this shrinker");
        assert!(min.steps > 0 && min.why.starts_with("sum"));
    }

    #[test]
    fn shrink_f64_pulls_toward_zero() {
        assert!(shrink_f64(0.0).is_empty());
        let c = shrink_f64(7.3);
        assert!(c.contains(&0.0) && c.contains(&7.0) && c.contains(&1.0));
    }

    #[test]
    fn shrink_vec_drops_and_shrinks_elements() {
        let v = vec![3.0, 5.0];
        let cands = shrink_vec(&v, |&x| shrink_f64(x));
        assert!(cands.contains(&vec![3.0]));
        assert!(cands.contains(&vec![5.0]));
        assert!(cands.contains(&vec![0.0, 5.0]));
    }
}
