//! A deterministic, seed-free FxHash-style hasher for the simulator's hot
//! lookup tables.
//!
//! `std::collections::HashMap`'s default `RandomState` does two things we
//! don't want on the packet path: it seeds SipHash from OS entropy (so
//! iteration order varies run-to-run — the simulator must never iterate a
//! map in a way that affects results, but determinism-by-construction is
//! cheaper to audit than determinism-by-discipline), and it burns ~40 ns
//! per lookup hashing 8-byte keys that a multiply-rotate mixes in ~1 ns.
//!
//! The mix is the classic Fx function used by rustc's interners: fold each
//! 8-byte word `w` as `h = (rotl5(h) ^ w) * K` with a fixed odd constant.
//! It is *not* DoS-resistant — fine here, since every key is
//! simulator-internal (connection ids, host pairs), never attacker data.

use std::hash::{BuildHasherDefault, Hasher};

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher with a fixed (deterministic) initial state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]: zero-sized, `Default`, no random state.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with deterministic Fx hashing.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with deterministic Fx hashing.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |x: (u32, u32)| {
            use std::hash::BuildHasher;
            FxBuildHasher::default().hash_one(x)
        };
        assert_eq!(hash((3, 17)), hash((3, 17)));
        assert_ne!(hash((3, 17)), hash((17, 3)));
    }

    #[test]
    fn map_works_with_tuple_and_wide_keys() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for a in 0..50u32 {
            for b in 0..50u32 {
                m.insert((a, b), (a * 1000 + b) as u64);
            }
        }
        assert_eq!(m.len(), 2500);
        assert_eq!(m.get(&(49, 1)), Some(&49001));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(u64::MAX));
        assert!(!s.insert(u64::MAX));
    }
}
