//! A minimal JSON value and parser (no external crates, like everything
//! else in the workspace).
//!
//! Grown for the flight-recorder interchange formats and now shared by
//! every layer that reads structured artifacts back in: `silo-trace`'s
//! JSONL loader and Perfetto validator (`silo-bench::tracefile`) and the
//! replayable fault-schedule format (`silo-simnet::faults`). Writers in
//! this workspace emit JSON by hand (deterministic, exact formatting);
//! this is the matching reader.

/// A parsed JSON value. Numbers are kept as `f64` (the format's own
/// model); the workspace's formats only emit integers that fit exactly,
/// and [`Json::as_u64`] rejects anything that doesn't round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut i = 0;
        let v = parse_value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at offset {i}"));
        }
        Ok(v)
    }

    /// Object field lookup (None on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Emit an `f64` in shortest-round-trip form for the workspace's
/// hand-written JSON writers (`FaultPlan::to_json` drift factors). The
/// contract the round-trip property tests lean on:
///
/// * shortest decimal that parses back to the same bits (`{:?}`);
/// * `-0.0` keeps its sign (`"-0.0"`, never `"0"` — the sign bit is
///   observable through `f64::to_bits` and a byte-exact format must not
///   lose it);
/// * subnormals emit exactly (`5e-324` round-trips to the same bits);
/// * non-finite values are rejected: JSON has no NaN/Infinity, and every
///   workspace format validates finiteness before writing.
pub fn fmt_f64(x: f64) -> String {
    assert!(x.is_finite(), "JSON cannot represent {x}");
    // `{:?}` is shortest-round-trip and sign-preserving for every finite
    // f64 (including -0.0 and subnormals); the tests below pin that
    // contract so a formatting regression in the writer path is caught
    // here rather than as a golden mismatch three layers up.
    format!("{x:?}")
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
    if *i < b.len() && b[*i] == c {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {}", c as char, i))
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *i += 1;
            let mut fields = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, i);
                let key = parse_string(b, i)?;
                skip_ws(b, i);
                expect(b, i, b':')?;
                let val = parse_value(b, i)?;
                fields.push((key, val));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {i}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, i)?)),
        Some(b't') if b[*i..].starts_with(b"true") => {
            *i += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*i..].starts_with(b"false") => {
            *i += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*i..].starts_with(b"null") => {
            *i += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *i;
            while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                *i += 1;
            }
            let tok = std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?;
            tok.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{tok}' at offset {start}"))
        }
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    expect(b, i, b'"')?;
    let mut s = String::new();
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return Ok(s);
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'u') => {
                        let hex = std::str::from_utf8(b.get(*i + 1..*i + 5).ok_or("bad \\u")?)
                            .map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        s.push(char::from_u32(cp).ok_or("bad codepoint")?);
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at offset {i}")),
                }
                *i += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through unmodified.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b.get(*i..*i + len).ok_or("truncated utf8")?;
                s.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *i += len;
            }
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_the_workspace_emits() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":[true,null,2.5],"d":{"e":false}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_arr).unwrap().len(), 3);
        assert_eq!(
            v.get("d").and_then(|d| d.get("e")).and_then(Json::as_bool),
            Some(false)
        );
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn f64_round_trips_shortest_debug_format() {
        // FaultPlan serializes drift factors with `{:?}` (shortest
        // round-trip); the reader must recover them exactly.
        for x in [1.0, 8.0, 1.5, std::f64::consts::PI, 1e9, 1.0000000001] {
            let v = Json::parse(&format!("{x:?}")).unwrap();
            assert_eq!(v.as_f64(), Some(x));
        }
    }

    #[test]
    fn fmt_f64_preserves_negative_zero_and_subnormals() {
        // -0.0 must keep its sign: `-0.0 == 0.0` under PartialEq, so only
        // a bit-level check catches a writer that normalizes it away.
        assert_eq!(fmt_f64(-0.0), "-0.0");
        assert_eq!(fmt_f64(0.0), "0.0");
        let back = Json::parse(&fmt_f64(-0.0)).unwrap().as_f64().unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
        // Smallest positive subnormal and a mid-range subnormal.
        for x in [f64::from_bits(1), f64::from_bits(0x000f_ffff_ffff_ffff)] {
            assert!(x != 0.0 && !x.is_normal(), "test value must be subnormal");
            let s = fmt_f64(x);
            let back = Json::parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "subnormal {s} round-trip");
        }
        // Dump(parse(dump(x))) is a fixed point — the byte-determinism
        // the fault-plan golden suite depends on.
        for x in [-0.0, 5e-324, 1.5, -2.75e17] {
            let s = fmt_f64(x);
            let re = fmt_f64(Json::parse(&s).unwrap().as_f64().unwrap());
            assert_eq!(re, s);
        }
    }

    #[test]
    #[should_panic(expected = "cannot represent")]
    fn fmt_f64_rejects_non_finite() {
        fmt_f64(f64::NAN);
    }

    #[test]
    fn u64_rejects_non_integers() {
        assert_eq!(Json::parse("2.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("12").unwrap().as_u64(), Some(12));
    }
}
