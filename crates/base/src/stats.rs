//! Statistics used by the experiment harnesses: exact percentiles over
//! collected samples, empirical CDFs, fixed-bucket histograms, and online
//! (streaming) mean/variance.

/// A collection of `f64` samples supporting exact order statistics.
///
/// Samples are stored raw and sorted lazily on first query; this is the
/// right trade-off for experiment harnesses that record everything then
/// report at the end.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    pub fn new() -> Summary {
        Summary::default()
    }

    pub fn record(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample");
        self.samples.push(v);
        self.sorted = false;
    }

    pub fn extend(&mut self, vs: impl IntoIterator<Item = f64>) {
        for v in vs {
            self.record(v);
        }
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
            self.sorted = true;
        }
    }

    /// Exact p-quantile (`0.0 ..= 1.0`) using the nearest-rank method, which
    /// matches how tail latency is conventionally reported ("the 99th
    /// percentile request"). Returns `None` on an empty summary.
    pub fn quantile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "quantile out of range");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }
    pub fn p95(&mut self) -> Option<f64> {
        self.quantile(0.95)
    }
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }
    pub fn p999(&mut self) -> Option<f64> {
        self.quantile(0.999)
    }
    pub fn min(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.first().copied()
    }
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Fraction of samples strictly greater than `threshold`.
    pub fn frac_above(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&v| v > threshold).count() as f64 / self.samples.len() as f64
    }

    /// Empirical CDF sampled at `points` evenly spaced quantiles
    /// (plus the max), suitable for plotting.
    pub fn cdf(&mut self, points: usize) -> Cdf {
        assert!(points >= 2, "need at least two CDF points");
        self.ensure_sorted();
        let mut pts = Vec::with_capacity(points);
        if self.samples.is_empty() {
            return Cdf { points: pts };
        }
        for i in 0..points {
            let p = i as f64 / (points - 1) as f64;
            let n = self.samples.len();
            let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
            pts.push((self.samples[rank - 1], p));
        }
        Cdf { points: pts }
    }

    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// An empirical CDF: `(value, cumulative probability)` pairs sorted by value.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    pub points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Probability that a sample is `<= v` (step interpolation).
    pub fn prob_le(&self, v: f64) -> f64 {
        let mut p = 0.0;
        for &(x, q) in &self.points {
            if x <= v {
                p = q;
            } else {
                break;
            }
        }
        p
    }
}

/// A fixed-width-bucket histogram over `[lo, hi)` with overflow/underflow
/// buckets, used for utilization and occupancy traces.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, nbuckets: usize) -> Histogram {
        assert!(hi > lo && nbuckets > 0);
        Histogram {
            lo,
            hi,
            buckets: vec![0; nbuckets],
            underflow: 0,
            overflow: 0,
        }
    }

    pub fn record(&mut self, v: f64) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.buckets.len();
            let idx = ((v - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.buckets[idx.min(n - 1)] += 1;
        }
    }

    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }
}

/// Streaming mean/variance (Welford's algorithm) for metrics too voluminous
/// to store, e.g. per-packet queueing delays in long simulations.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn record(&mut self, v: f64) {
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.n
    }
    pub fn mean(&self) -> f64 {
        self.mean
    }
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
    pub fn min(&self) -> f64 {
        self.min
    }
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A streaming log-bucketed histogram over `u64` values (HDR-histogram
/// style): values below `2^sub_bits` are counted exactly, and every octave
/// above that is split into `2^sub_bits` equal sub-buckets, bounding the
/// relative quantile error at `2^-sub_bits` while using a fixed, small
/// amount of memory. Unlike [`Summary`] it never retains samples, so it is
/// safe to keep per-tenant over arbitrarily long sweeps; unlike
/// [`OnlineStats`] it recovers tail quantiles, not just moments.
///
/// Merging is exact: because bucket boundaries depend only on `sub_bits`,
/// merging two histograms is a per-bucket count addition and yields exactly
/// the histogram of the concatenated sample streams.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    sub_bits: u32,
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl LogHistogram {
    /// `sub_bits` sub-buckets per octave (power of two); 5 gives ≤ 3.2%
    /// relative error in ~15 KB, 7 gives ≤ 0.8% in ~58 KB.
    pub fn new(sub_bits: u32) -> LogHistogram {
        assert!((1..=16).contains(&sub_bits), "sub_bits out of range");
        // Buckets: 2^sub_bits exact values, then one group of 2^sub_bits
        // sub-buckets for each of the (64 - sub_bits) remaining octaves.
        let n = ((65 - sub_bits) as usize) << sub_bits;
        LogHistogram {
            sub_bits,
            counts: vec![0; n],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    fn index_of(&self, v: u64) -> usize {
        let b = self.sub_bits;
        if v >> b == 0 {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let shift = msb - b;
            (((shift + 1) as usize) << b) + ((v >> shift) as usize - (1usize << b))
        }
    }

    /// Inclusive `[lo, hi]` value range of bucket `idx`.
    pub fn bucket_bounds(&self, idx: usize) -> (u64, u64) {
        let b = self.sub_bits;
        let oct = idx >> b;
        if oct == 0 {
            (idx as u64, idx as u64)
        } else {
            let shift = (oct - 1) as u32;
            let base = (1u64 << b) + (idx as u64 & ((1u64 << b) - 1));
            // hi = lo + bucket_width - 1, written so the top bucket
            // (ending exactly at u64::MAX) cannot overflow.
            let lo = base << shift;
            (lo, lo + ((1u64 << shift) - 1))
        }
    }

    /// Inclusive `[lo, hi]` range of the bucket that `v` falls into — the
    /// resolution of the histogram around `v`.
    pub fn bucket_bounds_of(&self, v: u64) -> (u64, u64) {
        self.bucket_bounds(self.index_of(v))
    }

    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.index_of(v);
        self.counts[idx] += n;
        self.total += n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128 * n as u128;
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact minimum recorded value (`None` if empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Exact maximum recorded value (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Exact mean (sums are kept in `u128`, so no precision loss on the way
    /// in; the division is the only rounding step).
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// Nearest-rank p-quantile estimate: the upper bound of the bucket
    /// holding the rank-`⌈p·n⌉` sample, clamped to the exact max. The true
    /// sample lies in the same bucket, so the error is at most one bucket
    /// width (relative error ≤ `2^-sub_bits`).
    pub fn quantile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "quantile out of range");
        if self.total == 0 {
            return None;
        }
        let rank = ((p * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bucket_bounds(idx).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Exact merge: afterwards `self` is exactly the histogram of both
    /// sample streams. Panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.sub_bits, other.sub_bits, "bucket layouts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Bytes retained by the bucket array (for memory-budget accounting).
    pub fn mem_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u64>()
    }

    /// Reset to empty, keeping the bucket allocation. Lets a caller reuse
    /// one histogram per window instead of reallocating the bucket array
    /// (the telemetry recorder does this every sampling interval).
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let mut s = Summary::new();
        s.extend((1..=100).map(|i| i as f64));
        assert_eq!(s.quantile(0.99), Some(99.0));
        assert_eq!(s.quantile(0.50), Some(50.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
    }

    #[test]
    fn quantile_empty() {
        let mut s = Summary::new();
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    fn frac_above_counts_strictly() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.frac_above(2.0), 0.5);
        assert_eq!(s.frac_above(0.0), 1.0);
        assert_eq!(s.frac_above(4.0), 0.0);
    }

    #[test]
    fn cdf_monotone() {
        let mut s = Summary::new();
        s.extend([5.0, 1.0, 3.0, 2.0, 4.0]);
        let cdf = s.cdf(11);
        for w in cdf.points.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cdf.prob_le(5.0), 1.0);
        assert_eq!(cdf.prob_le(0.5), 0.0);
    }

    #[test]
    fn online_stats_match_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.record(x);
        }
        assert!((o.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((o.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(o.min(), 2.0);
        assert_eq!(o.max(), 9.0);
    }

    #[test]
    fn log_histogram_buckets_partition_u64() {
        // Bucket ranges must tile the value space with no gaps or overlaps,
        // and index_of must be the inverse of bucket_bounds.
        let h = LogHistogram::new(3);
        let mut expected_lo = 0u64;
        for idx in 0..h.counts.len() {
            let (lo, hi) = h.bucket_bounds(idx);
            assert_eq!(lo, expected_lo, "gap before bucket {idx}");
            assert!(hi >= lo);
            assert_eq!(h.index_of(lo), idx);
            assert_eq!(h.index_of(hi), idx);
            if hi == u64::MAX {
                assert_eq!(idx, h.counts.len() - 1, "top bucket must be last");
                return;
            }
            expected_lo = hi + 1;
        }
        panic!("buckets never reached u64::MAX");
    }

    #[test]
    fn log_histogram_small_values_exact() {
        let mut h = LogHistogram::new(5);
        for v in 0..32u64 {
            h.record_n(v, v + 1);
        }
        for v in 0..32u64 {
            let (lo, hi) = h.bucket_bounds(h.index_of(v));
            assert_eq!((lo, hi), (v, v), "values below 2^sub_bits are exact");
        }
        assert_eq!(h.count(), (1..=32).sum::<u64>());
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(31));
    }

    #[test]
    fn log_histogram_quantile_error_bounded() {
        let mut h = LogHistogram::new(5);
        let mut s = Summary::new();
        let vals: Vec<u64> = (0..2000u64).map(|i| i * i * 17 + 3).collect();
        for &v in &vals {
            h.record(v);
            s.record(v as f64);
        }
        for &p in &[0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let est = h.quantile(p).unwrap();
            let exact = s.quantile(p).unwrap() as u64;
            let (lo, hi) = h.bucket_bounds(h.index_of(est));
            assert!(
                lo <= exact && exact <= hi,
                "p={p}: exact {exact} outside bucket [{lo},{hi}] of estimate {est}"
            );
        }
        assert_eq!(h.quantile(1.0), Some(*vals.iter().max().unwrap()));
    }

    #[test]
    fn log_histogram_merge_is_exact() {
        let mut a = LogHistogram::new(5);
        let mut b = LogHistogram::new(5);
        let mut all = LogHistogram::new(5);
        for i in 0..500u64 {
            let v = i * 977 % 100_000;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.counts, all.counts);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.mean(), all.mean());
    }

    #[test]
    fn log_histogram_empty() {
        let h = LogHistogram::new(5);
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn log_histogram_extremes() {
        let mut h = LogHistogram::new(5);
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(42.0);
        assert_eq!(h.total(), 12);
        assert!(h.buckets().iter().all(|&b| b == 1));
        assert_eq!(h.bucket_bounds(3), (3.0, 4.0));
    }
}
