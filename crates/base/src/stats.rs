//! Statistics used by the experiment harnesses: exact percentiles over
//! collected samples, empirical CDFs, fixed-bucket histograms, and online
//! (streaming) mean/variance.

/// A collection of `f64` samples supporting exact order statistics.
///
/// Samples are stored raw and sorted lazily on first query; this is the
/// right trade-off for experiment harnesses that record everything then
/// report at the end.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    pub fn new() -> Summary {
        Summary::default()
    }

    pub fn record(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample");
        self.samples.push(v);
        self.sorted = false;
    }

    pub fn extend(&mut self, vs: impl IntoIterator<Item = f64>) {
        for v in vs {
            self.record(v);
        }
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
            self.sorted = true;
        }
    }

    /// Exact p-quantile (`0.0 ..= 1.0`) using the nearest-rank method, which
    /// matches how tail latency is conventionally reported ("the 99th
    /// percentile request"). Returns `None` on an empty summary.
    pub fn quantile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "quantile out of range");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }
    pub fn p95(&mut self) -> Option<f64> {
        self.quantile(0.95)
    }
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }
    pub fn p999(&mut self) -> Option<f64> {
        self.quantile(0.999)
    }
    pub fn min(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.first().copied()
    }
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Fraction of samples strictly greater than `threshold`.
    pub fn frac_above(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&v| v > threshold).count() as f64 / self.samples.len() as f64
    }

    /// Empirical CDF sampled at `points` evenly spaced quantiles
    /// (plus the max), suitable for plotting.
    pub fn cdf(&mut self, points: usize) -> Cdf {
        assert!(points >= 2, "need at least two CDF points");
        self.ensure_sorted();
        let mut pts = Vec::with_capacity(points);
        if self.samples.is_empty() {
            return Cdf { points: pts };
        }
        for i in 0..points {
            let p = i as f64 / (points - 1) as f64;
            let n = self.samples.len();
            let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
            pts.push((self.samples[rank - 1], p));
        }
        Cdf { points: pts }
    }

    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// An empirical CDF: `(value, cumulative probability)` pairs sorted by value.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    pub points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Probability that a sample is `<= v` (step interpolation).
    pub fn prob_le(&self, v: f64) -> f64 {
        let mut p = 0.0;
        for &(x, q) in &self.points {
            if x <= v {
                p = q;
            } else {
                break;
            }
        }
        p
    }
}

/// A fixed-width-bucket histogram over `[lo, hi)` with overflow/underflow
/// buckets, used for utilization and occupancy traces.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, nbuckets: usize) -> Histogram {
        assert!(hi > lo && nbuckets > 0);
        Histogram {
            lo,
            hi,
            buckets: vec![0; nbuckets],
            underflow: 0,
            overflow: 0,
        }
    }

    pub fn record(&mut self, v: f64) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.buckets.len();
            let idx = ((v - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.buckets[idx.min(n - 1)] += 1;
        }
    }

    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }
}

/// Streaming mean/variance (Welford's algorithm) for metrics too voluminous
/// to store, e.g. per-packet queueing delays in long simulations.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn record(&mut self, v: f64) {
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.n
    }
    pub fn mean(&self) -> f64 {
        self.mean
    }
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
    pub fn min(&self) -> f64 {
        self.min
    }
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let mut s = Summary::new();
        s.extend((1..=100).map(|i| i as f64));
        assert_eq!(s.quantile(0.99), Some(99.0));
        assert_eq!(s.quantile(0.50), Some(50.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
    }

    #[test]
    fn quantile_empty() {
        let mut s = Summary::new();
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    fn frac_above_counts_strictly() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.frac_above(2.0), 0.5);
        assert_eq!(s.frac_above(0.0), 1.0);
        assert_eq!(s.frac_above(4.0), 0.0);
    }

    #[test]
    fn cdf_monotone() {
        let mut s = Summary::new();
        s.extend([5.0, 1.0, 3.0, 2.0, 4.0]);
        let cdf = s.cdf(11);
        for w in cdf.points.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cdf.prob_le(5.0), 1.0);
        assert_eq!(cdf.prob_le(0.5), 0.0);
    }

    #[test]
    fn online_stats_match_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.record(x);
        }
        assert!((o.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((o.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(o.min(), 2.0);
        assert_eq!(o.max(), 9.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(42.0);
        assert_eq!(h.total(), 12);
        assert!(h.buckets().iter().all(|&b| b == 1));
        assert_eq!(h.bucket_bounds(3), (3.0, 4.0));
    }
}
