//! The discrete-event priority queue used by the packet simulator and the
//! pacer's NIC batcher: a hierarchical timer wheel with a binary-heap
//! reference backend.
//!
//! # Ordering contract
//!
//! `pop` returns entries in exactly `(time, insertion order)` order — the
//! same total order a `BinaryHeap` min-heap over `(t, seq)` produces. The
//! golden-schedule and determinism suites assert the two backends are
//! bit-for-bit interchangeable, so the wheel is a pure performance choice.
//!
//! # Why a wheel
//!
//! The simulator's event pattern is monotone (time never goes backwards)
//! and mixes horizons from tens of nanoseconds (wire frames) to
//! milliseconds (RTOs, hose epochs). A comparison heap pays `O(log n)`
//! sift work — on 100+ byte entries — for every push *and* pop. The wheel
//! files each entry by the most-significant bit in which its expiry
//! differs from the current time (`6` bits per level, `8` levels,
//! `2^48` ps ≈ 281 s of horizon), so a push is O(1) and an entry cascades
//! through at most 7 slots over its whole lifetime. Slot vectors are
//! recycled through a pool, so steady-state operation allocates nothing.

use crate::units::Time;
use std::collections::{BinaryHeap, VecDeque};

const BITS: u32 = 6;
const SLOTS: usize = 1 << BITS; // 64
const LEVELS: usize = 8;
const MASK: u64 = (SLOTS as u64) - 1;

#[derive(Debug, Clone)]
struct Entry<E> {
    t: u64,
    seq: u64,
    item: E,
}

/// The `(t, seq)` min-heap wrapper for the reference backend.
#[derive(Debug)]
struct HeapEntry<E>(Entry<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, o: &Self) -> bool {
        self.0.t == o.0.t && self.0.seq == o.0.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        // Min-heap: earliest time first, FIFO on ties.
        o.0.t.cmp(&self.0.t).then(o.0.seq.cmp(&self.0.seq))
    }
}

#[derive(Debug)]
struct Wheel<E> {
    /// `slots[level][index]` holds entries whose expiry differs from `cur`
    /// first at bit-group `level` and has digit `index` there.
    slots: Vec<Vec<Vec<Entry<E>>>>,
    /// Per-level occupancy bitmaps (bit `i` set ⇔ `slots[level][i]` nonempty).
    occupied: [u64; LEVELS],
    /// Lower bound on every stored expiry; advances monotonically on pop.
    cur: u64,
    /// Entries drained from the minimal slot, sorted by `(t, seq)`, ready
    /// to pop before the wheel is consulted again.
    ready: VecDeque<Entry<E>>,
    /// Entries beyond the wheel horizon (`cur + 2^48` ps); re-filed when
    /// the wheel runs dry.
    overflow: Vec<Entry<E>>,
    /// Recycled slot vectors: steady state never allocates.
    spare: Vec<Vec<Entry<E>>>,
    len: usize,
}

impl<E> Wheel<E> {
    fn new() -> Wheel<E> {
        Wheel {
            slots: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupied: [0; LEVELS],
            cur: 0,
            ready: VecDeque::new(),
            overflow: Vec::new(),
            spare: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn digit(t: u64, level: usize) -> usize {
        ((t >> (BITS * level as u32)) & MASK) as usize
    }

    /// Level at which `t` is filed relative to `cur`: the bit-group of the
    /// most significant differing bit. `LEVELS` means "overflow".
    #[inline]
    fn level_of(&self, t: u64) -> usize {
        let diff = t ^ self.cur;
        if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / BITS) as usize
        }
    }

    fn file(&mut self, e: Entry<E>) {
        debug_assert!(e.t >= self.cur);
        let level = self.level_of(e.t);
        if level >= LEVELS {
            self.overflow.push(e);
            return;
        }
        let slot = Self::digit(e.t, level);
        self.slots[level][slot].push(e);
        self.occupied[level] |= 1 << slot;
    }

    fn push(&mut self, e: Entry<E>) {
        self.len += 1;
        // An entry due before `cur` (a zero-delay or past-stamp push — the
        // NIC batcher pops stamps up to a whole batch window ahead of the
        // pushes that follow) can never be filed in the wheel; it merges
        // into `ready`, as does anything due no later than the drained
        // batch, keeping the (t, seq) order exact.
        let into_ready = e.t < self.cur
            || match self.ready.back() {
                Some(back) => e.t <= back.t,
                None => false,
            };
        if into_ready {
            let pos = self.ready.partition_point(|r| (r.t, r.seq) < (e.t, e.seq));
            self.ready.insert(pos, e);
        } else {
            self.file(e);
        }
    }

    /// Ensure `ready` holds the minimal pending entries (if any exist).
    fn prime(&mut self) {
        if !self.ready.is_empty() || self.len == 0 {
            return;
        }
        loop {
            // Lowest non-empty level holds the globally minimal entry.
            let mut level = None;
            for (l, &bm) in self.occupied.iter().enumerate() {
                if bm != 0 {
                    level = Some(l);
                    break;
                }
            }
            let Some(l) = level else {
                // Wheel dry: re-file the overflow relative to its minimum.
                debug_assert!(!self.overflow.is_empty());
                let min_t = self.overflow.iter().map(|e| e.t).min().expect("nonempty");
                self.cur = self.cur.max(min_t);
                let pending = std::mem::take(&mut self.overflow);
                for e in pending {
                    self.file(e);
                }
                continue;
            };
            // Minimal occupied slot at that level. Occupied slots are never
            // below the current digit (that would mean a past expiry).
            let slot = self.occupied[l].trailing_zeros() as usize;
            debug_assert!(slot >= Self::digit(self.cur, l) || l == 0);
            let mut batch = std::mem::replace(
                &mut self.slots[l][slot],
                self.spare.pop().unwrap_or_default(),
            );
            self.occupied[l] &= !(1 << slot);
            if l == 0 {
                // Level-0 slots are a single picosecond: every entry shares
                // one expiry, so FIFO order is just the insertion sequence.
                self.cur = batch[0].t;
                batch.sort_unstable_by_key(|e| e.seq);
                debug_assert!(batch.iter().all(|e| e.t == self.cur));
                self.ready.extend(batch.drain(..));
                self.spare.push(batch);
                return;
            }
            // Cascade: advance to the slot's base time and re-file its
            // entries one level (or more) down.
            let base = (self.cur & !((1u64 << (BITS * (l as u32 + 1))) - 1))
                | ((slot as u64) << (BITS * l as u32));
            self.cur = self.cur.max(base);
            for e in batch.drain(..) {
                self.file(e);
            }
            self.spare.push(batch);
        }
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        self.prime();
        let e = self.ready.pop_front()?;
        self.len -= 1;
        Some(e)
    }

    fn peek_time(&mut self) -> Option<Time> {
        self.prime();
        self.ready.front().map(|e| Time(e.t))
    }
}

/// Which engine backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Hierarchical timer wheel (the default).
    #[default]
    Wheel,
    /// `BinaryHeap` reference implementation, kept for differential tests
    /// and before/after benchmarking.
    Heap,
}

impl QueueBackend {
    pub fn label(self) -> &'static str {
        match self {
            QueueBackend::Wheel => "wheel",
            QueueBackend::Heap => "heap",
        }
    }
}

enum Inner<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<HeapEntry<E>>),
}

/// A monotone discrete-event queue ordered by `(time, insertion order)`.
pub struct EventQueue<E> {
    inner: Inner<E>,
    seq: u64,
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Timer-wheel backed queue (the production configuration).
    pub fn new() -> EventQueue<E> {
        EventQueue::with_backend(QueueBackend::Wheel)
    }

    /// Reference `BinaryHeap` backed queue (differential tests, benchmarks).
    pub fn reference_heap() -> EventQueue<E> {
        EventQueue::with_backend(QueueBackend::Heap)
    }

    pub fn with_backend(backend: QueueBackend) -> EventQueue<E> {
        let inner = match backend {
            QueueBackend::Wheel => Inner::Wheel(Wheel::new()),
            QueueBackend::Heap => Inner::Heap(BinaryHeap::new()),
        };
        EventQueue {
            inner,
            seq: 0,
            peak_len: 0,
        }
    }

    pub fn push(&mut self, t: Time, item: E) {
        let e = Entry {
            t: t.as_ps(),
            seq: self.seq,
            item,
        };
        self.seq += 1;
        match &mut self.inner {
            Inner::Wheel(w) => w.push(e),
            Inner::Heap(h) => h.push(HeapEntry(e)),
        }
        self.peak_len = self.peak_len.max(self.len());
    }

    pub fn pop(&mut self) -> Option<(Time, E)> {
        match &mut self.inner {
            Inner::Wheel(w) => w.pop().map(|e| (Time(e.t), e.item)),
            Inner::Heap(h) => h.pop().map(|HeapEntry(e)| (Time(e.t), e.item)),
        }
    }

    /// Earliest pending expiry without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        match &mut self.inner {
            Inner::Wheel(w) => w.peek_time(),
            Inner::Heap(h) => h.peek().map(|he| Time(he.0.t)),
        }
    }

    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Wheel(w) => w.len,
            Inner::Heap(h) => h.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the queue depth over the queue's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Total entries ever pushed (== the dispatch sequence counter).
    pub fn pushed(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::seeded_rng;
    use rand::Rng;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.push(Time(50), "b");
        q.push(Time(10), "a");
        q.push(Time(50), "c");
        q.push(Time(7), "z");
        assert_eq!(q.pop(), Some((Time(7), "z")));
        assert_eq!(q.pop(), Some((Time(10), "a")));
        assert_eq!(q.pop(), Some((Time(50), "b")));
        assert_eq!(q.pop(), Some((Time(50), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time(100), 0u32);
        assert_eq!(q.pop(), Some((Time(100), 0)));
        // Zero-delay self-push at the current time must come after already
        // pending same-time entries.
        q.push(Time(200), 1);
        q.push(Time(200), 2);
        assert_eq!(q.pop(), Some((Time(200), 1)));
        q.push(Time(200), 3);
        assert_eq!(q.pop(), Some((Time(200), 2)));
        assert_eq!(q.pop(), Some((Time(200), 3)));
    }

    #[test]
    fn far_horizon_entries_survive_overflow() {
        let mut q = EventQueue::new();
        q.push(Time(u64::MAX - 3), 1u8);
        q.push(Time(5), 2);
        q.push(Time(1u64 << 55), 3);
        assert_eq!(q.pop(), Some((Time(5), 2)));
        assert_eq!(q.pop(), Some((Time(1u64 << 55), 3)));
        assert_eq!(q.pop(), Some((Time(u64::MAX - 3), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn matches_reference_heap_on_random_monotone_churn() {
        let mut rng = seeded_rng(1234);
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::reference_heap();
        let mut now = 0u64;
        let mut next_id = 0u64;
        for _ in 0..50_000 {
            if rng.random::<f64>() < 0.55 || wheel.is_empty() {
                // Mixed horizons: ns-scale wire events, ms-scale timers,
                // occasional zero-delay self-pushes.
                // `9` pushes a *past* stamp (the NIC batcher pops stamps up
                // to a batch window ahead of later enqueues).
                let t = match rng.random_range(0..11u32) {
                    0 => now,
                    1..=6 => now + rng.random_range(0..2_000_000u64),
                    7 | 8 => now + rng.random_range(0..50_000_000u64),
                    9 => now.saturating_sub(rng.random_range(0..5_000_000u64)),
                    _ => now + rng.random_range(0..2_000_000_000u64),
                };
                wheel.push(Time(t), next_id);
                heap.push(Time(t), next_id);
                next_id += 1;
            } else {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    now = t.as_ps();
                }
            }
        }
        while let Some(b) = heap.pop() {
            assert_eq!(wheel.pop(), Some(b));
        }
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn past_pushes_between_ready_tail_and_cur_stay_ordered() {
        // Regression: pop far ahead (cur advances), then push two past
        // stamps in *increasing* order — the second lands between the
        // ready tail and `cur` and must still merge into `ready`.
        let mut q = EventQueue::new();
        q.push(Time(1_000_000), "future");
        assert_eq!(q.pop(), Some((Time(1_000_000), "future")));
        q.push(Time(10), "early");
        q.push(Time(500), "later-but-still-past");
        q.push(Time(2_000_000), "beyond");
        assert_eq!(q.pop(), Some((Time(10), "early")));
        assert_eq!(q.pop(), Some((Time(500), "later-but-still-past")));
        assert_eq!(q.pop(), Some((Time(2_000_000), "beyond")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q: EventQueue<()> = EventQueue::new();
        for i in 0..10 {
            q.push(Time(i), ());
        }
        for _ in 0..10 {
            q.pop();
        }
        q.push(Time(100), ());
        assert_eq!(q.peak_len(), 10);
        assert_eq!(q.pushed(), 11);
    }
}
