//! The discrete-event priority queue used by the packet simulator and the
//! pacer's NIC batcher: a hierarchical timer wheel with a binary-heap
//! reference backend.
//!
//! # Ordering contract
//!
//! `pop` returns entries in exactly `(time, insertion order)` order — the
//! same total order a `BinaryHeap` min-heap over `(t, seq)` produces. The
//! golden-schedule and determinism suites assert the two backends are
//! bit-for-bit interchangeable, so the wheel is a pure performance choice.
//!
//! # Why a wheel
//!
//! The simulator's event pattern is monotone (time never goes backwards)
//! and mixes horizons from tens of nanoseconds (wire frames) to
//! milliseconds (RTOs, hose epochs). A comparison heap pays `O(log n)`
//! sift work — on 100+ byte entries — for every push *and* pop. The wheel
//! files each entry by the most-significant bit in which its expiry
//! differs from the current time (`6` bits per level, `8` levels,
//! `2^48` ps ≈ 281 s of horizon), so a push is O(1) and an entry cascades
//! through at most 7 slots over its whole lifetime. Slot vectors are
//! recycled through a pool, so steady-state operation allocates nothing.
//!
//! # Cancellation
//!
//! [`EventQueue::push_cancelable`] returns an [`EvKey`] — a slot index into
//! a generation slab — and [`EventQueue::cancel`] removes that entry.
//! While an entry sits in a wheel slot (or the overflow list) the slab
//! tracks its exact position, so a cancel is an O(1) `swap_remove` — the
//! entry never cascades, never reaches the head, and costs nothing after
//! the cancel. Positions inside slot vectors carry no ordering (level-0
//! slots are sorted by `seq` at drain time; higher levels re-file by
//! expiry), so the swap cannot perturb the dequeue order. Entries already
//! drained into the `ready` run — and everything under the reference heap
//! backend, which has no O(1) delete — fall back to a lazy tombstone:
//! marked dead in the slab and skipped at `pop`/`peek_time`. Because live
//! entries keep their `(t, seq)` stamps either way, the dequeue sequence
//! of survivors is byte-identical to the dispatch-time tombstone scheme
//! this replaces, which the differential suite below proves. `len()` and
//! `peak_len()` count *live* entries only, so the queue's high-water mark
//! reflects real pending work rather than tombstone bloat.

use crate::units::Time;
use std::collections::{BinaryHeap, VecDeque};

const BITS: u32 = 6;
const SLOTS: usize = 1 << BITS; // 64
const LEVELS: usize = 8;
const MASK: u64 = (SLOTS as u64) - 1;

/// `Entry.key` value for plain (non-cancelable) pushes.
const NO_KEY: u64 = u64::MAX;

/// Handle to a pending cancelable entry: a slab index plus the generation
/// it was issued under, packed `index << 32 | gen`. Stale keys (the entry
/// already popped or cancelled) are detected by a generation mismatch, so
/// holding a key past its entry's lifetime is always safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvKey(u64);

impl EvKey {
    #[inline]
    fn pack(idx: u32, gen: u32) -> EvKey {
        EvKey(((idx as u64) << 32) | gen as u64)
    }
    #[inline]
    fn unpack(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }
}

#[derive(Debug, Clone)]
struct Entry<E> {
    t: u64,
    seq: u64,
    /// `NO_KEY`, or the packed [`EvKey`] this entry was issued under.
    key: u64,
    item: E,
}

/// The `(t, seq)` min-heap wrapper for the reference backend.
#[derive(Debug)]
struct HeapEntry<E>(Entry<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, o: &Self) -> bool {
        self.0.t == o.0.t && self.0.seq == o.0.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        // Min-heap: earliest time first, FIFO on ties.
        o.0.t.cmp(&self.0.t).then(o.0.seq.cmp(&self.0.seq))
    }
}

#[derive(Debug)]
struct Wheel<E> {
    /// `slots[level][index]` holds entries whose expiry differs from `cur`
    /// first at bit-group `level` and has digit `index` there.
    slots: Vec<Vec<Vec<Entry<E>>>>,
    /// Per-level occupancy bitmaps (bit `i` set ⇔ `slots[level][i]` nonempty).
    occupied: [u64; LEVELS],
    /// Lower bound on every stored expiry; advances monotonically on pop.
    cur: u64,
    /// Entries drained from the minimal slot, sorted by `(t, seq)`, ready
    /// to pop before the wheel is consulted again.
    ready: VecDeque<Entry<E>>,
    /// Entries beyond the wheel horizon (`cur + 2^48` ps); re-filed when
    /// the wheel runs dry.
    overflow: Vec<Entry<E>>,
    /// Recycled slot vectors: steady state never allocates.
    spare: Vec<Vec<Entry<E>>>,
    len: usize,
}

impl<E> Wheel<E> {
    fn new() -> Wheel<E> {
        Wheel {
            slots: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupied: [0; LEVELS],
            cur: 0,
            ready: VecDeque::new(),
            overflow: Vec::new(),
            spare: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn digit(t: u64, level: usize) -> usize {
        ((t >> (BITS * level as u32)) & MASK) as usize
    }

    /// Level at which `t` is filed relative to `cur`: the bit-group of the
    /// most significant differing bit. `LEVELS` means "overflow".
    #[inline]
    fn level_of(&self, t: u64) -> usize {
        let diff = t ^ self.cur;
        if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / BITS) as usize
        }
    }

    fn file(&mut self, e: Entry<E>, slab: &mut Slab) {
        debug_assert!(e.t >= self.cur);
        debug_assert!(!slab.entry_dead(e.key), "dead entry re-filed");
        let key = e.key;
        let level = self.level_of(e.t);
        if level >= LEVELS {
            self.overflow.push(e);
            if key != NO_KEY {
                slab.set_loc(
                    key,
                    Loc::Overflow {
                        idx: (self.overflow.len() - 1) as u32,
                    },
                );
            }
            return;
        }
        let slot = Self::digit(e.t, level);
        self.slots[level][slot].push(e);
        self.occupied[level] |= 1 << slot;
        if key != NO_KEY {
            slab.set_loc(
                key,
                Loc::Slot {
                    level: level as u8,
                    slot: slot as u8,
                    idx: (self.slots[level][slot].len() - 1) as u32,
                },
            );
        }
    }

    /// Physically unlink a tracked entry — O(1): `swap_remove` from its
    /// slot (or overflow) vector, re-point the entry that got swapped into
    /// its place, and clear the occupancy bit if the slot emptied.
    fn remove(&mut self, loc: Loc, key: EvKey, slab: &mut Slab) {
        let removed = match loc {
            Loc::Slot { level, slot, idx } => {
                let v = &mut self.slots[level as usize][slot as usize];
                let e = v.swap_remove(idx as usize);
                if let Some(moved) = v.get(idx as usize) {
                    if moved.key != NO_KEY {
                        slab.set_loc(moved.key, loc);
                    }
                }
                if v.is_empty() {
                    self.occupied[level as usize] &= !(1 << slot);
                }
                e
            }
            Loc::Overflow { idx } => {
                let e = self.overflow.swap_remove(idx as usize);
                if let Some(moved) = self.overflow.get(idx as usize) {
                    if moved.key != NO_KEY {
                        slab.set_loc(moved.key, Loc::Overflow { idx });
                    }
                }
                e
            }
            Loc::Untracked => unreachable!("remove() called for an untracked entry"),
        };
        debug_assert_eq!(
            removed.key, key.0,
            "back-pointer pointed at a different entry"
        );
        self.len -= 1;
    }

    fn push(&mut self, e: Entry<E>, slab: &mut Slab) {
        self.len += 1;
        // An entry due before `cur` (a zero-delay or past-stamp push — the
        // NIC batcher pops stamps up to a whole batch window ahead of the
        // pushes that follow) can never be filed in the wheel; it merges
        // into `ready`, as does anything due no later than the drained
        // batch, keeping the (t, seq) order exact.
        let into_ready = e.t < self.cur
            || match self.ready.back() {
                Some(back) => e.t <= back.t,
                None => false,
            };
        if into_ready {
            let pos = self.ready.partition_point(|r| (r.t, r.seq) < (e.t, e.seq));
            if e.key != NO_KEY {
                // Entries merged straight into `ready` have no stable
                // position; cancellation falls back to the lazy mark.
                slab.set_loc(e.key, Loc::Untracked);
            }
            self.ready.insert(pos, e);
        } else {
            self.file(e, slab);
        }
    }

    /// Ensure `ready` holds the minimal pending entries (if any exist).
    /// Only live entries ever sit in wheel slots — cancellation removes
    /// its target on the spot — so cascades never move dead weight.
    fn prime(&mut self, slab: &mut Slab) {
        if !self.ready.is_empty() || self.len == 0 {
            return;
        }
        let drained = self.drain_min_slot(slab);
        debug_assert!(drained, "ready empty with len > 0 implies filed entries");
    }

    /// Cascade until the minimal level-0 slot is drained into `ready`
    /// (appended: each drained tick is strictly later than everything
    /// already in the run, so the run stays `(t, seq)`-sorted). Returns
    /// `false` when nothing is filed anywhere (slots and overflow empty).
    fn drain_min_slot(&mut self, slab: &mut Slab) -> bool {
        loop {
            // Lowest non-empty level holds the globally minimal entry.
            let mut level = None;
            for (l, &bm) in self.occupied.iter().enumerate() {
                if bm != 0 {
                    level = Some(l);
                    break;
                }
            }
            let Some(l) = level else {
                if self.overflow.is_empty() {
                    return false;
                }
                // Wheel dry: re-file the overflow relative to its minimum.
                let min_t = self.overflow.iter().map(|e| e.t).min().expect("nonempty");
                self.cur = self.cur.max(min_t);
                let pending = std::mem::take(&mut self.overflow);
                for e in pending {
                    self.file(e, slab);
                }
                continue;
            };
            // Minimal occupied slot at that level. Occupied slots are never
            // below the current digit (that would mean a past expiry).
            let slot = self.occupied[l].trailing_zeros() as usize;
            debug_assert!(slot >= Self::digit(self.cur, l) || l == 0);
            let mut batch = std::mem::replace(
                &mut self.slots[l][slot],
                self.spare.pop().unwrap_or_default(),
            );
            self.occupied[l] &= !(1 << slot);
            if l == 0 {
                // Level-0 slots are a single picosecond: every entry shares
                // one expiry, so FIFO order is just the insertion sequence.
                self.cur = batch[0].t;
                batch.sort_unstable_by_key(|e| e.seq);
                debug_assert!(batch.iter().all(|e| e.t == self.cur));
                for e in batch.drain(..) {
                    if e.key != NO_KEY {
                        slab.set_loc(e.key, Loc::Untracked);
                    }
                    self.ready.push_back(e);
                }
                self.spare.push(batch);
                return true;
            }
            // Cascade: advance to the slot's base time and re-file its
            // entries one level (or more) down.
            let base = (self.cur & !((1u64 << (BITS * (l as u32 + 1))) - 1))
                | ((slot as u64) << (BITS * l as u32));
            self.cur = self.cur.max(base);
            for e in batch.drain(..) {
                self.file(e, slab);
            }
            self.spare.push(batch);
        }
    }

    fn pop(&mut self, slab: &mut Slab) -> Option<Entry<E>> {
        self.prime(slab);
        let e = self.ready.pop_front()?;
        self.len -= 1;
        Some(e)
    }

    /// Earliest expiry among *filed* entries (slots + overflow), without
    /// disturbing the structure. The global minimum is in the minimal
    /// occupied slot of the minimal occupied level: any entry at a higher
    /// level matches `cur` through this level's digit and exceeds it at
    /// its own, and any entry in a later slot exceeds this slot's digit —
    /// either way it expires later, whatever its low bits. Only the low
    /// bits *within* the minimal slot vary, hence the scan.
    fn peek_filed(&self) -> Option<u64> {
        for (l, &bm) in self.occupied.iter().enumerate() {
            if bm != 0 {
                let slot = bm.trailing_zeros() as usize;
                return self.slots[l][slot].iter().map(|e| e.t).min();
            }
        }
        // Everything pending is beyond the wheel horizon.
        self.overflow.iter().map(|e| e.t).min()
    }

    /// Minimal `(t, seq)` among filed entries. Filing is a function of `t`
    /// alone, so every entry sharing the minimal expiry lives in the same
    /// (minimal) slot — the tuple-min scan of that one slot is exact.
    fn peek_filed_key(&self) -> Option<(u64, u64)> {
        for (l, &bm) in self.occupied.iter().enumerate() {
            if bm != 0 {
                let slot = bm.trailing_zeros() as usize;
                return self.slots[l][slot].iter().map(|e| (e.t, e.seq)).min();
            }
        }
        self.overflow.iter().map(|e| (e.t, e.seq)).min()
    }

    fn reserve(&mut self, n: usize) {
        self.ready.reserve(n.min(4096));
        self.overflow.reserve(n.min(1024));
        // Seed the recycled-vector pool so early cascades don't allocate.
        while self.spare.len() < 16 {
            self.spare.push(Vec::with_capacity(n.min(256)));
        }
    }
}

/// Which engine backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Hierarchical timer wheel (the default).
    #[default]
    Wheel,
    /// `BinaryHeap` reference implementation, kept for differential tests
    /// and before/after benchmarking.
    Heap,
}

impl QueueBackend {
    pub fn label(self) -> &'static str {
        match self {
            QueueBackend::Wheel => "wheel",
            QueueBackend::Heap => "heap",
        }
    }
}

enum Inner<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<HeapEntry<E>>),
}

/// Where a live cancelable entry currently sits, for O(1) removal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// No tracked position: the entry is in the `ready` run, under the
    /// heap backend, or already gone. Cancellation falls back to a lazy
    /// dead-mark skipped at the head.
    Untracked,
    /// `Wheel.slots[level][slot][idx]`.
    Slot { level: u8, slot: u8, idx: u32 },
    /// `Wheel.overflow[idx]`.
    Overflow { idx: u32 },
}

/// Generation slab state for one cancelable slot.
#[derive(Debug, Clone, Copy)]
struct Slot {
    gen: u32,
    alive: bool,
    loc: Loc,
}

/// The generation slab behind [`EvKey`]s, split out of [`EventQueue`] so
/// the wheel can consult liveness mid-cascade without borrowing the whole
/// queue.
#[derive(Debug, Default)]
struct Slab {
    slots: Vec<Slot>,
    /// Retired slab indices available for reuse.
    free: Vec<u32>,
    /// Cancelled entries still buried in the backend (pending deletes).
    dead: usize,
}

impl Slab {
    fn alloc(&mut self) -> EvKey {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    alive: false,
                    loc: Loc::Untracked,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let slot = &mut self.slots[idx as usize];
        slot.alive = true;
        slot.loc = Loc::Untracked;
        EvKey::pack(idx, slot.gen)
    }

    /// Lazy cancellation for entries with no tracked position: mark dead
    /// and let the head skip it.
    fn cancel_lazy(&mut self, idx: u32) {
        self.slots[idx as usize].alive = false;
        self.dead += 1;
    }

    /// Record where the wheel just filed a keyed entry.
    #[inline]
    fn set_loc(&mut self, key: u64, loc: Loc) {
        let (idx, gen) = EvKey(key).unpack();
        let s = &mut self.slots[idx as usize];
        debug_assert_eq!(s.gen, gen, "slot reused while its entry was queued");
        s.loc = loc;
    }

    /// Retire the slab slot of a keyed entry that just left the backend.
    /// Returns `true` if the entry was live (should be surfaced).
    #[inline]
    fn retire(&mut self, key: u64) -> bool {
        let (idx, gen) = EvKey(key).unpack();
        let s = &mut self.slots[idx as usize];
        debug_assert_eq!(s.gen, gen, "slot reused while its entry was queued");
        let was_live = s.alive;
        s.alive = false;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(idx);
        if !was_live {
            self.dead -= 1;
        }
        was_live
    }

    /// Is the keyed entry still buried but cancelled? (`NO_KEY` is never
    /// dead.)
    #[inline]
    fn entry_dead(&self, key: u64) -> bool {
        if key == NO_KEY {
            return false;
        }
        let (idx, _) = EvKey(key).unpack();
        !self.slots[idx as usize].alive
    }
}

/// A monotone discrete-event queue ordered by `(time, insertion order)`.
pub struct EventQueue<E> {
    inner: Inner<E>,
    /// Next internally assigned tie-break stamp (kept strictly above every
    /// stamp ever stored, including external ones).
    seq: u64,
    /// Total entries ever pushed, independent of seq assignment.
    pushed: u64,
    peak_len: usize,
    slab: Slab,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Timer-wheel backed queue (the production configuration).
    pub fn new() -> EventQueue<E> {
        EventQueue::with_backend(QueueBackend::Wheel)
    }

    /// Reference `BinaryHeap` backed queue (differential tests, benchmarks).
    pub fn reference_heap() -> EventQueue<E> {
        EventQueue::with_backend(QueueBackend::Heap)
    }

    pub fn with_backend(backend: QueueBackend) -> EventQueue<E> {
        let inner = match backend {
            QueueBackend::Wheel => Inner::Wheel(Wheel::new()),
            QueueBackend::Heap => Inner::Heap(BinaryHeap::new()),
        };
        EventQueue {
            inner,
            seq: 0,
            pushed: 0,
            peak_len: 0,
            slab: Slab::default(),
        }
    }

    /// Pre-size internal storage for roughly `n` concurrently pending
    /// entries (derived from topology bounds by the simulator), so the
    /// warm-up phase doesn't pay reallocation costs.
    pub fn reserve(&mut self, n: usize) {
        match &mut self.inner {
            Inner::Wheel(w) => w.reserve(n),
            Inner::Heap(h) => h.reserve(n),
        }
        self.slab.slots.reserve(n.min(4096));
        self.slab.free.reserve(n.min(4096));
    }

    fn push_entry(&mut self, t: Time, seq: u64, key: u64, item: E) {
        let e = Entry {
            t: t.as_ps(),
            seq,
            key,
            item,
        };
        // Keep the internal counter strictly ahead of every seq ever
        // stored, so interleaving external stamps (`push_at_seq`) with
        // plain pushes can never mint a duplicate `(t, seq)`.
        self.seq = self.seq.max(seq + 1);
        self.pushed += 1;
        match &mut self.inner {
            Inner::Wheel(w) => w.push(e, &mut self.slab),
            Inner::Heap(h) => h.push(HeapEntry(e)),
        }
        self.peak_len = self.peak_len.max(self.len());
    }

    pub fn push(&mut self, t: Time, item: E) {
        self.push_entry(t, self.seq, NO_KEY, item);
    }

    /// Push an entry that can later be removed with [`EventQueue::cancel`].
    /// Ordering is identical to [`EventQueue::push`]; the returned key is
    /// valid until the entry pops or is cancelled, and harmlessly stale
    /// afterwards.
    pub fn push_cancelable(&mut self, t: Time, item: E) -> EvKey {
        let key = self.slab.alloc();
        self.push_entry(t, self.seq, key.0, item);
        key
    }

    /// Push with an externally assigned tie-break sequence instead of the
    /// internal counter. The sharded façade owns one global counter and
    /// stamps entries at creation time, so a cross-partition entry that
    /// reaches its owner's queue late (via a window-barrier mailbox) still
    /// dequeues in its original global `(t, seq)` position. Seqs need not
    /// arrive monotonically — the backends order purely by the stamp.
    pub fn push_at_seq(&mut self, t: Time, seq: u64, item: E) {
        self.push_entry(t, seq, NO_KEY, item);
    }

    /// Cancelable variant of [`EventQueue::push_at_seq`].
    pub fn push_cancelable_at_seq(&mut self, t: Time, seq: u64, item: E) -> EvKey {
        let key = self.slab.alloc();
        self.push_entry(t, seq, key.0, item);
        key
    }

    /// Cancel a pending cancelable entry. Returns `true` if the entry was
    /// still live (it will never be returned by `pop`); `false` if the key
    /// is stale — already popped or already cancelled.
    ///
    /// Under the wheel backend an entry still filed in a slot is removed
    /// physically in O(1); an entry already drained to the head run — or
    /// anything under the heap backend — is marked dead and skipped there.
    pub fn cancel(&mut self, key: EvKey) -> bool {
        let (idx, gen) = key.unpack();
        let loc = match self.slab.slots.get(idx as usize) {
            Some(s) if s.gen == gen && s.alive => s.loc,
            _ => return false,
        };
        match (&mut self.inner, loc) {
            (Inner::Wheel(w), Loc::Slot { .. } | Loc::Overflow { .. }) => {
                w.remove(loc, key, &mut self.slab);
                self.slab.retire(key.0);
            }
            _ => self.slab.cancel_lazy(idx),
        }
        true
    }

    fn pop_raw(&mut self) -> Option<Entry<E>> {
        match &mut self.inner {
            Inner::Wheel(w) => w.pop(&mut self.slab),
            Inner::Heap(h) => h.pop().map(|HeapEntry(e)| e),
        }
    }

    pub fn pop(&mut self) -> Option<(Time, E)> {
        loop {
            let e = self.pop_raw()?;
            if e.key == NO_KEY || self.slab.retire(e.key) {
                return Some((Time(e.t), e.item));
            }
            // Cancelled: skip and keep draining.
        }
    }

    /// Earliest *live* pending expiry without removing it. Dead entries at
    /// the head (lazy-cancelled in the ready run or the heap) are drained
    /// as a side effect; under the wheel, a far-future head is answered by
    /// scanning its minimal slot instead of cascading it down — repeated
    /// "anything due yet?" polls leave the structure untouched.
    pub fn peek_time(&mut self) -> Option<Time> {
        loop {
            let (t, key) = match &mut self.inner {
                Inner::Wheel(w) => match w.ready.front() {
                    Some(e) => (e.t, e.key),
                    // Filed entries are never dead (cancellation removes
                    // them physically), so this needs no skip loop.
                    None => return w.peek_filed().map(Time),
                },
                Inner::Heap(h) => {
                    let e = &h.peek()?.0;
                    (e.t, e.key)
                }
            };
            if !self.slab.entry_dead(key) {
                return Some(Time(t));
            }
            let e = self.pop_raw().expect("head exists");
            self.slab.retire(e.key);
        }
    }

    /// Number of *live* entries (cancelled-but-buried ones excluded).
    pub fn len(&self) -> usize {
        let raw = match &self.inner {
            Inner::Wheel(w) => w.len,
            Inner::Heap(h) => h.len(),
        };
        raw - self.slab.dead
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the *live* queue depth over the queue's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Total entries ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Earliest *live* `(time, tie-break seq)` without removing it — the
    /// key the sharded façade merges partition heads by. Dead entries at
    /// the head are drained as a side effect, exactly as in
    /// [`EventQueue::peek_time`].
    pub fn peek_key(&mut self) -> Option<(Time, u64)> {
        loop {
            let (t, seq, key) = match &mut self.inner {
                Inner::Wheel(w) => match w.ready.front() {
                    Some(e) => (e.t, e.seq, e.key),
                    // Filed entries are never dead (cancellation removes
                    // them physically), so this needs no skip loop.
                    None => return w.peek_filed_key().map(|(t, s)| (Time(t), s)),
                },
                Inner::Heap(h) => {
                    let e = &h.peek()?.0;
                    (e.t, e.seq, e.key)
                }
            };
            if !self.slab.entry_dead(key) {
                return Some((Time(t), seq));
            }
            let e = self.pop_raw().expect("head exists");
            self.slab.retire(e.key);
        }
    }

    /// Pre-cascade every filed entry due strictly before `horizon` into
    /// the sorted ready run, so subsequent `pop`s and `peek_key`s inside
    /// the horizon touch only the run head. This is the only `EventQueue`
    /// operation worth off-loading to a worker thread: it is pure
    /// restructuring — draining never reorders (each drained tick appends
    /// strictly after the run tail, and later pushes still merge into the
    /// run by `(t, seq)`), so *any* horizon is sound. Heap backend: no-op
    /// (the heap has no cascade cost to pay down).
    pub fn prepare(&mut self, horizon: Time) {
        if let Inner::Wheel(w) = &mut self.inner {
            while let Some(t) = w.peek_filed() {
                if t >= horizon.as_ps() {
                    break;
                }
                w.drain_min_slot(&mut self.slab);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::seeded_rng;
    use rand::Rng;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.push(Time(50), "b");
        q.push(Time(10), "a");
        q.push(Time(50), "c");
        q.push(Time(7), "z");
        assert_eq!(q.pop(), Some((Time(7), "z")));
        assert_eq!(q.pop(), Some((Time(10), "a")));
        assert_eq!(q.pop(), Some((Time(50), "b")));
        assert_eq!(q.pop(), Some((Time(50), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time(100), 0u32);
        assert_eq!(q.pop(), Some((Time(100), 0)));
        // Zero-delay self-push at the current time must come after already
        // pending same-time entries.
        q.push(Time(200), 1);
        q.push(Time(200), 2);
        assert_eq!(q.pop(), Some((Time(200), 1)));
        q.push(Time(200), 3);
        assert_eq!(q.pop(), Some((Time(200), 2)));
        assert_eq!(q.pop(), Some((Time(200), 3)));
    }

    #[test]
    fn far_horizon_entries_survive_overflow() {
        let mut q = EventQueue::new();
        q.push(Time(u64::MAX - 3), 1u8);
        q.push(Time(5), 2);
        q.push(Time(1u64 << 55), 3);
        assert_eq!(q.pop(), Some((Time(5), 2)));
        assert_eq!(q.pop(), Some((Time(1u64 << 55), 3)));
        assert_eq!(q.pop(), Some((Time(u64::MAX - 3), 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn matches_reference_heap_on_random_monotone_churn() {
        let mut rng = seeded_rng(1234);
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::reference_heap();
        let mut now = 0u64;
        let mut next_id = 0u64;
        for _ in 0..50_000 {
            if rng.random::<f64>() < 0.55 || wheel.is_empty() {
                // Mixed horizons: ns-scale wire events, ms-scale timers,
                // occasional zero-delay self-pushes.
                // `9` pushes a *past* stamp (the NIC batcher pops stamps up
                // to a batch window ahead of later enqueues).
                let t = match rng.random_range(0..11u32) {
                    0 => now,
                    1..=6 => now + rng.random_range(0..2_000_000u64),
                    7 | 8 => now + rng.random_range(0..50_000_000u64),
                    9 => now.saturating_sub(rng.random_range(0..5_000_000u64)),
                    _ => now + rng.random_range(0..2_000_000_000u64),
                };
                wheel.push(Time(t), next_id);
                heap.push(Time(t), next_id);
                next_id += 1;
            } else {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    now = t.as_ps();
                }
            }
        }
        while let Some(b) = heap.pop() {
            assert_eq!(wheel.pop(), Some(b));
        }
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn past_pushes_between_ready_tail_and_cur_stay_ordered() {
        // Regression: pop far ahead (cur advances), then push two past
        // stamps in *increasing* order — the second lands between the
        // ready tail and `cur` and must still merge into `ready`.
        let mut q = EventQueue::new();
        q.push(Time(1_000_000), "future");
        assert_eq!(q.pop(), Some((Time(1_000_000), "future")));
        q.push(Time(10), "early");
        q.push(Time(500), "later-but-still-past");
        q.push(Time(2_000_000), "beyond");
        assert_eq!(q.pop(), Some((Time(10), "early")));
        assert_eq!(q.pop(), Some((Time(500), "later-but-still-past")));
        assert_eq!(q.pop(), Some((Time(2_000_000), "beyond")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q: EventQueue<()> = EventQueue::new();
        for i in 0..10 {
            q.push(Time(i), ());
        }
        for _ in 0..10 {
            q.pop();
        }
        q.push(Time(100), ());
        assert_eq!(q.peak_len(), 10);
        assert_eq!(q.pushed(), 11);
    }

    #[test]
    fn cancel_removes_entry_and_detects_stale_keys() {
        let mut q = EventQueue::new();
        let k1 = q.push_cancelable(Time(10), "a");
        let k2 = q.push_cancelable(Time(20), "b");
        q.push(Time(30), "c");
        assert_eq!(q.len(), 3);
        assert!(q.cancel(k1), "first cancel hits a live entry");
        assert!(!q.cancel(k1), "double cancel is stale");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time(20)), "cancelled head skipped");
        assert_eq!(q.pop(), Some((Time(20), "b")));
        assert!(!q.cancel(k2), "cancel after pop is stale");
        assert_eq!(q.pop(), Some((Time(30), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn slot_reuse_keeps_generations_distinct() {
        let mut q = EventQueue::new();
        let k1 = q.push_cancelable(Time(1), 1u32);
        assert_eq!(q.pop(), Some((Time(1), 1)));
        // The slab slot is recycled for k2; the stale k1 must not hit it.
        let k2 = q.push_cancelable(Time(2), 2u32);
        assert!(!q.cancel(k1));
        assert!(q.cancel(k2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn live_len_and_peak_exclude_cancelled() {
        let mut q = EventQueue::new();
        let keys: Vec<_> = (0..8)
            .map(|i| q.push_cancelable(Time(100 + i), i))
            .collect();
        for k in &keys[2..] {
            assert!(q.cancel(*k));
        }
        assert_eq!(q.len(), 2);
        // Pushing after mass-cancellation: peak reflects live depth only.
        q.push(Time(500), 99);
        assert_eq!(q.peak_len(), 8, "peak was 8 before the cancels");
        assert_eq!(q.len(), 3);
        let live: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(live, vec![0, 1, 99]);
    }

    /// Whole-slot cancellation must advance `peek_time`: when every entry
    /// in the minimal occupied wheel slot is cancelled, the slot's
    /// occupancy bit must clear so `peek_filed` reports the next *live*
    /// minimum — a stale minimum here would make a runner cascade a slot
    /// that pops nothing. Cancellation of filed entries is physical
    /// (swap_remove + occupancy clear in `Wheel::remove`); this is the
    /// regression test that keeps it that way.
    #[test]
    fn cancelling_entire_minimal_slot_advances_peek_time() {
        let mut q = EventQueue::new();
        // Three entries in one level-0 slot, one entry far away (distinct
        // slot on a higher level), one in overflow.
        let near: Vec<EvKey> = (0..3).map(|i| q.push_cancelable(Time(40), i)).collect();
        let far = q.push_cancelable(Time(90_000), 10u64);
        q.push(Time(1u64 << 50), 11);
        assert_eq!(q.peek_time(), Some(Time(40)));
        for k in near {
            assert!(q.cancel(k));
        }
        assert_eq!(
            q.peek_time(),
            Some(Time(90_000)),
            "minimal slot is all-dead; peek_time must advance to the next live entry"
        );
        assert_eq!(q.pop(), Some((Time(90_000), 10)));
        // Cancelling the remaining tracked entry leaves only overflow.
        assert!(!q.cancel(far), "already popped");
        assert_eq!(q.peek_time(), Some(Time(1 << 50)));
        assert_eq!(q.pop(), Some((Time(1 << 50), 11)));
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    /// Same scenario after the slot was drained into the ready run: those
    /// entries are only lazily dead-marked, and `peek_time` must skip the
    /// dead prefix rather than report a cancelled entry's stamp.
    #[test]
    fn cancelling_drained_ready_run_advances_peek_time() {
        for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
            let mut q = EventQueue::with_backend(backend);
            q.push(Time(40), 0u64);
            let b = q.push_cancelable(Time(40), 1);
            let c = q.push_cancelable(Time(40), 2);
            q.push(Time(200), 3);
            // Popping the slot head moves the whole same-time cohort into
            // the ready run (wheel) or leaves it in the heap; either way
            // the cancels below can only dead-mark.
            assert_eq!(q.pop(), Some((Time(40), 0)));
            assert!(q.cancel(b));
            assert!(q.cancel(c));
            assert_eq!(
                q.peek_time(),
                Some(Time(200)),
                "{backend:?}: dead ready/heap prefix must not mask the live minimum"
            );
            assert_eq!(q.pop(), Some((Time(200), 3)));
            assert_eq!(q.peek_time(), None);
        }
    }

    /// `peek_time` differential under cancel churn: after every operation
    /// the wheel and the reference heap must agree on the live minimum —
    /// including the all-cancelled-slot states the two tests above pin.
    #[test]
    fn peek_time_matches_heap_under_cancel_churn() {
        let mut rng = seeded_rng(4242);
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::reference_heap();
        let mut live: Vec<(EvKey, EvKey)> = Vec::new();
        let mut now = 0u64;
        let mut next_id = 0u64;
        for step in 0..20_000 {
            let r = rng.random::<f64>();
            if r < 0.5 || wheel.is_empty() {
                // Cluster stamps so whole slots get cancelled together.
                let t = now + rng.random_range(0..64u64) * 1000;
                let id = next_id;
                next_id += 1;
                let kw = wheel.push_cancelable(Time(t), id);
                let kh = heap.push_cancelable(Time(t), id);
                live.push((kw, kh));
            } else if r < 0.8 && !live.is_empty() {
                // Cancel a run of neighbors — often an entire slot.
                let i = rng.random_range(0..live.len());
                for _ in 0..rng.random_range(1..8usize) {
                    if i >= live.len() {
                        break;
                    }
                    let (kw, kh) = live.swap_remove(i);
                    assert_eq!(wheel.cancel(kw), heap.cancel(kh));
                }
            } else {
                let a = wheel.pop();
                assert_eq!(a, heap.pop(), "step {step}");
                if let Some((t, _)) = a {
                    now = t.as_ps();
                }
            }
            assert_eq!(wheel.peek_time(), heap.peek_time(), "step {step}");
            assert_eq!(wheel.len(), heap.len(), "step {step}");
        }
    }

    /// `peek_key` must agree with the reference heap's `(t, seq)` head
    /// under the same churn that exercises `peek_time`, including lazy
    /// dead-marked ready/heap prefixes.
    #[test]
    fn peek_key_matches_heap_under_cancel_churn() {
        let mut rng = seeded_rng(777);
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::reference_heap();
        let mut live: Vec<(EvKey, EvKey)> = Vec::new();
        let mut now = 0u64;
        for step in 0..20_000u64 {
            let r = rng.random::<f64>();
            if r < 0.5 || wheel.is_empty() {
                let t = now + rng.random_range(0..64u64) * 1000;
                let kw = wheel.push_cancelable(Time(t), step);
                let kh = heap.push_cancelable(Time(t), step);
                live.push((kw, kh));
            } else if r < 0.75 && !live.is_empty() {
                let i = rng.random_range(0..live.len());
                let (kw, kh) = live.swap_remove(i);
                assert_eq!(wheel.cancel(kw), heap.cancel(kh));
            } else {
                let a = wheel.pop();
                assert_eq!(a, heap.pop(), "step {step}");
                if let Some((t, _)) = a {
                    now = t.as_ps();
                }
            }
            assert_eq!(wheel.peek_key(), heap.peek_key(), "step {step}");
        }
    }

    /// External seq stamps (the sharded façade's global counter) must give
    /// the exact dequeue order of a single queue that assigned the same
    /// stamps internally — even when they arrive out of stamp order, the
    /// way window-barrier mailbox drains deliver them.
    #[test]
    fn external_seq_interleave_matches_serial_order() {
        for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
            let mut rng = seeded_rng(31337);
            // Model: a global stream of (t, seq) stamps; a random suffix of
            // same-time cohorts is delivered late ("mailed") after newer
            // direct pushes already landed.
            let mut serial = EventQueue::with_backend(backend);
            let mut ext = EventQueue::with_backend(backend);
            let mut stamps: Vec<(u64, u64)> = Vec::new();
            let mut t = 0u64;
            for seq in 0..4_000u64 {
                t += rng.random_range(0..3u64) * 500;
                stamps.push((t, seq));
            }
            for &(t, seq) in &stamps {
                serial.push(Time(t), seq);
            }
            // Deliver direct entries first, then the "mailed" ones with
            // their original (smaller) seqs.
            let mut mailed = Vec::new();
            for &(t, seq) in &stamps {
                if rng.random::<f64>() < 0.25 {
                    mailed.push((t, seq));
                } else {
                    ext.push_at_seq(Time(t), seq, seq);
                }
            }
            for (t, seq) in mailed {
                ext.push_at_seq(Time(t), seq, seq);
            }
            loop {
                let a = serial.pop();
                assert_eq!(a, ext.pop(), "{backend:?}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// `prepare` is pure restructuring: pops after an arbitrary-horizon
    /// prepare (with further pushes landing mid-stream) match an
    /// unprepared twin byte-for-byte.
    #[test]
    fn prepare_never_reorders() {
        let mut rng = seeded_rng(2024);
        let mut plain = EventQueue::new();
        let mut prep = EventQueue::new();
        let mut now = 0u64;
        let mut id = 0u64;
        for step in 0..30_000 {
            let r = rng.random::<f64>();
            if r < 0.5 || plain.is_empty() {
                let t = now + rng.random_range(0..5_000_000u64);
                plain.push(Time(t), id);
                prep.push(Time(t), id);
                id += 1;
            } else if r < 0.6 {
                // Horizons from "nothing" to "everything".
                let h = now + rng.random_range(0..20_000_000u64);
                prep.prepare(Time(h));
            } else {
                let a = plain.pop();
                assert_eq!(a, prep.pop(), "step {step}");
                if let Some((t, _)) = a {
                    now = t.as_ps();
                }
            }
            assert_eq!(plain.peek_key(), prep.peek_key(), "step {step}");
            assert_eq!(plain.len(), prep.len(), "step {step}");
        }
    }

    /// The satellite differential suite: cancellation must dequeue the
    /// surviving entries in exactly the order the old *tombstone* scheme
    /// would (push everything, skip stale markers at dispatch). Runs the
    /// same random churn against three implementations — wheel+cancel,
    /// heap+cancel, and a tombstone model over a plain queue — and checks
    /// the visible pop sequences are identical.
    #[test]
    fn cancel_matches_tombstone_dequeue_order() {
        use std::collections::HashSet;
        let mut rng = seeded_rng(99);
        let mut wheel = EventQueue::new();
        let mut heap = EventQueue::reference_heap();
        let mut tomb = EventQueue::new();
        let mut tomb_dead: HashSet<u64> = HashSet::new();
        // Live cancelable keys: (wheel key, heap key, id).
        let mut live: Vec<(EvKey, EvKey, u64)> = Vec::new();
        let mut now = 0u64;
        let mut next_id = 0u64;
        let tomb_pop = |q: &mut EventQueue<u64>, dead: &HashSet<u64>| loop {
            match q.pop() {
                Some((t, id)) if dead.contains(&id) => {
                    // Tombstone: stale entry dispatched and dropped.
                    let _ = t;
                }
                other => return other,
            }
        };
        for _ in 0..30_000 {
            let r = rng.random::<f64>();
            if r < 0.45 || wheel.is_empty() {
                let t = now + rng.random_range(0..10_000_000u64);
                let id = next_id;
                next_id += 1;
                if rng.random::<f64>() < 0.5 {
                    let kw = wheel.push_cancelable(Time(t), id);
                    let kh = heap.push_cancelable(Time(t), id);
                    live.push((kw, kh, id));
                } else {
                    wheel.push(Time(t), id);
                    heap.push(Time(t), id);
                }
                tomb.push(Time(t), id);
            } else if r < 0.60 && !live.is_empty() {
                let i = rng.random_range(0..live.len());
                let (kw, kh, id) = live.swap_remove(i);
                // Both queues agree on cancellability; mirror into the
                // tombstone model's dead set.
                let cw = wheel.cancel(kw);
                let ch = heap.cancel(kh);
                assert_eq!(cw, ch);
                if cw {
                    tomb_dead.insert(id);
                }
            } else {
                let a = wheel.pop();
                let b = heap.pop();
                let c = tomb_pop(&mut tomb, &tomb_dead);
                assert_eq!(a, b, "wheel vs heap");
                assert_eq!(a, c, "cancel vs tombstone");
                if let Some((t, id)) = a {
                    live.retain(|&(_, _, lid)| lid != id);
                    now = t.as_ps();
                }
            }
        }
        loop {
            let a = wheel.pop();
            assert_eq!(a, heap.pop());
            assert_eq!(a, tomb_pop(&mut tomb, &tomb_dead));
            if a.is_none() {
                break;
            }
        }
        assert_eq!(wheel.len(), 0);
        assert_eq!(heap.len(), 0);
    }
}
