//! Sharded event-queue façade for the within-cell parallel engine.
//!
//! [`ShardedEventQueue`] fronts one [`EventQueue`] per topology partition
//! and reproduces the *serial* dispatch order exactly, at any shard count:
//! a single global tie-break counter stamps every entry at creation time,
//! and `pop` K-way-merges the per-shard heads by `(time, seq)` — the same
//! total order one big queue would produce. Byte-identity to the serial
//! engine is therefore structural, not emergent: physics, engine counters,
//! trace, and audit all observe the identical event sequence.
//!
//! # Conservative windows and cut-link mailboxes
//!
//! The merge is bounded by a conservative time window. At each window
//! barrier the façade computes `window_end = min pending time + lookahead`,
//! where lookahead is the minimum latency across partition-*cut* links
//! (link propagation + minimum wire time, per the topology partitioner).
//! Inside a window, every shard's sub-`window_end` events are causally
//! closed: a packet crossing a cut link cannot arrive earlier than
//! `now + tx + prop ≥ window_start + lookahead = window_end`, so
//! cross-partition arrivals are buffered in per-shard **mailboxes**
//! ([`ShardedEventQueue::mail`]) and drained — with their original global
//! seq stamps — only at the barrier. That is exactly the classic
//! conservative-PDES contract (null-message-free, barrier-synchronized);
//! it is what would let each shard dispatch its window on its own thread.
//!
//! # What actually runs in parallel today
//!
//! Dispatch itself stays on the caller thread: the engine above this queue
//! draws from one shared RNG in dispatch order, coordinates zero-lag hose
//! epochs, and writes bilateral TCP connection state, so handing whole
//! windows to workers would need a per-entity RNG/state split first (see
//! DESIGN.md). What *is* handed to worker threads — amortized over a
//! quantum of many windows — is [`EventQueue::prepare`]: pre-cascading
//! each shard's due entries into its sorted ready run, which is pure
//! restructuring and sound at any horizon. On a single-core host the
//! façade therefore costs a little and buys nothing — which the bench
//! records honestly — while the window/mailbox machinery it introduces is
//! the load-bearing part: it is exercised and proven byte-identical by
//! the differential suites at every shard count.

use crate::eventq::{EvKey, EventQueue, QueueBackend};
use crate::units::{Dur, Time};
use std::time::Instant;

/// A cross-partition entry parked until the next window barrier.
#[derive(Debug)]
struct MailEntry<E> {
    t: u64,
    seq: u64,
    item: E,
}

/// Opt-in wall-clock profile of the queue's own work, enabled with
/// [`ShardedEventQueue::enable_profile`]. Pure host-side observation: it
/// never changes which entry pops next, so profiled runs stay
/// byte-identical. Merge time is sampled (every 64th pop) to keep the
/// `Instant::now` cost off the hot path; barrier drains and prepare
/// passes are rare and timed fully.
#[derive(Debug, Clone, Default)]
pub struct ShardQueueProfile {
    /// Sampled wall time in the K-way head merge.
    pub merge_ns: u64,
    pub merge_samples: u64,
    /// Window barriers taken.
    pub barriers: u64,
    /// Per-shard mailbox drain wall time at barriers.
    pub drain_ns: Vec<u64>,
    /// Per-shard `prepare` pre-drain wall time.
    pub prepare_ns: Vec<u64>,
}

/// Internal accumulator behind [`ShardQueueProfile`].
#[derive(Debug)]
struct ProfState {
    pops: u64,
    merge_ns: u64,
    merge_samples: u64,
    drain_ns: Vec<u64>,
    prepare_ns: Vec<u64>,
}

/// Multi-queue façade over per-partition [`EventQueue`]s with
/// window-bounded merge. See the module docs for the contract.
pub struct ShardedEventQueue<E> {
    queues: Vec<EventQueue<E>>,
    /// Per-destination-shard buffers for cut-link entries, drained at
    /// window barriers.
    mailboxes: Vec<Vec<MailEntry<E>>>,
    /// Conservative lookahead in ps (minimum cut-link latency). A value
    /// of 0 (degenerate partitioning) forces direct delivery.
    lookahead: u64,
    /// Exclusive upper bound of the current window; entries strictly
    /// below it are safe to dispatch.
    window_end: u64,
    /// Entries below this horizon have already been `prepare`d into the
    /// per-shard ready runs.
    prep_horizon: u64,
    /// How far past `window_end` each prepare pass reaches, in ps.
    /// Amortizes the per-pass thread-scope cost over many windows.
    prep_quantum: u64,
    /// Worker threads for the prepare pass (1 = inline).
    threads: usize,
    /// Global tie-break counter; stamps every push in creation order.
    next_seq: u64,
    /// Live entries across queues + mailboxes (mailed entries count from
    /// mail time, mirroring the serial queue's occupancy trajectory).
    live: usize,
    peak: usize,
    /// Total entries routed through mailboxes.
    mailed: u64,
    /// Window barriers taken (multi-shard only).
    barriers: u64,
    /// Wall-clock self-profile accumulators (`None` = off, the default).
    prof: Option<Box<ProfState>>,
}

impl<E: Send> ShardedEventQueue<E> {
    /// `lookahead` is the minimum cut-link latency from the topology
    /// partitioner; `threads` caps the prepare-pass worker count.
    pub fn new(shards: usize, backend: QueueBackend, lookahead: Dur, threads: usize) -> Self {
        let shards = shards.max(1);
        ShardedEventQueue {
            queues: (0..shards)
                .map(|_| EventQueue::with_backend(backend))
                .collect(),
            mailboxes: (0..shards).map(|_| Vec::new()).collect(),
            lookahead: lookahead.as_ps(),
            window_end: 0,
            prep_horizon: 0,
            // ~400 windows per prepare pass: one thread-scope spawn
            // amortized over a quantum instead of per barrier.
            prep_quantum: lookahead.as_ps().saturating_mul(400).max(1),
            threads: threads.max(1),
            next_seq: 0,
            live: 0,
            peak: 0,
            mailed: 0,
            barriers: 0,
            prof: None,
        }
    }

    /// Turn on the wall-clock self-profile (see [`ShardQueueProfile`]).
    pub fn enable_profile(&mut self) {
        let n = self.queues.len();
        self.prof = Some(Box::new(ProfState {
            pops: 0,
            merge_ns: 0,
            merge_samples: 0,
            drain_ns: vec![0; n],
            prepare_ns: vec![0; n],
        }));
    }

    /// Snapshot of the self-profile (`None` unless enabled).
    pub fn profile(&self) -> Option<ShardQueueProfile> {
        self.prof.as_ref().map(|p| ShardQueueProfile {
            merge_ns: p.merge_ns,
            merge_samples: p.merge_samples,
            barriers: self.barriers,
            drain_ns: p.drain_ns.clone(),
            prepare_ns: p.prepare_ns.clone(),
        })
    }

    pub fn num_shards(&self) -> usize {
        self.queues.len()
    }

    /// Pre-size each shard's storage for `n / shards` pending entries.
    pub fn reserve(&mut self, n: usize) {
        let per = n / self.queues.len() + 1;
        for q in &mut self.queues {
            q.reserve(per);
        }
    }

    #[inline]
    fn bump(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        self.peak = self.peak.max(self.live);
        seq
    }

    /// Push onto the owning shard's queue (same-partition destination).
    #[inline]
    pub fn push(&mut self, shard: usize, t: Time, item: E) {
        let seq = self.bump();
        self.queues[shard].push_at_seq(t, seq, item);
    }

    /// Cancelable push onto the owning shard's queue. Cancel with
    /// [`ShardedEventQueue::cancel`] and the same shard index.
    #[inline]
    pub fn push_cancelable(&mut self, shard: usize, t: Time, item: E) -> EvKey {
        let seq = self.bump();
        self.queues[shard].push_cancelable_at_seq(t, seq, item)
    }

    /// Deliver a cut-link entry to another partition: parked in the
    /// destination's mailbox until the window barrier, keeping the wire
    /// schedule independent of which shard ran first. Conservative
    /// lookahead guarantees `t >= window_end`; should partitioning ever
    /// yield zero lookahead, delivery degrades to a direct push (still
    /// correctly ordered — the global seq is assigned here either way).
    #[inline]
    pub fn mail(&mut self, shard: usize, t: Time, item: E) {
        let seq = self.bump();
        if self.lookahead > 0 {
            debug_assert!(
                t.as_ps() >= self.window_end,
                "cut-link entry due inside the current window: lookahead bound violated"
            );
        }
        if t.as_ps() < self.window_end {
            self.queues[shard].push_at_seq(t, seq, item);
        } else {
            self.mailed += 1;
            self.mailboxes[shard].push(MailEntry {
                t: t.as_ps(),
                seq,
                item,
            });
        }
    }

    /// Cancel a pending cancelable entry on `shard`. Returns `true` if it
    /// was still live. (Mailed entries are never cancelable: the engine
    /// only arms cancelable timers — RTOs, NIC pulls — on their owner.)
    #[inline]
    pub fn cancel(&mut self, shard: usize, key: EvKey) -> bool {
        let hit = self.queues[shard].cancel(key);
        if hit {
            self.live -= 1;
        }
        hit
    }

    /// Pop the globally minimal live entry, advancing the window at
    /// barriers. Single-shard configurations skip all window machinery —
    /// the serial engine is the `shards == 1` special case, not a second
    /// code path above this point.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.queues.len() == 1 {
            let popped = self.queues[0].pop();
            if popped.is_some() {
                self.live -= 1;
            }
            return popped;
        }
        loop {
            // Sampled merge timing: every 64th merge pays two clock reads.
            let merge_t0 = match self.prof.as_mut() {
                Some(p) => {
                    p.pops += 1;
                    (p.pops & 63 == 0).then(Instant::now)
                }
                None => None,
            };
            // K-way merge: minimal (t, seq) head inside the window wins.
            let mut best: Option<(u64, u64, usize)> = None;
            for (i, q) in self.queues.iter_mut().enumerate() {
                if let Some((t, seq)) = q.peek_key() {
                    let cand = (t.as_ps(), seq, i);
                    if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                        best = Some(cand);
                    }
                }
            }
            if let Some(t0) = merge_t0 {
                let p = self.prof.as_mut().expect("sampled with profile on");
                p.merge_ns += t0.elapsed().as_nanos() as u64;
                p.merge_samples += 1;
            }
            if let Some((t, _, i)) = best {
                if t < self.window_end {
                    let popped = self.queues[i].pop();
                    debug_assert!(popped.is_some());
                    self.live -= 1;
                    return popped;
                }
            }
            // Window exhausted: barrier. Drain mailboxes (original seqs),
            // then open the next window at the new global minimum.
            self.barriers += 1;
            let mut drained = false;
            for (i, mb) in self.mailboxes.iter_mut().enumerate() {
                if mb.is_empty() {
                    continue;
                }
                let t0 = self.prof.is_some().then(Instant::now);
                for m in mb.drain(..) {
                    self.queues[i].push_at_seq(Time(m.t), m.seq, m.item);
                }
                drained = true;
                if let (Some(t0), Some(p)) = (t0, self.prof.as_mut()) {
                    p.drain_ns[i] += t0.elapsed().as_nanos() as u64;
                }
            }
            if self.live == 0 {
                return None;
            }
            let min_head = if drained {
                self.min_head().expect("live > 0")
            } else {
                // Nothing new arrived; the pre-barrier minimum stands.
                best.expect("live > 0, mailboxes empty").0
            };
            debug_assert!(min_head >= self.window_end || self.window_end == 0);
            self.window_end = min_head.saturating_add(self.lookahead.max(1));
            if self.window_end > self.prep_horizon {
                self.run_prepare();
            }
        }
    }

    fn min_head(&mut self) -> Option<u64> {
        self.queues
            .iter_mut()
            .filter_map(|q| q.peek_key().map(|(t, _)| t.as_ps()))
            .min()
    }

    /// Pre-cascade each shard's entries up to a quantum past the new
    /// window on worker threads. `EventQueue::prepare` is pure
    /// restructuring (sound at any horizon), so this is the one piece of
    /// per-event work that parallelizes without touching engine state.
    fn run_prepare(&mut self) {
        self.prep_horizon = self.window_end.saturating_add(self.prep_quantum);
        let horizon = Time(self.prep_horizon);
        // Per-queue spans collected into a scratch vec so the threaded
        // path can write them from workers, then folded into the profile.
        let mut spans: Option<Vec<u64>> = self.prof.as_ref().map(|_| vec![0u64; self.queues.len()]);
        if self.threads <= 1 {
            for (i, q) in self.queues.iter_mut().enumerate() {
                let t0 = spans.is_some().then(Instant::now);
                q.prepare(horizon);
                if let (Some(t0), Some(sp)) = (t0, spans.as_mut()) {
                    sp[i] = t0.elapsed().as_nanos() as u64;
                }
            }
        } else {
            let per = self.queues.len().div_ceil(self.threads);
            match spans.as_mut() {
                None => std::thread::scope(|s| {
                    for chunk in self.queues.chunks_mut(per) {
                        s.spawn(move || {
                            for q in chunk {
                                q.prepare(horizon);
                            }
                        });
                    }
                }),
                Some(sp) => std::thread::scope(|s| {
                    for (qc, sc) in self.queues.chunks_mut(per).zip(sp.chunks_mut(per)) {
                        s.spawn(move || {
                            for (q, slot) in qc.iter_mut().zip(sc.iter_mut()) {
                                let t0 = Instant::now();
                                q.prepare(horizon);
                                *slot = t0.elapsed().as_nanos() as u64;
                            }
                        });
                    }
                }),
            }
        }
        if let (Some(sp), Some(p)) = (spans, self.prof.as_mut()) {
            for (acc, v) in p.prepare_ns.iter_mut().zip(sp) {
                *acc += v;
            }
        }
    }

    /// Live entries across all shards and mailboxes.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// High-water mark of live entries — matches the serial queue's
    /// `peak_len` because mailed entries count from mail time, exactly
    /// when the serial engine would have pushed them.
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    /// Entries that crossed a partition cut via a mailbox.
    pub fn mailed(&self) -> u64 {
        self.mailed
    }

    /// Window barriers taken (0 in single-shard mode).
    pub fn barriers(&self) -> u64 {
        self.barriers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::seeded_rng;
    use rand::Rng;

    const LA: u64 = 500_000; // 500 ns in ps, the ns2 propagation delay.

    /// Serial queue vs sharded façade under random churn with random
    /// shard assignment and lookahead-respecting cross-shard mail: pop
    /// sequences must be byte-identical.
    #[test]
    fn sharded_matches_serial_under_churn() {
        for shards in [2usize, 3, 4, 8] {
            for backend in [QueueBackend::Wheel, QueueBackend::Heap] {
                let mut rng = seeded_rng(9000 + shards as u64);
                let mut serial = EventQueue::with_backend(backend);
                let mut sharded = ShardedEventQueue::new(shards, backend, Dur(LA), 1);
                let mut now = 0u64;
                let mut id = 0u64;
                let mut live_keys: Vec<(EvKey, usize, u64)> = Vec::new();
                let mut serial_keys: Vec<(EvKey, u64)> = Vec::new();
                for step in 0..40_000 {
                    let r = rng.random::<f64>();
                    if r < 0.5 || sharded.is_empty() {
                        let shard = rng.random_range(0..shards);
                        let t = now + rng.random_range(0..4 * LA);
                        if rng.random::<f64>() < 0.2 {
                            let k = sharded.push_cancelable(shard, Time(t), id);
                            let ks = serial.push_cancelable(Time(t), id);
                            live_keys.push((k, shard, id));
                            serial_keys.push((ks, id));
                        } else {
                            sharded.push(shard, Time(t), id);
                            serial.push(Time(t), id);
                        }
                        id += 1;
                    } else if r < 0.6 {
                        // Cut-link delivery: due at least a lookahead out,
                        // which is what the conservative bound guarantees.
                        let shard = rng.random_range(0..shards);
                        let t = now + LA + rng.random_range(0..4 * LA);
                        sharded.mail(shard, Time(t), id);
                        serial.push(Time(t), id);
                        id += 1;
                    } else if r < 0.7 && !live_keys.is_empty() {
                        let i = rng.random_range(0..live_keys.len());
                        let (k, shard, kid) = live_keys.swap_remove(i);
                        let j = serial_keys.iter().position(|&(_, sid)| sid == kid).unwrap();
                        let (ks, _) = serial_keys.swap_remove(j);
                        assert_eq!(sharded.cancel(shard, k), serial.cancel(ks), "step {step}");
                    } else {
                        let a = serial.pop();
                        let b = sharded.pop();
                        assert_eq!(a, b, "shards={shards} {backend:?} step {step}");
                        if let Some((t, pid)) = a {
                            now = t.as_ps();
                            live_keys.retain(|&(_, _, kid)| kid != pid);
                            serial_keys.retain(|&(_, kid)| kid != pid);
                        }
                    }
                    assert_eq!(serial.len(), sharded.len(), "step {step}");
                }
                loop {
                    let a = serial.pop();
                    assert_eq!(a, sharded.pop(), "drain shards={shards}");
                    if a.is_none() {
                        break;
                    }
                }
                assert_eq!(serial.peak_len(), sharded.peak_len(), "peak parity");
                assert!(sharded.mailed() > 0, "churn must exercise the mailboxes");
                assert!(sharded.barriers() > 0, "windows must actually close");
            }
        }
    }

    /// Prepare-thread configurations must not change anything observable.
    #[test]
    fn prepare_threads_are_invisible() {
        let mut rng = seeded_rng(55);
        let mut t1 = ShardedEventQueue::new(4, QueueBackend::Wheel, Dur(LA), 1);
        let mut t4 = ShardedEventQueue::new(4, QueueBackend::Wheel, Dur(LA), 4);
        let mut now = 0u64;
        for id in 0..20_000u64 {
            if rng.random::<f64>() < 0.55 || t1.is_empty() {
                let shard = rng.random_range(0..4);
                let t = now + rng.random_range(0..20 * LA);
                t1.push(shard, Time(t), id);
                t4.push(shard, Time(t), id);
            } else {
                let a = t1.pop();
                assert_eq!(a, t4.pop());
                if let Some((t, _)) = a {
                    now = t.as_ps();
                }
            }
        }
        loop {
            let a = t1.pop();
            assert_eq!(a, t4.pop());
            if a.is_none() {
                break;
            }
        }
    }

    /// Mailbox drain must deliver entries in their original global order
    /// even when newer direct pushes landed in the destination first.
    #[test]
    fn mailbox_drain_preserves_original_seq_order() {
        let mut q = ShardedEventQueue::new(2, QueueBackend::Wheel, Dur(100), 1);
        q.push(0, Time(10), "w0-a");
        q.mail(1, Time(150), "cut-early-seq");
        q.push(1, Time(150), "direct-later-seq");
        // Window 1: only w0-a is dispatchable (window_end = 10+100 = 110
        // after the first barrier).
        assert_eq!(q.pop(), Some((Time(10), "w0-a")));
        // Barrier drains the mailbox; at t=150 the mailed entry's older
        // seq must win over the direct push.
        assert_eq!(q.pop(), Some((Time(150), "cut-early-seq")));
        assert_eq!(q.pop(), Some((Time(150), "direct-later-seq")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.mailed(), 1);
    }

    /// The profile is pure observation: an enabled-profile queue must pop
    /// the identical sequence, and a churned multi-shard run must leave
    /// nonzero merge samples and drain spans behind.
    #[test]
    fn profile_is_invisible_and_populated() {
        let mut rng = seeded_rng(77);
        let mut plain = ShardedEventQueue::new(4, QueueBackend::Wheel, Dur(LA), 1);
        let mut profiled = ShardedEventQueue::new(4, QueueBackend::Wheel, Dur(LA), 1);
        profiled.enable_profile();
        let mut now = 0u64;
        for id in 0..20_000u64 {
            if rng.random::<f64>() < 0.5 || plain.is_empty() {
                let shard = rng.random_range(0..4);
                if rng.random::<f64>() < 0.2 {
                    let t = now + LA + rng.random_range(0..4 * LA);
                    plain.mail(shard, Time(t), id);
                    profiled.mail(shard, Time(t), id);
                } else {
                    let t = now + rng.random_range(0..4 * LA);
                    plain.push(shard, Time(t), id);
                    profiled.push(shard, Time(t), id);
                }
            } else {
                let a = plain.pop();
                assert_eq!(a, profiled.pop());
                if let Some((t, _)) = a {
                    now = t.as_ps();
                }
            }
        }
        loop {
            let a = plain.pop();
            assert_eq!(a, profiled.pop());
            if a.is_none() {
                break;
            }
        }
        assert!(plain.profile().is_none());
        let p = profiled.profile().expect("profile enabled");
        assert!(p.merge_samples > 0, "sampled merges must land");
        assert_eq!(p.barriers, profiled.barriers());
        assert!(p.drain_ns.iter().any(|&n| n > 0), "mailbox drains timed");
        assert_eq!(p.drain_ns.len(), 4);
        assert_eq!(p.prepare_ns.len(), 4);
    }

    /// shards=1 must behave exactly like a bare EventQueue (no windows,
    /// no barriers) — it is the serial engine's path.
    #[test]
    fn single_shard_is_plain_queue() {
        let mut q = ShardedEventQueue::new(1, QueueBackend::Wheel, Dur(LA), 1);
        let mut reference = EventQueue::new();
        for (i, t) in [50u64, 10, 50, 7, 1_000_000].iter().enumerate() {
            q.push(0, Time(*t), i);
            reference.push(Time(*t), i);
        }
        loop {
            let a = reference.pop();
            assert_eq!(a, q.pop());
            if a.is_none() {
                break;
            }
        }
        assert_eq!(q.barriers(), 0);
        assert_eq!(q.peak_len(), reference.peak_len());
    }
}
