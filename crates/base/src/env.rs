//! Environment-variable parsing shared by every harness that takes
//! `SILO_*` knobs.
//!
//! Both the property harness ([`crate::prop`]) and the fault-schedule
//! explorer read `SILO_PROP_SEED` / `SILO_PROP_CASES`; this module is the
//! single parser so the two can never drift on precedence or error
//! handling. Policy: an *unset* variable falls back to the default; a set
//! but *unparsable* one is ignored the same way (a typo must not silently
//! re-seed a CI run with garbage, and panicking on unrelated environment
//! noise would be worse) — exactly the behavior `prop` has always had.

/// Parse `key` from the environment; `None` when unset or unparsable.
pub fn parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

/// [`parse`] with a fallback for the unset/unparsable cases.
pub fn parse_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    parse(key).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global environment: each test uses its own key so parallel
    // test threads can't race on a shared variable.

    #[test]
    fn unset_falls_back() {
        assert_eq!(parse::<u64>("SILO_ENV_TEST_UNSET"), None);
        assert_eq!(parse_or("SILO_ENV_TEST_UNSET", 7u64), 7);
    }

    #[test]
    fn set_value_parses() {
        std::env::set_var("SILO_ENV_TEST_SET", "1234");
        assert_eq!(parse::<u64>("SILO_ENV_TEST_SET"), Some(1234));
        assert_eq!(parse_or("SILO_ENV_TEST_SET", 7u64), 1234);
        std::env::remove_var("SILO_ENV_TEST_SET");
    }

    #[test]
    fn garbage_is_ignored_like_unset() {
        std::env::set_var("SILO_ENV_TEST_BAD", "not-a-number");
        assert_eq!(parse::<u64>("SILO_ENV_TEST_BAD"), None);
        assert_eq!(parse_or("SILO_ENV_TEST_BAD", 7u64), 7);
        // Other types can still parse the same variable.
        assert_eq!(
            parse::<String>("SILO_ENV_TEST_BAD").as_deref(),
            Some("not-a-number")
        );
        std::env::remove_var("SILO_ENV_TEST_BAD");
    }
}
