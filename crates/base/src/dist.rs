//! Deterministic randomness and the analytic distributions the paper's
//! workloads are built from.
//!
//! The paper's memcached workload (§6.1) follows Facebook's ETC trace as
//! characterized by Atikoglu et al. (SIGMETRICS 2012): value sizes and
//! inter-arrival times are *generalized Pareto*. Tenant arrivals in the
//! flow-level simulator (§6.3) and message arrivals in Table 1 are Poisson,
//! i.e. exponential gaps. Both distributions are implemented here by
//! inverse-transform sampling so we need nothing beyond `rand`'s uniform
//! source, keeping all draws reproducible from one seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Construct the deterministic RNG used throughout the workspace.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draw from Exp(rate): mean `1/rate`. Inverse transform on (0,1].
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    // `random::<f64>()` is in [0,1); flip to (0,1] so ln() is finite.
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / rate
}

/// Generalized Pareto distribution GPD(mu, sigma, xi).
///
/// CDF: `F(x) = 1 - (1 + xi (x - mu)/sigma)^(-1/xi)` for `xi != 0`,
/// `F(x) = 1 - exp(-(x - mu)/sigma)` for `xi == 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenPareto {
    /// Location (minimum value).
    pub mu: f64,
    /// Scale.
    pub sigma: f64,
    /// Shape. Positive values give a heavy tail.
    pub xi: f64,
}

impl GenPareto {
    pub fn new(mu: f64, sigma: f64, xi: f64) -> GenPareto {
        assert!(sigma > 0.0, "GPD scale must be positive");
        GenPareto { mu, sigma, xi }
    }

    /// Inverse-transform sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>(); // (0,1]
        self.quantile_from_u(u)
    }

    /// Quantile function driven by a uniform `u in (0,1]` where `u` is the
    /// *survival* probability (`1 - F`). Exposed for tests.
    pub fn quantile_from_u(&self, u: f64) -> f64 {
        if self.xi.abs() < 1e-12 {
            self.mu - self.sigma * u.ln()
        } else {
            self.mu + self.sigma * (u.powf(-self.xi) - 1.0) / self.xi
        }
    }

    /// Mean, defined for `xi < 1`.
    pub fn mean(&self) -> f64 {
        assert!(self.xi < 1.0, "GPD mean undefined for xi >= 1");
        self.mu + self.sigma / (1.0 - self.xi)
    }
}

/// Convenience alias for sampling a GPD in one call.
pub fn gen_pareto<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64, xi: f64) -> f64 {
    GenPareto::new(mu, sigma, xi).sample(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn exponential_mean() {
        let mut rng = seeded_rng(7);
        let n = 200_000;
        let rate = 4.0;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gpd_reduces_to_exponential_at_xi_zero() {
        let g = GenPareto::new(0.0, 2.0, 0.0);
        // Survival u=e^-1 should give exactly sigma.
        assert!((g.quantile_from_u((-1.0f64).exp()) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gpd_mean_matches_analytic() {
        let g = GenPareto::new(10.0, 50.0, 0.2);
        let mut rng = seeded_rng(11);
        let n = 400_000;
        let emp: f64 = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        let analytic = g.mean();
        assert!(
            (emp - analytic).abs() / analytic < 0.05,
            "empirical {emp} vs analytic {analytic}"
        );
    }

    #[test]
    fn gpd_minimum_is_mu() {
        let g = GenPareto::new(5.0, 1.0, 0.3);
        let mut rng = seeded_rng(3);
        for _ in 0..10_000 {
            assert!(g.sample(&mut rng) >= 5.0);
        }
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn gpd_rejects_bad_scale() {
        GenPareto::new(0.0, 0.0, 0.1);
    }
}
