//! Foundation types shared by every Silo crate.
//!
//! This crate provides three things:
//!
//! 1. **Exact fixed-point units** ([`Time`], [`Dur`], [`Bytes`], [`Rate`]).
//!    Simulated time is measured in integer *picoseconds* so that packet
//!    transmission times are exact: an 84-byte void frame on a 10 Gbps link
//!    takes 67.2 ns = 67 200 ps, which integer nanoseconds cannot represent.
//!    All conversions route through `u128` intermediates so they neither
//!    overflow nor silently lose precision for any realistic input.
//!
//! 2. **Statistics** ([`stats`]) — percentiles, CDFs, histograms and online
//!    mean/variance used by every experiment harness.
//!
//! 3. **Deterministic randomness** ([`dist`]) — a seeded RNG constructor and
//!    the analytic distributions the paper's workloads need (exponential,
//!    generalized Pareto), implemented from scratch on top of `rand`.
//!
//! Everything downstream of this crate is deterministic given a seed.

pub mod dist;
pub mod env;
pub mod eventq;
pub mod fxhash;
pub mod json;
pub mod prop;
pub mod shardq;
pub mod stats;
pub mod units;

pub use dist::{exponential, gen_pareto, seeded_rng, GenPareto};
pub use eventq::{EvKey, EventQueue, QueueBackend};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use json::Json;
pub use shardq::{ShardQueueProfile, ShardedEventQueue};
pub use stats::{Cdf, Histogram, LogHistogram, OnlineStats, Summary};
pub use units::{Bytes, Dur, Rate, Time};
