//! Property-based verification of `LogHistogram` against the exact
//! `Summary` order statistics, via the hand-rolled `prop::forall` harness
//! (seed/cases via `SILO_PROP_SEED`/`SILO_PROP_CASES`).

use silo_base::prop::{forall, shrink_vec, Rng, StdRng};
use silo_base::{LogHistogram, Summary};

/// Random sample vectors spanning the dynamic range the histogram has to
/// cover in practice (latencies in picoseconds go up to ~2^47).
fn gen_samples(rng: &mut StdRng) -> Vec<u64> {
    let n = rng.random_range(1usize..200);
    (0..n)
        .map(|_| {
            let bits = rng.random_range(0u32..48);
            rng.random_range(0u64..(1u64 << bits) + 1)
        })
        .collect()
}

fn shrink_samples(v: &[u64]) -> Vec<Vec<u64>> {
    shrink_vec(v, |&x| {
        let mut c = vec![x / 2];
        if x > 0 {
            c.push(x - 1);
        }
        c.retain(|&y| y != x);
        c
    })
}

#[test]
fn quantile_estimate_within_one_bucket_of_exact() {
    forall(
        "LogHistogram quantile brackets the exact Summary quantile",
        gen_samples,
        |v| shrink_samples(v),
        |v| {
            let mut h = LogHistogram::new(5);
            let mut s = Summary::new();
            for &x in v {
                h.record(x);
                s.record(x as f64);
            }
            for &p in &[0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                let est = h.quantile(p).unwrap();
                let exact = s.quantile(p).unwrap() as u64;
                let (lo, hi) = h.bucket_bounds_of(est);
                if !(lo <= exact && exact <= hi) {
                    return Err(format!(
                        "p={p}: exact {exact} not in bucket [{lo},{hi}] of estimate {est}"
                    ));
                }
            }
            if h.min() != Some(*v.iter().min().unwrap()) {
                return Err("min not exact".into());
            }
            if h.max() != Some(*v.iter().max().unwrap()) {
                return Err("max not exact".into());
            }
            Ok(())
        },
    );
}

#[test]
fn merge_equals_histogram_of_concatenation() {
    forall(
        "merge(a,b) == histogram(a ++ b)",
        |rng| (gen_samples(rng), gen_samples(rng)),
        |(a, b)| {
            let mut out: Vec<(Vec<u64>, Vec<u64>)> = Vec::new();
            for sa in shrink_samples(a) {
                out.push((sa, b.clone()));
            }
            for sb in shrink_samples(b) {
                out.push((a.clone(), sb));
            }
            out
        },
        |(a, b)| {
            let mut ha = LogHistogram::new(5);
            let mut hb = LogHistogram::new(5);
            let mut hall = LogHistogram::new(5);
            for &x in a {
                ha.record(x);
                hall.record(x);
            }
            for &x in b {
                hb.record(x);
                hall.record(x);
            }
            ha.merge(&hb);
            if ha.count() != hall.count() {
                return Err("merged count differs".into());
            }
            if ha.min() != hall.min() || ha.max() != hall.max() || ha.mean() != hall.mean() {
                return Err("merged min/max/mean differ".into());
            }
            for &p in &[0.0, 0.5, 0.99, 1.0] {
                if ha.quantile(p) != hall.quantile(p) {
                    return Err(format!("merged quantile p={p} differs"));
                }
            }
            Ok(())
        },
    );
}
