//! Datapath-focused regression tests: pacer conformance inside the full
//! simulator, fan-out fairness, Oktopus's static rates, and transaction
//! accounting.

use silo_base::{Bytes, Dur, Rate};
use silo_simnet::{Sim, SimConfig, TenantSpec, TenantWorkload, TransportMode};
use silo_topology::{HostId, Topology, TreeParams};

fn rack(servers: usize) -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: servers,
        vm_slots_per_server: 4,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

/// A backlogged paced sender must achieve close to its hose `B` and never
/// exceed it.
#[test]
fn paced_bulk_throughput_matches_hose() {
    let cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(200), 5);
    let t = TenantSpec {
        vm_hosts: vec![HostId(0), HostId(1)],
        b: Rate::from_gbps(2),
        s: Bytes(1500),
        bmax: Rate::from_gbps(2),
        prio: 0,
        delay: None,
        workload: TenantWorkload::BulkAllToAll {
            msg: Bytes::from_mb(1),
        },
    };
    let m = Sim::new(rack(2), cfg, vec![t]).run();
    // Two directions, each paced to <= 2 Gbps with 3% coordination
    // headroom; slow-start ramp costs a little at the front.
    let per_dir = m.goodput[0] as f64 * 8.0 / 0.2 / 2.0;
    assert!(per_dir > 1.6e9, "achieved {per_dir}");
    assert!(per_dir <= 2.0e9 * 1.01, "exceeded hose: {per_dir}");
}

/// Regression: a connection pre-stamping far ahead must not starve the
/// VM's other destinations (the shared-bucket FIFO bug). Three concurrent
/// destinations must share the hose near-equally.
#[test]
fn fanout_pairs_share_the_hose_fairly() {
    let cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(200), 3);
    let t = TenantSpec {
        vm_hosts: (0..4).map(HostId).collect(),
        b: Rate::from_gbps(2),
        s: Bytes(1500),
        bmax: Rate::from_gbps(2),
        prio: 0,
        delay: None,
        workload: TenantWorkload::BulkAllToAll {
            msg: Bytes::from_mb(1),
        },
    };
    let m = Sim::new(rack(4), cfg, vec![t]).run();
    // 12 directed pairs, all remote: aggregate ~ 4 x 2 Gbps (each VM's
    // egress hose), within ramp-up and headroom losses.
    let agg = m.goodput[0] as f64 * 8.0;
    let expect = 4.0 * 2e9 * 0.2;
    assert!(
        agg > expect * 0.75,
        "aggregate {agg} vs expected ~{expect} (fan-out starvation?)"
    );
    // And per-message latencies are tightly clustered (no starved pair):
    // every 1 MB message at ~B/3 per pair takes ~12-16 ms.
    let mut lat = m.latencies_us(0);
    assert!(lat.len() > 50);
    let med = lat.median().unwrap();
    let p99 = lat.p99().unwrap();
    assert!(
        p99 < med * 3.0,
        "latency spread med={med} p99={p99} suggests starvation"
    );
}

/// Oktopus's static hose split: every sender of an all-to-one pattern is
/// pinned at B/(n−1) even when the receiver is idle — the burst penalty
/// the paper shows in Fig. 12.
#[test]
fn okto_static_rates_slow_bursts() {
    let mk = |mode| {
        let cfg = SimConfig::new(mode, Dur::from_ms(200), 9);
        let t = TenantSpec {
            vm_hosts: (0..8).map(HostId).collect(),
            b: Rate::from_mbps(500),
            s: Bytes::from_kb(15),
            bmax: Rate::from_gbps(1),
            prio: 0,
            delay: None,
            workload: TenantWorkload::OldiAllToOne {
                msg_mean: Bytes::from_kb(13),
                interval: Dur::from_ms(10),
            },
        };
        Sim::new(rack(8), cfg, vec![t]).run()
    };
    let silo = mk(TransportMode::Silo);
    let okto = mk(TransportMode::Okto);
    let mut lat_silo = silo.latencies_us(0);
    let mut lat_okto = okto.latencies_us(0);
    let med_silo = lat_silo.median().unwrap();
    let med_okto = lat_okto.median().unwrap();
    // Silo's 13 KB message rides the burst at Bmax (~110 us + queueing);
    // Okto's drains at 500M/7 = 71M (~1.5 ms).
    assert!(
        med_okto > med_silo * 4.0,
        "okto {med_okto} vs silo {med_silo}"
    );
}

/// Every memcached transaction that completes is measured exactly once,
/// and its latency includes both directions.
#[test]
fn etc_transaction_accounting() {
    let cfg = SimConfig::new(TransportMode::Tcp, Dur::from_ms(100), 4);
    let t = TenantSpec {
        vm_hosts: (0..5).map(HostId).collect(),
        b: Rate::from_mbps(210),
        s: Bytes(1500),
        bmax: Rate::from_gbps(1),
        prio: 0,
        delay: None,
        workload: TenantWorkload::Etc {
            load: 0.1,
            concurrency: 2,
        },
    };
    let m = Sim::new(rack(5), cfg, vec![t]).run();
    let txns: Vec<_> = m
        .messages
        .iter()
        .filter_map(|msg| msg.txn_latency)
        .collect();
    assert!(txns.len() > 200, "transactions: {}", txns.len());
    // Request + response messages both appear; there are at least two
    // messages per completed transaction.
    assert!(m.messages.len() >= txns.len() * 2);
    // Transaction latency can never be below one network round trip
    // (two one-way prop delays + store-and-forward).
    for &d in &txns {
        assert!(d > Dur::from_ns(1000));
    }
}

/// Void bytes only flow when data is pending (no idle spinning), and
/// disappear entirely in un-paced modes.
#[test]
fn void_packets_only_in_paced_modes() {
    let mk = |mode| {
        let cfg = SimConfig::new(mode, Dur::from_ms(50), 6);
        let t = TenantSpec {
            vm_hosts: vec![HostId(0), HostId(1)],
            b: Rate::from_gbps(1),
            s: Bytes(1500),
            bmax: Rate::from_gbps(1),
            prio: 0,
            delay: None,
            workload: TenantWorkload::BulkAllToAll {
                msg: Bytes::from_mb(1),
            },
        };
        Sim::new(rack(2), cfg, vec![t]).run()
    };
    let silo = mk(TransportMode::Silo);
    assert!(silo.wire_void_bytes > 0, "1G on a 10G wire needs voids");
    let tcp = mk(TransportMode::Tcp);
    assert_eq!(tcp.wire_void_bytes, 0);
    assert_eq!(tcp.wire_data_bytes, 0, "wire accounting is pacer-only");
}
