//! End-to-end behavioral tests of the packet-level simulator: TCP
//! correctness, pacing conformance, contention effects, and the Silo
//! datapath.

use silo_base::{Bytes, Dur, Rate};
use silo_simnet::{Sim, SimConfig, TenantSpec, TenantWorkload, TransportMode};
use silo_topology::{HostId, Topology, TreeParams};

fn small_topo(servers: usize) -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: servers,
        vm_slots_per_server: 6,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

fn bulk_tenant(hosts: &[u32], msg: Bytes) -> TenantSpec {
    TenantSpec {
        vm_hosts: hosts.iter().map(|&h| HostId(h)).collect(),
        b: Rate::from_gbps(3),
        s: Bytes(1500),
        bmax: Rate::from_gbps(10),
        prio: 0,
        delay: None,
        workload: TenantWorkload::BulkAllToAll { msg },
    }
}

#[test]
fn tcp_bulk_transfer_achieves_line_rate() {
    // One pair of hosts, one bulk tenant: TCP should ramp up and sustain
    // most of the 10 G link over 50 ms.
    let topo = small_topo(2);
    let cfg = SimConfig::new(TransportMode::Tcp, Dur::from_ms(50), 1);
    // One long transfer per direction so stop-and-go message boundaries
    // don't idle the pipe during the measurement.
    let tenants = vec![bulk_tenant(&[0, 1], Bytes::from_mb(64))];
    let m = Sim::new(topo, cfg, tenants).run();
    let gbps = m.goodput[0] as f64 * 8.0 / 50e-3 / 1e9;
    // Each direction has its own wire: expect most of 2 x 10 G in
    // aggregate. (Reno probes until loss, so occasional tail drops at the
    // 312 KB port are expected and correct.)
    assert!(gbps > 12.0, "aggregate goodput only {gbps:.2} Gbps");
}

#[test]
fn tcp_incast_causes_drops_and_rtos() {
    // Classic incast: 5 senders on 5 hosts blast one receiver through a
    // 312 KB port. TCP must see drops; with min_rto = 10 ms over a 50 ms
    // run, RTOs show up.
    let topo = small_topo(6);
    let cfg = SimConfig::new(TransportMode::Tcp, Dur::from_ms(50), 2);
    let tenants = vec![TenantSpec {
        vm_hosts: (0..6).map(HostId).collect(),
        b: Rate::from_gbps(10),
        s: Bytes(1500),
        bmax: Rate::from_gbps(10),
        prio: 0,
        delay: None,
        workload: TenantWorkload::OldiAllToOne {
            msg_mean: Bytes::from_kb(300),
            interval: Dur::from_ms(2),
        },
    }];
    let m = Sim::new(topo, cfg, tenants).run();
    assert!(m.drops > 0, "incast through a shallow buffer must drop");
}

#[test]
fn silo_pacing_prevents_burst_drops() {
    // The same aggressive all-to-one workload, but paced to a modest
    // guarantee: no drops, because bursts conform to {B, S, Bmax} and the
    // placement arithmetic (6 senders x 15 KB << 312 KB) absorbs them.
    let topo = small_topo(6);
    let cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(50), 2);
    let tenants = vec![TenantSpec {
        vm_hosts: (0..6).map(HostId).collect(),
        b: Rate::from_mbps(500),
        s: Bytes::from_kb(15),
        bmax: Rate::from_gbps(1),
        prio: 0,
        delay: None,
        workload: TenantWorkload::OldiAllToOne {
            msg_mean: Bytes::from_kb(15),
            interval: Dur::from_ms(2),
        },
    }];
    let m = Sim::new(topo, cfg, tenants).run();
    assert_eq!(m.drops, 0, "paced bursts must fit the buffer");
    assert!(m.rtos == 0, "no loss, no timeouts");
    // Void packets actually flowed on the host links.
    assert!(m.wire_void_bytes > 0, "pacer must emit voids under load");
    // Messages completed.
    assert!(m.messages.len() > 50, "got {}", m.messages.len());
}

#[test]
fn memcached_alone_has_low_latency() {
    let topo = small_topo(5);
    let cfg = SimConfig::new(TransportMode::Tcp, Dur::from_ms(100), 3);
    let tenants = vec![TenantSpec {
        vm_hosts: (0..5).map(HostId).collect(),
        b: Rate::from_mbps(210),
        s: Bytes(1500),
        bmax: Rate::from_gbps(1),
        prio: 0,
        delay: None,
        workload: TenantWorkload::Etc {
            load: 0.2,
            concurrency: 2,
        },
    }];
    let m = Sim::new(topo, cfg, tenants).run();
    let mut lat = m.txn_latencies_us(0);
    assert!(lat.len() > 100, "transactions completed: {}", lat.len());
    let p99 = lat.p99().unwrap();
    // Unloaded network: tail well under a millisecond.
    assert!(p99 < 1000.0, "p99 {p99} us");
}

#[test]
fn contention_inflates_memcached_tail_and_silo_fixes_it() {
    // The Fig. 1 / Fig. 11 storyline in miniature: memcached shares the
    // rack with an all-to-all bulk tenant.
    let topo = small_topo(5);
    let mk_tenants = |_mode: TransportMode| {
        vec![
            TenantSpec {
                vm_hosts: (0..5).map(HostId).collect(),
                b: Rate::from_mbps(420),
                s: Bytes(3000),
                bmax: Rate::from_gbps(1),
                prio: 0,
                delay: None,
                workload: TenantWorkload::Etc {
                    load: 0.2,
                    concurrency: 2,
                },
            },
            TenantSpec {
                vm_hosts: (0..5).flat_map(|h| [HostId(h), HostId(h)]).collect(),
                b: Rate::from_gbps(2),
                s: Bytes(1500),
                bmax: Rate::from_gbps(2),
                prio: 0,
                delay: None,
                workload: TenantWorkload::BulkAllToAll {
                    msg: Bytes::from_mb(1),
                },
            },
        ]
    };
    let run = |mode| {
        let cfg = SimConfig::new(mode, Dur::from_ms(100), 4);
        Sim::new(small_topo(5), cfg, mk_tenants(mode)).run()
    };
    let _ = &topo;
    let tcp = run(TransportMode::Tcp);
    let silo = run(TransportMode::Silo);
    let mut tcp_lat = tcp.txn_latencies_us(0);
    let mut silo_lat = silo.txn_latencies_us(0);
    assert!(tcp_lat.len() > 50 && silo_lat.len() > 50);
    let tcp_p99 = tcp_lat.p99().unwrap();
    let silo_p99 = silo_lat.p99().unwrap();
    assert!(
        silo_p99 < tcp_p99,
        "Silo p99 {silo_p99} us must beat TCP p99 {tcp_p99} us"
    );
    // And the bulk tenant still moves serious data under Silo.
    assert!(silo.goodput[1] > 0);
}

#[test]
fn dctcp_keeps_queues_shorter_than_tcp() {
    // Two bulk tenants sharing a port: DCTCP's marking keeps the switch
    // queue near K while TCP fills the buffer; fewer drops for DCTCP.
    let run = |mode| {
        let cfg = SimConfig::new(mode, Dur::from_ms(50), 5);
        let tenants = vec![
            bulk_tenant(&[0, 2], Bytes::from_mb(4)),
            bulk_tenant(&[1, 2], Bytes::from_mb(4)),
        ];
        Sim::new(small_topo(3), cfg, tenants).run()
    };
    let tcp = run(TransportMode::Tcp);
    let dctcp = run(TransportMode::Dctcp);
    assert!(
        dctcp.drops < tcp.drops,
        "DCTCP drops {} must be below TCP drops {}",
        dctcp.drops,
        tcp.drops
    );
    // Both keep the shared link busy.
    let tput = |m: &silo_simnet::Metrics| (m.goodput[0] + m.goodput[1]) as f64 * 8.0 / 50e-3;
    assert!(tput(&dctcp) > 5e9, "DCTCP goodput {}", tput(&dctcp));
}

#[test]
fn best_effort_priority_yields_to_guaranteed() {
    // A guaranteed tenant and a best-effort (prio 1) tenant share a
    // bottleneck; the guaranteed tenant's messages see low latency.
    let cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(50), 6);
    let tenants = vec![
        TenantSpec {
            vm_hosts: vec![HostId(0), HostId(2)],
            b: Rate::from_gbps(1),
            s: Bytes::from_kb(15),
            bmax: Rate::from_gbps(1),
            prio: 0,
            delay: None,
            workload: TenantWorkload::PoissonPairs {
                pairs: vec![(0, 1)],
                msg_mean: Bytes::from_kb(15),
                interval: Dur::from_ms(1),
            },
        },
        TenantSpec {
            vm_hosts: vec![HostId(1), HostId(2)],
            b: Rate::from_gbps(9),
            s: Bytes(1500),
            bmax: Rate::from_gbps(10),
            prio: 1,
            delay: None,
            workload: TenantWorkload::BulkAllToAll {
                msg: Bytes::from_mb(2),
            },
        },
    ];
    let m = Sim::new(small_topo(3), cfg, tenants).run();
    let mut lat = m.latencies_us(0);
    assert!(lat.len() > 20);
    // 15 KB at 1 Gbps is 120 us of transmission; priority keeps the rest
    // small even with a 9 G bulk hog on the same egress port.
    let p99 = lat.p99().unwrap();
    assert!(p99 < 600.0, "guaranteed tenant p99 {p99} us");
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(20), 9);
        let tenants = vec![TenantSpec {
            vm_hosts: (0..4).map(HostId).collect(),
            b: Rate::from_mbps(500),
            s: Bytes::from_kb(15),
            bmax: Rate::from_gbps(1),
            prio: 0,
            delay: None,
            workload: TenantWorkload::OldiAllToOne {
                msg_mean: Bytes::from_kb(15),
                interval: Dur::from_ms(1),
            },
        }];
        Sim::new(small_topo(4), cfg, tenants).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.messages.len(), b.messages.len());
    assert_eq!(a.goodput, b.goodput);
    assert_eq!(a.drops, b.drops);
    for (x, y) in a.messages.iter().zip(&b.messages) {
        assert_eq!(x.latency, y.latency);
    }
}
