//! Differential tests for the hot-path event diet: coalesced void
//! emission (`SimConfig::coalesce_voids`) and the idle-pacer
//! fast-forward (`SimConfig::elide_nic_pulls`).
//!
//! Both switches are pure engine-side dietary measures: the wire
//! schedule — every data frame start, every void chunk an observer sees,
//! every `done_at` — must be byte-identical across the whole
//! {coalesce × elide} grid. Only the event counters may move, and they
//! must move *down*. The flight recorder and the audit layer are the
//! proof instruments: a re-expansion bug in the coalesced path would
//! show up as a diverging trace line or a shifted audit counter.

use silo_base::{Bytes, Dur, QueueBackend, Rate, Time};
use silo_simnet::{
    AuditConfig, EvKind, FaultPlan, Metrics, Sim, SimConfig, TenantSpec, TenantWorkload,
    TraceConfig, TransportMode,
};
use silo_topology::{HostId, Topology, TreeParams};

fn small_topo(servers: usize) -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: servers,
        vm_slots_per_server: 6,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

/// A paced mix that produces long void runs (a 500 Mbps hose on a 10 G
/// link leaves ~95% of each gap void) *and* bulk pressure.
fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            vm_hosts: vec![HostId(0), HostId(1)],
            b: Rate::from_mbps(500),
            s: Bytes::from_kb(15),
            bmax: Rate::from_gbps(1),
            prio: 0,
            delay: None,
            workload: TenantWorkload::OldiPeriodic {
                msg: Bytes::from_kb(15),
                period: Dur::from_ms(2),
            },
        },
        TenantSpec {
            vm_hosts: vec![HostId(2), HostId(3)],
            b: Rate::from_gbps(3),
            s: Bytes(1500),
            bmax: Rate::from_gbps(10),
            prio: 1,
            delay: None,
            workload: TenantWorkload::BulkAllToAll {
                msg: Bytes::from_kb(256),
            },
        },
    ]
}

fn run_with(coalesce: bool, elide: bool, faults: FaultPlan, observers: bool) -> Metrics {
    let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(40), 7);
    cfg.coalesce_voids = coalesce;
    cfg.elide_nic_pulls = elide;
    cfg.faults = faults;
    if observers {
        cfg.audit = Some(AuditConfig::default());
        cfg.trace = Some(TraceConfig::default());
    }
    Sim::new(small_topo(4), cfg, tenants()).run()
}

/// Everything an observer can see, in one comparable bundle: physics,
/// the full flight-recorder log, and the audit layer's event count and
/// violation counters.
fn observed(m: &Metrics) -> (String, String, u64, [u64; 8]) {
    let trace = m.trace.as_ref().expect("traced run").to_jsonl();
    let audit = m.audit.as_ref().expect("audited run");
    (
        m.physics_json(),
        trace,
        audit.events_checked,
        audit.counters(),
    )
}

#[test]
fn event_diet_is_physics_exact_across_the_grid() {
    // All four corners of {coalesce × elide}, fully observed: the
    // baseline (both off) is the pre-diet engine; every other corner
    // must be indistinguishable to physics, trace, and audit.
    let base = observed(&run_with(false, false, FaultPlan::new(), true));
    for (coalesce, elide) in [(true, false), (false, true), (true, true)] {
        let m = run_with(coalesce, elide, FaultPlan::new(), true);
        let got = observed(&m);
        assert_eq!(
            got.0, base.0,
            "physics diverged at coalesce={coalesce} elide={elide}"
        );
        assert_eq!(
            got.1, base.1,
            "flight-recorder log diverged at coalesce={coalesce} elide={elide}"
        );
        assert_eq!(
            got.2, base.2,
            "audit saw a different event count at coalesce={coalesce} elide={elide}"
        );
        assert_eq!(
            got.3, base.3,
            "audit counters moved at coalesce={coalesce} elide={elide}"
        );
    }
}

#[test]
fn event_diet_strictly_cuts_dispatches() {
    // The diet must actually shed events — both pulls (fast-forward
    // skips the guaranteed no-op pull after each drained batch) and
    // total dispatches. Observers off: this is the hot-path shape.
    let fat = run_with(false, false, FaultPlan::new(), false);
    let lean = run_with(true, true, FaultPlan::new(), false);
    assert_eq!(fat.physics_json(), lean.physics_json());
    let pull = EvKind::NicPull as usize;
    assert!(
        lean.profile.fired[pull] < fat.profile.fired[pull],
        "fast-forward must elide pulls ({} vs {})",
        lean.profile.fired[pull],
        fat.profile.fired[pull]
    );
    assert!(
        lean.events_processed < fat.events_processed,
        "the diet must shrink total dispatches ({} vs {})",
        lean.events_processed,
        fat.events_processed
    );
}

#[test]
fn event_diet_agrees_across_queue_backends() {
    // The wheel/heap differential must hold on the dieted engine too —
    // full canonical serialization, engine counters included.
    let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(40), 9);
    cfg.coalesce_voids = true;
    cfg.elide_nic_pulls = true;
    cfg.queue = QueueBackend::Wheel;
    let wheel = Sim::new(small_topo(4), cfg.clone(), tenants()).run();
    cfg.queue = QueueBackend::Heap;
    let heap = Sim::new(small_topo(4), cfg, tenants()).run();
    assert_eq!(wheel.canonical_json(), heap.canonical_json());
}

#[test]
fn fast_forward_narrows_to_fault_targets() {
    // The fast-forward used to switch off for the whole run the moment a
    // fault plan existed. It is now withdrawn only on hosts a pacer
    // stall or drift window actually targets, so under this plan hosts
    // 2 and 3 must keep the fast path: the faulted run still fires
    // strictly fewer pulls with the diet on than off.
    let faults = || {
        FaultPlan::new()
            .pacer_stall(Time::from_ms(4), Time::from_ms(10), 0)
            .pacer_drift(Time::from_ms(12), Time::from_ms(20), 1, 4.0)
    };
    let off = run_with(true, false, faults(), false);
    let on = run_with(true, true, faults(), false);
    assert_eq!(off.physics_json(), on.physics_json());
    let pull = EvKind::NicPull as usize;
    assert!(
        on.profile.fired[pull] < off.profile.fired[pull],
        "untargeted hosts must keep the fast path under a fault plan ({} vs {})",
        on.profile.fired[pull],
        off.profile.fired[pull]
    );
}

#[test]
fn event_diet_is_physics_exact_under_faults() {
    // Pacer stall + drift + a link outage: the ugliest interaction
    // surface. The fast-forward is withdrawn per host on the stall/drift
    // targets (hosts 0 and 1 here) and stays live everywhere else, so
    // the elide flag must be physics-invisible either way; coalescing
    // stays on and must still re-expand identically through the
    // fault-window accounting.
    let faults = || {
        FaultPlan::new()
            .pacer_stall(Time::from_ms(4), Time::from_ms(10), 0)
            .pacer_drift(Time::from_ms(12), Time::from_ms(20), 1, 4.0)
            .link_down(Time::from_ms(22), Some(Time::from_ms(28)), 0)
    };
    let base = observed(&run_with(false, false, faults(), true));
    for (coalesce, elide) in [(true, false), (true, true), (false, true)] {
        let got = observed(&run_with(coalesce, elide, faults(), true));
        assert_eq!(
            got, base,
            "faulted run diverged at coalesce={coalesce} elide={elide}"
        );
    }
}
