//! Differential suite for the within-cell sharded engine
//! (`SimConfig::shards`).
//!
//! Partitioning a cell by rack and running the partitions under
//! conservative time windows must be invisible to every observer: the
//! canonical metrics serialization (engine counters included), the full
//! flight-recorder log, and the audit layer all have to be byte-identical
//! at every shard count and every prepare-thread count. Sharding is a
//! wall-clock lever, never a physics one — any divergence here means a
//! cross-partition packet was merged out of serial order.

use silo_base::{Bytes, Dur, QueueBackend, Rate, Time};
use silo_simnet::{
    AuditConfig, FaultPlan, Metrics, Sim, SimConfig, TenantSpec, TenantWorkload, TraceConfig,
    TransportMode,
};
use silo_topology::{HostId, Topology, TreeParams};

/// Four racks of four servers under one aggregation switch: enough racks
/// for real 2- and 4-way partitions (shards clamp to the rack count) and
/// an oversubscribed ToR uplink so the cut links actually queue.
fn racked_topo() -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 4,
        servers_per_rack: 4,
        vm_slots_per_server: 6,
        host_link: Rate::from_gbps(10),
        tor_oversub: 2.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

/// Tenants that straddle racks, so cross-partition traffic (the mailbox
/// path) carries real load: a paced OLDI group spanning racks 0–2 and a
/// bulk all-to-all spanning all four.
fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            vm_hosts: vec![HostId(0), HostId(5), HostId(10)],
            b: Rate::from_mbps(500),
            s: Bytes::from_kb(15),
            bmax: Rate::from_gbps(1),
            prio: 0,
            delay: None,
            workload: TenantWorkload::OldiPeriodic {
                msg: Bytes::from_kb(15),
                period: Dur::from_ms(2),
            },
        },
        TenantSpec {
            vm_hosts: vec![HostId(2), HostId(6), HostId(11), HostId(15)],
            b: Rate::from_gbps(3),
            s: Bytes(1500),
            bmax: Rate::from_gbps(10),
            prio: 1,
            delay: None,
            workload: TenantWorkload::BulkAllToAll {
                msg: Bytes::from_kb(256),
            },
        },
    ]
}

fn config(
    mode: TransportMode,
    shards: u32,
    threads: usize,
    faults: FaultPlan,
    observers: bool,
) -> SimConfig {
    let mut cfg = SimConfig::new(mode, Dur::from_ms(20), 7);
    cfg.shards = shards;
    cfg.shard_threads = threads;
    cfg.faults = faults;
    if observers {
        cfg.audit = Some(AuditConfig::default());
        cfg.trace = Some(TraceConfig::default());
    }
    cfg
}

fn run_with(
    mode: TransportMode,
    shards: u32,
    threads: usize,
    faults: FaultPlan,
    observers: bool,
) -> Metrics {
    Sim::new(
        racked_topo(),
        config(mode, shards, threads, faults, observers),
        tenants(),
    )
    .run()
}

/// Everything an observer can see, in one comparable bundle: the full
/// canonical serialization (physics + engine counters), the complete
/// flight-recorder log, and the audit layer's counters.
fn observed(m: &Metrics) -> (String, String, u64, [u64; 8]) {
    let trace = m.trace.as_ref().expect("traced run").to_jsonl();
    let audit = m.audit.as_ref().expect("audited run");
    (
        m.canonical_json(),
        trace,
        audit.events_checked,
        audit.counters(),
    )
}

#[test]
fn sharded_run_is_byte_identical_for_every_mode() {
    for mode in [
        TransportMode::Silo,
        TransportMode::Tcp,
        TransportMode::Dctcp,
    ] {
        let base = observed(&run_with(mode, 1, 1, FaultPlan::new(), true));
        for (shards, threads) in [(2, 1), (4, 1), (4, 4)] {
            let got = observed(&run_with(mode, shards, threads, FaultPlan::new(), true));
            assert_eq!(
                got.0, base.0,
                "canonical metrics diverged: mode={mode:?} shards={shards} threads={threads}"
            );
            assert_eq!(
                got.1, base.1,
                "flight-recorder log diverged: mode={mode:?} shards={shards} threads={threads}"
            );
            assert_eq!(
                (got.2, got.3),
                (base.2, base.3),
                "audit moved: mode={mode:?} shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn sharded_run_is_byte_identical_under_faults() {
    // Fault windows dispatch as global (shard 0) events while their
    // effects land on hosts and links owned by other partitions — the
    // nastiest ordering surface the merge has.
    let faults = || {
        FaultPlan::new()
            .pacer_stall(Time::from_ms(4), Time::from_ms(8), 5)
            .pacer_drift(Time::from_ms(9), Time::from_ms(14), 10, 4.0)
            .link_down(Time::from_ms(15), Some(Time::from_ms(18)), 2)
    };
    let base = observed(&run_with(TransportMode::Silo, 1, 1, faults(), true));
    for shards in [2, 4] {
        let got = observed(&run_with(TransportMode::Silo, shards, 1, faults(), true));
        assert_eq!(got, base, "faulted run diverged at shards={shards}");
    }
}

#[test]
fn sharded_wheel_agrees_with_serial_heap() {
    // Cross the shard axis with the queue-backend axis: the 4-way
    // sharded wheel engine must serialize identically to the 1-shard
    // reference heap.
    let sharded_wheel = {
        let mut cfg = config(TransportMode::Silo, 4, 1, FaultPlan::new(), false);
        cfg.queue = QueueBackend::Wheel;
        Sim::new(racked_topo(), cfg, tenants()).run()
    };
    let serial_heap = {
        let mut cfg = config(TransportMode::Silo, 1, 1, FaultPlan::new(), false);
        cfg.queue = QueueBackend::Heap;
        Sim::new(racked_topo(), cfg, tenants()).run()
    };
    assert_eq!(sharded_wheel.canonical_json(), serial_heap.canonical_json());
}

#[test]
fn cross_partition_traffic_actually_flows() {
    // Guard against a vacuous suite: at 4 shards the tenant mix above
    // must push packets through the mailbox path and close windows at
    // barriers; at 1 shard both machineries must stay cold.
    let cfg4 = config(TransportMode::Silo, 4, 1, FaultPlan::new(), false);
    let (_, sim) = Sim::new(racked_topo(), cfg4, tenants()).run_keep();
    let (mailed, barriers) = sim.shard_stats();
    assert!(mailed > 0, "no packet ever crossed a partition cut");
    assert!(barriers > 0, "the windowed merge never hit a barrier");

    let cfg1 = config(TransportMode::Silo, 1, 1, FaultPlan::new(), false);
    let (_, sim) = Sim::new(racked_topo(), cfg1, tenants()).run_keep();
    assert_eq!(sim.shard_stats(), (0, 0), "serial path must not shard");
}

#[test]
fn observers_stay_pure_at_four_shards() {
    // Audit and trace must remain pure observation when the engine is
    // sharded: the canonical serialization of a 4-shard run cannot move
    // when the observers are switched on.
    let on = run_with(TransportMode::Silo, 4, 1, FaultPlan::new(), true);
    let off = run_with(TransportMode::Silo, 4, 1, FaultPlan::new(), false);
    assert_eq!(on.canonical_json(), off.canonical_json());
}

#[test]
fn shard_count_clamps_to_rack_count() {
    // Asking for more partitions than racks degrades to rack-granular
    // sharding, not a panic or an unbalanced map — and stays identical.
    let wild = run_with(TransportMode::Silo, 64, 1, FaultPlan::new(), false);
    let serial = run_with(TransportMode::Silo, 1, 1, FaultPlan::new(), false);
    assert_eq!(wild.canonical_json(), serial.canonical_json());
}
