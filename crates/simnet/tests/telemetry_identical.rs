//! Differential and conservation suite for the windowed telemetry layer
//! (`SimConfig::telemetry`).
//!
//! Telemetry is pure observation, and this suite is the proof: a
//! telemetry-on run must be byte-identical to a telemetry-off run in
//! every other observer (canonical metrics, flight-recorder log, audit
//! counters) across transports, shard counts and fault plans; and every
//! series must be *conservative* — the sum over windows equals the
//! end-of-run `Metrics` total bit-exactly, the windowed analogue of the
//! trace rings' `retained + dropped == recorded`.

use silo_base::{Bytes, Dur, Rate, Time};
use silo_simnet::{
    AuditConfig, FaultPlan, Metrics, Sim, SimConfig, TelemetryConfig, TenantSpec, TenantWorkload,
    TraceConfig, TransportMode,
};
use silo_topology::{HostId, Topology, TreeParams};

/// Four racks of four servers (the shard suite's topology): enough racks
/// for a real 4-way partition and an oversubscribed ToR uplink so the
/// cut links actually queue.
fn racked_topo() -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 4,
        servers_per_rack: 4,
        vm_slots_per_server: 6,
        host_link: Rate::from_gbps(10),
        tor_oversub: 2.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

/// Rack-straddling tenants; the OLDI group carries a delay guarantee so
/// the margin series is exercised.
fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            vm_hosts: vec![HostId(0), HostId(5), HostId(10)],
            b: Rate::from_mbps(500),
            s: Bytes::from_kb(15),
            bmax: Rate::from_gbps(1),
            prio: 0,
            delay: Some(Dur::from_ms(1)),
            workload: TenantWorkload::OldiPeriodic {
                msg: Bytes::from_kb(15),
                period: Dur::from_ms(2),
            },
        },
        TenantSpec {
            vm_hosts: vec![HostId(2), HostId(6), HostId(11), HostId(15)],
            b: Rate::from_gbps(3),
            s: Bytes(1500),
            bmax: Rate::from_gbps(10),
            prio: 1,
            delay: None,
            workload: TenantWorkload::BulkAllToAll {
                msg: Bytes::from_kb(256),
            },
        },
    ]
}

fn faults() -> FaultPlan {
    FaultPlan::new()
        .pacer_stall(Time::from_ms(4), Time::from_ms(8), 5)
        .link_down(Time::from_ms(10), Some(Time::from_ms(15)), 2)
}

fn run(
    mode: TransportMode,
    shards: u32,
    telemetry: bool,
    plan: FaultPlan,
    observers: bool,
) -> Metrics {
    let mut cfg = SimConfig::new(mode, Dur::from_ms(20), 7);
    cfg.shards = shards;
    cfg.faults = plan;
    if telemetry {
        cfg.telemetry = Some(TelemetryConfig::default());
    }
    if observers {
        cfg.audit = Some(AuditConfig::default());
        cfg.trace = Some(TraceConfig::default());
    }
    Sim::new(racked_topo(), cfg, tenants()).run()
}

/// Everything the other observers can see, in one comparable bundle.
fn observed(m: &Metrics) -> (String, String, u64, [u64; 8]) {
    let trace = m.trace.as_ref().expect("traced run").to_jsonl();
    let audit = m.audit.as_ref().expect("audited run");
    (
        m.canonical_json(),
        trace,
        audit.events_checked,
        audit.counters(),
    )
}

#[test]
fn telemetry_observes_without_perturbing_physics() {
    for mode in [
        TransportMode::Silo,
        TransportMode::Tcp,
        TransportMode::Dctcp,
    ] {
        for shards in [1u32, 4] {
            for plan in [FaultPlan::new(), faults()] {
                let off = observed(&run(mode, shards, false, plan.clone(), true));
                let m = run(mode, shards, true, plan, true);
                let on = observed(&m);
                assert_eq!(
                    on, off,
                    "telemetry moved an observer: mode={mode:?} shards={shards}"
                );
                let log = m.telemetry.as_ref().expect("telemetry-on run");
                assert_eq!(log.windows, 20, "20 ms at 1 ms windows");
                assert!(
                    log.tenants
                        .iter()
                        .any(|s| s.iter().any(|w| w.completions > 0)),
                    "mode={mode:?}: some window must complete messages"
                );
            }
        }
    }
}

#[test]
fn telemetry_stays_out_of_serializations() {
    let m = run(TransportMode::Silo, 1, true, FaultPlan::new(), false);
    assert!(
        !m.canonical_json().contains("telemetry"),
        "telemetry must not enter the fingerprint"
    );
    assert!(!m.physics_json().contains("telemetry"));
}

/// Sum-of-windows == end-of-run totals, bit-exactly, for every series
/// with a `Metrics` counterpart — across all transports, with and
/// without faults.
#[test]
fn every_series_conserves_the_end_of_run_totals() {
    for mode in [
        TransportMode::Silo,
        TransportMode::Tcp,
        TransportMode::Dctcp,
    ] {
        for plan in [FaultPlan::new(), faults()] {
            let m = run(mode, 1, true, plan, false);
            let log = m.telemetry.as_ref().expect("telemetry log");
            for t in 0..2 {
                assert_eq!(
                    log.sum_goodput(t),
                    m.goodput[t],
                    "goodput drifted: mode={mode:?} tenant={t}"
                );
                assert_eq!(
                    log.sum_completions(t),
                    m.latency_hist(t as u16).expect("hist").count(),
                    "completions drifted: mode={mode:?} tenant={t}"
                );
            }
            assert_eq!(log.sum_drops(), m.drops, "drops drifted: mode={mode:?}");
            assert_eq!(
                log.sum_wire_data(),
                m.wire_data_bytes,
                "wire data drifted: mode={mode:?}"
            );
            assert_eq!(
                log.sum_wire_void(),
                m.wire_void_bytes,
                "wire void drifted: mode={mode:?}"
            );
            assert_eq!(log.sum_rtos(), m.rtos, "rtos drifted: mode={mode:?}");
            assert!(m.goodput.iter().sum::<u64>() > 0, "vacuous run");
            assert!(m.wire_data_bytes > 0 || mode != TransportMode::Silo);
        }
    }
}

/// Sharding must not move a single windowed sample: the deterministic
/// JSONL of a 4-shard run equals the serial run's byte-for-byte.
#[test]
fn windowed_series_are_shard_invariant() {
    for plan in [FaultPlan::new(), faults()] {
        let serial = run(TransportMode::Silo, 1, true, plan.clone(), false);
        let sharded = run(TransportMode::Silo, 4, true, plan, false);
        assert_eq!(
            serial.telemetry.as_ref().expect("log").to_jsonl(),
            sharded.telemetry.as_ref().expect("log").to_jsonl(),
        );
    }
}

/// The margin series actually bites: the guaranteed tenant's windows
/// carry margins, and a ToR outage mid-run produces fault-attributed
/// windows overlapping the realized fault interval.
#[test]
fn margins_and_fault_attribution_populate() {
    let m = run(TransportMode::Silo, 1, true, faults(), false);
    let log = m.telemetry.as_ref().expect("log");
    assert!(
        log.tenants[0].iter().any(|w| w.margin_min_ps.is_some()),
        "delay-guaranteed tenant must produce margin samples"
    );
    assert!(
        log.tenants[1].iter().all(|w| w.margin_min_ps.is_none()),
        "tenant without a guarantee has no margin"
    );
    // link_down spans [10 ms, 15 ms) → windows 10..=15 at 1 ms (the heal
    // edge lands exactly on the window-15 boundary and stays attributed).
    let tagged: Vec<usize> = (0..log.windows as usize)
        .filter(|&w| !log.window_faults[w].is_empty())
        .collect();
    assert!(
        tagged.contains(&10) && tagged.contains(&14),
        "outage windows must be fault-tagged, got {tagged:?}"
    );
    assert!(
        !tagged.contains(&2),
        "pre-stall window must stay clean, got {tagged:?}"
    );
}

/// Engine self-profile smoke (ROADMAP item 1 baseline): under 4 shards
/// the merge, barrier-drain and dispatch spans are all nonzero, and the
/// instrumented time never exceeds the dispatch loop's wall time.
#[test]
fn self_profile_spans_are_nonzero_and_bounded() {
    let m = run(TransportMode::Silo, 4, true, FaultPlan::new(), false);
    let p = &m.telemetry.as_ref().expect("log").self_profile;
    assert!(p.wall_ns > 0, "dispatch loop must be timed");
    assert!(p.barriers > 0, "4-shard run must hit window barriers");
    assert!(p.merge_samples > 0, "sampled merges must land");
    assert!(p.merge_ns > 0, "merge span must accumulate");
    assert!(
        p.drain_ns.iter().any(|&n| n > 0),
        "cross-rack traffic must time mailbox drains"
    );
    assert!(p.dispatch_total_ns() > 0, "dispatch spans must accumulate");
    assert_eq!(p.dispatch_ns.len(), 4, "per-shard dispatch attribution");
    assert!(
        p.dispatch_ns
            .iter()
            .filter(|a| a.iter().sum::<u64>() > 0)
            .count()
            >= 2,
        "dispatch time must attribute to multiple shards"
    );
    // Every span is measured inline on the dispatch thread
    // (shard_threads=1), so the instrumented total is bounded by wall.
    let instrumented: u64 = (0..4).map(|s| p.shard_total_ns(s)).sum::<u64>() + p.merge_ns;
    assert!(
        instrumented <= p.wall_ns,
        "instrumented {instrumented} ns exceeds wall {} ns",
        p.wall_ns
    );
    // The serial engine keeps the loop timed but never merges or drains.
    let serial = run(TransportMode::Silo, 1, true, FaultPlan::new(), false);
    let sp = &serial.telemetry.as_ref().expect("log").self_profile;
    assert!(sp.wall_ns > 0);
    assert_eq!(sp.barriers, 0);
    assert_eq!(sp.merge_samples, 0);
}

/// Window geometry follows the config: a non-default interval yields
/// ceil(duration/interval) windows and the exports carry it.
#[test]
fn interval_is_configurable() {
    let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(20), 7);
    cfg.telemetry = Some(TelemetryConfig {
        interval: Dur::from_us(250),
    });
    let m = Sim::new(racked_topo(), cfg, tenants()).run();
    let log = m.telemetry.as_ref().expect("log");
    assert_eq!(log.windows, 80);
    assert_eq!(log.interval, Dur::from_us(250));
    assert!(log.to_jsonl().starts_with(
        "{\"format\":\"silo-telemetry-v1\",\"interval_ps\":250000000,\"windows\":80,"
    ));
    let om = log.to_openmetrics();
    assert!(om.ends_with("# EOF\n"));
    assert!(om.contains("silo_goodput_bytes{tenant=\"0\"}"));
}
