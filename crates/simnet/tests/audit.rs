//! End-to-end tests of the invariant-audit layer: a healthy engine is
//! audit-clean in every transport mode, auditing never perturbs physics,
//! injected pacer faults produce *attributed* conformance violations, and
//! the queue-bound check actually fires when given an impossible bound.

use silo_base::{Bytes, Dur, Rate, Time};
use silo_simnet::{
    AuditConfig, FaultPlan, Sim, SimConfig, TenantSpec, TenantWorkload, TransportMode,
};
use silo_topology::{HostId, Topology, TreeParams};

fn small_topo(servers: usize) -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: servers,
        vm_slots_per_server: 6,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

fn periodic_tenant(hosts: &[u32]) -> TenantSpec {
    TenantSpec {
        vm_hosts: hosts.iter().map(|&h| HostId(h)).collect(),
        b: Rate::from_mbps(500),
        s: Bytes::from_kb(15),
        bmax: Rate::from_gbps(1),
        prio: 0,
        delay: None,
        workload: TenantWorkload::OldiPeriodic {
            msg: Bytes::from_kb(15),
            period: Dur::from_ms(2),
        },
    }
}

fn bulk_tenant(hosts: &[u32]) -> TenantSpec {
    TenantSpec {
        vm_hosts: hosts.iter().map(|&h| HostId(h)).collect(),
        b: Rate::from_gbps(3),
        s: Bytes(1500),
        bmax: Rate::from_gbps(10),
        prio: 1,
        delay: None,
        workload: TenantWorkload::BulkAllToAll {
            msg: Bytes::from_kb(256),
        },
    }
}

fn run(mode: TransportMode, audit: bool, faults: FaultPlan) -> silo_simnet::Metrics {
    let mut cfg = SimConfig::new(mode, Dur::from_ms(40), 7);
    cfg.faults = faults;
    if audit {
        cfg.audit = Some(AuditConfig::default());
    }
    let tenants = vec![periodic_tenant(&[0, 1]), bulk_tenant(&[2, 3])];
    Sim::new(small_topo(4), cfg, tenants).run()
}

#[test]
fn audit_observes_without_perturbing_physics() {
    for mode in [TransportMode::Silo, TransportMode::Tcp, TransportMode::Okto] {
        let off = run(mode, false, FaultPlan::new());
        let on = run(mode, true, FaultPlan::new());
        assert_eq!(
            off.canonical_json(),
            on.canonical_json(),
            "{mode:?}: auditing must not change any outcome"
        );
        assert!(off.audit.is_none());
        let report = on.audit.expect("audited run must carry a report");
        assert!(report.events_checked > 0, "{mode:?}: audit saw no events");
        assert!(
            report.is_clean(),
            "{mode:?}: healthy run must be violation-free: {}",
            report.summary()
        );
    }
}

#[test]
fn audit_report_stays_out_of_serializations() {
    let on = run(TransportMode::Silo, true, FaultPlan::new());
    let json = on.canonical_json();
    assert!(
        !json.contains("audit"),
        "audit must not enter the fingerprint"
    );
}

#[test]
fn pacer_stall_burst_is_flagged_and_attributed() {
    // Stall the OLDI sender's pacer for 10 ms: the stamped backlog then
    // leaves the NIC back-to-back at line rate — genuinely outside the
    // tenant's {B,S,Bmax} wire curve — and every resulting conformance
    // violation must carry the stall's fault attribution.
    let faults = FaultPlan::new().pacer_stall(Time::from_ms(10), Time::from_ms(20), 1);
    let m = run(TransportMode::Silo, true, faults);
    let report = m.audit.expect("report");
    assert!(
        report.conformance > 0,
        "a stalled pacer's catch-up burst must violate the wire curve: {}",
        report.summary()
    );
    assert_eq!(
        report.unattributed,
        0,
        "every violation overlaps the stall window: {}",
        report.summary()
    );
    assert!(report.details.iter().all(|v| v.fault == Some(0)));
    // And the violations point at the stalled sender's VM (tenant 0's
    // VM 1), not at the bystander bulk tenant.
    assert!(report.details.iter().all(|v| v.vm == Some(1)));
}

#[test]
fn link_outage_flush_keeps_ledger_balanced() {
    // A mid-run link outage exercises the flush path (queued packets
    // discarded at fault start). Byte conservation and FIFO bookkeeping
    // must survive it with zero violations of their own.
    let faults = FaultPlan::new().link_down(Time::from_ms(10), Some(Time::from_ms(20)), 0);
    let m = run(TransportMode::Tcp, true, faults);
    let report = m.audit.expect("report");
    assert!(m.fault_drops[0] > 0, "outage must actually drop packets");
    assert_eq!(report.conservation, 0, "{}", report.summary());
    assert_eq!(report.fifo, 0, "{}", report.summary());
}

#[test]
fn tenant_churn_resets_conformance_meters() {
    // Depart and re-admit the paced tenant mid-run. Readmission restarts
    // the engine's token buckets at full; if the audit meters didn't
    // follow, the tenant's first post-readmission burst would be a false
    // (and unattributed after slack) violation.
    let faults = FaultPlan::new().tenant_churn(0, Time::from_ms(12), Time::from_ms(25));
    let m = run(TransportMode::Silo, true, faults);
    let report = m.audit.expect("report");
    assert_eq!(
        report.unattributed,
        0,
        "churn must not strand unexplained violations: {}",
        report.summary()
    );
}

#[test]
fn impossible_queue_bound_is_detected() {
    // Detection sanity (true-positive path): a 1-byte bound on every
    // switch port must trip immediately, and with no faults injected the
    // violations are unattributed.
    let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(20), 7);
    let topo = small_topo(4);
    let ac = AuditConfig {
        port_bounds: (0..topo.num_ports())
            .map(|i| {
                if topo.port(silo_topology::PortId(i as u32)).is_nic {
                    None
                } else {
                    Some(1)
                }
            })
            .collect(),
        ..AuditConfig::default()
    };
    cfg.audit = Some(ac);
    let tenants = vec![periodic_tenant(&[0, 1]), bulk_tenant(&[2, 3])];
    let m = Sim::new(topo, cfg, tenants).run();
    let report = m.audit.expect("report");
    assert!(report.queue_bound > 0, "{}", report.summary());
    assert_eq!(report.unattributed, report.total(), "{}", report.summary());
}
