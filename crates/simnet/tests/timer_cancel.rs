//! Differential tests for cancelable timers (`SimConfig::cancel_timers`).
//!
//! The cancellation scheme replaces the original tombstone protocol —
//! superseded RTOs and NIC pulls stayed buried in the event queue until
//! they fired into a marker-mismatch no-op — with slot-generation keys
//! that remove the event at re-arm/disarm time. Removing a dispatch that
//! provably does nothing cannot change physics, so every physical
//! observable must be byte-identical across the toggle; only the engine
//! counters (events processed, peak occupancy, the event profile) may
//! move. These tests pin both halves of that contract.

use silo_base::{Bytes, Dur, QueueBackend, Rate, Time};
use silo_simnet::{
    EvKind, FaultPlan, Metrics, Sim, SimConfig, TenantSpec, TenantWorkload, TransportMode,
};
use silo_topology::{HostId, Topology, TreeParams};

fn small_topo(servers: usize) -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: servers,
        vm_slots_per_server: 6,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

fn bulk_tenant(hosts: &[u32], msg: Bytes) -> TenantSpec {
    TenantSpec {
        vm_hosts: hosts.iter().map(|&h| HostId(h)).collect(),
        b: Rate::from_gbps(3),
        s: Bytes(1500),
        bmax: Rate::from_gbps(10),
        prio: 0,
        delay: None,
        workload: TenantWorkload::BulkAllToAll { msg },
    }
}

fn incast_tenant(n: u32) -> TenantSpec {
    TenantSpec {
        vm_hosts: (0..n).map(HostId).collect(),
        b: Rate::from_gbps(10),
        s: Bytes(1500),
        bmax: Rate::from_gbps(10),
        prio: 0,
        delay: None,
        workload: TenantWorkload::OldiAllToOne {
            msg_mean: Bytes::from_kb(300),
            interval: Dur::from_ms(2),
        },
    }
}

/// Run the same scenario with cancellation on and off; assert identical
/// physics and return `(with_cancel, tombstones)` for counter checks.
fn run_pair(
    topo_servers: usize,
    mut cfg: SimConfig,
    tenants: Vec<TenantSpec>,
) -> (Metrics, Metrics) {
    cfg.cancel_timers = true;
    let on = Sim::new(small_topo(topo_servers), cfg.clone(), tenants.clone()).run();
    cfg.cancel_timers = false;
    let off = Sim::new(small_topo(topo_servers), cfg, tenants).run();
    assert_eq!(
        on.physics_json(),
        off.physics_json(),
        "cancel_timers must not change any physical observable"
    );
    (on, off)
}

#[test]
fn cancellation_is_physics_exact_tcp_bulk() {
    let cfg = SimConfig::new(TransportMode::Tcp, Dur::from_ms(50), 1);
    let tenants = vec![bulk_tenant(&[0, 1], Bytes::from_mb(64))];
    let (on, off) = run_pair(2, cfg, tenants);

    // Every segment send re-arms the connection RTO, so the tombstone run
    // buries one dead timer per send. Cancellation must convert that
    // entire population from stale dispatches into cancellations.
    let rto = EvKind::Rto as usize;
    assert!(
        off.profile.stale[rto] > 0,
        "tombstone run must see stale RTOs"
    );
    assert_eq!(off.profile.total_cancelled(), 0);
    assert_eq!(
        on.profile.stale[rto], 0,
        "no tombstone may survive cancellation"
    );
    assert!(on.profile.cancelled[rto] > 0);

    // Dead timers dominate the queue: cancellation must cut both the
    // dispatch count and the high-water occupancy, the latter by well
    // over the 30% the optimization was sized for.
    assert!(on.events_processed < off.events_processed);
    assert!(
        (on.peak_event_queue as f64) < 0.7 * off.peak_event_queue as f64,
        "peak occupancy {} vs {} — expected ≥30% reduction",
        on.peak_event_queue,
        off.peak_event_queue
    );
}

#[test]
fn cancellation_is_physics_exact_tcp_incast() {
    // RTO-heavy: incast drops force real retransmission timeouts, so the
    // disarm/fire/backoff paths all execute.
    let cfg = SimConfig::new(TransportMode::Tcp, Dur::from_ms(50), 2);
    let (on, _off) = run_pair(6, cfg, vec![incast_tenant(6)]);
    assert!(on.rtos > 0, "scenario must exercise fired RTOs");
    assert!(on.profile.fired[EvKind::Rto as usize] > 0);
}

#[test]
fn cancellation_is_physics_exact_dctcp() {
    let cfg = SimConfig::new(TransportMode::Dctcp, Dur::from_ms(50), 3);
    run_pair(2, cfg, vec![bulk_tenant(&[0, 1], Bytes::from_mb(64))]);
}

#[test]
fn cancellation_is_physics_exact_silo_paced() {
    // Paced mode exercises the NIC-pull timer: every batch re-arms the
    // pull, and datapath sends re-arm it mid-window.
    let cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(50), 2);
    let tenants = vec![TenantSpec {
        vm_hosts: (0..6).map(HostId).collect(),
        b: Rate::from_mbps(500),
        s: Bytes::from_kb(15),
        bmax: Rate::from_gbps(1),
        prio: 0,
        delay: None,
        workload: TenantWorkload::OldiAllToOne {
            msg_mean: Bytes::from_kb(15),
            interval: Dur::from_ms(1),
        },
    }];
    let (on, off) = run_pair(6, cfg, tenants);
    let pull = EvKind::NicPull as usize;
    assert_eq!(on.profile.stale[pull], 0);
    assert!(
        on.profile.cancelled[pull] + on.profile.cancelled[EvKind::Rto as usize] > 0,
        "paced run must cancel superseded timers"
    );
    assert!(off.profile.stale[pull] + off.profile.stale[EvKind::Rto as usize] > 0);
}

#[test]
fn cancellation_is_physics_exact_under_faults() {
    // A mid-run link outage flushes queues, black-holes traffic, and
    // triggers RTO storms plus tenant-level disarms — the hairiest timer
    // churn the engine has. Physics must still be identical.
    let mut cfg = SimConfig::new(TransportMode::Tcp, Dur::from_ms(50), 4);
    cfg.faults = FaultPlan::new().link_down(Time::from_ms(10), Some(Time::from_ms(25)), 0);
    run_pair(2, cfg, vec![bulk_tenant(&[0, 1], Bytes::from_mb(64))]);
}

#[test]
fn cancellation_agrees_across_queue_backends() {
    // EvKey cancellation is implemented by both event-queue backends;
    // heap and wheel must agree event-for-event, including the engine
    // counters (full canonical serialization, not just physics).
    let mut cfg = SimConfig::new(TransportMode::Tcp, Dur::from_ms(50), 5);
    cfg.cancel_timers = true;
    let tenants = vec![bulk_tenant(&[0, 1], Bytes::from_mb(64))];
    cfg.queue = QueueBackend::Wheel;
    let wheel = Sim::new(small_topo(2), cfg.clone(), tenants.clone()).run();
    cfg.queue = QueueBackend::Heap;
    let heap = Sim::new(small_topo(2), cfg, tenants).run();
    assert_eq!(wheel.canonical_json(), heap.canonical_json());
}

#[test]
fn profile_accounting_is_conserved() {
    // scheduled = fired + cancelled + still-pending-at-horizon. The run
    // ends by draining until the horizon, so the pending remainder is
    // whatever sits beyond it; it can only make `scheduled` the largest.
    let cfg = SimConfig::new(TransportMode::Tcp, Dur::from_ms(50), 1);
    let m = Sim::new(
        small_topo(2),
        cfg,
        vec![bulk_tenant(&[0, 1], Bytes::from_mb(64))],
    )
    .run();
    let p = &m.profile;
    assert!(p.total_fired() + p.total_cancelled() <= p.total_scheduled());
    // Fired counts match the engine's own dispatch counter.
    assert_eq!(p.total_fired(), m.events_processed);
}
