//! Behavioral tests of the fault-injection layer: inertness when faults
//! don't touch traffic, black-holing and recovery, tenant churn, pacer
//! anomalies, and guarantee-violation attribution.

use silo_base::{Bytes, Dur, Rate, Time};
use silo_simnet::{FaultPlan, Sim, SimConfig, TenantSpec, TenantWorkload, TransportMode};
use silo_topology::{HostId, Topology, TreeParams};

fn small_topo(servers: usize) -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: servers,
        vm_slots_per_server: 6,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

fn bulk_tenant(hosts: &[u32], msg: Bytes) -> TenantSpec {
    TenantSpec {
        vm_hosts: hosts.iter().map(|&h| HostId(h)).collect(),
        b: Rate::from_gbps(3),
        s: Bytes(1500),
        bmax: Rate::from_gbps(10),
        prio: 0,
        delay: None,
        workload: TenantWorkload::BulkAllToAll { msg },
    }
}

fn periodic_tenant(hosts: &[u32], delay: Option<Dur>) -> TenantSpec {
    TenantSpec {
        vm_hosts: hosts.iter().map(|&h| HostId(h)).collect(),
        b: Rate::from_mbps(500),
        s: Bytes::from_kb(15),
        bmax: Rate::from_gbps(1),
        prio: 0,
        delay,
        workload: TenantWorkload::OldiPeriodic {
            msg: Bytes::from_kb(15),
            period: Dur::from_ms(2),
        },
    }
}

/// Everything canonical before the engine counters (messages, goodput,
/// drops, port stats) — the part of the serialization that must not move
/// when fault machinery runs but never touches any traffic.
fn physics_prefix(json: &str) -> &str {
    json.split("\"events_processed\"").next().unwrap()
}

#[test]
fn fault_on_an_idle_link_does_not_perturb_traffic() {
    // Tenant on hosts 0-1; the fault kills host 3's (idle) access link.
    // Every packet-level outcome must be identical to the fault-free run:
    // the fault layer only adds events, it must not reorder anything.
    let mk = |faults: FaultPlan| {
        let mut cfg = SimConfig::new(TransportMode::Tcp, Dur::from_ms(20), 7);
        cfg.faults = faults;
        Sim::new(
            small_topo(4),
            cfg,
            vec![bulk_tenant(&[0, 1], Bytes::from_mb(4))],
        )
        .run()
    };
    let clean = mk(FaultPlan::new());
    let faulted = mk(FaultPlan::new().link_down(
        Time::from_ms(5),
        Some(Time::from_ms(15)),
        3, // host 3's access link: carries nothing
    ));
    assert_eq!(
        physics_prefix(&clean.canonical_json()),
        physics_prefix(&faulted.canonical_json()),
        "a fault that touches no traffic must not change any outcome"
    );
    // The fault itself is still on the record.
    assert_eq!(faulted.fault_windows.len(), 1);
    assert_eq!(faulted.fault_windows[0].label, "link_down(3)");
    assert_eq!(faulted.fault_drops, vec![0]);
    assert!(clean.fault_windows.is_empty());
}

#[test]
fn link_outage_black_holes_packets_and_traffic_recovers() {
    let mk = |faults: FaultPlan| {
        let mut cfg = SimConfig::new(TransportMode::Tcp, Dur::from_ms(60), 7);
        cfg.faults = faults;
        Sim::new(
            small_topo(2),
            cfg,
            vec![bulk_tenant(&[0, 1], Bytes::from_mb(1))],
        )
        .run()
    };
    let clean = mk(FaultPlan::new());
    let outage = mk(FaultPlan::new().link_down(
        Time::from_ms(10),
        Some(Time::from_ms(20)),
        0, // host 0's access link
    ));
    assert!(
        outage.fault_drops[0] > 0,
        "packets crossing the dead link must be black-holed"
    );
    assert!(
        outage.goodput[0] < clean.goodput[0],
        "a 10 ms outage must cost goodput: {} vs {}",
        outage.goodput[0],
        clean.goodput[0]
    );
    // Senders retransmit after restoration: messages keep completing.
    let after = outage
        .messages
        .iter()
        .filter(|m| m.created + m.latency > Time::from_ms(20))
        .count();
    assert!(after > 0, "traffic must recover after the link heals");
    assert!(outage.rtos > 0, "pure loss must trigger timeouts");
}

#[test]
fn unidirectional_port_failure_kills_one_direction_only() {
    // OLDI all-to-one: data flows host1 -> host0, ACKs host0 -> host1.
    // Killing only host 0's *up* port kills the ACK path; data keeps
    // arriving (messages complete at the receiver) while the sender sees
    // silence and fires RTOs.
    let mut cfg = SimConfig::new(TransportMode::Tcp, Dur::from_ms(60), 11);
    let up_port_of_host0 = 0; // PortId::up(link 0) = 2*0
    cfg.faults =
        FaultPlan::new().port_down(Time::from_ms(10), Some(Time::from_ms(30)), up_port_of_host0);
    let t = TenantSpec {
        vm_hosts: vec![HostId(0), HostId(1)],
        b: Rate::from_gbps(1),
        s: Bytes::from_kb(15),
        bmax: Rate::from_gbps(10),
        prio: 0,
        delay: None,
        workload: TenantWorkload::OldiPeriodic {
            msg: Bytes::from_kb(15),
            period: Dur::from_ms(2),
        },
    };
    let m = Sim::new(small_topo(2), cfg, vec![t]).run();
    assert!(m.fault_drops[0] > 0, "ACKs must die at the dead port");
    assert!(m.rtos > 0, "unacknowledged data must time out");
    // The forward direction stayed up: messages completed *during* the
    // outage window (delivery is receiver-side, no ACK needed).
    let during = m
        .messages
        .iter()
        .filter(|r| {
            let done = r.created + r.latency;
            done > Time::from_ms(11) && done < Time::from_ms(30)
        })
        .count();
    assert!(during > 0, "data direction must keep delivering");
}

#[test]
fn tenant_churn_gates_the_workload_window() {
    let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(60), 3);
    cfg.faults = FaultPlan::new().tenant_churn(0, Time::from_ms(15), Time::from_ms(35));
    let tenants = vec![
        periodic_tenant(&[0, 1], None),
        bulk_tenant(&[2, 3], Bytes::from_kb(64)),
    ];
    let m = Sim::new(small_topo(4), cfg, tenants).run();
    // Departure abandons in-flight messages: nothing of tenant 0
    // completes inside the down window (1 ms of grace for deliveries
    // already on the wire at the instant of departure).
    let inside = m
        .messages
        .iter()
        .filter(|r| r.tenant == 0)
        .filter(|r| {
            let done = r.created + r.latency;
            done > Time::from_ms(16) && done < Time::from_ms(35)
        })
        .count();
    assert_eq!(inside, 0, "a departed tenant must fall silent");
    // Re-admission restarts the workload from fresh state.
    let resumed = m
        .messages
        .iter()
        .filter(|r| r.tenant == 0 && r.created >= Time::from_ms(35))
        .count();
    assert!(resumed > 0, "a re-admitted tenant must produce traffic");
    // The bystander tenant ran throughout.
    assert!(m.messages.iter().any(|r| r.tenant == 1));
}

#[test]
fn deferred_tenant_joins_mid_run() {
    let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(40), 3);
    cfg.faults = FaultPlan::new().tenant_up(Time::from_ms(20), 0);
    let m = Sim::new(small_topo(2), cfg, vec![periodic_tenant(&[0, 1], None)]).run();
    assert!(!m.messages.is_empty(), "the tenant must start eventually");
    let earliest = m.messages.iter().map(|r| r.created).min().unwrap();
    assert!(
        earliest >= Time::from_ms(20),
        "no traffic before the arrival instant, got {earliest:?}"
    );
}

#[test]
fn pacer_stall_delays_messages_and_is_attributed() {
    let mk = |faults: FaultPlan| {
        let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(60), 5);
        cfg.faults = faults;
        // Delay guarantee set: completed messages are checked against the
        // §4.1 bound and violations recorded.
        Sim::new(
            small_topo(2),
            cfg,
            vec![periodic_tenant(&[0, 1], Some(Dur::from_ms(1)))],
        )
        .run()
    };
    let clean = mk(FaultPlan::new());
    assert!(
        clean.violations.is_empty(),
        "conformant paced traffic must meet its bound: {:?}",
        clean.violations.first()
    );
    // OLDI all-to-one: the data *sender* is VM 1 on host 1 (VM 0 is the
    // aggregator) — stall the sender's pacer.
    let stalled = mk(FaultPlan::new().pacer_stall(Time::from_ms(20), Time::from_ms(30), 1));
    assert!(
        !stalled.violations.is_empty(),
        "a 10 ms pacer stall must break a ~1 ms bound"
    );
    for v in &stalled.violations {
        assert_eq!(
            v.fault,
            Some(0),
            "every violation here overlaps the stall window: {v:?}"
        );
    }
    // The stall really holds batches back: something created in-window
    // waits out most of it.
    let worst = stalled.violations.iter().map(|v| v.latency).max().unwrap();
    assert!(worst > Dur::from_ms(5), "worst latency {worst}");
}

#[test]
fn pacer_drift_widens_gaps_without_stopping_traffic() {
    // A backlogged paced sender is clocked by its pacer timers: a 4x-slow
    // clock caps each pull cycle at 1/4 of the wire, so a near-line-rate
    // hose must lose real throughput — without the NIC ever stopping.
    let mk = |faults: FaultPlan| {
        let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(60), 5);
        cfg.faults = faults;
        let t = TenantSpec {
            vm_hosts: vec![HostId(0), HostId(1)],
            b: Rate::from_gbps(9),
            s: Bytes::from_kb(15),
            bmax: Rate::from_gbps(10),
            prio: 0,
            delay: None,
            workload: TenantWorkload::BulkAllToAll {
                msg: Bytes::from_mb(4),
            },
        };
        Sim::new(small_topo(2), cfg, vec![t]).run()
    };
    let clean = mk(FaultPlan::new());
    let drifted = mk(FaultPlan::new().pacer_drift(Time::from_ms(10), Time::from_ms(50), 0, 4.0));
    // Traffic still flows through the whole drift window…
    let in_window = drifted
        .messages
        .iter()
        .filter(|r| {
            let done = r.created + r.latency;
            done > Time::from_ms(10) && done < Time::from_ms(50)
        })
        .count();
    assert!(in_window > 0, "drift must not stop the NIC");
    // …but a 4x-slow pacing clock costs goodput.
    assert!(
        drifted.goodput[0] < (clean.goodput[0] * 9) / 10,
        "{} vs {}",
        drifted.goodput[0],
        clean.goodput[0]
    );
}

#[test]
fn fault_suite_is_clean_under_audit() {
    // Every fault shape in one plan, run with the invariant-audit layer
    // on: the physics must match the unaudited run byte-for-byte, and any
    // violation the auditor finds must be attributed to one of the
    // injected faults — an unattributed violation would be an engine bug
    // the fault suite flushed out.
    use silo_simnet::AuditConfig;
    let plan = FaultPlan::new()
        .link_down(Time::from_ms(10), Some(Time::from_ms(18)), 0)
        .pacer_stall(Time::from_ms(25), Time::from_ms(32), 1)
        .tenant_churn(1, Time::from_ms(40), Time::from_ms(48));
    let mk = |audit: bool| {
        let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(60), 7);
        cfg.faults = plan.clone();
        if audit {
            cfg.audit = Some(AuditConfig::default());
        }
        Sim::new(
            small_topo(2),
            cfg,
            vec![
                periodic_tenant(&[0, 1], Some(Dur::from_ms(2))),
                bulk_tenant(&[0, 1], Bytes::from_kb(256)),
            ],
        )
        .run()
    };
    let (plain, audited) = (mk(false), mk(true));
    assert_eq!(
        plain.canonical_json(),
        audited.canonical_json(),
        "the audit layer must be pure observation"
    );
    let report = audited.audit.expect("audit was requested");
    assert!(report.events_checked > 0);
    assert_eq!(
        report.unattributed,
        0,
        "all audit violations must trace to an injected fault: {}",
        report.summary()
    );
    assert_eq!(report.early_releases, 0);
}

#[test]
fn empty_plan_emits_no_fault_fields() {
    let cfg = SimConfig::new(TransportMode::Tcp, Dur::from_ms(10), 1);
    let m = Sim::new(
        small_topo(2),
        cfg,
        vec![bulk_tenant(&[0, 1], Bytes::from_kb(64))],
    )
    .run();
    let json = m.canonical_json();
    assert!(!json.contains("fault_windows"));
    assert!(!json.contains("violations"));
    assert!(m.fault_windows.is_empty() && m.violations.is_empty());
    assert_eq!(m.token_violations, 0, "pacer conservation must hold");
}

// ---------------------------------------------------------------------
// Edge cases the schedule explorer generates by construction: degenerate
// windows, overlapping kill/restore on one target, churn racing an RTO.
// The engine must neither panic nor produce an unattributed violation.
// ---------------------------------------------------------------------

/// Run `plan` on a small audited Silo cell and return its metrics,
/// asserting the attribution invariant held.
fn run_audited(plan: FaultPlan, dur_ms: u64) -> silo_simnet::Metrics {
    let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(dur_ms), 7);
    cfg.faults = plan;
    cfg.audit = Some(silo_simnet::AuditConfig::default());
    let m = Sim::new(
        small_topo(4),
        cfg,
        vec![
            periodic_tenant(&[0, 1], Some(Dur::from_ms(2))),
            bulk_tenant(&[2, 3], Bytes::from_kb(256)),
        ],
    )
    .run();
    let report = m.audit.as_ref().expect("audit was requested");
    assert_eq!(
        report.unattributed,
        0,
        "audit violations must be attributed: {}",
        report.summary()
    );
    assert_eq!(report.early_releases, 0);
    assert_eq!(m.token_violations, 0);
    m
}

#[test]
fn zero_length_windows_strike_and_heal_without_harm() {
    // Every fault kind with a window, collapsed to a single instant, on
    // live targets. The start and end dispatch at the same timestamp
    // (start first, by push order); nothing may panic or leak state.
    let t = Time::from_ms(5);
    let m = run_audited(
        FaultPlan::new()
            .link_down(t, Some(t), 0)
            .pacer_stall(t, t, 1)
            .pacer_drift(t, t, 1, 8.0)
            .tenant_churn(1, t, t),
        20,
    );
    assert_eq!(m.fault_windows.len(), 4, "all windows realized");
    for w in &m.fault_windows {
        assert!(w.start <= w.end);
    }
    // An instantaneous strike must not permanently kill traffic: both
    // tenants keep completing messages afterwards.
    assert!(m.goodput.iter().all(|&g| g > 0), "goodput: {:?}", m.goodput);
}

#[test]
fn overlapping_kill_restore_on_one_link_recovers() {
    // Three staggered, mutually-overlapping outage windows on the same
    // access link: restore events from inner windows fire while an outer
    // window still holds the link down. The link must be usable again
    // after the *last* restore, and never before.
    let m = run_audited(
        FaultPlan::new()
            .link_down(Time::from_ms(4), Some(Time::from_ms(10)), 0)
            .link_down(Time::from_ms(6), Some(Time::from_ms(8)), 0)
            .link_down(Time::from_ms(7), Some(Time::from_ms(14)), 0),
        40,
    );
    assert_eq!(m.fault_windows.len(), 3);
    // Traffic through host 0 recovered after the last heal: the OLDI
    // tenant on hosts 0-1 completes messages in the tail of the run.
    let last_heal = Time::from_ms(14);
    let late_oldi = m
        .messages
        .iter()
        .filter(|r| r.tenant == 0 && Time(r.created.0 + r.latency.0) > last_heal)
        .count();
    assert!(
        late_oldi > 0,
        "OLDI tenant must resume after the last overlapping window heals"
    );
}

#[test]
fn pacer_stall_ending_at_churn_readmit_instant_is_clean() {
    // Satellite case for audit `conformance_slack` at re-admission
    // boundaries: a pacer stall on the tenant's own host ends at the
    // *exact* instant the churned tenant is re-admitted. The stall parks
    // pre-departure stamped packets in the batcher; at T the NIC releases
    // them gap-compressed while `reset_vm` refills the reference meters
    // mid-compression. Whichever of the two same-instant fault edges
    // dispatches first (plan order decides), the conformance meter must
    // not double-count slack into a violation — and physics must stay
    // byte-identical with the audit off.
    let (stall_from, t) = (Time::from_ms(4), Time::from_ms(10));
    let (down, up) = (Time::from_ms(6), t);
    let plans = [
        // Stall edge pushed before the churn edge...
        FaultPlan::new()
            .pacer_stall(stall_from, t, 0)
            .tenant_churn(0, down, up),
        // ...and the reverse: readmit dispatches first at T.
        FaultPlan::new()
            .tenant_churn(0, down, up)
            .pacer_stall(stall_from, t, 0),
    ];
    for plan in plans {
        let m = run_audited(plan.clone(), 40);
        assert_eq!(m.fault_windows.len(), 2);
        // The re-admitted tenant produces traffic again after T.
        let after = m
            .messages
            .iter()
            .filter(|r| r.tenant == 0 && Time(r.created.0 + r.latency.0) > t)
            .count();
        assert!(after > 0, "tenant must resume after the abutting edges");
        // Audit purity at the boundary: same plan without the audit layer
        // is byte-identical.
        let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(40), 7);
        cfg.faults = plan;
        let plain = Sim::new(
            small_topo(4),
            cfg,
            vec![
                periodic_tenant(&[0, 1], Some(Dur::from_ms(2))),
                bulk_tenant(&[2, 3], Bytes::from_kb(256)),
            ],
        )
        .run();
        assert_eq!(plain.canonical_json(), m.canonical_json());
    }
}

#[test]
fn tenant_churn_mid_rto_is_clean() {
    // Kill host 0's access link long enough to strand in-flight data and
    // arm RTO timers, then churn the *victim tenant* down and back while
    // those timers are pending. Departure must cleanly tear down the
    // tenant's connections (pending RTOs included); re-admission must
    // start fresh. No panic, no unattributed violation.
    let m = run_audited(
        FaultPlan::new()
            .link_down(Time::from_ms(4), Some(Time::from_ms(12)), 0)
            .tenant_churn(0, Time::from_ms(6), Time::from_ms(20)),
        60,
    );
    assert_eq!(m.fault_windows.len(), 2);
    // The tenant came back: it completes messages after re-admission.
    let after_return = m
        .messages
        .iter()
        .filter(|r| r.tenant == 0 && Time(r.created.0 + r.latency.0) > Time::from_ms(20))
        .count();
    assert!(
        after_return > 0,
        "churned tenant must produce traffic again"
    );
    // And the bulk bystander on hosts 2-3 was never disturbed.
    assert!(m.goodput[1] > 0);
}
