//! End-to-end tests of the flight-recorder layer: tracing never perturbs
//! physics (byte-identical metrics across transport modes and under
//! faults), rings stay bounded, the streaming histograms agree with the
//! retained message records, and the message-record cap changes retention
//! only — never the physics.

use silo_base::{Bytes, Dur, LogHistogram, Rate, Time};
use silo_simnet::metrics::LATENCY_HIST_SUB_BITS;
use silo_simnet::{
    FaultPlan, Metrics, MsgRecord, Sim, SimConfig, TenantSpec, TenantWorkload, TraceConfig,
    TraceKind, TransportMode,
};
use silo_topology::{HostId, Topology, TreeParams};

fn small_topo(servers: usize) -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: servers,
        vm_slots_per_server: 6,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

fn periodic_tenant(hosts: &[u32]) -> TenantSpec {
    TenantSpec {
        vm_hosts: hosts.iter().map(|&h| HostId(h)).collect(),
        b: Rate::from_mbps(500),
        s: Bytes::from_kb(15),
        bmax: Rate::from_gbps(1),
        prio: 0,
        delay: None,
        workload: TenantWorkload::OldiPeriodic {
            msg: Bytes::from_kb(15),
            period: Dur::from_ms(2),
        },
    }
}

fn bulk_tenant(hosts: &[u32]) -> TenantSpec {
    TenantSpec {
        vm_hosts: hosts.iter().map(|&h| HostId(h)).collect(),
        b: Rate::from_gbps(3),
        s: Bytes(1500),
        bmax: Rate::from_gbps(10),
        prio: 1,
        delay: None,
        workload: TenantWorkload::BulkAllToAll {
            msg: Bytes::from_kb(256),
        },
    }
}

fn run_cfg(mode: TransportMode, faults: FaultPlan, mutate: impl FnOnce(&mut SimConfig)) -> Metrics {
    let mut cfg = SimConfig::new(mode, Dur::from_ms(40), 7);
    cfg.faults = faults;
    mutate(&mut cfg);
    let tenants = vec![periodic_tenant(&[0, 1]), bulk_tenant(&[2, 3])];
    Sim::new(small_topo(4), cfg, tenants).run()
}

fn run(mode: TransportMode, trace: bool, faults: FaultPlan) -> Metrics {
    run_cfg(mode, faults, |cfg| {
        if trace {
            cfg.trace = Some(TraceConfig::default());
        }
    })
}

#[test]
fn tracing_observes_without_perturbing_physics() {
    for mode in [
        TransportMode::Silo,
        TransportMode::Tcp,
        TransportMode::Dctcp,
    ] {
        let off = run(mode, false, FaultPlan::new());
        let on = run(mode, true, FaultPlan::new());
        assert_eq!(
            off.canonical_json(),
            on.canonical_json(),
            "{mode:?}: tracing must not change any outcome"
        );
        assert!(off.trace.is_none());
        let log = on.trace.expect("traced run must carry a log");
        assert!(!log.events.is_empty(), "{mode:?}: trace saw no events");
        assert!(
            log.count(TraceKind::Deliver) > 0,
            "{mode:?}: deliveries must be recorded"
        );
        assert!(
            log.count(TraceKind::MsgDone) > 0,
            "{mode:?}: message completions must be recorded"
        );
    }
}

#[test]
fn tracing_is_identical_under_faults() {
    // A mid-run link outage exercises the flush / fault-drop paths; the
    // recorder observes them (DropFault + fault markers) without moving a
    // single physical byte.
    let faults = || FaultPlan::new().link_down(Time::from_ms(10), Some(Time::from_ms(20)), 0);
    let off = run(TransportMode::Tcp, false, faults());
    let on = run(TransportMode::Tcp, true, faults());
    assert_eq!(off.canonical_json(), on.canonical_json());
    assert!(off.fault_drops[0] > 0, "outage must actually drop packets");
    let log = on.trace.expect("log");
    assert!(
        log.count(TraceKind::DropFault) > 0,
        "fault drops must be recorded"
    );
    assert_eq!(log.count(TraceKind::FaultStart), 1);
    assert_eq!(log.count(TraceKind::FaultEnd), 1);
    assert_eq!(log.fault_windows.len(), 1, "windows ride along for export");
}

#[test]
fn trace_log_stays_out_of_serializations() {
    let on = run(TransportMode::Silo, true, FaultPlan::new());
    assert!(
        !on.canonical_json().contains("trace"),
        "trace must not enter the fingerprint"
    );
    assert!(!on.physics_json().contains("trace"));
}

#[test]
fn rings_are_bounded_and_keep_recent_history() {
    // Tiny rings on a busy run: memory stays bounded (evictions counted,
    // not silently lost) and what survives is the most recent history.
    let tiny = TraceConfig {
        per_host_cap: 64,
        global_cap: 4,
    };
    let m = run_cfg(TransportMode::Silo, FaultPlan::new(), |cfg| {
        cfg.trace = Some(tiny);
    });
    let full = run(TransportMode::Silo, true, FaultPlan::new());
    let log = m.trace.expect("log");
    let hosts = small_topo(4).num_hosts();
    assert!(log.events.len() <= hosts * 64 + 4, "rings must cap memory");
    assert!(log.dropped > 0, "a busy run must evict from tiny rings");
    let full_log = full.trace.expect("log");
    assert_eq!(
        log.dropped + log.events.len() as u64,
        full_log.dropped + full_log.events.len() as u64,
        "evicted + retained must equal the same record stream either way"
    );
    assert!(
        log.dropped > full_log.dropped,
        "tiny rings must evict more than default rings"
    );
    // Eviction drops the oldest: the retained tail is a suffix of the
    // full stream per ring, so every retained seq also exists there.
    let last = log.events.last().expect("nonempty");
    let full_last = full_log.events.last().expect("nonempty");
    assert_eq!(last.seq, full_last.seq, "most recent event must survive");
}

#[test]
fn ring_accounting_balances_under_fault_drops_with_evicting_rings() {
    // Regression for trace-ring accounting under fault drops: force the
    // rings into eviction *before* a mid-run outage starts recording
    // DropFault events, then check `retained + dropped == recorded` on
    // the merged log (the same invariant `TraceSink::finish` asserts, so
    // a miscount would also abort the run itself).
    let tiny = TraceConfig {
        per_host_cap: 32,
        global_cap: 2,
    };
    let faults = FaultPlan::new()
        .link_down(Time::from_ms(10), Some(Time::from_ms(20)), 0)
        .port_down(Time::from_ms(25), Some(Time::from_ms(30)), 0);
    for mode in [TransportMode::Silo, TransportMode::Tcp] {
        let m = run_cfg(mode, faults.clone(), |cfg| {
            cfg.trace = Some(tiny.clone());
        });
        let log = m.trace.as_ref().expect("log");
        assert!(
            log.dropped > 0,
            "{mode:?}: tiny rings must already be evicting"
        );
        assert!(
            log.count(TraceKind::DropFault) > 0,
            "{mode:?}: the outage must drop packets after eviction began"
        );
        assert_eq!(
            log.events.len() as u64 + log.dropped,
            log.recorded,
            "{mode:?}: retained + dropped != recorded under fault drops"
        );
        // The faulted run still perturbs nothing observationally.
        let off = run_cfg(mode, faults.clone(), |_| {});
        assert_eq!(off.canonical_json(), m.canonical_json());
    }
}

#[test]
fn streaming_histograms_agree_with_retained_records() {
    let m = run(TransportMode::Silo, false, FaultPlan::new());
    assert_eq!(m.messages_total, m.messages.len() as u64);
    for tenant in 0..2u16 {
        let exact: Vec<u64> = m
            .messages
            .iter()
            .filter(|r| r.tenant == tenant)
            .map(|r| r.latency.0)
            .collect();
        let h = m.latency_hist(tenant).expect("histogram per tenant");
        assert_eq!(h.count(), exact.len() as u64, "tenant {tenant}");
        assert!(!exact.is_empty(), "tenant {tenant} must complete messages");
        assert_eq!(h.min(), exact.iter().copied().min());
        assert_eq!(h.max(), exact.iter().copied().max());
    }
}

#[test]
fn msg_record_cap_changes_retention_never_physics() {
    let full = run(TransportMode::Silo, false, FaultPlan::new());
    let cap = 100usize;
    assert!(full.messages.len() > cap, "run must exceed the cap");
    let capped = run_cfg(TransportMode::Silo, FaultPlan::new(), |cfg| {
        cfg.msg_record_cap = Some(cap);
    });
    // Retention: exactly the first `cap` records survive, the totals and
    // histograms still see every message.
    assert_eq!(capped.messages.len(), cap);
    assert_eq!(capped.messages_total, full.messages_total);
    for (a, b) in capped.messages.iter().zip(full.messages.iter()) {
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.created, b.created);
        assert_eq!(a.tenant, b.tenant);
    }
    for tenant in 0..2u16 {
        assert_eq!(
            capped.latency_hist(tenant).unwrap().count(),
            full.latency_hist(tenant).unwrap().count(),
            "histograms keep the tail the cap discards"
        );
        assert_eq!(
            capped.latency_hist(tenant).unwrap().quantile(0.99),
            full.latency_hist(tenant).unwrap().quantile(0.99),
        );
    }
    // Physics: every scalar observable is untouched.
    assert_eq!(capped.goodput, full.goodput);
    assert_eq!(capped.drops, full.drops);
    assert_eq!(capped.rtos, full.rtos);
    assert_eq!(capped.wire_data_bytes, full.wire_data_bytes);
    assert_eq!(capped.port_max_queue, full.port_max_queue);
}

#[test]
fn million_message_run_stays_under_byte_budget() {
    // Regression for the unbounded-memory footgun: with a cap of 10k, a
    // 10^6-message run retains under 1 MiB of message records +
    // histograms (the documented budget: cap × sizeof(MsgRecord), plus
    // ~15 KiB per tenant histogram) no matter how long the run is.
    let mut m = Metrics {
        latency_hist: vec![LogHistogram::new(LATENCY_HIST_SUB_BITS)],
        ..Metrics::default()
    };
    let cap = Some(10_000);
    for i in 0..1_000_000u64 {
        m.record_message(
            MsgRecord {
                tenant: 0,
                size: 15_000,
                latency: Dur::from_us(500 + (i % 997)),
                rto: false,
                created: Time(i),
                txn_latency: None,
                same_host: false,
            },
            cap,
        );
    }
    assert_eq!(m.messages_total, 1_000_000);
    assert_eq!(m.messages.len(), 10_000);
    assert_eq!(m.latency_hist(0).unwrap().count(), 1_000_000);
    assert!(
        m.retained_message_bytes() < 1 << 20,
        "retained {} bytes, budget is 1 MiB",
        m.retained_message_bytes()
    );
}
