//! The discrete-event engine: hosts, VMs, pacers, switches, TCP plumbing
//! and applications wired together.

use crate::audit::{AuditSink, VmCurve};
use crate::config::{SimConfig, TenantSpec, TenantWorkload, TransportMode};
use crate::faults::FaultKind;
use crate::metrics::{
    EvKind, EventProfile, FaultWindow, Metrics, MsgRecord, Violation, LATENCY_HIST_SUB_BITS,
};
use crate::packet::{Packet, PathId, PktArena, PktId, PktKind};
use crate::port::{Enqueue, PhantomQueue, PortState};
use crate::tcp::{MsgBound, TcpConn};
use crate::telemetry::TelemetrySink;
use crate::trace::{PktMeta, PktTag, TraceSink};
use rand::rngs::StdRng;
use silo_base::{
    exponential, seeded_rng, Bytes, Dur, EvKey, FxHashMap, LogHistogram, ShardedEventQueue, Time,
};
use silo_pacer::{Batch, FrameKind, PacedBatcher, TokenBucket, VoidChunks};
use silo_topology::{HostId, PartitionMap, PortId, Topology};
use silo_workload::EtcWorkload;

/// Events the engine dispatches.
#[derive(Debug)]
enum Ev {
    /// A packet finished traversing hop `pkt.hop − 1` and arrives at the
    /// next node (or its destination). Carries the arena handle: the
    /// dispatch moves 4 bytes, the packet itself stays put in the slab.
    Arrive(PktId),
    /// An egress port finished a transmission.
    PortFree(PortId),
    /// DMA-completion / soft-timer pull of the next paced batch.
    NicPull { host: u32, marker: u64 },
    /// Retransmission timeout.
    Rto { conn: u32, marker: u32 },
    /// Next ETC client request becomes due.
    EtcArrival { vm: u32 },
    /// OLDI tenant fires a simultaneous all-to-one burst.
    Oldi { tenant: u16 },
    /// A Poisson pair's next message.
    PoissonMsg { tenant: u16, pair: u32 },
    /// Recompute hose rates.
    HoseEpoch,
    /// A connection paused by pacer backpressure may stamp again.
    PaceResume { conn: u32 },
    /// A bulk pair opens its connection and starts transferring.
    BulkStart { src: u32, dst: u32, msg: u64 },
    /// An injected fault strikes (index into `FaultPlan::events`).
    FaultStart(u32),
    /// An injected fault heals.
    FaultEnd(u32),
}

impl Ev {
    /// Profile slot of this event ([`EventProfile`] indexing).
    #[inline]
    fn kind(&self) -> EvKind {
        match self {
            Ev::Arrive(_) => EvKind::Arrive,
            Ev::PortFree(_) => EvKind::PortFree,
            Ev::NicPull { .. } => EvKind::NicPull,
            Ev::Rto { .. } => EvKind::Rto,
            Ev::EtcArrival { .. } => EvKind::EtcArrival,
            Ev::Oldi { .. } => EvKind::Oldi,
            Ev::PoissonMsg { .. } => EvKind::PoissonMsg,
            Ev::HoseEpoch => EvKind::HoseEpoch,
            Ev::PaceResume { .. } => EvKind::PaceResume,
            Ev::BulkStart { .. } => EvKind::BulkStart,
            Ev::FaultStart(_) => EvKind::FaultStart,
            Ev::FaultEnd(_) => EvKind::FaultEnd,
        }
    }
}

/// Per-VM state: pacer buckets and application role.
struct Vm {
    tenant: u16,
    host: HostId,
    /// `{B, S}` bucket (middle of Fig. 8).
    tb_bs: TokenBucket,
    /// `Bmax` cap (bottom of Fig. 8).
    tb_max: TokenBucket,
    /// Per-destination hose buckets (top of Fig. 8), keyed by global VM id.
    per_dst: FxHashMap<u32, TokenBucket>,
    /// Bytes received this hose epoch (receiver congestion feedback).
    rx_epoch_bytes: u64,
    app: VmApp,
}

enum VmApp {
    None,
    EtcClient {
        server_vm: u32,
        outstanding: usize,
        cap: usize,
        pending: u64,
        wl: EtcWorkload,
    },
}

/// Per-host NIC state for the paced modes.
struct HostNic {
    batcher: PacedBatcher<PktId>,
    pull_marker: u64,
    /// Cancellation handle of the armed `NicPull`, when the engine runs
    /// with cancelable timers (superseded pulls are removed, not
    /// tombstoned).
    pull_key: Option<EvKey>,
    /// Instant of the armed `NicPull`, `None` when no live pull is
    /// pending (superseded pulls don't count — the marker kills them).
    /// The fast-forward path (`Sim::ensure_pull`) compares against it to
    /// skip re-arms that would land at the same instant.
    pull_at: Option<Time>,
    busy_until: Time,
}

/// The simulator. Build with [`Sim::new`], run with [`Sim::run`].
pub struct Sim {
    topo: Topology,
    cfg: SimConfig,
    tenants: Vec<TenantSpec>,
    rng: StdRng,
    now: Time,
    /// Pending events, ordered by global `(time, push sequence)` — one
    /// timer wheel per topology partition behind a merge façade that
    /// reproduces the serial dequeue order exactly at any shard count
    /// (locked down by `silo_base::shardq`'s differential tests and the
    /// serial-vs-sharded suite). `cfg.shards == 1` collapses to the
    /// single-queue fast path.
    events: ShardedEventQueue<Ev>,
    /// Rack-contiguous topology partition backing `events` (trivial at
    /// one shard).
    part: PartitionMap,
    /// `part.shards() > 1`: gates owner computation off the serial path.
    sharded: bool,
    /// Hosts targeted by a pacer stall/drift fault window — the only
    /// hosts whose idle-pacer fast-forward must be disabled (the clamp
    /// lands on *armed* pulls; see `Sim::fast_forward`).
    nic_fault_targets: Vec<bool>,
    ports: Vec<PortState>,
    conns: Vec<TcpConn>,
    conn_index: FxHashMap<(u32, u32), u32>,
    vms: Vec<Vm>,
    /// Global VM ids of each tenant, in tenant-local order.
    tenant_vms: Vec<Vec<u32>>,
    /// Connection ids per tenant (for event-driven hose updates).
    tenant_conns: Vec<Vec<u32>>,
    nics: Vec<HostNic>,
    /// Interned egress-port lists; a [`PathId`] indexes this table. One
    /// entry per distinct (src host, dst host) pair plus one loopback
    /// entry per host — packets and connections carry the 4-byte id.
    path_table: Vec<Box<[PortId]>>,
    path_ids: FxHashMap<(u32, u32), PathId>,
    /// Per-host loopback path for same-host VM pairs (vswitch port).
    loopback_paths: Vec<PathId>,
    metrics: Metrics,
    txn_starts: FxHashMap<u64, Time>,
    next_txn: u64,
    ack_size: Bytes,
    /// Per-event-kind scheduled/fired/stale/cancelled counters, copied
    /// into `Metrics::profile` at the end of the run.
    profile: EventProfile,
    /// Reusable frame storage for the NIC pull path (allocation-light
    /// dispatch: one `Vec` serves every batch of every host).
    batch_scratch: Batch<PktId>,
    /// In-flight packet slab: a packet's bytes live here from creation to
    /// delivery (or drop); events, port FIFOs and the NIC stamp queue
    /// carry 4-byte [`PktId`] handles, so per-event packet touch is an
    /// index deref instead of a ~96-byte struct move.
    arena: PktArena,
    // ---- fault injection (all dormant when the plan is empty) ----
    /// `!cfg.faults.is_empty()`: gates every fault check off the hot path.
    faults_on: bool,
    /// Which plan events are currently in effect.
    fault_active: Vec<bool>,
    /// Downed directed ports → index of the fault that killed them
    /// (switch/NIC ports only; the vswitch loopback cannot fail).
    port_down: Vec<Option<u32>>,
    /// Per-host pacer stall horizon (NIC pulls defer past it).
    nic_stall_until: Vec<Time>,
    /// Per-host pacer clock drift: `(until, factor)`.
    nic_drift: Vec<(Time, f64)>,
    /// Earliest next NIC pull under an active drift (a slow pacer clock
    /// dilates the gap *between* batches; re-arms from the datapath must
    /// not sneak in earlier).
    nic_drift_gate: Vec<Time>,
    /// Tenant liveness under churn (all true without churn events).
    tenant_up: Vec<bool>,
    /// Invariant-audit observer (`Some` iff `cfg.audit` is set). Pure
    /// observation: nothing it computes feeds back into the engine, so an
    /// audited run is byte-identical to an unaudited one.
    audit: Option<AuditSink>,
    /// Flight recorder (`Some` iff `cfg.trace` is set). Same discipline
    /// as `audit`: pure observation, zero behavioural effect.
    trace: Option<TraceSink>,
    /// Windowed telemetry recorder (`Some` iff `cfg.telemetry` is set).
    /// Same discipline as `audit`/`trace`: pure observation — its
    /// sim-time series are derived from values the engine already
    /// computed, and its self-profile reads only the host wall clock.
    telemetry: Option<TelemetrySink>,
}

impl Sim {
    pub fn new(topo: Topology, cfg: SimConfig, mut tenants: Vec<TenantSpec>) -> Sim {
        // Oktopus provides hose bandwidth only: no burst allowance, no
        // burst rate (§6.2: "With Oktopus, VMs cannot burst"). Okto+ keeps
        // the tenant's burst parameters.
        if cfg.mode == TransportMode::Okto {
            for t in tenants.iter_mut() {
                t.s = cfg.mtu;
                t.bmax = t.b;
            }
        }
        let rng = seeded_rng(cfg.seed);
        let nports = topo.num_ports();
        let mut ports = Vec::with_capacity(nports);
        for i in 0..nports {
            let pid = PortId(i as u32);
            let info = topo.port(pid);
            let prop = topo.params().prop_delay;
            let mut ps = if info.is_nic {
                // Un-paced NIC FIFO: deep queue, no marking, no loss.
                PortState::new(info.rate, cfg.nic_fifo, prop)
            } else {
                PortState::new(info.rate, info.buffer, prop)
            };
            if !info.is_nic {
                match cfg.mode {
                    TransportMode::Dctcp => ps.ecn_k = Some(cfg.ecn_k),
                    TransportMode::Hull => {
                        ps.phantom = Some(PhantomQueue::new(
                            info.rate,
                            cfg.hull_gamma,
                            cfg.hull_thresh,
                        ));
                    }
                    _ => {}
                }
            }
            ports.push(ps);
        }
        let mut vms = Vec::new();
        let mut tenant_vms = Vec::new();
        for (ti, t) in tenants.iter().enumerate() {
            let mut ids = Vec::new();
            for &h in &t.vm_hosts {
                ids.push(vms.len() as u32);
                vms.push(Vm {
                    tenant: ti as u16,
                    host: h,
                    tb_bs: TokenBucket::new(t.b, t.s),
                    tb_max: TokenBucket::new(t.bmax, cfg.mtu),
                    per_dst: FxHashMap::default(),
                    rx_epoch_bytes: 0,
                    app: VmApp::None,
                });
            }
            tenant_vms.push(ids);
        }
        let nics = (0..topo.num_hosts())
            .map(|_| {
                let mut batcher =
                    PacedBatcher::new(topo.params().host_link, cfg.batch_window, cfg.mtu);
                batcher.coalesce_voids(cfg.coalesce_voids);
                // A host's stamp queue holds at most a couple of batch
                // windows of MTU frames per backlogged VM; 256 covers the
                // common case without over-reserving idle hosts.
                batcher.reserve(256);
                HostNic {
                    batcher,
                    pull_marker: 0,
                    pull_key: None,
                    pull_at: None,
                    busy_until: Time::ZERO,
                }
            })
            .collect();
        // One loopback (vswitch) port per host for same-host VM pairs:
        // finite memory-copy bandwidth and a few microseconds of stack
        // latency. Without this, co-located bulk flows would transfer
        // unbounded data in zero simulated time. The queue is effectively
        // unbounded: a real vswitch backpressures the sending VM instead
        // of tail-dropping.
        let mut path_table: Vec<Box<[PortId]>> = Vec::new();
        let mut loopback_paths = Vec::with_capacity(topo.num_hosts());
        for h in 0..topo.num_hosts() {
            let pid = PortId((nports + h) as u32);
            let mut ps = PortState::new(
                topo.params().host_link * 2,
                Bytes::from_mb(256),
                Dur::from_us(5),
            );
            ps.ecn_k = None;
            ports.push(ps);
            loopback_paths.push(PathId(path_table.len() as u32));
            path_table.push(vec![pid].into_boxed_slice());
        }
        let ntenants = tenants.len();
        cfg.faults.validate(
            topo.num_links(),
            topo.num_ports(),
            topo.num_hosts(),
            ntenants,
        );
        let faults_on = !cfg.faults.is_empty();
        let nfaults = cfg.faults.events.len();
        let metrics = Metrics {
            goodput: vec![0; tenants.len()],
            duration: cfg.duration,
            fault_drops: vec![0; nfaults],
            latency_hist: (0..tenants.len())
                .map(|_| LogHistogram::new(LATENCY_HIST_SUB_BITS))
                .collect(),
            ..Metrics::default()
        };
        let part = PartitionMap::build(&topo, cfg.shards as usize);
        let sharded = part.shards() > 1;
        let mut events = ShardedEventQueue::new(
            part.shards(),
            cfg.queue,
            part.lookahead(),
            cfg.shard_threads,
        );
        let num_hosts = topo.num_hosts();
        let num_switch_ports = topo.num_ports();
        // Topology-derived occupancy bound: at steady state each directed
        // port carries at most one in-flight transmission (Arrive +
        // PortFree) and each host one NIC pull, one RTO per active
        // connection (≈ VMs² in the worst case, but the wheel only needs a
        // rough pre-size — excess grows organically).
        events.reserve(2 * (num_switch_ports + num_hosts) + 8 * vms.len() + 256);
        // Per-host narrowing of the idle-pacer fast-forward: only hosts a
        // pacer stall/drift window actually targets lose the elision.
        let mut nic_fault_targets = vec![false; num_hosts];
        for e in &cfg.faults.events {
            match e.kind {
                FaultKind::PacerStall { host } | FaultKind::PacerDrift { host, .. } => {
                    nic_fault_targets[host as usize] = true;
                }
                _ => {}
            }
        }
        // The audit observer sees the post-mode-mutation tenant curves (an
        // Okto run is audited against the guarantee Okto actually
        // enforces) and the realized fault windows, so violations during a
        // planned outage attribute correctly.
        let audit = cfg.audit.as_ref().map(|ac| {
            let horizon = Time::ZERO + cfg.duration;
            let windows = cfg
                .faults
                .events
                .iter()
                .enumerate()
                .filter_map(|(i, e)| e.window(horizon).map(|(ws, we)| (i as u32, ws, we)))
                .collect();
            let vm_curves: Vec<VmCurve> = vms
                .iter()
                .map(|v| {
                    let t = &tenants[v.tenant as usize];
                    VmCurve {
                        b: t.b,
                        s: t.s,
                        bmax: t.bmax,
                    }
                })
                .collect();
            AuditSink::new(
                ac.clone(),
                ports.len(),
                num_hosts,
                &vm_curves,
                cfg.mtu,
                windows,
            )
        });
        let trace = cfg.trace.as_ref().map(|tc| TraceSink::new(tc, num_hosts));
        let telemetry = cfg.telemetry.as_ref().map(|tc| {
            // The queue's own wall-clock profile rides along with the
            // engine self-profile (both pure observation).
            events.enable_profile();
            TelemetrySink::new(tc, cfg.duration, ntenants, ports.len(), part.shards())
        });
        Sim {
            topo,
            cfg,
            tenants,
            rng,
            now: Time::ZERO,
            events,
            part,
            sharded,
            nic_fault_targets,
            ports,
            conns: Vec::new(),
            conn_index: FxHashMap::default(),
            vms,
            tenant_vms,
            tenant_conns: vec![Vec::new(); ntenants],
            nics,
            path_table,
            path_ids: FxHashMap::default(),
            loopback_paths,
            metrics,
            txn_starts: FxHashMap::default(),
            next_txn: 0,
            profile: EventProfile::default(),
            batch_scratch: Batch::empty(),
            arena: PktArena::with_capacity(256),
            faults_on,
            fault_active: vec![false; nfaults],
            port_down: vec![None; num_switch_ports],
            nic_stall_until: vec![Time::ZERO; num_hosts],
            nic_drift: vec![(Time::ZERO, 1.0); num_hosts],
            nic_drift_gate: vec![Time::ZERO; num_hosts],
            tenant_up: vec![true; ntenants],
            audit,
            trace,
            telemetry,
            // ACKs are modeled as a zero-cost control channel. Charging
            // their ~4% wire share would structurally oversubscribe NICs
            // whose capacity admission filled with data guarantees — an
            // accounting question the paper leaves open — and it would
            // distort every scheme equally. See EXPERIMENTS.md.
            ack_size: Bytes(0),
        }
    }

    fn push(&mut self, t: Time, ev: Ev) {
        self.profile.scheduled[ev.kind() as usize] += 1;
        let shard = if self.sharded { self.ev_owner(&ev) } else { 0 };
        self.events.push(shard, t, ev);
    }

    fn push_cancelable(&mut self, t: Time, ev: Ev) -> EvKey {
        self.profile.scheduled[ev.kind() as usize] += 1;
        let shard = if self.sharded { self.ev_owner(&ev) } else { 0 };
        self.events.push_cancelable(shard, t, ev)
    }

    /// Owning partition of a port: switch/NIC ports by the partition map,
    /// the simulator's synthetic loopback ports (appended after
    /// `topo.num_ports()`, one per host — a `Sim` convention the map
    /// doesn't know) by their host.
    #[inline]
    fn owner_of_port(&self, p: PortId) -> usize {
        let nports = self.topo.num_ports();
        if (p.0 as usize) < nports {
            self.part.owner_of_port(p)
        } else {
            self.part.owner_of_host(p.0 as usize - nports)
        }
    }

    /// Owning partition of an event — the shard whose queue holds it.
    /// Wire events follow the port/host that handles them; workload
    /// generators follow the VM's host; global coordination events
    /// (hose epochs, OLDI bursts that fan out tenant-wide, fault
    /// strikes) are pinned to shard 0.
    fn ev_owner(&self, ev: &Ev) -> usize {
        match *ev {
            Ev::Arrive(id) => {
                let pkt = &self.arena[id];
                let hops = self.hops(pkt.path);
                if pkt.hop < hops.len() {
                    self.owner_of_port(hops[pkt.hop])
                } else {
                    // Terminal arrival: delivered at the receiving host.
                    let c = &self.conns[pkt.conn as usize];
                    let h = match pkt.kind {
                        PktKind::Data => c.dst_host,
                        PktKind::Ack => c.src_host,
                    };
                    self.part.owner_of_host(h.0 as usize)
                }
            }
            Ev::PortFree(p) => self.owner_of_port(p),
            Ev::NicPull { host, .. } => self.part.owner_of_host(host as usize),
            Ev::Rto { conn, .. } | Ev::PaceResume { conn } => {
                let h = self.conns[conn as usize].src_host;
                self.part.owner_of_host(h.0 as usize)
            }
            Ev::EtcArrival { vm } => self
                .part
                .owner_of_host(self.vms[vm as usize].host.0 as usize),
            Ev::BulkStart { src, .. } => self
                .part
                .owner_of_host(self.vms[src as usize].host.0 as usize),
            Ev::Oldi { .. }
            | Ev::PoissonMsg { .. }
            | Ev::HoseEpoch
            | Ev::FaultStart(_)
            | Ev::FaultEnd(_) => 0,
        }
    }

    /// `(cross-partition deliveries, window barriers)` of the sharded
    /// queue — diagnostics for the differential suites.
    pub fn shard_stats(&self) -> (u64, u64) {
        (self.events.mailed(), self.events.barriers())
    }

    fn path(&mut self, src: HostId, dst: HostId) -> PathId {
        if src == dst {
            return self.loopback_paths[src.0 as usize];
        }
        if let Some(&p) = self.path_ids.get(&(src.0, dst.0)) {
            return p;
        }
        let id = PathId(self.path_table.len() as u32);
        self.path_table
            .push(self.topo.path_ports(src, dst).into_boxed_slice());
        self.path_ids.insert((src.0, dst.0), id);
        id
    }

    /// Resolve an interned path id to its egress-port list.
    #[inline]
    fn hops(&self, id: PathId) -> &[PortId] {
        &self.path_table[id.0 as usize]
    }

    /// Flight-recorder identity of a packet: which host's ring records
    /// its lifecycle (the emitting host — data traces at the sender, acks
    /// at the receiver that generated them) plus the labels the exported
    /// trace carries. Pure read; only called when tracing is on.
    fn trace_meta(&self, pkt: &Packet) -> PktMeta {
        let c = &self.conns[pkt.conn as usize];
        let (host, pk) = match pkt.kind {
            PktKind::Data => (c.src_host.0, PktTag::Data),
            PktKind::Ack => (c.dst_host.0, PktTag::Ack),
        };
        PktMeta {
            host,
            conn: pkt.conn,
            tenant: c.tenant,
            pk,
            pseq: pkt.seq,
            size: pkt.size.as_u64(),
            retx: pkt.retx,
        }
    }

    /// Is this port the host vswitch loopback (not a NIC/switch port)?
    fn is_loopback(&self, p: PortId) -> bool {
        (p.0 as usize) >= self.topo.num_ports()
    }

    /// Get (or lazily create) the connection from one VM to another.
    fn conn_for(&mut self, src_vm: u32, dst_vm: u32) -> u32 {
        if let Some(&c) = self.conn_index.get(&(src_vm, dst_vm)) {
            return c;
        }
        let sh = self.vms[src_vm as usize].host;
        let dh = self.vms[dst_vm as usize].host;
        let tenant = self.vms[src_vm as usize].tenant;
        let prio = self.tenants[tenant as usize].prio;
        let path = self.path(sh, dh);
        let rpath = self.path(dh, sh);
        let id = self.conns.len() as u32;
        let init_cwnd = (self.cfg.init_cwnd * self.cfg.mss()) as f64;
        self.conns.push(TcpConn::new(
            id, tenant, src_vm, dst_vm, sh, dh, prio, path, rpath, init_cwnd,
        ));
        self.conn_index.insert((src_vm, dst_vm), id);
        self.tenant_conns[tenant as usize].push(id);
        id
    }

    // ------------------------------------------------------------------
    // Applications
    // ------------------------------------------------------------------

    fn init_apps(&mut self) {
        // Tenants whose first churn event is an arrival join mid-run
        // (their workload starts from the matching FaultStart instead).
        let deferred = if self.faults_on {
            self.cfg.faults.deferred_tenants()
        } else {
            Vec::new()
        };
        for ti in 0..self.tenants.len() {
            if deferred.contains(&(ti as u16)) {
                self.tenant_up[ti] = false;
                continue;
            }
            self.init_tenant_apps(ti);
        }
        if self.cfg.mode.paced() {
            let epoch = self.cfg.hose_epoch;
            self.push(self.now + epoch, Ev::HoseEpoch);
        }
    }

    /// Start (or restart, on re-admission) one tenant's workload.
    fn init_tenant_apps(&mut self, ti: usize) {
        let workload = self.tenants[ti].workload.clone();
        let vms = self.tenant_vms[ti].clone();
        match workload {
            TenantWorkload::Etc { load, concurrency } => {
                let server = vms[0];
                for &client in &vms[1..] {
                    self.vms[client as usize].app = VmApp::EtcClient {
                        server_vm: server,
                        outstanding: 0,
                        cap: concurrency.max(1),
                        pending: 0,
                        wl: EtcWorkload::with_load(load),
                    };
                    // Desynchronized start.
                    let gap = exponential(&mut self.rng, 1e5);
                    self.push(
                        self.now + Dur::from_secs_f64(gap),
                        Ev::EtcArrival { vm: client },
                    );
                }
            }
            TenantWorkload::BulkAllToAll { msg } => {
                // Staggered connection establishment (mean 1 ms):
                // real tenants never synchronize their very first
                // packets to the nanosecond, and a synchronized cold
                // start would transiently exceed the receiver hoses
                // before the pacers' coordination converges.
                for &s in &vms {
                    for &d in &vms {
                        if s != d {
                            let gap = exponential(&mut self.rng, 1e3);
                            self.push(
                                self.now + Dur::from_secs_f64(gap),
                                Ev::BulkStart {
                                    src: s,
                                    dst: d,
                                    msg: msg.as_u64(),
                                },
                            );
                        }
                    }
                }
            }
            TenantWorkload::OldiAllToOne { interval, .. } => {
                let gap = exponential(&mut self.rng, 1.0 / interval.as_secs_f64());
                self.push(
                    self.now + Dur::from_secs_f64(gap),
                    Ev::Oldi { tenant: ti as u16 },
                );
            }
            TenantWorkload::OldiPeriodic { period, .. } => {
                self.push(self.now + period, Ev::Oldi { tenant: ti as u16 });
            }
            TenantWorkload::PoissonPairs {
                pairs, interval, ..
            } => {
                for (pi, _) in pairs.iter().enumerate() {
                    let gap = exponential(&mut self.rng, 1.0 / interval.as_secs_f64());
                    self.push(
                        self.now + Dur::from_secs_f64(gap),
                        Ev::PoissonMsg {
                            tenant: ti as u16,
                            pair: pi as u32,
                        },
                    );
                }
            }
            TenantWorkload::Idle => {}
        }
    }

    /// Application writes `bytes` onto a connection.
    fn app_write(&mut self, conn: u32, bytes: u64, respond: Option<u64>, txn: Option<u64>) {
        let (was_idle, tenant) = {
            let c = &mut self.conns[conn as usize];
            let was_idle = !c.active();
            c.wr_end += bytes;
            let end = c.wr_end;
            c.msgs.push_back(MsgBound {
                end,
                size: bytes,
                created: self.now,
                rto_hit: false,
                respond,
                txn,
            });
            (was_idle, c.tenant)
        };
        if was_idle && self.cfg.mode.paced() {
            self.update_tenant_hose(tenant);
        }
        self.try_send(conn);
    }

    fn on_etc_arrival(&mut self, vm: u32) {
        if self.faults_on && !self.tenant_alive(self.vms[vm as usize].tenant) {
            return; // the arrival chain dies with the tenant
        }
        // Draw the transaction and the next arrival.
        let (gap, req, resp, server, can_start) = {
            let v = &mut self.vms[vm as usize];
            let VmApp::EtcClient {
                server_vm,
                outstanding,
                cap,
                pending,
                wl,
            } = &mut v.app
            else {
                return;
            };
            let r = wl.next_request(&mut self.rng);
            let can = *outstanding < *cap;
            if can {
                *outstanding += 1;
            } else {
                *pending += 1;
            }
            (r.gap, r.request, r.response, *server_vm, can)
        };
        if can_start {
            self.start_etc_txn(vm, server, req, resp);
        }
        self.push(self.now + gap, Ev::EtcArrival { vm });
    }

    fn start_etc_txn(&mut self, client: u32, server: u32, req: Bytes, resp: Bytes) {
        let txn = self.next_txn;
        self.next_txn += 1;
        self.txn_starts.insert(txn, self.now);
        let c = self.conn_for(client, server);
        self.app_write(c, req.as_u64(), Some(resp.as_u64()), Some(txn));
    }

    fn on_oldi(&mut self, tenant: u16) {
        if self.faults_on && !self.tenant_alive(tenant) {
            return;
        }
        let (msg, gap) = match &self.tenants[tenant as usize].workload {
            TenantWorkload::OldiAllToOne { msg_mean, interval } => (
                *msg_mean,
                Dur::from_secs_f64(exponential(&mut self.rng, 1.0 / interval.as_secs_f64())),
            ),
            TenantWorkload::OldiPeriodic { msg, period } => (*msg, *period),
            _ => return,
        };
        let vms = self.tenant_vms[tenant as usize].clone();
        let target = vms[0];
        for &s in &vms[1..] {
            // Partition/aggregate responses are similar-sized: each worker
            // returns one fixed-size shard of the answer.
            let c = self.conn_for(s, target);
            self.app_write(c, msg.as_u64().max(1), None, None);
        }
        self.push(self.now + gap, Ev::Oldi { tenant });
    }

    fn on_poisson_msg(&mut self, tenant: u16, pair: u32) {
        if self.faults_on && !self.tenant_alive(tenant) {
            return;
        }
        let (pairs, msg_mean, interval) = match &self.tenants[tenant as usize].workload {
            TenantWorkload::PoissonPairs {
                pairs,
                msg_mean,
                interval,
            } => (pairs.clone(), *msg_mean, *interval),
            _ => return,
        };
        let (s, d) = pairs[pair as usize];
        let vms = &self.tenant_vms[tenant as usize];
        let (sv, dv) = (vms[s], vms[d]);
        let size = exponential(&mut self.rng, 1.0 / msg_mean.as_f64()).ceil() as u64;
        let c = self.conn_for(sv, dv);
        self.app_write(c, size.max(1), None, None);
        let gap = exponential(&mut self.rng, 1.0 / interval.as_secs_f64());
        self.push(
            self.now + Dur::from_secs_f64(gap),
            Ev::PoissonMsg { tenant, pair },
        );
    }

    /// Bulk tenants run one message per pair at a time: the next transfer
    /// starts when the previous one is fully acknowledged, so a message's
    /// latency is exactly its transfer time at the achieved bandwidth.
    fn app_on_ack(&mut self, conn: u32) {
        let (tenant, backlog) = {
            let c = &self.conns[conn as usize];
            (c.tenant, c.wr_end - c.una)
        };
        if self.faults_on && !self.tenant_alive(tenant) {
            return;
        }
        if let TenantWorkload::BulkAllToAll { msg } = self.tenants[tenant as usize].workload {
            if backlog == 0 {
                self.app_write(conn, msg.as_u64(), None, None);
            }
        }
    }

    // ------------------------------------------------------------------
    // TCP sender
    // ------------------------------------------------------------------

    fn try_send(&mut self, conn: u32) {
        if self.faults_on && !self.tenant_alive(self.conns[conn as usize].tenant) {
            return;
        }
        loop {
            // Pacer backpressure: a connection already stamped out to the
            // horizon must wait for the wire to catch up, so the VM's
            // other destinations can interleave through the shared
            // buckets.
            if self.cfg.mode.paced() {
                let c = &self.conns[conn as usize];
                let horizon = self.now + self.cfg.pace_horizon;
                if c.has_unsent() && c.last_depart > horizon && !c.pace_blocked {
                    let resume = c.last_depart - self.cfg.pace_horizon;
                    self.conns[conn as usize].pace_blocked = true;
                    self.push(resume, Ev::PaceResume { conn });
                    return;
                }
                if c.pace_blocked {
                    return;
                }
            }
            let (src_vm, payload, seq, prio, path, size) = {
                let c = &self.conns[conn as usize];
                if !c.has_unsent() {
                    return;
                }
                let remaining = c.wr_end - c.nxt;
                let payload = remaining.min(self.cfg.mss());
                if c.window_avail() < payload as f64 && c.flight() > 0 {
                    return;
                }
                (
                    c.src_vm,
                    payload,
                    c.nxt,
                    c.prio,
                    c.path,
                    Bytes(payload + self.cfg.header.as_u64()),
                )
            };
            {
                let c = &mut self.conns[conn as usize];
                c.nxt += payload;
                c.high_tx = c.high_tx.max(c.nxt);
                let end = c.nxt;
                c.inflight_meta.push_back((end, self.now, false));
            }
            let pkt = Packet {
                conn,
                kind: PktKind::Data,
                seq,
                payload,
                size,
                retx: false,
                ce: false,
                ecn_echo: false,
                prio,
                sent_at: self.now,
                enq_at: Time::ZERO,
                path,
                hop: 0,
            };
            let id = self.arena.alloc(pkt);
            self.send_from_vm(src_vm, id);
            self.arm_rto(conn);
        }
    }

    /// SACK-equivalent loss recovery: the receiver's reassembly state is
    /// in-process, so the sender can retransmit every missing range
    /// directly (up to `max_segs` segments per trigger) instead of
    /// NewReno's one hole per RTT — matching what a SACK stack achieves.
    fn retransmit_holes(&mut self, conn: u32, max_segs: usize) {
        let holes: Vec<(u64, u64)> = {
            let c = &self.conns[conn as usize];
            let mut holes = Vec::new();
            // Only gaps *below* received out-of-order blocks are presumed
            // lost (later data arrived past them). Data at the send
            // frontier is merely in flight. Each hole is retransmitted
            // once per recovery episode (`retx_upto`); a lost
            // retransmission falls back to the RTO.
            let mut cursor = c.delivered.max(c.una).max(c.retx_upto);
            for &(s, e) in &c.ooo {
                if s > cursor {
                    holes.push((cursor, s));
                }
                cursor = cursor.max(e);
            }
            holes
        };
        let mss = self.cfg.mss();
        // Always re-send the oldest outstanding segment (classic NewReno
        // partial-ack behavior): if its previous retransmission was lost,
        // this is the only way forward short of an RTO.
        self.retransmit_una(conn);
        let mut sent = 1usize;
        'outer: for (s, e) in holes {
            let mut seq = s;
            while seq < e {
                if sent >= max_segs {
                    break 'outer;
                }
                let payload = (e - seq).min(mss);
                self.retransmit_at(conn, seq, payload);
                seq += payload;
                sent += 1;
            }
        }
    }

    fn retransmit_at(&mut self, conn: u32, seq: u64, payload: u64) {
        let (src_vm, prio, path) = {
            let c = &mut self.conns[conn as usize];
            c.retx_upto = c.retx_upto.max(seq + payload);
            // Karn's rule: the original send-time entries of anything we
            // re-send can no longer produce valid RTT samples.
            for m in c.inflight_meta.iter_mut() {
                if m.0 > seq && m.0 <= seq + payload {
                    m.2 = true;
                }
            }
            (c.src_vm, c.prio, c.path)
        };
        let pkt = Packet {
            conn,
            kind: PktKind::Data,
            seq,
            payload,
            size: Bytes(payload + self.cfg.header.as_u64()),
            retx: true,
            ce: false,
            ecn_echo: false,
            prio,
            sent_at: self.now,
            enq_at: Time::ZERO,
            path,
            hop: 0,
        };
        let id = self.arena.alloc(pkt);
        self.send_from_vm(src_vm, id);
        self.arm_rto(conn);
    }

    fn retransmit_una(&mut self, conn: u32) {
        let (src_vm, seq, payload, prio, path) = {
            let c = &mut self.conns[conn as usize];
            let payload = (c.wr_end - c.una).min(self.cfg.mss());
            if payload == 0 {
                return;
            }
            let (seq, prio) = (c.una, c.prio);
            for m in c.inflight_meta.iter_mut() {
                if m.0 > seq && m.0 <= seq + payload {
                    m.2 = true;
                }
            }
            (c.src_vm, seq, payload, prio, c.path)
        };
        let pkt = Packet {
            conn,
            kind: PktKind::Data,
            seq,
            payload,
            size: Bytes(payload + self.cfg.header.as_u64()),
            retx: true,
            ce: false,
            ecn_echo: false,
            prio,
            sent_at: self.now,
            enq_at: Time::ZERO,
            path,
            hop: 0,
        };
        let id = self.arena.alloc(pkt);
        self.send_from_vm(src_vm, id);
        self.arm_rto(conn);
    }

    fn arm_rto(&mut self, conn: u32) {
        let (marker, at) = {
            let c = &mut self.conns[conn as usize];
            c.rto_marker += 1;
            c.rto_armed_at = self.now;
            // Clock from the latest wire departure: time spent queued in
            // the hypervisor pacer must not fire spurious timeouts.
            let base = self.now.max(c.last_depart);
            (c.rto_marker, base + c.rto(self.cfg.min_rto))
        };
        if self.cfg.cancel_timers {
            // Re-arming supersedes the pending timer: remove it instead of
            // leaving a tombstone to bloat the queue until it expires.
            if let Some(k) = self.conns[conn as usize].rto_key.take() {
                let shard = self.rto_shard(conn);
                if self.events.cancel(shard, k) {
                    self.profile.cancelled[EvKind::Rto as usize] += 1;
                }
            }
            let key = self.push_cancelable(at, Ev::Rto { conn, marker });
            self.conns[conn as usize].rto_key = Some(key);
        } else {
            self.push(at, Ev::Rto { conn, marker });
        }
    }

    fn disarm_rto(&mut self, conn: u32) {
        let shard = self.rto_shard(conn);
        let c = &mut self.conns[conn as usize];
        c.rto_marker += 1;
        if let Some(k) = c.rto_key.take() {
            if self.events.cancel(shard, k) {
                self.profile.cancelled[EvKind::Rto as usize] += 1;
            }
        }
    }

    /// Shard whose queue holds connection `conn`'s RTO timer (RTOs are
    /// always armed on the sender's host partition).
    #[inline]
    fn rto_shard(&self, conn: u32) -> usize {
        if self.sharded {
            self.part
                .owner_of_host(self.conns[conn as usize].src_host.0 as usize)
        } else {
            0
        }
    }

    fn on_rto(&mut self, conn: u32, marker: u32) {
        {
            let c = &mut self.conns[conn as usize];
            if c.rto_marker == marker {
                // The armed timer just fired: its key left the queue.
                c.rto_key = None;
            } else {
                // A tombstone from the marker scheme: the timer was
                // superseded after this event was already buried in the
                // queue. Pure dispatch waste (`cancel_timers` removes
                // these at re-arm time instead).
                self.profile.stale[EvKind::Rto as usize] += 1;
                return;
            }
            let c = &self.conns[conn as usize];
            if c.flight() == 0 {
                return;
            }
            if self.faults_on && !self.tenant_up[c.tenant as usize] {
                return;
            }
        }
        self.metrics.rtos += 1;
        if self.trace.is_some() {
            let c = &self.conns[conn as usize];
            let (armed, host, tenant) = (c.rto_armed_at, c.src_host.0, c.tenant);
            let now = self.now;
            if let Some(t) = self.trace.as_mut() {
                t.rto_fire(armed, now, host, conn, tenant);
            }
        }
        if self.telemetry.is_some() {
            let tenant = self.conns[conn as usize].tenant;
            let now = self.now;
            if let Some(tel) = self.telemetry.as_mut() {
                tel.rto(now, tenant);
            }
        }
        let mss = self.cfg.mss() as f64;
        self.conns[conn as usize].on_rto(mss);
        // Go-back-N: nxt was rewound; try_send re-emits from una.
        self.try_send(conn);
        // If the window was too small to emit (shouldn't happen), keep the
        // timer armed anyway.
        if self.conns[conn as usize].flight() > 0 {
            // arm_rto was called by try_send's first segment already.
        } else {
            self.arm_rto(conn);
        }
    }

    // ------------------------------------------------------------------
    // Host egress: pacing + NIC
    // ------------------------------------------------------------------

    fn send_from_vm(&mut self, vm: u32, id: PktId) {
        // Copy the ~96-byte struct once for the reads below; the arena
        // slot stays the single source of truth for the flight.
        let pkt = self.arena[id];
        let first_port = self.hops(pkt.path)[0];
        if self.is_loopback(first_port) {
            // Same-host delivery through the vswitch: serialized at the
            // loopback port, never paced (it does not cross the NIC).
            self.arena[id].hop = 0;
            self.enqueue_port(first_port, id);
            return;
        }
        if self.cfg.mode.paced() {
            // Pure ACKs bypass the token buckets (tiny control frames;
            // charging them to `B` would structurally oversubscribe a
            // backlogged tenant by the ~4% ACK ratio). They still ride
            // the batched NIC.
            let stamp = if pkt.kind == PktKind::Ack {
                self.now
            } else {
                let dst_vm = self.peer_vm(&pkt);
                self.stamp_packet(vm, dst_vm, pkt.size)
            };
            {
                let c = &mut self.conns[pkt.conn as usize];
                c.last_depart = c.last_depart.max(stamp);
            }
            if self.trace.is_some() && pkt.kind == PktKind::Data && stamp > self.now {
                let m = self.trace_meta(&pkt);
                let now = self.now;
                if let Some(t) = self.trace.as_mut() {
                    t.token_wait(now, vm, stamp - now, m);
                }
            }
            if self.telemetry.is_some() && pkt.kind == PktKind::Data && stamp > self.now {
                let tenant = self.vms[vm as usize].tenant;
                let (now, wait) = (self.now, stamp - self.now);
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.token_wait(now, tenant, wait);
                }
            }
            let host = self.vms[vm as usize].host.0 as usize;
            self.nics[host].batcher.enqueue(stamp, pkt.size, id);
            if self.fast_forward(host) {
                // Enqueue-resurrection: arm (or tighten) the pull only if
                // the new stamp moves the next batch start earlier.
                self.ensure_pull(host);
            } else if self.now >= self.nics[host].busy_until {
                let at = self.nics[host]
                    .batcher
                    .next_stamp()
                    .expect("just enqueued")
                    .max(self.now);
                self.arm_nic(host, at);
            }
        } else {
            self.arena[id].hop = 0;
            self.enqueue_port(first_port, id);
        }
    }

    /// The VM this packet is addressed to (for hose bucket lookup).
    fn peer_vm(&self, pkt: &Packet) -> u32 {
        let c = &self.conns[pkt.conn as usize];
        match pkt.kind {
            PktKind::Data => c.dst_vm,
            PktKind::Ack => c.src_vm,
        }
    }

    /// Fig. 8: stamp through per-destination hose bucket, then `{B, S}`,
    /// then `Bmax`.
    fn stamp_packet(&mut self, vm: u32, dst_vm: u32, size: Bytes) -> Time {
        let (b, s) = {
            let t = &self.tenants[self.vms[vm as usize].tenant as usize];
            (t.b, t.s)
        };
        let now = self.now;
        let v = &mut self.vms[vm as usize];
        let dst_tb = v
            .per_dst
            .entry(dst_vm)
            .or_insert_with(|| TokenBucket::new(b, s));
        let t1 = dst_tb.earliest(now, size);
        let t2 = v.tb_bs.earliest(now, size);
        let t3 = v.tb_max.earliest(now, size);
        let stamp = t1.max(t2).max(t3);
        dst_tb.commit(stamp, size);
        v.tb_bs.commit(stamp, size);
        v.tb_max.commit(stamp, size);
        stamp
    }

    fn arm_nic(&mut self, host: usize, at: Time) {
        let at = if self.faults_on {
            self.fault_nic_at(host, at)
        } else {
            at
        };
        self.nics[host].pull_marker += 1;
        let marker = self.nics[host].pull_marker;
        self.nics[host].pull_at = Some(at);
        let ev = Ev::NicPull {
            host: host as u32,
            marker,
        };
        if self.cfg.cancel_timers {
            if let Some(k) = self.nics[host].pull_key.take() {
                let shard = if self.sharded {
                    self.part.owner_of_host(host)
                } else {
                    0
                };
                if self.events.cancel(shard, k) {
                    self.profile.cancelled[EvKind::NicPull as usize] += 1;
                }
            }
            let key = self.push_cancelable(at, ev);
            self.nics[host].pull_key = Some(key);
        } else {
            self.push(at, ev);
        }
    }

    /// Fast-forward arming: ensure a pull is pending at the earliest
    /// instant the next batch could start, `max(next stamp, busy_until,
    /// now)`. Between pulls the stamp frontier only moves *earlier* (new
    /// enqueues), so the wanted instant only tightens; a pull already
    /// armed there is left alone — the eager scheme would re-arm it at
    /// the same instant with a fresh marker, pure event churn with an
    /// identical wire schedule (equivalence argument in DESIGN.md).
    /// Empty queue: nothing armed, the NIC sleeps until the next enqueue.
    fn ensure_pull(&mut self, host: usize) {
        let Some(s) = self.nics[host].batcher.next_stamp() else {
            return;
        };
        let want = s.max(self.nics[host].busy_until).max(self.now);
        if self.nics[host].pull_at.is_none_or(|cur| cur > want) {
            self.arm_nic(host, want);
        }
    }

    /// Eligible for the idle-pacer fast-forward? Per host: a pacer
    /// stall/drift window targeting this host disables it (stall/drift
    /// clamps apply per *armed* pull, so eliding intermediate pulls on a
    /// targeted host would move where the clamp lands), but hosts no
    /// pacer fault ever touches keep the fast path — link faults and
    /// tenant churn don't interact with pull elision (their checks run
    /// on the frames a pull emits, not on the pull's arming).
    #[inline]
    fn fast_forward(&self, host: usize) -> bool {
        self.cfg.elide_nic_pulls && !self.nic_fault_targets[host]
    }

    fn on_nic_pull(&mut self, host: u32, marker: u64) {
        let h = host as usize;
        if self.nics[h].pull_marker == marker {
            // The armed pull just fired: its key left the queue.
            self.nics[h].pull_key = None;
            self.nics[h].pull_at = None;
        } else {
            // Superseded pull tombstone (see `on_rto`).
            self.profile.stale[EvKind::NicPull as usize] += 1;
            return;
        }
        if self.faults_on && self.now < self.nic_stall_until[h] {
            // The pacer timer is stalled: defer this pull to the window
            // end (arm_nic re-applies the stall clamp).
            let stall = self.nic_stall_until[h];
            self.arm_nic(h, stall);
            return;
        }
        // Reuse one frame vector for every batch of every host (the pull
        // path is the simulator's hottest allocation site otherwise).
        let mut batch = std::mem::replace(&mut self.batch_scratch, Batch::empty());
        self.nics[h].batcher.next_batch_into(self.now, &mut batch);
        if batch.is_empty() {
            if let Some(s) = self.nics[h].batcher.next_stamp() {
                let at = s.max(self.now);
                self.arm_nic(h, at);
            }
            self.batch_scratch = batch;
            return;
        }
        let link = self.topo.params().host_link;
        let prop = self.topo.params().prop_delay;
        self.nics[h].busy_until = batch.done_at;
        self.metrics.wire_data_bytes += batch.data_bytes().as_u64();
        self.metrics.wire_void_bytes += batch.void_bytes().as_u64();
        if self.telemetry.is_some() {
            let (now, data, void) = (
                self.now,
                batch.data_bytes().as_u64(),
                batch.void_bytes().as_u64(),
            );
            if let Some(tel) = self.telemetry.as_mut() {
                tel.wire_bytes(now, data, void);
            }
        }
        // NIC wire accounting on the host's uplink port (utilization).
        let up = PortId::up(self.topo.host_link(HostId(host))).0 as usize;
        self.ports[up].busy_time += batch.done_at - batch.frames[0].start;
        let mtu = self.cfg.mtu;
        for f in batch.frames.drain(..) {
            if f.kind == FrameKind::Data {
                if let Some(a) = self.audit.as_mut() {
                    // Every frame — data and void — claims a wire interval.
                    a.on_wire_frame(h, f.start, f.size, link);
                }
                let id = f.payload.expect("data frame carries a packet");
                let pkt = self.arena[id];
                if self.audit.is_some() && pkt.kind == PktKind::Data {
                    // Wire-level conformance of the sending VM against its
                    // admitted curve, at the instant the first bit leaves.
                    // ACKs bypass the buckets by design and are excluded.
                    // A frame a dead link is about to eat still counts: it
                    // occupied this wire slot.
                    let vm = self.conns[pkt.conn as usize].src_vm as usize;
                    if let Some(a) = self.audit.as_mut() {
                        a.on_wire_data(f.start, vm, f.size);
                    }
                }
                if self.faults_on {
                    // Paced frames skip enqueue_port for the NIC wire
                    // (hop 0), so a dead host link is enforced here.
                    if let Some(fault) = self.port_fault(self.hops(pkt.path)[0]) {
                        self.metrics.fault_drops[fault as usize] += 1;
                        if self.trace.is_some() {
                            let m = self.trace_meta(&pkt);
                            let eaten_at = self.hops(pkt.path)[0].0;
                            let now = self.now;
                            if let Some(t) = self.trace.as_mut() {
                                t.drop_fault(now, eaten_at, fault, m);
                            }
                        }
                        self.arena.free(id);
                        continue;
                    }
                }
                if self.trace.is_some() {
                    let m = self.trace_meta(&pkt);
                    let (start, tx) = f.span(link);
                    if let Some(t) = self.trace.as_mut() {
                        t.nic_data(start, tx, m);
                    }
                }
                self.arena[id].hop = 1; // the NIC wire is hop 0
                let arrive = f.start + link.tx_time(f.size) + prop;
                self.push(arrive, Ev::Arrive(id));
            } else if let Some(gap_end) = f.gap_end {
                // A coalesced void run: one frame stands for the whole
                // gap. Observers must see the exact per-chunk frames an
                // uncoalesced batcher emits, so the run is re-expanded
                // through the same chunk math (byte-identical audit
                // report and flight-recorder log — the CI differential
                // gate diffs the traces).
                if self.audit.is_some() || self.trace.is_some() {
                    for (s, size) in VoidChunks::new(f.start, gap_end, link, mtu) {
                        if let Some(a) = self.audit.as_mut() {
                            a.on_wire_frame(h, s, size, link);
                        }
                        if self.trace.is_some() {
                            let tx = link.tx_time(size);
                            if let Some(t) = self.trace.as_mut() {
                                t.nic_void(host, s, tx, size.as_u64());
                            }
                        }
                    }
                }
            } else {
                if let Some(a) = self.audit.as_mut() {
                    a.on_wire_frame(h, f.start, f.size, link);
                }
                if self.trace.is_some() {
                    let (start, tx) = f.span(link);
                    let size = f.size.as_u64();
                    if let Some(t) = self.trace.as_mut() {
                        t.nic_void(host, start, tx, size);
                    }
                }
            }
            // Void frames: dropped by the first-hop switch. Their only
            // effect is the wire time already encoded in the schedule.
        }
        let done = batch.done_at;
        self.batch_scratch = batch;
        if self.faults_on {
            // A pacer clock running slow by `factor` stretches the gap
            // between this batch and the next: what took `done − now` of
            // healthy clock takes `factor×` as long.
            let (until, factor) = self.nic_drift[h];
            if self.now < until && factor > 1.0 && done > self.now {
                let dilated = (done - self.now).as_ps() as f64 * factor;
                self.nic_drift_gate[h] = self.now + Dur::from_ps(dilated as u64);
            }
        }
        if self.fast_forward(h) {
            // Arm directly at the instant the next batch can start: at
            // `done` when data is already due, at the future head stamp
            // (skipping the eager scheme's intermediate empty pull at
            // `done`), or not at all when the queue drained — the next
            // enqueue resurrects the pull.
            self.ensure_pull(h);
        } else {
            self.arm_nic(h, done);
        }
    }

    // ------------------------------------------------------------------
    // Switch fabric
    // ------------------------------------------------------------------

    fn enqueue_port(&mut self, port: PortId, id: PktId) {
        if self.faults_on {
            if let Some(f) = self.port_fault(port) {
                // Black hole: the packet reached a dead port.
                self.metrics.fault_drops[f as usize] += 1;
                if self.trace.is_some() {
                    let m = self.trace_meta(&self.arena[id]);
                    let now = self.now;
                    if let Some(t) = self.trace.as_mut() {
                        t.drop_fault(now, port.0, f, m);
                    }
                }
                self.arena.free(id);
                return;
            }
        }
        let now = self.now;
        let (size, prio8) = {
            let p = &self.arena[id];
            (p.size, p.prio)
        };
        let prio = (prio8 as usize).min(1);
        let ps = &mut self.ports[port.0 as usize];
        // The port rules on the handle + wire size alone; the decision is
        // applied to the arena-resident packet here.
        let decision = ps.enqueue(now, id, size, prio8);
        let queued = ps.queued_bytes;
        let accepted = matches!(decision, Enqueue::Accepted { .. });
        if let Enqueue::Accepted { mark_ce } = decision {
            self.arena[id].enq_at = now;
            if mark_ce {
                self.arena[id].ce = true;
            }
        }
        if let Some(a) = self.audit.as_mut() {
            a.on_enqueue(now, port.0 as usize, size.as_u64(), prio, queued, accepted);
        }
        if self.trace.is_some() {
            let m = self.trace_meta(&self.arena[id]);
            if let Some(t) = self.trace.as_mut() {
                if accepted {
                    t.enqueue(now, port.0, queued, m);
                } else {
                    t.drop_tail(now, port.0, queued, m);
                }
            }
        }
        if let Some(tel) = self.telemetry.as_mut() {
            let mark_ce = matches!(decision, Enqueue::Accepted { mark_ce: true });
            tel.port_enqueue(now, port.0 as usize, queued, accepted, mark_ce);
        }
        if !accepted {
            self.metrics.drops += 1;
            self.arena.free(id);
            return;
        }
        let ps = &mut self.ports[port.0 as usize];
        // Invariant: `wakeup_armed` ⟺ exactly one PortFree in flight for
        // this port (it doubles as the "transmitting" flag). While one is
        // pending — even if it is due *this* instant — the queue must wait
        // for it: starting inline would dequeue the head a sub-instant
        // early, freeing buffer space before the in-flight wakeup would
        // and flipping same-instant tail-drop decisions at a full port
        // (decision record in DESIGN.md).
        if !ps.wakeup_armed && now >= ps.busy_until {
            self.start_tx(port);
        }
    }

    fn start_tx(&mut self, port: PortId) {
        let now = self.now;
        let (t_free, t_arrive, id, size) = {
            let ps = &mut self.ports[port.0 as usize];
            let Some(q) = ps.dequeue() else {
                return;
            };
            let tx = ps.rate.tx_time(q.size);
            ps.busy_time += tx;
            ps.tx_bytes += q.size.as_u64();
            ps.tx_packets += 1;
            let prop = ps.prop;
            let t_free = now + tx;
            ps.busy_until = t_free;
            ps.wakeup_armed = true;
            (t_free, t_free + prop, q.id, q.size)
        };
        self.arena[id].hop += 1;
        if self.audit.is_some() {
            let prio = (self.arena[id].prio as usize).min(1);
            let queued = self.ports[port.0 as usize].queued_bytes;
            if let Some(a) = self.audit.as_mut() {
                a.on_dequeue(now, port.0 as usize, size.as_u64(), prio, queued);
            }
        }
        if self.trace.is_some() {
            let m = self.trace_meta(&self.arena[id]);
            let wait = now.since(self.arena[id].enq_at);
            if let Some(t) = self.trace.as_mut() {
                t.wire_start(now, port.0, t_free - now, wait, m);
            }
        }
        if self.telemetry.is_some() {
            let queued_after = self.ports[port.0 as usize].queued_bytes;
            let wait = now.since(self.arena[id].enq_at);
            let is_data = self.arena[id].kind == PktKind::Data;
            let tenant = self.conns[self.arena[id].conn as usize].tenant;
            if let Some(tel) = self.telemetry.as_mut() {
                tel.port_tx(
                    now,
                    port.0 as usize,
                    t_free - now,
                    size.as_u64(),
                    queued_after,
                );
                if is_data {
                    // Head-of-line wait attribution, data packets only —
                    // the trace layer's `wire_start` wait, summed per
                    // tenant per window.
                    tel.queue_wait(now, tenant, wait);
                }
            }
        }
        // The PortFree is always materialized, even when nothing is queued
        // behind this transmission. Eliding the idle tail is tempting (it
        // fires into a no-op ~2/3 of the time) but provably inexact: the
        // wakeup's queue position is what serializes same-instant enqueues
        // against the end of the transmission, so removing it — or
        // re-creating it later with a fresher sequence number — shifts the
        // within-instant service point and flips drop/occupancy decisions
        // whenever events collide on the tx-time grid (see DESIGN.md).
        self.push(t_free, Ev::PortFree(port));
        if self.sharded {
            // This is the one site where a packet crosses a partition cut:
            // a link whose egress port and next hop live in different
            // shards (ToR uplinks, by the rack-contiguous partitioning).
            // The arrival rides the destination's window-barrier mailbox;
            // conservative lookahead (`t_arrive ≥ now + prop ≥ window
            // end`) guarantees it is never due inside the current window.
            let origin = self.owner_of_port(port);
            let dest = self.ev_owner(&Ev::Arrive(id));
            if dest != origin {
                self.profile.scheduled[EvKind::Arrive as usize] += 1;
                self.events.mail(dest, t_arrive, Ev::Arrive(id));
                return;
            }
        }
        self.push(t_arrive, Ev::Arrive(id));
    }

    fn on_port_free(&mut self, port: PortId) {
        // Clear the armed flag unconditionally: even when a fault check
        // below bails out, this event has left the queue and a later
        // enqueue must be able to arm a fresh wakeup.
        self.ports[port.0 as usize].wakeup_armed = false;
        if self.faults_on && self.port_fault(port).is_some() {
            return; // port died mid-transmission; queue already flushed
        }
        let ps = &self.ports[port.0 as usize];
        if self.now >= ps.busy_until && !ps.is_empty() {
            self.start_tx(port);
        }
    }

    fn on_arrive(&mut self, id: PktId) {
        let pkt = self.arena[id];
        let hops = self.hops(pkt.path);
        if pkt.arrived(hops) {
            // Terminal hop: the flight is over. Copy out, release the
            // slot, then hand the receiver the by-value packet.
            self.arena.free(id);
            match pkt.kind {
                PktKind::Data => self.rx_data(pkt),
                PktKind::Ack => self.rx_ack(pkt),
            }
        } else {
            let port = hops[pkt.hop];
            self.enqueue_port(port, id);
        }
    }

    // ------------------------------------------------------------------
    // TCP receiver + ACK processing
    // ------------------------------------------------------------------

    fn rx_data(&mut self, pkt: Packet) {
        let conn = pkt.conn;
        if self.faults_on && !self.tenant_alive(self.conns[conn as usize].tenant) {
            return; // the receiving VM is gone; the packet dies silently
        }
        if self.trace.is_some() {
            let m = self.trace_meta(&pkt);
            let arr = self.conns[conn as usize].dst_host.0;
            let now = self.now;
            if let Some(t) = self.trace.as_mut() {
                t.deliver(now, arr, m);
            }
        }
        let (completions, dst_vm, src_vm, prio, rpath, tenant, adv) = {
            let c = &mut self.conns[conn as usize];
            let prev = c.receive_segment(pkt.seq, pkt.payload);
            let delivered = c.delivered;
            let adv = delivered - prev;
            c.goodput_bytes += adv;
            let mut done = Vec::new();
            while let Some(m) = c.msgs.front() {
                if m.end <= delivered {
                    done.push(c.msgs.pop_front().expect("front exists"));
                    c.msgs_done += 1;
                } else {
                    break;
                }
            }
            (done, c.dst_vm, c.src_vm, c.prio, c.rpath, c.tenant, adv)
        };
        self.vms[dst_vm as usize].rx_epoch_bytes += adv;
        if adv > 0 {
            let now = self.now;
            if let Some(tel) = self.telemetry.as_mut() {
                tel.goodput(now, tenant, adv);
            }
        }
        let same_host = self.conns[conn as usize].src_host == self.conns[conn as usize].dst_host;
        let dst_host = self.conns[conn as usize].dst_host.0;
        for m in &completions {
            let txn_latency = match (m.respond, m.txn) {
                // A response arriving back at the client closes the txn.
                (None, Some(txn)) => self.txn_starts.remove(&txn).map(|t0| self.now - t0),
                _ => None,
            };
            let latency = self.now - m.created;
            let cap = self.cfg.msg_record_cap;
            self.metrics.record_message(
                MsgRecord {
                    tenant,
                    size: m.size,
                    latency,
                    rto: m.rto_hit,
                    created: m.created,
                    txn_latency,
                    same_host,
                },
                cap,
            );
            if self.trace.is_some() {
                let (created, now, size) = (m.created, self.now, m.size);
                if let Some(ts) = self.trace.as_mut() {
                    ts.msg_done(created, now, dst_host, tenant, size);
                }
            }
            let bound_opt = self.tenants[tenant as usize].latency_bound(Bytes(m.size));
            if self.telemetry.is_some() {
                let now = self.now;
                let margin = bound_opt.map(|b| b.as_ps() as i64 - latency.as_ps() as i64);
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.msg_done(now, tenant, latency.as_ps(), margin);
                }
            }
            // Guarantee check: a tenant with a delay guarantee must see
            // every message inside its §4.1 bound; anything late is a
            // violation, attributed to an overlapping fault if one is
            // scheduled. (`delay: None` — all legacy configs — skips.)
            if let Some(bound) = bound_opt {
                if latency > bound {
                    let fault = self.attribute_fault(m.created, self.now);
                    self.metrics.violations.push(Violation {
                        tenant,
                        fault,
                        created: m.created,
                        completed: self.now,
                        latency,
                        bound,
                    });
                }
            }
            if let (None, Some(_txn)) = (m.respond, m.txn) {
                // Client-side completion: release a concurrency slot.
                self.etc_txn_done(dst_vm);
            }
            if let Some(resp) = m.respond {
                // Server side: send the response back.
                let rc = self.conn_for(dst_vm, src_vm);
                self.app_write(rc, resp, None, m.txn);
            }
        }
        // Cumulative ACK echoing this segment's CE mark.
        let ack = Packet {
            conn,
            kind: PktKind::Ack,
            seq: self.conns[conn as usize].delivered,
            payload: 0,
            size: self.ack_size,
            retx: false,
            ce: false,
            ecn_echo: pkt.ce,
            prio,
            sent_at: self.now,
            enq_at: Time::ZERO,
            path: rpath,
            hop: 0,
        };
        let id = self.arena.alloc(ack);
        self.send_from_vm(dst_vm, id);
    }

    fn etc_txn_done(&mut self, client_vm: u32) {
        let start_next = {
            let v = &mut self.vms[client_vm as usize];
            if let VmApp::EtcClient {
                outstanding,
                pending,
                ..
            } = &mut v.app
            {
                *outstanding = outstanding.saturating_sub(1);
                if *pending > 0 {
                    *pending -= 1;
                    *outstanding += 1;
                    true
                } else {
                    false
                }
            } else {
                false
            }
        };
        if start_next {
            let (server, req, resp) = {
                let v = &mut self.vms[client_vm as usize];
                let VmApp::EtcClient { server_vm, wl, .. } = &mut v.app else {
                    unreachable!()
                };
                let r = wl.next_request(&mut self.rng);
                (*server_vm, r.request, r.response)
            };
            self.start_etc_txn(client_vm, server, req, resp);
        }
    }

    fn rx_ack(&mut self, pkt: Packet) {
        let conn = pkt.conn;
        if self.faults_on && !self.tenant_alive(self.conns[conn as usize].tenant) {
            return;
        }
        if self.trace.is_some() {
            let m = self.trace_meta(&pkt);
            let arr = self.conns[conn as usize].src_host.0;
            let now = self.now;
            if let Some(t) = self.trace.as_mut() {
                t.deliver(now, arr, m);
            }
        }
        let ack = pkt.seq;
        let mss = self.cfg.mss() as f64;
        let mut need_retx_partial = false;
        let mut flight_left = 0;
        {
            let c = &mut self.conns[conn as usize];
            if ack > c.una {
                let adv = ack - c.una;
                // DCTCP mark accounting.
                c.acked_bytes += adv;
                if pkt.ecn_echo {
                    c.ce_bytes += adv;
                }
                // RTT sample (Karn: only never-retransmitted segments).
                let mut sample = None;
                while let Some(&(end, sent, retx)) = c.inflight_meta.front() {
                    if end <= ack {
                        if !retx {
                            sample = Some(self.now - sent);
                        }
                        c.inflight_meta.pop_front();
                    } else {
                        break;
                    }
                }
                if let Some(rtt) = sample {
                    c.on_rtt_sample(rtt);
                }
                c.una = ack;
                // After an RTO rewinds `nxt` (go-back-N), a late ACK for
                // the original flight can overtake it; acked bytes never
                // need re-sending.
                c.nxt = c.nxt.max(ack);
                c.dupacks = 0;
                c.rto_backoff = 0;
                if c.in_recovery {
                    if ack >= c.recover {
                        c.in_recovery = false;
                        c.cwnd = c.ssthresh;
                        c.retx_upto = 0;
                    } else {
                        // NewReno partial ack: retransmit the next hole.
                        need_retx_partial = true;
                    }
                } else {
                    c.grow_cwnd(adv, mss);
                }
                c.cwnd = c.cwnd.min(self.cfg.max_cwnd.as_f64());
                if self.cfg.mode.dctcp_sender() {
                    c.dctcp_window_rollover(self.cfg.dctcp_g, mss);
                }
                flight_left = c.flight();
            } else if c.flight() > 0 {
                c.dupacks += 1;
                if pkt.ecn_echo {
                    // Marked dupacks still feed DCTCP's estimator.
                    c.ce_bytes += mss as u64;
                    c.acked_bytes += mss as u64;
                }
                if c.dupacks == 3 && !c.in_recovery && c.una >= c.recover {
                    // NewReno re-entry guard: losses within one recovery
                    // window trigger only one halving.
                    c.enter_recovery(mss);
                    need_retx_partial = true;
                } else if c.in_recovery {
                    c.cwnd = (c.cwnd + mss).min(self.cfg.max_cwnd.as_f64());
                }
                flight_left = c.flight();
            }
        }
        if need_retx_partial {
            self.retransmit_holes(conn, 16);
        }
        if flight_left > 0 {
            self.arm_rto(conn);
        } else {
            self.disarm_rto(conn);
        }
        self.try_send(conn);
        self.app_on_ack(conn);
        // Became idle (fully acked, nothing queued): release its hose
        // share to the tenant's other active pairs.
        if self.cfg.mode.paced() && !self.conns[conn as usize].active() {
            let tenant = self.conns[conn as usize].tenant;
            self.update_tenant_hose(tenant);
        }
    }

    /// EyeQ-style hose coordination (paper §4.3): each sender splits its
    /// own `B` over the destinations it is *currently* sending to; a
    /// receiver additionally throttles its senders to `B/in-degree` only
    /// when its measured arrival rate actually exceeds its hose — bursts
    /// to an idle receiver are deliberately not destination-limited
    /// (§4.1). Idle pairs are reset to the full sender rate so a fresh
    /// burst rides the burst allowance, exactly as the guarantee promises.
    fn on_hose_epoch(&mut self) {
        match self.cfg.mode {
            TransportMode::Okto | TransportMode::OktoPlus => self.okto_epoch(),
            _ => self.silo_epoch(),
        }
        let epoch = self.cfg.hose_epoch;
        self.push(self.now + epoch, Ev::HoseEpoch);
    }

    /// Oktopus-style *static* hose division: every VM pair that has ever
    /// communicated keeps `min(B/out-degree, B/in-degree)` regardless of
    /// current activity — Oktopus's central rate computation has no
    /// work-conserving feedback loop (paper §6.2: "VMs cannot burst").
    fn okto_epoch(&mut self) {
        let mut out_deg: FxHashMap<u32, u32> = FxHashMap::default();
        let mut in_deg: FxHashMap<u32, u32> = FxHashMap::default();
        for c in &self.conns {
            if c.src_host != c.dst_host {
                *out_deg.entry(c.src_vm).or_default() += 1;
                *in_deg.entry(c.dst_vm).or_default() += 1;
            }
        }
        let now = self.now;
        for (vi, v) in self.vms.iter_mut().enumerate() {
            let b = self.tenants[v.tenant as usize].b.as_bps() as f64;
            let od = out_deg.get(&(vi as u32)).copied().unwrap_or(1).max(1);
            for (&d, tb) in v.per_dst.iter_mut() {
                let id = in_deg.get(&d).copied().unwrap_or(1).max(1);
                let r = (b / od as f64).min(b / id as f64);
                tb.set_rate(now, silo_base::Rate::from_bps(r.max(1e6) as u64));
            }
            v.rx_epoch_bytes = 0;
        }
    }

    fn silo_epoch(&mut self) {
        for ti in 0..self.tenants.len() {
            self.update_tenant_hose(ti as u16);
        }
    }

    /// Recompute one tenant's pairwise hose rates. Sustained rates split
    /// both endpoint hoses over *currently active* peers (zero-lag
    /// idealization of the pacers' coordination messages). Bursts are
    /// untouched — they ride the per-destination bucket's capacity `S`
    /// whatever its refill rate (§4.1: bursts are not destination
    /// limited) — and idle pairs are reset to the full hose `B` so the
    /// burst allowance refills at the guaranteed rate.
    ///
    /// Called on every active↔idle transition of the tenant's
    /// connections, plus a periodic safety epoch.
    fn update_tenant_hose(&mut self, ti: u16) {
        if matches!(self.cfg.mode, TransportMode::Okto | TransportMode::OktoPlus) {
            return; // Oktopus rates are static, set by okto_epoch.
        }
        let mut out_deg: FxHashMap<u32, u32> = FxHashMap::default();
        let mut in_deg: FxHashMap<u32, u32> = FxHashMap::default();
        let mut active: Vec<(u32, u32)> = Vec::new();
        for &ci in &self.tenant_conns[ti as usize] {
            let c = &self.conns[ci as usize];
            if c.active() && c.src_host != c.dst_host {
                active.push((c.src_vm, c.dst_vm));
                *out_deg.entry(c.src_vm).or_default() += 1;
                *in_deg.entry(c.dst_vm).or_default() += 1;
            }
        }
        let now = self.now;
        let b_bps = self.tenants[ti as usize].b.as_bps() as f64;
        let b = self.tenants[ti as usize].b;
        let mut assigned: FxHashMap<(u32, u32), f64> = FxHashMap::default();
        for &(s, d) in &active {
            // 3% headroom: pair rates summing to exactly B would keep the
            // VM's {B, S} bucket permanently saturated and its backlog
            // random-walking upward (EyeQ similarly converges slightly
            // below the hose).
            let rate = 0.97 * (b_bps / out_deg[&s] as f64).min(b_bps / in_deg[&d] as f64);
            assigned.insert((s, d), rate);
        }
        for &vi in &self.tenant_vms[ti as usize].clone() {
            let v = &mut self.vms[vi as usize];
            for (&d, tb) in v.per_dst.iter_mut() {
                match assigned.get(&(vi, d)) {
                    Some(&r) => tb.set_rate(now, silo_base::Rate::from_bps(r.max(1e6) as u64)),
                    None => tb.set_rate(now, b),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Is this tenant currently admitted? (Always true without churn.)
    #[inline]
    fn tenant_alive(&self, ti: u16) -> bool {
        !self.faults_on || self.tenant_up[ti as usize]
    }

    /// The fault currently holding this port down, if any. The vswitch
    /// loopback (index past the switch ports) cannot fail.
    #[inline]
    fn port_fault(&self, p: PortId) -> Option<u32> {
        self.port_down.get(p.0 as usize).copied().flatten()
    }

    fn on_fault_start(&mut self, i: u32) {
        self.fault_active[i as usize] = true;
        if self.trace.is_some() {
            let now = self.now;
            if let Some(t) = self.trace.as_mut() {
                t.fault(now, i, true);
            }
        }
        match self.cfg.faults.events[i as usize].kind {
            FaultKind::LinkDown { .. } | FaultKind::PortDown { .. } => {
                self.recompute_port_faults();
                self.flush_downed_ports();
            }
            FaultKind::PacerStall { .. } | FaultKind::PacerDrift { .. } => {
                self.recompute_nic_faults();
            }
            FaultKind::TenantDown { tenant } => self.tenant_depart(tenant),
            FaultKind::TenantUp { tenant } => self.tenant_admit(tenant),
        }
    }

    fn on_fault_end(&mut self, i: u32) {
        self.fault_active[i as usize] = false;
        if self.trace.is_some() {
            let now = self.now;
            if let Some(t) = self.trace.as_mut() {
                t.fault(now, i, false);
            }
        }
        match self.cfg.faults.events[i as usize].kind {
            FaultKind::LinkDown { .. } | FaultKind::PortDown { .. } => {
                self.recompute_port_faults();
                // A restored port restarts transmission if traffic queued
                // behind it (possible when another fault flap raced the
                // flush; normally the queue is empty).
                for p in 0..self.port_down.len() {
                    if self.port_down[p].is_none()
                        && self.now >= self.ports[p].busy_until
                        && !self.ports[p].is_empty()
                    {
                        self.start_tx(PortId(p as u32));
                    }
                }
            }
            FaultKind::PacerStall { host } => {
                self.recompute_nic_faults();
                // Wake the pacer: frames stamped during the stall are
                // waiting in the batcher with no pull armed before now.
                let h = host as usize;
                if self.now >= self.nics[h].busy_until {
                    if let Some(s) = self.nics[h].batcher.next_stamp() {
                        let at = s.max(self.now);
                        self.arm_nic(h, at);
                    }
                }
            }
            FaultKind::PacerDrift { .. } => self.recompute_nic_faults(),
            FaultKind::TenantDown { tenant } => self.tenant_admit(tenant),
            FaultKind::TenantUp { .. } => {}
        }
    }

    /// Rebuild the downed-port map from the currently active events
    /// (overlapping faults on one port resolve to the earliest).
    fn recompute_port_faults(&mut self) {
        for p in self.port_down.iter_mut() {
            *p = None;
        }
        for (i, e) in self.cfg.faults.events.iter().enumerate() {
            if !self.fault_active[i] {
                continue;
            }
            match e.kind {
                FaultKind::LinkDown { link } => {
                    let l = silo_topology::LinkId(link);
                    for p in [PortId::up(l), PortId::down(l)] {
                        let slot = &mut self.port_down[p.0 as usize];
                        if slot.is_none() {
                            *slot = Some(i as u32);
                        }
                    }
                }
                FaultKind::PortDown { port } => {
                    let slot = &mut self.port_down[port as usize];
                    if slot.is_none() {
                        *slot = Some(i as u32);
                    }
                }
                _ => {}
            }
        }
    }

    /// A dead port stops transmitting: everything it holds is lost, and
    /// the loss is attributed to the fault that killed the port.
    fn flush_downed_ports(&mut self) {
        let now = self.now;
        for p in 0..self.port_down.len() {
            let Some(f) = self.port_down[p] else { continue };
            while let Some(q) = self.ports[p].dequeue() {
                self.metrics.fault_drops[f as usize] += 1;
                if self.audit.is_some() {
                    let prio = (self.arena[q.id].prio as usize).min(1);
                    let queued = self.ports[p].queued_bytes;
                    if let Some(a) = self.audit.as_mut() {
                        a.on_flush(now, p, q.size.as_u64(), prio, queued);
                    }
                }
                if self.trace.is_some() {
                    let m = self.trace_meta(&self.arena[q.id]);
                    if let Some(t) = self.trace.as_mut() {
                        t.drop_fault(now, p as u32, f, m);
                    }
                }
                self.arena.free(q.id);
            }
            if self.telemetry.is_some() {
                let queued_now = self.ports[p].queued_bytes;
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.port_flush(now, p, queued_now);
                }
            }
        }
    }

    /// Rebuild per-host pacer stall/drift state from active events.
    fn recompute_nic_faults(&mut self) {
        for t in self.nic_stall_until.iter_mut() {
            *t = Time::ZERO;
        }
        for d in self.nic_drift.iter_mut() {
            *d = (Time::ZERO, 1.0);
        }
        for (i, e) in self.cfg.faults.events.iter().enumerate() {
            if !self.fault_active[i] {
                continue;
            }
            match e.kind {
                FaultKind::PacerStall { host } => {
                    let until = e.until.expect("validated: stalls have an end");
                    let h = host as usize;
                    self.nic_stall_until[h] = self.nic_stall_until[h].max(until);
                }
                FaultKind::PacerDrift { host, factor } => {
                    let until = e.until.expect("validated: drifts have an end");
                    self.nic_drift[host as usize] = (until, factor);
                }
                _ => {}
            }
        }
    }

    /// Defer a NIC pull timer per the host's active pacer fault: past
    /// the stall horizon, and never before the drift gate (set after
    /// each batch while a slow clock is active).
    fn fault_nic_at(&self, host: usize, at: Time) -> Time {
        let (until, _) = self.nic_drift[host];
        let at = if self.now < until {
            at.max(self.nic_drift_gate[host])
        } else {
            at
        };
        at.max(self.nic_stall_until[host])
    }

    /// Tenant departure: the workload generators die (their event chains
    /// are gated), unsent and unfinished data is abandoned, timers are
    /// disarmed. In-flight packets die at the receive gate.
    fn tenant_depart(&mut self, ti: u16) {
        if !self.tenant_up[ti as usize] {
            return;
        }
        self.tenant_up[ti as usize] = false;
        for &ci in &self.tenant_conns[ti as usize].clone() {
            let shard = self.rto_shard(ci);
            let c = &mut self.conns[ci as usize];
            c.wr_end = c.una; // abandon everything not yet acknowledged
            c.msgs.clear();
            c.inflight_meta.clear();
            c.rto_marker += 1; // disarm any pending RTO
            let key = c.rto_key.take();
            if let Some(k) = key {
                if self.events.cancel(shard, k) {
                    self.profile.cancelled[EvKind::Rto as usize] += 1;
                }
            }
        }
        if self.cfg.mode.paced() {
            self.update_tenant_hose(ti);
        }
    }

    /// Tenant (re-)admission: every connection restarts from a fresh
    /// logical stream at the old send frontier (stale packets and ACKs
    /// from the previous life arrive as duplicates), pacer buckets refill
    /// to the full burst allowance, and the workload starts over — the
    /// engine's view of "the placement layer re-admitted this tenant".
    fn tenant_admit(&mut self, ti: u16) {
        if self.tenant_up[ti as usize] {
            return;
        }
        self.tenant_up[ti as usize] = true;
        let init_cwnd = (self.cfg.init_cwnd * self.cfg.mss()) as f64;
        for &ci in &self.tenant_conns[ti as usize].clone() {
            let c = &mut self.conns[ci as usize];
            let f = c.nxt.max(c.wr_end).max(c.delivered);
            c.una = f;
            c.nxt = f;
            c.wr_end = f;
            c.delivered = f;
            c.high_tx = f;
            c.recover = 0;
            c.retx_upto = 0;
            c.ooo.clear();
            c.msgs.clear();
            c.inflight_meta.clear();
            c.cwnd = init_cwnd;
            c.ssthresh = f64::INFINITY;
            c.dupacks = 0;
            c.in_recovery = false;
            c.srtt = None;
            c.rttvar = Dur::ZERO;
            c.rto_backoff = 0;
            c.rto_marker += 1;
            let key = c.rto_key.take();
            if let Some(k) = key {
                let shard = self.rto_shard(ci);
                if self.events.cancel(shard, k) {
                    self.profile.cancelled[EvKind::Rto as usize] += 1;
                }
            }
            let c = &mut self.conns[ci as usize];
            c.pace_blocked = false;
            c.alpha = 0.0;
            c.ce_bytes = 0;
            c.acked_bytes = 0;
            c.dctcp_window_end = f;
        }
        let (b, s, bmax) = {
            let t = &self.tenants[ti as usize];
            (t.b, t.s, t.bmax)
        };
        for &vi in &self.tenant_vms[ti as usize].clone() {
            let v = &mut self.vms[vi as usize];
            v.tb_bs = TokenBucket::new(b, s);
            v.tb_max = TokenBucket::new(bmax, self.cfg.mtu);
            v.per_dst.clear();
            v.rx_epoch_bytes = 0;
            v.app = VmApp::None;
        }
        if let Some(a) = self.audit.as_mut() {
            // The re-admitted tenant's buckets restarted full above; the
            // reference meters must agree or the first burst after
            // readmission would be a false conformance violation.
            let now = self.now;
            for &vi in &self.tenant_vms[ti as usize] {
                a.reset_vm(now, vi as usize);
            }
        }
        self.init_tenant_apps(ti as usize);
        if self.cfg.mode.paced() {
            self.update_tenant_hose(ti);
        }
    }

    /// The first planned fault whose realized window overlaps a message
    /// lifetime `[created, completed]` — the attribution recorded with a
    /// guarantee violation.
    fn attribute_fault(&self, created: Time, completed: Time) -> Option<u32> {
        let horizon = Time::ZERO + self.cfg.duration;
        for (i, e) in self.cfg.faults.events.iter().enumerate() {
            if let Some((ws, we)) = e.window(horizon) {
                if ws <= completed && created <= we {
                    return Some(i as u32);
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Driver
    // ------------------------------------------------------------------

    /// Run to completion and return the metrics.
    /// Debug introspection: (vm, dst, bucket rate bps) of every
    /// per-destination hose bucket (used by diagnostics binaries).
    pub fn debug_hose_rates(&self) -> Vec<(u32, u32, u64)> {
        let mut v = Vec::new();
        for (vi, vm) in self.vms.iter().enumerate() {
            for (&d, tb) in &vm.per_dst {
                v.push((vi as u32, d, tb.rate().as_bps()));
            }
        }
        v.sort_unstable();
        v
    }

    /// Debug introspection: (max_queued, at) per port (diagnostics).
    pub fn debug_port_peaks(&self) -> Vec<(u64, silo_base::Time)> {
        self.ports
            .iter()
            .map(|p| (p.max_queued, p.max_at))
            .collect()
    }

    /// Debug introspection: per-connection congestion state
    /// (conn, cwnd, ssthresh, srtt_us, in_recovery, delivered).
    pub fn debug_conns(&self) -> Vec<(u32, f64, f64, f64, bool, u64)> {
        self.conns
            .iter()
            .map(|c| {
                (
                    c.id,
                    c.cwnd,
                    c.ssthresh,
                    c.srtt.map(|d| d.as_us_f64()).unwrap_or(-1.0),
                    c.in_recovery,
                    c.delivered,
                )
            })
            .collect()
    }

    /// Debug introspection: run the simulation but hand back the Sim for
    /// post-mortem inspection alongside metrics.
    pub fn run_keep(mut self) -> (Metrics, Sim) {
        self.run_inner();
        let metrics = self.finish_metrics();
        (metrics, self)
    }

    pub fn run(mut self) -> Metrics {
        self.run_inner();
        self.finish_metrics()
    }

    fn run_inner(&mut self) {
        self.init_apps();
        if self.faults_on {
            let plan = self.cfg.faults.clone();
            for (i, e) in plan.events.iter().enumerate() {
                self.push(e.at, Ev::FaultStart(i as u32));
                if let Some(u) = e.until {
                    self.push(u, Ev::FaultEnd(i as u32));
                }
            }
        }
        let horizon = Time::ZERO + self.cfg.duration;
        if let Some(tel) = self.telemetry.as_mut() {
            tel.wall_start();
        }
        while let Some((t, ev)) = self.events.pop() {
            if t > horizon {
                break;
            }
            self.now = t;
            self.metrics.events_processed += 1;
            let kind = ev.kind() as usize;
            self.profile.fired[kind] += 1;
            // Sampled dispatch self-profile: every 64th event pays two
            // clock reads, attributed to the owning shard by the same map
            // that routes the event. Wall-clock only — never sim state.
            let ticked = self
                .telemetry
                .as_mut()
                .is_some_and(|tel| tel.dispatch_tick());
            let sample = ticked.then(|| {
                let shard = if self.sharded { self.ev_owner(&ev) } else { 0 };
                (shard, std::time::Instant::now())
            });
            match ev {
                Ev::Arrive(id) => self.on_arrive(id),
                Ev::PortFree(p) => self.on_port_free(p),
                Ev::NicPull { host, marker } => self.on_nic_pull(host, marker),
                Ev::Rto { conn, marker } => self.on_rto(conn, marker),
                Ev::EtcArrival { vm } => self.on_etc_arrival(vm),
                Ev::Oldi { tenant } => self.on_oldi(tenant),
                Ev::PoissonMsg { tenant, pair } => self.on_poisson_msg(tenant, pair),
                Ev::HoseEpoch => self.on_hose_epoch(),
                Ev::PaceResume { conn } => {
                    self.conns[conn as usize].pace_blocked = false;
                    self.try_send(conn);
                }
                Ev::BulkStart { src, dst, msg } => {
                    if !self.tenant_alive(self.vms[src as usize].tenant) {
                        continue;
                    }
                    let c = self.conn_for(src, dst);
                    self.app_write(c, msg, None, None);
                }
                Ev::FaultStart(i) => self.on_fault_start(i),
                Ev::FaultEnd(i) => self.on_fault_end(i),
            }
            if let Some((shard, t0)) = sample {
                let ns = t0.elapsed().as_nanos() as u64;
                if let Some(tel) = self.telemetry.as_mut() {
                    tel.dispatch_span(kind, shard, ns);
                }
            }
        }
        if let Some(tel) = self.telemetry.as_mut() {
            tel.wall_end();
        }
    }

    fn finish_metrics(&mut self) -> Metrics {
        let dur = self.cfg.duration;
        self.metrics.peak_event_queue = self.events.peak_len() as u64;
        self.metrics.profile = self.profile.clone();
        self.metrics.port_utilization = self
            .ports
            .iter()
            .take(self.topo.num_ports()) // loopback vswitch ports excluded
            .map(|p| p.utilization(dur))
            .collect();
        self.metrics.drops = self.ports.iter().map(|p| p.drops).sum();
        self.metrics.port_drops = self
            .ports
            .iter()
            .take(self.topo.num_ports())
            .map(|p| p.drops)
            .collect();
        self.metrics.port_max_queue = self
            .ports
            .iter()
            .take(self.topo.num_ports())
            .map(|p| p.max_queued)
            .collect();
        // Goodput per tenant from connection delivery counters.
        for g in self.metrics.goodput.iter_mut() {
            *g = 0;
        }
        for c in &self.conns {
            self.metrics.goodput[c.tenant as usize] += c.goodput_bytes;
        }
        if self.faults_on {
            let horizon = Time::ZERO + dur;
            self.metrics.fault_windows = self
                .cfg
                .faults
                .events
                .iter()
                .enumerate()
                .filter_map(|(i, e)| {
                    e.window(horizon).map(|(start, end)| FaultWindow {
                        fault: i as u32,
                        label: e.kind.label(),
                        start,
                        end,
                    })
                })
                .collect();
        }
        // Token-bucket conservation: any over-spend the pacer's checked
        // invariant recorded surfaces here (must stay zero).
        self.metrics.token_violations = self
            .vms
            .iter()
            .map(|v| {
                v.tb_bs.violations()
                    + v.tb_max.violations()
                    + v.per_dst.values().map(|b| b.violations()).sum::<u64>()
            })
            .sum();
        if let Some(a) = self.audit.as_mut() {
            let early: u64 = self.nics.iter().map(|n| n.batcher.early_releases()).sum();
            self.metrics.audit = Some(a.finish(early));
        }
        if self.trace.is_some() || self.telemetry.is_some() {
            // Port labels: switch/NIC ports first (matching PortId), then
            // the per-host vswitch loopbacks appended by `Sim::new`.
            let mut labels: Vec<String> = (0..self.topo.num_ports())
                .map(|i| {
                    if self.topo.port(PortId(i as u32)).is_nic {
                        format!("nic_p{i}")
                    } else {
                        format!("sw_p{i}")
                    }
                })
                .collect();
            for h in 0..self.topo.num_hosts() {
                labels.push(format!("lo_h{h}"));
            }
            if let Some(ts) = self.trace.take() {
                self.metrics.trace = Some(ts.finish(
                    labels.clone(),
                    self.metrics.fault_windows.clone(),
                    self.tenants.len(),
                ));
            }
            if let Some(tel) = self.telemetry.take() {
                let qprof = self.events.profile();
                self.metrics.telemetry =
                    Some(tel.finish(labels, &self.metrics.fault_windows, qprof));
            }
        }
        self.metrics.clone()
    }
}
