//! Deterministic fault injection: a pre-declared plan of link/port
//! failures, hypervisor-pacer clock anomalies, and tenant churn that the
//! engine executes as ordinary events.
//!
//! The plan is *data*, fixed before the run starts: every fault instant,
//! duration and target is explicit, so two runs with the same config,
//! seed and plan replay the same schedule bit-for-bit — the same
//! determinism contract the rest of the simulator keeps. An empty plan
//! pushes no events and leaves every output byte-identical to a build
//! without this module.
//!
//! What each fault does is documented on [`FaultKind`]; how the placement
//! layer reacts (budget reclaim, re-validation, downgrade to best-effort)
//! lives in `silo-placement`'s `degrade` module.

use silo_base::Time;

/// One class of injected failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Both directed ports of a link go dark (cable pull, line-card
    /// death). Queued and newly-arriving packets at the dead ports are
    /// black-holed and attributed to this fault; the tree has no
    /// alternate paths, so senders see pure loss until restoration.
    LinkDown { link: u32 },
    /// One *directed* port stops forwarding (unidirectional failure —
    /// e.g. a dead laser). The reverse direction keeps working, which is
    /// exactly the asymmetry that makes these hard to debug in practice.
    PortDown { port: u32 },
    /// The host's pacing timer stops firing for the window: stamped
    /// batches accumulate in the hypervisor and drain only when the
    /// timer recovers (a vCPU preemption / SoftNIC stall).
    PacerStall { host: u32 },
    /// The host's pacing clock runs slow by `factor` (≥ 1.0) for the
    /// window: every timer the pacer arms lands `factor×` late, widening
    /// inter-batch gaps without stopping the NIC outright.
    PacerDrift { host: u32, factor: f64 },
    /// The tenant departs: its workload stops, unsent data is abandoned,
    /// and in-flight traffic is never acknowledged. With a restoration
    /// instant (`until`), the tenant is re-admitted there with fresh
    /// transport and pacer state.
    TenantDown { tenant: u16 },
    /// The tenant arrives (or is re-admitted): its workload starts at
    /// this instant. A tenant whose *first* churn event is a `TenantUp`
    /// does not start at t = 0 — it joins the cell mid-run.
    TenantUp { tenant: u16 },
}

impl FaultKind {
    /// Stable display/serialization label, e.g. `link_down(3)`.
    pub fn label(&self) -> String {
        match *self {
            FaultKind::LinkDown { link } => format!("link_down({link})"),
            FaultKind::PortDown { port } => format!("port_down({port})"),
            FaultKind::PacerStall { host } => format!("pacer_stall({host})"),
            FaultKind::PacerDrift { host, factor } => {
                format!("pacer_drift({host},{factor})")
            }
            FaultKind::TenantDown { tenant } => format!("tenant_down({tenant})"),
            FaultKind::TenantUp { tenant } => format!("tenant_up({tenant})"),
        }
    }
}

/// One scheduled fault: strikes at `at`, heals at `until` (`None` =
/// permanent, or not meaningful for the kind).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub at: Time,
    pub until: Option<Time>,
    pub kind: FaultKind,
}

impl FaultEvent {
    /// The fault's realized window within a run of length `horizon`:
    /// `[at, min(until, horizon)]`. `None` if it never strikes.
    pub fn window(&self, horizon: Time) -> Option<(Time, Time)> {
        if self.at > horizon {
            return None;
        }
        let end = self.until.map_or(horizon, |u| u.min(horizon));
        Some((self.at, end))
    }
}

/// The full fault schedule of one run. Build with the fluent helpers:
///
/// ```
/// use silo_simnet::FaultPlan;
/// use silo_base::Time;
///
/// let plan = FaultPlan::new()
///     .link_down(Time::from_ms(5), Some(Time::from_ms(9)), 3)
///     .tenant_churn(1, Time::from_ms(2), Time::from_ms(7));
/// assert_eq!(plan.events.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// No faults scheduled — the engine skips all fault machinery.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn push(mut self, at: Time, until: Option<Time>, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at, until, kind });
        self
    }

    /// Kill a link at `at`; restore it at `until` (or never).
    pub fn link_down(self, at: Time, until: Option<Time>, link: u32) -> FaultPlan {
        self.push(at, until, FaultKind::LinkDown { link })
    }

    /// Kill one directed port at `at`; restore it at `until` (or never).
    pub fn port_down(self, at: Time, until: Option<Time>, port: u32) -> FaultPlan {
        self.push(at, until, FaultKind::PortDown { port })
    }

    /// Stall a host's pacer timer for `[at, until)`.
    pub fn pacer_stall(self, at: Time, until: Time, host: u32) -> FaultPlan {
        self.push(at, Some(until), FaultKind::PacerStall { host })
    }

    /// Slow a host's pacer clock by `factor` for `[at, until)`.
    pub fn pacer_drift(self, at: Time, until: Time, host: u32, factor: f64) -> FaultPlan {
        self.push(at, Some(until), FaultKind::PacerDrift { host, factor })
    }

    /// Tenant departs at `down` and is re-admitted at `up`.
    pub fn tenant_churn(self, tenant: u16, down: Time, up: Time) -> FaultPlan {
        self.push(down, Some(up), FaultKind::TenantDown { tenant })
    }

    /// Tenant departs at `at` and never returns.
    pub fn tenant_down(self, at: Time, tenant: u16) -> FaultPlan {
        self.push(at, None, FaultKind::TenantDown { tenant })
    }

    /// Tenant joins the run at `at` (deferred start / re-admission).
    pub fn tenant_up(self, at: Time, tenant: u16) -> FaultPlan {
        self.push(at, None, FaultKind::TenantUp { tenant })
    }

    /// Tenants whose first churn event is an arrival: they must not start
    /// their workload at t = 0.
    pub fn deferred_tenants(&self) -> Vec<u16> {
        let mut first: std::collections::BTreeMap<u16, (Time, bool)> =
            std::collections::BTreeMap::new();
        for e in &self.events {
            let (t, up) = match e.kind {
                FaultKind::TenantUp { tenant } => (tenant, true),
                FaultKind::TenantDown { tenant } => (tenant, false),
                _ => continue,
            };
            let entry = first.entry(t).or_insert((e.at, up));
            if e.at < entry.0 {
                *entry = (e.at, up);
            }
        }
        first
            .into_iter()
            .filter_map(|(t, (_, up))| up.then_some(t))
            .collect()
    }

    /// Panic on a structurally invalid plan (out-of-range targets, empty
    /// windows, a stall without an end). Called by `Sim::new`.
    pub fn validate(&self, num_links: usize, num_ports: usize, num_hosts: usize, tenants: usize) {
        for e in &self.events {
            if let Some(u) = e.until {
                assert!(u > e.at, "fault window must be non-empty: {e:?}");
            }
            match e.kind {
                FaultKind::LinkDown { link } => {
                    assert!((link as usize) < num_links, "link out of range: {e:?}");
                }
                FaultKind::PortDown { port } => {
                    assert!((port as usize) < num_ports, "port out of range: {e:?}");
                }
                FaultKind::PacerStall { host } => {
                    assert!((host as usize) < num_hosts, "host out of range: {e:?}");
                    assert!(e.until.is_some(), "a pacer stall needs an end: {e:?}");
                }
                FaultKind::PacerDrift { host, factor } => {
                    assert!((host as usize) < num_hosts, "host out of range: {e:?}");
                    assert!(e.until.is_some(), "a pacer drift needs an end: {e:?}");
                    assert!(factor >= 1.0, "drift factor must be >= 1: {e:?}");
                }
                FaultKind::TenantDown { tenant } => {
                    assert!((tenant as usize) < tenants, "tenant out of range: {e:?}");
                }
                FaultKind::TenantUp { tenant } => {
                    assert!((tenant as usize) < tenants, "tenant out of range: {e:?}");
                    assert!(e.until.is_none(), "tenant_up has no window: {e:?}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_clamp_to_horizon() {
        let e = FaultEvent {
            at: Time::from_ms(5),
            until: Some(Time::from_ms(50)),
            kind: FaultKind::LinkDown { link: 0 },
        };
        assert_eq!(
            e.window(Time::from_ms(20)),
            Some((Time::from_ms(5), Time::from_ms(20)))
        );
        assert_eq!(
            e.window(Time::from_ms(100)),
            Some((Time::from_ms(5), Time::from_ms(50)))
        );
        let late = FaultEvent {
            at: Time::from_ms(30),
            ..e
        };
        assert_eq!(late.window(Time::from_ms(20)), None);
    }

    #[test]
    fn deferred_tenants_are_first_up() {
        let plan = FaultPlan::new()
            .tenant_up(Time::from_ms(3), 2)
            .tenant_churn(1, Time::from_ms(1), Time::from_ms(4))
            .tenant_up(Time::from_ms(9), 1);
        // Tenant 2 joins mid-run; tenant 1's first event is a departure,
        // so it starts normally at t = 0.
        assert_eq!(plan.deferred_tenants(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn empty_window_rejected() {
        FaultPlan::new()
            .link_down(Time::from_ms(5), Some(Time::from_ms(5)), 0)
            .validate(4, 8, 2, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_link_rejected() {
        FaultPlan::new()
            .link_down(Time::from_ms(5), None, 99)
            .validate(4, 8, 2, 1);
    }
}
