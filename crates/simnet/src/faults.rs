//! Deterministic fault injection: a pre-declared plan of link/port
//! failures, hypervisor-pacer clock anomalies, and tenant churn that the
//! engine executes as ordinary events.
//!
//! The plan is *data*, fixed before the run starts: every fault instant,
//! duration and target is explicit, so two runs with the same config,
//! seed and plan replay the same schedule bit-for-bit — the same
//! determinism contract the rest of the simulator keeps. An empty plan
//! pushes no events and leaves every output byte-identical to a build
//! without this module.
//!
//! What each fault does is documented on [`FaultKind`]; how the placement
//! layer reacts (budget reclaim, re-validation, downgrade to best-effort)
//! lives in `silo-placement`'s `degrade` module.

use rand::rngs::StdRng;
use rand::Rng;
use silo_base::{json, Json, Time};

/// One class of injected failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Both directed ports of a link go dark (cable pull, line-card
    /// death). Queued and newly-arriving packets at the dead ports are
    /// black-holed and attributed to this fault; the tree has no
    /// alternate paths, so senders see pure loss until restoration.
    LinkDown { link: u32 },
    /// One *directed* port stops forwarding (unidirectional failure —
    /// e.g. a dead laser). The reverse direction keeps working, which is
    /// exactly the asymmetry that makes these hard to debug in practice.
    PortDown { port: u32 },
    /// The host's pacing timer stops firing for the window: stamped
    /// batches accumulate in the hypervisor and drain only when the
    /// timer recovers (a vCPU preemption / SoftNIC stall).
    PacerStall { host: u32 },
    /// The host's pacing clock runs slow by `factor` (≥ 1.0) for the
    /// window: every timer the pacer arms lands `factor×` late, widening
    /// inter-batch gaps without stopping the NIC outright.
    PacerDrift { host: u32, factor: f64 },
    /// The tenant departs: its workload stops, unsent data is abandoned,
    /// and in-flight traffic is never acknowledged. With a restoration
    /// instant (`until`), the tenant is re-admitted there with fresh
    /// transport and pacer state.
    TenantDown { tenant: u16 },
    /// The tenant arrives (or is re-admitted): its workload starts at
    /// this instant. A tenant whose *first* churn event is a `TenantUp`
    /// does not start at t = 0 — it joins the cell mid-run.
    TenantUp { tenant: u16 },
}

impl FaultKind {
    /// Stable display/serialization label, e.g. `link_down(3)`.
    pub fn label(&self) -> String {
        match *self {
            FaultKind::LinkDown { link } => format!("link_down({link})"),
            FaultKind::PortDown { port } => format!("port_down({port})"),
            FaultKind::PacerStall { host } => format!("pacer_stall({host})"),
            FaultKind::PacerDrift { host, factor } => {
                format!("pacer_drift({host},{factor})")
            }
            FaultKind::TenantDown { tenant } => format!("tenant_down({tenant})"),
            FaultKind::TenantUp { tenant } => format!("tenant_up({tenant})"),
        }
    }
}

/// One scheduled fault: strikes at `at`, heals at `until` (`None` =
/// permanent, or not meaningful for the kind).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub at: Time,
    pub until: Option<Time>,
    pub kind: FaultKind,
}

impl FaultEvent {
    /// The fault's realized window within a run of length `horizon`:
    /// `[at, min(until, horizon)]`. `None` if it never strikes.
    pub fn window(&self, horizon: Time) -> Option<(Time, Time)> {
        if self.at > horizon {
            return None;
        }
        let end = self.until.map_or(horizon, |u| u.min(horizon));
        Some((self.at, end))
    }
}

/// The full fault schedule of one run. Build with the fluent helpers:
///
/// ```
/// use silo_simnet::FaultPlan;
/// use silo_base::Time;
///
/// let plan = FaultPlan::new()
///     .link_down(Time::from_ms(5), Some(Time::from_ms(9)), 3)
///     .tenant_churn(1, Time::from_ms(2), Time::from_ms(7));
/// assert_eq!(plan.events.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// No faults scheduled — the engine skips all fault machinery.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn push(mut self, at: Time, until: Option<Time>, kind: FaultKind) -> FaultPlan {
        self.events.push(FaultEvent { at, until, kind });
        self
    }

    /// Kill a link at `at`; restore it at `until` (or never).
    pub fn link_down(self, at: Time, until: Option<Time>, link: u32) -> FaultPlan {
        self.push(at, until, FaultKind::LinkDown { link })
    }

    /// Kill one directed port at `at`; restore it at `until` (or never).
    pub fn port_down(self, at: Time, until: Option<Time>, port: u32) -> FaultPlan {
        self.push(at, until, FaultKind::PortDown { port })
    }

    /// Stall a host's pacer timer for `[at, until)`.
    pub fn pacer_stall(self, at: Time, until: Time, host: u32) -> FaultPlan {
        self.push(at, Some(until), FaultKind::PacerStall { host })
    }

    /// Slow a host's pacer clock by `factor` for `[at, until)`.
    pub fn pacer_drift(self, at: Time, until: Time, host: u32, factor: f64) -> FaultPlan {
        self.push(at, Some(until), FaultKind::PacerDrift { host, factor })
    }

    /// Tenant departs at `down` and is re-admitted at `up`.
    pub fn tenant_churn(self, tenant: u16, down: Time, up: Time) -> FaultPlan {
        self.push(down, Some(up), FaultKind::TenantDown { tenant })
    }

    /// Tenant departs at `at` and never returns.
    pub fn tenant_down(self, at: Time, tenant: u16) -> FaultPlan {
        self.push(at, None, FaultKind::TenantDown { tenant })
    }

    /// Tenant joins the run at `at` (deferred start / re-admission).
    pub fn tenant_up(self, at: Time, tenant: u16) -> FaultPlan {
        self.push(at, None, FaultKind::TenantUp { tenant })
    }

    /// Tenants whose first churn event is an arrival: they must not start
    /// their workload at t = 0.
    pub fn deferred_tenants(&self) -> Vec<u16> {
        let mut first: std::collections::BTreeMap<u16, (Time, bool)> =
            std::collections::BTreeMap::new();
        for e in &self.events {
            let (t, up) = match e.kind {
                FaultKind::TenantUp { tenant } => (tenant, true),
                FaultKind::TenantDown { tenant } => (tenant, false),
                _ => continue,
            };
            let entry = first.entry(t).or_insert((e.at, up));
            if e.at < entry.0 {
                *entry = (e.at, up);
            }
        }
        first
            .into_iter()
            .filter_map(|(t, (_, up))| up.then_some(t))
            .collect()
    }

    /// Panic on a structurally invalid plan (out-of-range targets,
    /// inverted windows, a stall without an end). Called by `Sim::new`.
    ///
    /// Zero-length windows (`until == at`) are *valid*: the fault strikes
    /// and heals at the same instant (start is dispatched before end —
    /// push order breaks the tie), which the schedule explorer generates
    /// when it shrinks a window to nothing. Only inverted windows reject.
    pub fn validate(&self, num_links: usize, num_ports: usize, num_hosts: usize, tenants: usize) {
        for e in &self.events {
            if let Some(u) = e.until {
                assert!(u >= e.at, "fault window must not be inverted: {e:?}");
            }
            match e.kind {
                FaultKind::LinkDown { link } => {
                    assert!((link as usize) < num_links, "link out of range: {e:?}");
                }
                FaultKind::PortDown { port } => {
                    assert!((port as usize) < num_ports, "port out of range: {e:?}");
                }
                FaultKind::PacerStall { host } => {
                    assert!((host as usize) < num_hosts, "host out of range: {e:?}");
                    assert!(e.until.is_some(), "a pacer stall needs an end: {e:?}");
                }
                FaultKind::PacerDrift { host, factor } => {
                    assert!((host as usize) < num_hosts, "host out of range: {e:?}");
                    assert!(e.until.is_some(), "a pacer drift needs an end: {e:?}");
                    assert!(factor >= 1.0, "drift factor must be >= 1: {e:?}");
                }
                FaultKind::TenantDown { tenant } => {
                    assert!((tenant as usize) < tenants, "tenant out of range: {e:?}");
                }
                FaultKind::TenantUp { tenant } => {
                    assert!((tenant as usize) < tenants, "tenant out of range: {e:?}");
                    assert!(e.until.is_none(), "tenant_up has no window: {e:?}");
                }
            }
        }
    }
}

/// Structural bounds of one simulation cell: how many links, directed
/// ports, hosts and tenants a plan may target, and the run horizon its
/// instants must fall inside. The schedule explorer generates, mutates
/// and sanitizes plans against these; [`Sim::new`](crate::Sim) enforces
/// the same ranges via [`FaultPlan::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanBounds {
    pub num_links: usize,
    pub num_ports: usize,
    pub num_hosts: usize,
    pub tenants: usize,
    /// Fault instants are clamped into `[0, horizon]`.
    pub horizon: Time,
}

impl PlanBounds {
    /// Bounds of a cell built from `topo` with `tenants` tenants running
    /// for `horizon`.
    pub fn of(topo: &silo_topology::Topology, tenants: usize, horizon: Time) -> PlanBounds {
        PlanBounds {
            num_links: topo.num_links(),
            num_ports: topo.num_ports(),
            num_hosts: topo.num_hosts(),
            tenants,
            horizon,
        }
    }
}

/// Version tag of the replayable fault-schedule interchange format.
pub const FAULTPLAN_FORMAT: &str = "silo-faultplan-v1";

impl FaultKind {
    /// Stable serialization name (the `kind` field of the JSON format).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::LinkDown { .. } => "link_down",
            FaultKind::PortDown { .. } => "port_down",
            FaultKind::PacerStall { .. } => "pacer_stall",
            FaultKind::PacerDrift { .. } => "pacer_drift",
            FaultKind::TenantDown { .. } => "tenant_down",
            FaultKind::TenantUp { .. } => "tenant_up",
        }
    }

    /// The link/port/host/tenant index this fault targets.
    pub fn target(&self) -> u32 {
        match *self {
            FaultKind::LinkDown { link } => link,
            FaultKind::PortDown { port } => port,
            FaultKind::PacerStall { host } => host,
            FaultKind::PacerDrift { host, .. } => host,
            FaultKind::TenantDown { tenant } => tenant as u32,
            FaultKind::TenantUp { tenant } => tenant as u32,
        }
    }
}

impl FaultPlan {
    /// Serialize to the versioned `silo-faultplan-v1` JSON format: a
    /// header object with one event object per line. Deterministic and
    /// exact (times in integer picoseconds, the drift factor in Rust's
    /// shortest round-trip formatting): two plans are equal **iff** their
    /// dumps are byte-identical, and [`FaultPlan::from_json`] recovers
    /// the plan exactly — the round-trip property the explorer's corpus
    /// and the regression suite rely on.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96 * self.events.len() + 64);
        out.push_str(&format!("{{\"format\":\"{FAULTPLAN_FORMAT}\",\"events\":["));
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "{{\"at_ps\":{},\"until_ps\":{},\"kind\":\"{}\",\"target\":{}",
                e.at.0,
                e.until.map_or("null".to_string(), |u| u.0.to_string()),
                e.kind.name(),
                e.kind.target(),
            ));
            if let FaultKind::PacerDrift { factor, .. } = e.kind {
                // `json::fmt_f64` pins the emission contract (shortest
                // round-trip, `-0.0` keeps its sign, subnormals exact) so
                // byte-determinism of plan dumps survives writer changes.
                out.push_str(&format!(",\"factor\":{}", json::fmt_f64(factor)));
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parse a `silo-faultplan-v1` document. Structural errors (wrong
    /// format tag, missing fields, unknown kinds) are reported with the
    /// offending event index; range checking against a cell stays with
    /// [`FaultPlan::validate`].
    pub fn from_json(text: &str) -> Result<FaultPlan, String> {
        let doc = Json::parse(text.trim_end())?;
        match doc.get("format").and_then(Json::as_str) {
            Some(FAULTPLAN_FORMAT) => {}
            other => return Err(format!("not a {FAULTPLAN_FORMAT} file (format: {other:?})")),
        }
        let events = doc
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("no events array")?;
        let mut plan = FaultPlan::new();
        for (i, e) in events.iter().enumerate() {
            let at = Time(
                e.get("at_ps")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("event {i}: missing integer at_ps"))?,
            );
            let until = match e.get("until_ps") {
                None => return Err(format!("event {i}: missing until_ps")),
                Some(Json::Null) => None,
                Some(v) => Some(Time(v.as_u64().ok_or_else(|| {
                    format!("event {i}: until_ps must be null or an integer")
                })?)),
            };
            let target = e
                .get("target")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event {i}: missing integer target"))?;
            let kind = match e.get("kind").and_then(Json::as_str) {
                Some("link_down") => FaultKind::LinkDown {
                    link: target as u32,
                },
                Some("port_down") => FaultKind::PortDown {
                    port: target as u32,
                },
                Some("pacer_stall") => FaultKind::PacerStall {
                    host: target as u32,
                },
                Some("pacer_drift") => FaultKind::PacerDrift {
                    host: target as u32,
                    factor: e
                        .get("factor")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("event {i}: pacer_drift needs a factor"))?,
                },
                Some("tenant_down") => FaultKind::TenantDown {
                    tenant: target as u16,
                },
                Some("tenant_up") => FaultKind::TenantUp {
                    tenant: target as u16,
                },
                other => return Err(format!("event {i}: unknown kind {other:?}")),
            };
            plan.events.push(FaultEvent { at, until, kind });
        }
        Ok(plan)
    }

    /// Coerce an arbitrary (e.g. freshly mutated) plan into one
    /// [`FaultPlan::validate`] accepts for a cell of shape `b`: instants
    /// clamped into `[0, horizon]`, inverted windows collapsed to
    /// zero-length, targets wrapped into range, kind-specific shape fixed
    /// (stalls/drifts get an end, `tenant_up` loses its window, drift
    /// factors clamped to `[1, 64]`). Events targeting a dimension the
    /// cell doesn't have (e.g. a link fault with `num_links == 0`) are
    /// dropped. Event order — and therefore the fault indices violations
    /// attribute to — is preserved for the survivors.
    pub fn sanitize(&self, b: &PlanBounds) -> FaultPlan {
        let horizon = b.horizon;
        let mut out = FaultPlan::new();
        for e in &self.events {
            let at = Time(e.at.0.min(horizon.0));
            let until = e.until.map(|u| Time(u.0.clamp(at.0, horizon.0)));
            let wrap = |t: u32, n: usize| -> Option<u32> { (n > 0).then(|| t % n as u32) };
            let kind = match e.kind {
                FaultKind::LinkDown { link } => match wrap(link, b.num_links) {
                    Some(link) => FaultKind::LinkDown { link },
                    None => continue,
                },
                FaultKind::PortDown { port } => match wrap(port, b.num_ports) {
                    Some(port) => FaultKind::PortDown { port },
                    None => continue,
                },
                FaultKind::PacerStall { host } => match wrap(host, b.num_hosts) {
                    Some(host) => FaultKind::PacerStall { host },
                    None => continue,
                },
                FaultKind::PacerDrift { host, factor } => match wrap(host, b.num_hosts) {
                    Some(host) => FaultKind::PacerDrift {
                        host,
                        factor: if factor.is_finite() {
                            factor.clamp(1.0, 64.0)
                        } else {
                            1.0
                        },
                    },
                    None => continue,
                },
                FaultKind::TenantDown { tenant } => match wrap(tenant as u32, b.tenants) {
                    Some(t) => FaultKind::TenantDown { tenant: t as u16 },
                    None => continue,
                },
                FaultKind::TenantUp { tenant } => match wrap(tenant as u32, b.tenants) {
                    Some(t) => FaultKind::TenantUp { tenant: t as u16 },
                    None => continue,
                },
            };
            // Kind-specific window shape (validate's other asserts).
            let until = match kind {
                FaultKind::PacerStall { .. } | FaultKind::PacerDrift { .. } => {
                    Some(until.unwrap_or(horizon))
                }
                FaultKind::TenantUp { .. } => None,
                _ => until,
            };
            out.events.push(FaultEvent { at, until, kind });
        }
        out
    }

    /// One random structure-preserving edit, AFL-style: shift a window,
    /// resize it, split it in two, merge two same-target windows, clone
    /// one onto an overlapping window, retarget, add a fresh event, or
    /// drop one. The result is [`FaultPlan::sanitize`]d, so it is always
    /// a plan `Sim::new` accepts for a cell of shape `b`. Deterministic:
    /// the same `rng` state produces the same mutant.
    pub fn mutate(&self, rng: &mut StdRng, b: &PlanBounds) -> FaultPlan {
        let mut plan = self.clone();
        let horizon = b.horizon.0.max(1);
        // Window nudges work at 1/16 of the horizon: big enough to move a
        // fault across batch/RTO timescales, small enough to stay local.
        let step = (horizon / 16).max(1);
        let op = if plan.events.is_empty() {
            6 // only "add" makes sense on an empty plan
        } else {
            rng.random_range(0..8u32)
        };
        match op {
            // Shift a whole window (start and end together).
            0 => {
                let i = rng.random_range(0..plan.events.len());
                let delta = rng.random_range(0..2 * step) as i128 - step as i128;
                let e = &mut plan.events[i];
                let at = (e.at.0 as i128 + delta).clamp(0, horizon as i128) as u64;
                let moved = at as i128 - e.at.0 as i128;
                e.at = Time(at);
                e.until = e
                    .until
                    .map(|u| Time((u.0 as i128 + moved).clamp(0, horizon as i128) as u64));
            }
            // Resize: move only the end (may collapse to zero-length).
            1 => {
                let i = rng.random_range(0..plan.events.len());
                let delta = rng.random_range(0..2 * step) as i128 - step as i128;
                let e = &mut plan.events[i];
                if let Some(u) = e.until {
                    e.until = Some(Time(
                        (u.0 as i128 + delta).clamp(e.at.0 as i128, horizon as i128) as u64,
                    ));
                }
            }
            // Split one window into two with a gap between the halves —
            // a kill/restore flap where one outage was.
            2 => {
                let i = rng.random_range(0..plan.events.len());
                let e = plan.events[i];
                if let Some(u) = e.until {
                    let span = u.0 - e.at.0;
                    if span >= 4 {
                        let cut = e.at.0 + rng.random_range(1..span);
                        let gap = rng.random_range(0..step.min(span));
                        plan.events[i].until = Some(Time(cut));
                        plan.events.push(FaultEvent {
                            at: Time((cut + gap).min(u.0)),
                            until: Some(u),
                            kind: e.kind,
                        });
                    }
                }
            }
            // Merge two windows of the same kind+target into one span.
            3 => {
                let i = rng.random_range(0..plan.events.len());
                let key = (plan.events[i].kind.name(), plan.events[i].kind.target());
                if let Some(j) = (0..plan.events.len()).find(|&j| {
                    j != i && (plan.events[j].kind.name(), plan.events[j].kind.target()) == key
                }) {
                    let (a, b2) = (plan.events[i], plan.events[j]);
                    let at = a.at.min(b2.at);
                    let until = match (a.until, b2.until) {
                        (Some(x), Some(y)) => Some(x.max(y)),
                        _ => None,
                    };
                    plan.events[i] = FaultEvent {
                        at,
                        until,
                        kind: a.kind,
                    };
                    plan.events.remove(j);
                }
            }
            // Clone an event onto an overlapping, jittered window —
            // overlapping kill/restore on the same target.
            4 => {
                let i = rng.random_range(0..plan.events.len());
                let e = plan.events[i];
                let jitter = rng.random_range(0..step);
                plan.events.push(FaultEvent {
                    at: Time((e.at.0 + jitter).min(horizon)),
                    until: e.until.map(|u| Time((u.0 + jitter).min(horizon))),
                    kind: e.kind,
                });
            }
            // Retarget within the same kind.
            5 => {
                let i = rng.random_range(0..plan.events.len());
                let t = rng.random_range(0..u32::MAX as u64) as u32;
                let e = &mut plan.events[i];
                e.kind = match e.kind {
                    FaultKind::LinkDown { .. } => FaultKind::LinkDown { link: t },
                    FaultKind::PortDown { .. } => FaultKind::PortDown { port: t },
                    FaultKind::PacerStall { .. } => FaultKind::PacerStall { host: t },
                    FaultKind::PacerDrift { factor, .. } => {
                        FaultKind::PacerDrift { host: t, factor }
                    }
                    FaultKind::TenantDown { .. } => FaultKind::TenantDown { tenant: t as u16 },
                    FaultKind::TenantUp { .. } => FaultKind::TenantUp { tenant: t as u16 },
                };
            }
            // Add a fresh random event.
            6 => {
                let at = Time(rng.random_range(0..horizon));
                let until = if rng.random_bool(0.75) {
                    // `at < horizon`, so the exclusive range is non-empty.
                    Some(Time(rng.random_range(at.0..horizon)))
                } else {
                    None
                };
                let t = rng.random_range(0..u32::MAX as u64) as u32;
                let kind = match rng.random_range(0..6u32) {
                    0 => FaultKind::LinkDown { link: t },
                    1 => FaultKind::PortDown { port: t },
                    2 => FaultKind::PacerStall { host: t },
                    3 => FaultKind::PacerDrift {
                        host: t,
                        factor: 1.0 + rng.random::<f64>() * 15.0,
                    },
                    4 => FaultKind::TenantDown { tenant: t as u16 },
                    _ => FaultKind::TenantUp { tenant: t as u16 },
                };
                plan.events.push(FaultEvent { at, until, kind });
            }
            // Drop one event.
            _ => {
                let i = rng.random_range(0..plan.events.len());
                plan.events.remove(i);
            }
        }
        plan.sanitize(b)
    }

    /// Shrink candidates for counterexample minimization, in preference
    /// order: fewest faults first (drop each event), then shortest
    /// windows (halve each span), then earliest strike (halve each
    /// offset, keeping the span — pulls the divergence toward t = 0),
    /// then tamest drift factors. Feed to
    /// `silo_base::prop::shrink_failure` with "the replayed schedule
    /// still fails" as the predicate.
    pub fn shrink_candidates(&self) -> Vec<FaultPlan> {
        let mut out = Vec::new();
        for i in 0..self.events.len() {
            let mut p = self.clone();
            p.events.remove(i);
            out.push(p);
        }
        for (i, e) in self.events.iter().enumerate() {
            if let Some(u) = e.until {
                let span = u.0 - e.at.0;
                if span > 0 {
                    let mut p = self.clone();
                    p.events[i].until = Some(Time(e.at.0 + span / 2));
                    out.push(p);
                }
            }
            if e.at.0 > 0 {
                let mut p = self.clone();
                let at = e.at.0 / 2;
                p.events[i].at = Time(at);
                p.events[i].until = e.until.map(|u| Time(u.0 - (e.at.0 - at)));
                out.push(p);
            }
            if let FaultKind::PacerDrift { host, factor } = e.kind {
                if factor > 1.0 {
                    let mut p = self.clone();
                    p.events[i].kind = FaultKind::PacerDrift {
                        host,
                        factor: 1.0 + (factor - 1.0) / 2.0,
                    };
                    out.push(p);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn windows_clamp_to_horizon() {
        let e = FaultEvent {
            at: Time::from_ms(5),
            until: Some(Time::from_ms(50)),
            kind: FaultKind::LinkDown { link: 0 },
        };
        assert_eq!(
            e.window(Time::from_ms(20)),
            Some((Time::from_ms(5), Time::from_ms(20)))
        );
        assert_eq!(
            e.window(Time::from_ms(100)),
            Some((Time::from_ms(5), Time::from_ms(50)))
        );
        let late = FaultEvent {
            at: Time::from_ms(30),
            ..e
        };
        assert_eq!(late.window(Time::from_ms(20)), None);
    }

    #[test]
    fn deferred_tenants_are_first_up() {
        let plan = FaultPlan::new()
            .tenant_up(Time::from_ms(3), 2)
            .tenant_churn(1, Time::from_ms(1), Time::from_ms(4))
            .tenant_up(Time::from_ms(9), 1);
        // Tenant 2 joins mid-run; tenant 1's first event is a departure,
        // so it starts normally at t = 0.
        assert_eq!(plan.deferred_tenants(), vec![2]);
    }

    #[test]
    fn zero_length_window_accepted() {
        // The explorer shrinks windows to nothing; strike-and-heal at one
        // instant is structurally valid.
        FaultPlan::new()
            .link_down(Time::from_ms(5), Some(Time::from_ms(5)), 0)
            .validate(4, 8, 2, 1);
    }

    #[test]
    #[should_panic(expected = "must not be inverted")]
    fn inverted_window_rejected() {
        FaultPlan::new()
            .link_down(Time::from_ms(5), Some(Time::from_ms(4)), 0)
            .validate(4, 8, 2, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_link_rejected() {
        FaultPlan::new()
            .link_down(Time::from_ms(5), None, 99)
            .validate(4, 8, 2, 1);
    }

    fn rich_plan() -> FaultPlan {
        FaultPlan::new()
            .link_down(Time::from_ms(5), Some(Time::from_ms(10)), 2)
            .port_down(Time::from_ms(1), None, 3)
            .pacer_stall(Time::from_ms(2), Time::from_ms(3), 0)
            .pacer_drift(Time::from_ms(4), Time::from_ms(6), 1, 7.3)
            .tenant_churn(0, Time::from_ms(7), Time::from_ms(8))
            .tenant_up(Time::from_ms(9), 1)
    }

    fn bounds() -> PlanBounds {
        PlanBounds {
            num_links: 4,
            num_ports: 8,
            num_hosts: 2,
            tenants: 2,
            horizon: Time::from_ms(20),
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let plan = rich_plan();
        let text = plan.to_json();
        assert!(text.contains(FAULTPLAN_FORMAT));
        let back = FaultPlan::from_json(&text).unwrap();
        assert_eq!(back, plan);
        // Byte-determinism: dump(parse(dump(p))) == dump(p).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn json_rejects_malformed_input() {
        assert!(FaultPlan::from_json("{}").is_err());
        assert!(FaultPlan::from_json("{\"format\":\"silo-trace-v1\"}").is_err());
        let bad_kind = "{\"format\":\"silo-faultplan-v1\",\"events\":[\n{\"at_ps\":0,\"until_ps\":null,\"kind\":\"meteor\",\"target\":0}\n]}";
        let err = FaultPlan::from_json(bad_kind).unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
        let frac = "{\"format\":\"silo-faultplan-v1\",\"events\":[\n{\"at_ps\":0.5,\"until_ps\":null,\"kind\":\"link_down\",\"target\":0}\n]}";
        assert!(FaultPlan::from_json(frac).is_err());
    }

    #[test]
    fn sanitize_yields_valid_plans() {
        let b = bounds();
        // Wild inputs: out-of-range targets, inverted window, missing
        // stall end, absurd drift factor, instants past the horizon.
        let wild = FaultPlan {
            events: vec![
                FaultEvent {
                    at: Time::from_ms(50),
                    until: Some(Time::from_ms(4)),
                    kind: FaultKind::LinkDown { link: 999 },
                },
                FaultEvent {
                    at: Time::from_ms(1),
                    until: None,
                    kind: FaultKind::PacerStall { host: 17 },
                },
                FaultEvent {
                    at: Time::from_ms(2),
                    until: Some(Time::from_ms(3)),
                    kind: FaultKind::PacerDrift {
                        host: 5,
                        factor: f64::INFINITY,
                    },
                },
                FaultEvent {
                    at: Time::from_ms(6),
                    until: Some(Time::from_ms(9)),
                    kind: FaultKind::TenantUp { tenant: 7 },
                },
            ],
        };
        let clean = wild.sanitize(&b);
        assert_eq!(clean.events.len(), 4);
        clean.validate(b.num_links, b.num_ports, b.num_hosts, b.tenants);
        // A plan with no valid dimension for an event drops it.
        let no_links = PlanBounds { num_links: 0, ..b };
        assert_eq!(wild.sanitize(&no_links).events.len(), 3);
    }

    #[test]
    fn mutants_always_validate_and_are_deterministic() {
        let b = bounds();
        let mut rng = StdRng::seed_from_u64(42);
        let mut plan = rich_plan();
        for _ in 0..200 {
            plan = plan.mutate(&mut rng, &b);
            plan.validate(b.num_links, b.num_ports, b.num_hosts, b.tenants);
        }
        // Same seed, same trajectory.
        let mut rng2 = StdRng::seed_from_u64(42);
        let mut plan2 = rich_plan();
        for _ in 0..200 {
            plan2 = plan2.mutate(&mut rng2, &b);
        }
        assert_eq!(plan, plan2);
        // Empty plans grow instead of panicking.
        let grown = FaultPlan::new().mutate(&mut rng, &b);
        grown.validate(b.num_links, b.num_ports, b.num_hosts, b.tenants);
    }

    #[test]
    fn shrink_candidates_are_simpler_and_valid() {
        let b = bounds();
        let plan = rich_plan();
        let cands = plan.shrink_candidates();
        assert!(!cands.is_empty());
        for c in &cands {
            // Shrinks of a sanitized plan stay valid (only drop, shorten,
            // advance, or tame events).
            c.sanitize(&b)
                .validate(b.num_links, b.num_ports, b.num_hosts, b.tenants);
            assert!(c.events.len() <= plan.events.len());
        }
        // Every single-event drop is offered: fewest-faults-first.
        assert!(
            cands
                .iter()
                .filter(|c| c.events.len() == plan.events.len() - 1)
                .count()
                >= plan.events.len()
        );
    }
}
