//! Simulation configuration: transport modes, tenant descriptions, and
//! the protocol constants of §6's experiments.

use crate::audit::AuditConfig;
use crate::faults::FaultPlan;
use crate::telemetry::TelemetryConfig;
use crate::trace::TraceConfig;
use silo_base::{Bytes, Dur, QueueBackend, Rate};
use silo_topology::HostId;

/// Which end-host datapath and switch features a run uses — the six
/// schemes compared in Figs. 12–14 and Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMode {
    /// Plain TCP NewReno, drop-tail switches.
    Tcp,
    /// DCTCP: ECN marking at `ecn_k`, fraction-based window reduction.
    Dctcp,
    /// HULL: DCTCP senders + phantom queues marking at `hull_gamma` of
    /// line rate.
    Hull,
    /// Silo: hypervisor pacing to `{B, S, Bmax}` with void-packet
    /// batching; TCP above the pacer.
    Silo,
    /// Oktopus-style rate enforcement: hose bandwidth only (burst of one
    /// packet), TCP above the limiter.
    Okto,
    /// Oktopus + Silo's burst allowance, but without burst-aware placement.
    OktoPlus,
}

impl TransportMode {
    /// Does the hypervisor pace VM traffic through token buckets?
    pub fn paced(self) -> bool {
        matches!(
            self,
            TransportMode::Silo | TransportMode::Okto | TransportMode::OktoPlus
        )
    }
    /// Do senders run DCTCP window logic?
    pub fn dctcp_sender(self) -> bool {
        matches!(self, TransportMode::Dctcp | TransportMode::Hull)
    }
    pub fn label(self) -> &'static str {
        match self {
            TransportMode::Tcp => "TCP",
            TransportMode::Dctcp => "DCTCP",
            TransportMode::Hull => "HULL",
            TransportMode::Silo => "Silo",
            TransportMode::Okto => "Okto",
            TransportMode::OktoPlus => "Okto+",
        }
    }
}

/// What a tenant's VMs do on the network.
#[derive(Debug, Clone)]
pub enum TenantWorkload {
    /// §6.1 tenant A: VM 0 runs a memcached server, all other VMs run ETC
    /// clients with `load` scaling the per-client arrival rate and
    /// `concurrency` outstanding transactions per client.
    Etc { load: f64, concurrency: usize },
    /// §6.1 tenant B: netperf — every VM keeps bulk messages of `msg`
    /// bytes in flight to every other VM (all-to-all shuffle).
    BulkAllToAll { msg: Bytes },
    /// §6.2 class A: at exponential intervals of mean `interval`, *all*
    /// VMs simultaneously send a message of mean size `msg_mean`
    /// (exponential) to VM 0 — the OLDI partition/aggregate pattern.
    OldiAllToOne { msg_mean: Bytes, interval: Dur },
    /// The worst-case *conformant* OLDI pattern: every `period`, all VMs
    /// simultaneously send exactly `msg` bytes to VM 0. Periodic spacing
    /// keeps the traffic inside the `{B, S}` arrival curve at both
    /// endpoints (pick `period ≥ (n−1)·msg/B`), which is the precondition
    /// of the paper's eq. 1 latency bound — use this to *verify* admission
    /// decisions, and the Poisson [`TenantWorkload::OldiAllToOne`] to
    /// *load* the network past them.
    OldiPeriodic { msg: Bytes, period: Dur },
    /// §6.3-style fixed pairs, each carrying Poisson messages of mean
    /// `msg_mean` every `interval` on average (used for class B and
    /// Permutation-x).
    PoissonPairs {
        pairs: Vec<(usize, usize)>,
        msg_mean: Bytes,
        interval: Dur,
    },
    /// No offered load (placement-only tenants).
    Idle,
}

/// One tenant in a simulation: its VM-to-host mapping (one entry per VM,
/// from a `silo-placement` placement), its Silo guarantee, and workload.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Host of each VM (VM index = position).
    pub vm_hosts: Vec<HostId>,
    /// Hose bandwidth guarantee `B` per VM.
    pub b: Rate,
    /// Burst allowance `S` per VM.
    pub s: Bytes,
    /// Burst rate cap `Bmax`.
    pub bmax: Rate,
    /// 802.1q priority: 0 = guaranteed, 1 = best-effort.
    pub prio: u8,
    /// Delay guarantee `d` (the fourth parameter of `{B, S, d, Bmax}`).
    /// When set, every completed message is checked against the §4.1
    /// latency bound and violations are recorded in `Metrics` —
    /// attributed to the overlapping injected fault if there is one.
    /// `None` (the default everywhere) disables the check entirely.
    pub delay: Option<Dur>,
    pub workload: TenantWorkload,
}

impl TenantSpec {
    /// The §4.1 message-latency bound this tenant's guarantee implies:
    /// `M/Bmax + d` for messages within the burst, else
    /// `S/Bmax + (M−S)/B + d`. `None` without a delay guarantee.
    pub fn latency_bound(&self, msg: Bytes) -> Option<Dur> {
        let d = self.delay?;
        Some(if msg <= self.s {
            self.bmax.tx_time(msg) + d
        } else {
            self.bmax.tx_time(self.s) + self.b.tx_time(msg - self.s) + d
        })
    }
}

/// Protocol and engine constants. Defaults follow the paper's setups;
/// every experiment binary can override.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub mode: TransportMode,
    /// Maximum wire frame (Ethernet MTU).
    pub mtu: Bytes,
    /// TCP/IP header overhead per segment; MSS = mtu − header.
    pub header: Bytes,
    /// Initial congestion window in segments.
    pub init_cwnd: u64,
    /// Congestion-window cap (the receive-window / send-buffer limit of a
    /// real stack; ns2-era datacenter stacks ran a few hundred KB, well
    /// matched to shallow-buffer 10 GbE paths).
    pub max_cwnd: Bytes,
    /// Minimum retransmission timeout. The paper's testbed TCP behaves
    /// like a stock stack (≈ 200 ms min RTO — hence the 217 ms spikes in
    /// Fig. 1); datacenter-tuned stacks use 10 ms.
    pub min_rto: Dur,
    /// DCTCP marking threshold K (bytes of instantaneous queue).
    pub ecn_k: Bytes,
    /// DCTCP gain g.
    pub dctcp_g: f64,
    /// HULL phantom-queue drain fraction γ.
    pub hull_gamma: f64,
    /// HULL phantom marking threshold.
    pub hull_thresh: Bytes,
    /// Paced-IO batch window (§5: 50 µs).
    pub batch_window: Dur,
    /// How far ahead of real time a connection may pre-stamp packets into
    /// the pacer. The hypervisor's per-VM TX queue is finite: without this
    /// backpressure, one connection could commit the shared `{B,S}` bucket
    /// megabytes ahead and starve the VM's other destinations.
    pub pace_horizon: Dur,
    /// Hose reallocation epoch for the pacer coordination.
    pub hose_epoch: Dur,
    /// Simulated duration.
    pub duration: Dur,
    /// Workload/tie-break seed.
    pub seed: u64,
    /// NIC FIFO depth for un-paced modes (TX ring + qdisc).
    pub nic_fifo: Bytes,
    /// Event-queue implementation. [`QueueBackend::Wheel`] (default) is
    /// the fast path; [`QueueBackend::Heap`] keeps the original
    /// `BinaryHeap` for differential testing and before/after
    /// benchmarking. Both dequeue in identical `(time, seq)` order, so
    /// results are bit-identical either way.
    pub queue: QueueBackend,
    /// Cancelable RTO / NIC-pull timers (slot-generation keys in
    /// `silo_base::eventq`). On (the default), a superseded timer is
    /// removed from the queue at re-arm time; off reproduces the original
    /// tombstone scheme exactly (stale events stay buried until they
    /// fire and are skipped by marker). Physical outputs
    /// ([`crate::Metrics::physics_json`]) are byte-identical either way —
    /// a cancelled event's dispatch was a provable no-op — so the off
    /// position is kept for the golden-equivalence suites and
    /// before/after benchmarking. Only engine counters differ
    /// (`events_processed`, `peak_event_queue`, the profile).
    pub cancel_timers: bool,
    /// Coalesced void emission: the batcher collapses each inter-packet
    /// gap's run of void frames into one [`silo_pacer::WireFrame`]
    /// carrying the run's total bytes and the gap boundary that drove the
    /// chunk math. On (the default), the NIC pull loop touches one frame
    /// per gap instead of one per 84 B–MTU chunk; observers re-expand the
    /// run into the exact per-chunk frames (`silo_pacer::VoidChunks`), so
    /// the wire schedule, the audit report and the flight-recorder log
    /// are byte-identical either way — the off position exists for the
    /// golden-equivalence suites and before/after benchmarking.
    pub coalesce_voids: bool,
    /// Idle-pacer fast-forward: skip the NIC pull that is provably going
    /// to find nothing due (queue drained, or the next stamp beyond the
    /// just-emitted batch) and arm directly at the instant the next batch
    /// can start; an enqueue that lowers that instant re-arms the pull
    /// (`Sim::ensure_pull`). Batch-emitting pulls fire at exactly the
    /// instants the eager scheme produces, so physical outputs are
    /// byte-identical — only the event counters move. For hosts that a
    /// fault plan targets with a pacer stall or drift window the
    /// fast-forward is disabled per host: stall/drift clamps are applied
    /// per armed pull, so eliding intermediate pulls on a *targeted* host
    /// would change where the clamp lands; untargeted hosts keep the
    /// fast path even under an active plan.
    pub elide_nic_pulls: bool,
    /// Within-cell partition count for the sharded engine. `1` (the
    /// default) is the serial engine; `> 1` splits the topology into
    /// rack-contiguous shards ([`silo_topology::PartitionMap`]) with one
    /// event queue each, merged under conservative time windows
    /// (lookahead = cut-link propagation delay). Outputs are
    /// byte-identical at every shard count — the global `(time, seq)`
    /// dispatch order is reproduced exactly, cross-partition packets ride
    /// window-barrier mailboxes. Clamped to the rack count.
    pub shards: u32,
    /// Worker threads for the sharded engine's window-prepare pass
    /// (`1` = everything on the caller thread). Thread count never
    /// affects outputs.
    pub shard_threads: usize,
    /// Injected failures ([`FaultPlan`]). Empty (the default) is a strict
    /// no-op: no events are scheduled and every metric is byte-identical
    /// to a run without the fault layer.
    pub faults: FaultPlan,
    /// Invariant auditing ([`AuditConfig`]). `None` (the default) skips
    /// every check; `Some` runs the full audit layer, which observes but
    /// never perturbs the simulation — physical outputs are byte-identical
    /// either way, and the results land in [`crate::Metrics::audit`].
    pub audit: Option<AuditConfig>,
    /// Flight-recorder tracing ([`TraceConfig`]). `None` (the default)
    /// records nothing; `Some` attaches per-host ring buffers capturing
    /// every packet lifecycle event, exported via
    /// [`crate::Metrics::trace`]. Same discipline as `audit`: pure
    /// observation, physical outputs byte-identical either way.
    pub trace: Option<TraceConfig>,
    /// Windowed telemetry ([`TelemetryConfig`]). `None` (the default)
    /// records nothing; `Some` samples per-tenant/per-port time series on
    /// a fixed sim-time grid plus a wall-clock engine self-profile,
    /// exported via [`crate::Metrics::telemetry`]. Same discipline as
    /// `audit`/`trace`: pure observation, physical outputs byte-identical
    /// either way.
    pub telemetry: Option<TelemetryConfig>,
    /// Cap on retained per-message records in [`crate::Metrics`]. `None`
    /// (the default) keeps every record — fine for experiment runs that
    /// post-process them, unbounded memory for long sweeps. `Some(cap)`
    /// keeps only the first `cap` records; the always-on per-tenant
    /// streaming histograms ([`crate::Metrics::latency_hist`]) and
    /// `messages_total` still see every message, so tail quantiles
    /// survive the cap. The cap changes only what is *retained*, never
    /// the physics.
    pub msg_record_cap: Option<usize>,
}

impl SimConfig {
    pub fn new(mode: TransportMode, duration: Dur, seed: u64) -> SimConfig {
        SimConfig {
            mode,
            mtu: Bytes(1500),
            header: Bytes(60),
            init_cwnd: 10,
            max_cwnd: Bytes::from_kb(512),
            min_rto: Dur::from_ms(10),
            ecn_k: Bytes(97_500), // 65 MTU packets, the DCTCP 10 GbE default
            dctcp_g: 1.0 / 16.0,
            hull_gamma: 0.95,
            hull_thresh: Bytes(6_000),
            batch_window: Dur::from_us(50),
            pace_horizon: Dur::from_ms(1),
            // EyeQ's rate-control loop operates at RTT timescales; a
            // slower loop lets un-throttled senders transiently overflow
            // a receiver's downlink before feedback kicks in.
            hose_epoch: Dur::from_us(200),
            duration,
            seed,
            // ~100 MTU packets, the ns2-era host DropTail queue scale. A
            // shared FIFO this shallow is exactly where an un-isolated
            // tenant's small messages die behind a bulk tenant's bursts.
            nic_fifo: Bytes::from_kb(150),
            queue: QueueBackend::default(),
            cancel_timers: true,
            coalesce_voids: true,
            elide_nic_pulls: true,
            shards: 1,
            shard_threads: 1,
            faults: FaultPlan::default(),
            audit: None,
            trace: None,
            telemetry: None,
            msg_record_cap: None,
        }
    }

    /// Stream payload per full segment.
    pub fn mss(&self) -> u64 {
        self.mtu.as_u64() - self.header.as_u64()
    }
}
