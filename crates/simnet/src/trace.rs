//! Flight-recorder tracing: bounded-memory per-packet lifecycle capture.
//!
//! A [`TraceSink`] is attached to the engine when `SimConfig::trace` is
//! set. It records one [`TraceEvent`] per packet lifecycle step — enqueue,
//! wire-start (with the head-of-line wait), NIC frame emission, pacer
//! token wait, delivery, drops, RTO spans, message completions — plus
//! fault edges, into fixed-capacity per-host ring buffers. When a ring is
//! full the *oldest* event is evicted (flight-recorder semantics: the
//! most recent history survives), so memory stays bounded no matter how
//! long the run is.
//!
//! **Zero-effect discipline** (same contract as `crate::audit`): the sink
//! is pure observation. It never mutates engine state, takes no
//! randomness, and schedules no events, so a traced run is byte-identical
//! to an untraced one (`tests/trace_identical.rs` asserts it across
//! transport modes and a faulted run, and `bench_simnet`'s trace phase
//! asserts it on the ns2 grid while measuring the wall-clock overhead).
//!
//! Every event gets a globally monotone sequence number at record time,
//! which gives the merged log a deterministic total order — the property
//! `silo-trace diff` relies on to report the *first* divergent event
//! between two runs.
//!
//! Ring attribution keeps one packet's whole lifecycle in one ring: every
//! event of a packet lands in the ring of the host that emitted it
//! (`src_host` for data, `dst_host` for ACKs), void frames land in their
//! NIC's host ring, and fault edges land in a small global ring.

use crate::metrics::FaultWindow;
use silo_base::{Dur, Time};
use std::collections::VecDeque;

/// Ring-buffer sizing for the flight recorder. Defaults keep a worst-case
/// full trace under ~5 MB per host (64 Ki events × 72 B) while holding
/// several batch windows of history at 10 GbE line rate — see DESIGN.md
/// for the sizing record.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Events retained per host ring (oldest evicted beyond this).
    pub per_host_cap: usize,
    /// Events retained in the global ring (fault edges).
    pub global_cap: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            per_host_cap: 65_536,
            global_cap: 4_096,
        }
    }
}

/// What a trace event marks. Span kinds carry a non-zero duration
/// (`dur` = the span length, `at` = its start); instant kinds have
/// `dur == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum TraceKind {
    /// Packet accepted into a port FIFO (`loc` = port, `aux` = queued
    /// bytes after the enqueue).
    Enqueue,
    /// Port begins transmitting a packet (span: `dur` = serialization
    /// time, `aux` = head-of-line wait in ps since its enqueue).
    WireStart,
    /// Paced NIC puts a data frame on the host wire (span; `loc` = host).
    NicData,
    /// Paced NIC puts a void frame on the host wire (span; `loc` = host).
    NicVoid,
    /// Pacer token-bucket wait: the stamp lies in the future (span from
    /// now to the stamp; `loc` = host, `aux` = VM).
    TokenWait,
    /// An RTO fired (span from arming to firing; `loc` = src host).
    RtoFire,
    /// Packet fully received at its destination (`loc` = host).
    Deliver,
    /// Application message completed (span from creation to delivery;
    /// `loc` = destination host, `size` = message bytes).
    MsgDone,
    /// Tail drop at a full port FIFO (`loc` = port, `aux` = queued bytes).
    DropTail,
    /// Packet black-holed by an injected fault (`loc` = port,
    /// `aux` = fault index).
    DropFault,
    /// An injected fault strikes (`loc` = fault index; global ring).
    FaultStart,
    /// An injected fault heals (`loc` = fault index; global ring).
    FaultEnd,
}

impl TraceKind {
    pub const COUNT: usize = 12;
    pub const ALL: [TraceKind; TraceKind::COUNT] = [
        TraceKind::Enqueue,
        TraceKind::WireStart,
        TraceKind::NicData,
        TraceKind::NicVoid,
        TraceKind::TokenWait,
        TraceKind::RtoFire,
        TraceKind::Deliver,
        TraceKind::MsgDone,
        TraceKind::DropTail,
        TraceKind::DropFault,
        TraceKind::FaultStart,
        TraceKind::FaultEnd,
    ];

    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Enqueue => "enqueue",
            TraceKind::WireStart => "wire_start",
            TraceKind::NicData => "nic_data",
            TraceKind::NicVoid => "nic_void",
            TraceKind::TokenWait => "token_wait",
            TraceKind::RtoFire => "rto_fire",
            TraceKind::Deliver => "deliver",
            TraceKind::MsgDone => "msg_done",
            TraceKind::DropTail => "drop_tail",
            TraceKind::DropFault => "drop_fault",
            TraceKind::FaultStart => "fault_start",
            TraceKind::FaultEnd => "fault_end",
        }
    }

    /// Spans render as Perfetto complete events; the rest as instants.
    pub fn is_span(self) -> bool {
        matches!(
            self,
            TraceKind::WireStart
                | TraceKind::NicData
                | TraceKind::NicVoid
                | TraceKind::TokenWait
                | TraceKind::RtoFire
                | TraceKind::MsgDone
        )
    }
}

/// What kind of wire object an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PktTag {
    Data,
    Ack,
    Void,
    /// Event not tied to a packet (faults, message completions).
    None,
}

impl PktTag {
    pub fn label(self) -> &'static str {
        match self {
            PktTag::Data => "data",
            PktTag::Ack => "ack",
            PktTag::Void => "void",
            PktTag::None => "none",
        }
    }
}

/// One recorded event. Flat and `Copy`; field meaning varies per
/// [`TraceKind`] (documented on the variants). `u32::MAX` / `u16::MAX`
/// mean "not applicable".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global record order (monotone across all rings).
    pub seq: u64,
    /// Event instant, or span start.
    pub at: Time,
    /// Span length (zero for instants).
    pub dur: Dur,
    pub kind: TraceKind,
    /// Location: port id, host id, or fault index (kind-dependent).
    pub loc: u32,
    /// Auxiliary value: queue depth, head-of-line wait (ps), VM id, or
    /// fault index (kind-dependent).
    pub aux: u64,
    /// Owning connection (`u32::MAX` when not packet-bound).
    pub conn: u32,
    /// Packet stream sequence (data: first stream byte; ack: cumulative).
    pub pseq: u64,
    /// Wire or message size in bytes.
    pub size: u64,
    /// Owning tenant (`u16::MAX` when not tenant-bound).
    pub tenant: u16,
    pub pk: PktTag,
    pub retx: bool,
}

pub const NO_CONN: u32 = u32::MAX;
pub const NO_TENANT: u16 = u16::MAX;

/// The packet-identity fields shared by every packet-bound event; the
/// engine resolves them once per hook (`Sim::trace_meta`).
#[derive(Debug, Clone, Copy)]
pub struct PktMeta {
    /// Ring attribution: the host that emitted this packet.
    pub host: u32,
    pub conn: u32,
    pub tenant: u16,
    pub pk: PktTag,
    pub pseq: u64,
    pub size: u64,
    pub retx: bool,
}

/// Fixed-capacity event ring: oldest evicted first.
#[derive(Debug, Clone)]
struct Ring {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            buf: VecDeque::with_capacity(cap.min(1024)),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

/// The flight recorder attached to a running simulation.
#[derive(Debug)]
pub struct TraceSink {
    rings: Vec<Ring>,
    global: Ring,
    next_seq: u64,
}

impl TraceSink {
    pub fn new(cfg: &TraceConfig, num_hosts: usize) -> TraceSink {
        TraceSink {
            rings: (0..num_hosts)
                .map(|_| Ring::new(cfg.per_host_cap))
                .collect(),
            global: Ring::new(cfg.global_cap),
            next_seq: 0,
        }
    }

    fn record(&mut self, host: Option<u32>, mut ev: TraceEvent) {
        ev.seq = self.next_seq;
        self.next_seq += 1;
        match host {
            Some(h) => self.rings[h as usize].push(ev),
            None => self.global.push(ev),
        }
    }

    fn pkt_event(
        kind: TraceKind,
        at: Time,
        dur: Dur,
        loc: u32,
        aux: u64,
        m: PktMeta,
    ) -> TraceEvent {
        TraceEvent {
            seq: 0,
            at,
            dur,
            kind,
            loc,
            aux,
            conn: m.conn,
            pseq: m.pseq,
            size: m.size,
            tenant: m.tenant,
            pk: m.pk,
            retx: m.retx,
        }
    }

    pub fn enqueue(&mut self, now: Time, port: u32, depth: u64, m: PktMeta) {
        let ev = Self::pkt_event(TraceKind::Enqueue, now, Dur::ZERO, port, depth, m);
        self.record(Some(m.host), ev);
    }

    pub fn drop_tail(&mut self, now: Time, port: u32, depth: u64, m: PktMeta) {
        let ev = Self::pkt_event(TraceKind::DropTail, now, Dur::ZERO, port, depth, m);
        self.record(Some(m.host), ev);
    }

    pub fn drop_fault(&mut self, now: Time, port: u32, fault: u32, m: PktMeta) {
        let ev = Self::pkt_event(TraceKind::DropFault, now, Dur::ZERO, port, fault as u64, m);
        self.record(Some(m.host), ev);
    }

    /// `tx` = serialization time, `wait` = head-of-line wait since the
    /// packet's enqueue at this port.
    pub fn wire_start(&mut self, now: Time, port: u32, tx: Dur, wait: Dur, m: PktMeta) {
        let ev = Self::pkt_event(TraceKind::WireStart, now, tx, port, wait.0, m);
        self.record(Some(m.host), ev);
    }

    /// A paced NIC data frame hits the host wire (`start`/`tx` from the
    /// batcher's wire schedule).
    pub fn nic_data(&mut self, start: Time, tx: Dur, m: PktMeta) {
        let ev = Self::pkt_event(TraceKind::NicData, start, tx, m.host, 0, m);
        self.record(Some(m.host), ev);
    }

    pub fn nic_void(&mut self, host: u32, start: Time, tx: Dur, size: u64) {
        let ev = TraceEvent {
            seq: 0,
            at: start,
            dur: tx,
            kind: TraceKind::NicVoid,
            loc: host,
            aux: 0,
            conn: NO_CONN,
            pseq: 0,
            size,
            tenant: NO_TENANT,
            pk: PktTag::Void,
            retx: false,
        };
        self.record(Some(host), ev);
    }

    /// The pacer stamped this packet `wait` into the future.
    pub fn token_wait(&mut self, now: Time, vm: u32, wait: Dur, m: PktMeta) {
        let ev = Self::pkt_event(TraceKind::TokenWait, now, wait, m.host, vm as u64, m);
        self.record(Some(m.host), ev);
    }

    /// An RTO fired: span from its arming instant to now.
    pub fn rto_fire(&mut self, armed: Time, now: Time, host: u32, conn: u32, tenant: u16) {
        let ev = TraceEvent {
            seq: 0,
            at: armed,
            dur: now.since(armed),
            kind: TraceKind::RtoFire,
            loc: host,
            aux: 0,
            conn,
            pseq: 0,
            size: 0,
            tenant,
            pk: PktTag::None,
            retx: false,
        };
        self.record(Some(host), ev);
    }

    /// Packet fully received at `arr_host` (its destination).
    pub fn deliver(&mut self, now: Time, arr_host: u32, m: PktMeta) {
        let ev = Self::pkt_event(TraceKind::Deliver, now, Dur::ZERO, arr_host, 0, m);
        self.record(Some(m.host), ev);
    }

    /// Application message completed: span from creation to delivery.
    pub fn msg_done(&mut self, created: Time, now: Time, host: u32, tenant: u16, size: u64) {
        let ev = TraceEvent {
            seq: 0,
            at: created,
            dur: now.since(created),
            kind: TraceKind::MsgDone,
            loc: host,
            aux: 0,
            conn: NO_CONN,
            pseq: 0,
            size,
            tenant,
            pk: PktTag::None,
            retx: false,
        };
        self.record(Some(host), ev);
    }

    /// A fault edge (global ring).
    pub fn fault(&mut self, now: Time, idx: u32, start: bool) {
        let kind = if start {
            TraceKind::FaultStart
        } else {
            TraceKind::FaultEnd
        };
        let ev = TraceEvent {
            seq: 0,
            at: now,
            dur: Dur::ZERO,
            kind,
            loc: idx,
            aux: 0,
            conn: NO_CONN,
            pseq: 0,
            size: 0,
            tenant: NO_TENANT,
            pk: PktTag::None,
            retx: false,
        };
        self.record(None, ev);
    }

    /// Events recorded so far (including later-evicted ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Merge the rings into the final log: all surviving events in global
    /// record order, plus bookkeeping for the exporters.
    pub fn finish(
        self,
        port_labels: Vec<String>,
        fault_windows: Vec<FaultWindow>,
        tenants: usize,
    ) -> TraceLog {
        let recorded = self.next_seq;
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut dropped = self.global.dropped;
        for r in &self.rings {
            dropped += r.dropped;
        }
        for r in self.rings {
            events.extend(r.buf);
        }
        events.extend(self.global.buf);
        // Record order is the deterministic total order of the trace.
        events.sort_unstable_by_key(|e| e.seq);
        // Ring accounting must balance: every event ever recorded either
        // survived in some ring or bumped that ring's eviction counter.
        // Fault drops recorded while rings are already evicting are the
        // easy way to break this silently, so it is checked at merge time
        // on every traced run rather than trusted by inspection.
        assert_eq!(
            events.len() as u64 + dropped,
            recorded,
            "trace ring accounting broken: retained + dropped != recorded"
        );
        TraceLog {
            events,
            recorded,
            dropped,
            port_labels,
            fault_windows,
            tenants,
        }
    }
}

/// A finished trace: the merged, seq-ordered event log plus the run
/// context the exporters need. Carried in `Metrics::trace` but — like
/// `profile` and `audit` — deliberately absent from both metric
/// serializations, so traced and untraced runs stay byte-comparable.
#[derive(Debug, Clone)]
pub struct TraceLog {
    /// Surviving events, sorted by `seq` (global record order).
    pub events: Vec<TraceEvent>,
    /// Total events ever recorded (`events.len() + dropped` — the ring
    /// accounting invariant, asserted when the rings are merged).
    pub recorded: u64,
    /// Events evicted from full rings (0 ⇒ the trace is complete).
    pub dropped: u64,
    /// Display label per port id (switch/NIC ports, then per-host
    /// loopbacks).
    pub port_labels: Vec<String>,
    /// Realized fault windows (for Perfetto markers).
    pub fault_windows: Vec<FaultWindow>,
    /// Number of tenants in the run (Perfetto track layout).
    pub tenants: usize,
}

impl TraceLog {
    /// Count of surviving events of one kind.
    pub fn count(&self, kind: TraceKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Compact deterministic JSONL dump: one header object, then one
    /// event object per line, all times exact integer picoseconds. This
    /// is the interchange format `silo-trace` consumes; two runs are
    /// identical iff their dumps are byte-identical.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(128 * self.events.len() + 256);
        out.push_str(&format!(
            "{{\"format\":\"silo-trace-v1\",\"events\":{},\"dropped\":{},\"tenants\":{}}}\n",
            self.events.len(),
            self.dropped,
            self.tenants
        ));
        for e in &self.events {
            out.push_str(&format!(
                "{{\"seq\":{},\"t_ps\":{},\"dur_ps\":{},\"kind\":\"{}\",\"loc\":{},\"aux\":{},\"conn\":{},\"pseq\":{},\"size\":{},\"tenant\":{},\"pkt\":\"{}\",\"retx\":{}}}\n",
                e.seq,
                e.at.0,
                e.dur.0,
                e.kind.label(),
                e.loc,
                e.aux,
                e.conn,
                e.pseq,
                e.size,
                e.tenant,
                e.pk.label(),
                e.retx,
            ));
        }
        out
    }

    /// Chrome/Perfetto `trace_event` JSON (load at `ui.perfetto.dev`).
    /// Track layout: pid 1 = fabric ports (one thread per port), pid 2 =
    /// host NICs (one thread per host), pid 3 = tenants (one thread per
    /// tenant, carrying message spans and RTO spans). Fault windows
    /// render as global instant markers. Timestamps are microseconds
    /// (the format's unit), emitted at fixed 6-decimal (= picosecond)
    /// precision so the export is deterministic.
    pub fn to_perfetto(&self) -> String {
        self.to_perfetto_with_counters(None)
    }

    /// Same export with a telemetry log's counter tracks (pid 4) spliced
    /// into the event stream — one file shows packet lifecycles and the
    /// windowed per-tenant goodput/margin series on a shared time axis.
    pub fn to_perfetto_with_counters(
        &self,
        telemetry: Option<&crate::telemetry::TelemetryLog>,
    ) -> String {
        fn us(t: u64) -> String {
            format!("{}.{:06}", t / 1_000_000, t % 1_000_000)
        }
        let mut out = String::with_capacity(192 * self.events.len() + 4096);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |out: &mut String, s: String| {
            if !std::mem::take(&mut first) {
                out.push_str(",\n");
            }
            out.push_str(&s);
        };
        for (pid, name) in [(1, "fabric ports"), (2, "host NICs"), (3, "tenants")] {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{name}\"}}}}"
                ),
            );
        }
        for (i, label) in self.port_labels.iter().enumerate() {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"args\":{{\"name\":\"{label}\"}}}}"
                ),
            );
        }
        for t in 0..self.tenants {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":3,\"tid\":{t},\"args\":{{\"name\":\"tenant {t}\"}}}}"
                ),
            );
        }
        for w in &self.fault_windows {
            for (edge, t) in [("start", w.start), ("end", w.end)] {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"fault {}: {} {edge}\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":1,\"tid\":0}}",
                        w.fault,
                        w.label,
                        us(t.0),
                    ),
                );
            }
        }
        for e in &self.events {
            let (pid, tid) = match e.kind {
                TraceKind::Enqueue
                | TraceKind::WireStart
                | TraceKind::DropTail
                | TraceKind::DropFault => (1, e.loc as usize),
                TraceKind::NicData | TraceKind::NicVoid | TraceKind::TokenWait => {
                    (2, e.loc as usize)
                }
                TraceKind::Deliver => (2, e.loc as usize),
                TraceKind::MsgDone | TraceKind::RtoFire => (3, e.tenant as usize),
                TraceKind::FaultStart | TraceKind::FaultEnd => (1, 0),
            };
            let name = match e.kind {
                TraceKind::NicData | TraceKind::NicVoid | TraceKind::WireStart => {
                    format!("{} {}", e.kind.label(), e.pk.label())
                }
                _ => e.kind.label().to_string(),
            };
            let args = format!(
                "{{\"seq\":{},\"conn\":{},\"pseq\":{},\"size\":{},\"tenant\":{},\"aux\":{},\"retx\":{}}}",
                e.seq, e.conn, e.pseq, e.size, e.tenant, e.aux, e.retx
            );
            if e.kind.is_span() {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{args}}}",
                        us(e.at.0),
                        us(e.dur.0),
                    ),
                );
            } else {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{args}}}",
                        us(e.at.0),
                    ),
                );
            }
        }
        if let Some(tel) = telemetry {
            tel.write_perfetto_counters(&mut out, &mut first);
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EvKind;

    fn mk(kind: TraceKind, seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            at: Time::from_us(seq),
            dur: Dur::ZERO,
            kind,
            loc: 0,
            aux: 0,
            conn: NO_CONN,
            pseq: 0,
            size: 0,
            tenant: NO_TENANT,
            pk: PktTag::None,
            retx: false,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(mk(TraceKind::Enqueue, i));
        }
        assert_eq!(r.dropped, 2);
        let seqs: Vec<u64> = r.buf.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "most recent history survives");
    }

    #[test]
    fn finish_merges_in_record_order() {
        let cfg = TraceConfig::default();
        let mut s = TraceSink::new(&cfg, 2);
        let m0 = PktMeta {
            host: 0,
            conn: 1,
            tenant: 0,
            pk: PktTag::Data,
            pseq: 0,
            size: 1500,
            retx: false,
        };
        let m1 = PktMeta { host: 1, ..m0 };
        s.enqueue(Time::from_us(1), 3, 1500, m0);
        s.enqueue(Time::from_us(2), 4, 1500, m1);
        s.fault(Time::from_us(3), 0, true);
        s.enqueue(Time::from_us(4), 3, 3000, m0);
        let log = s.finish(vec!["sw_p3".into(), "sw_p4".into()], Vec::new(), 1);
        let seqs: Vec<u64> = log.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3], "seq order survives the merge");
        assert_eq!(log.dropped, 0);
        assert_eq!(log.count(TraceKind::Enqueue), 3);
        assert_eq!(log.count(TraceKind::FaultStart), 1);
    }

    #[test]
    fn jsonl_is_line_per_event_with_header() {
        let cfg = TraceConfig::default();
        let mut s = TraceSink::new(&cfg, 1);
        s.fault(Time::from_ms(1), 2, true);
        let log = s.finish(Vec::new(), Vec::new(), 0);
        let txt = log.to_jsonl();
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"format\":\"silo-trace-v1\""));
        assert!(lines[1].contains("\"kind\":\"fault_start\""));
        assert!(lines[1].contains("\"t_ps\":1000000000"));
    }

    // ------------------------------------------------------------------
    // Exhaustiveness: every engine event kind must declare its trace
    // coverage, and every trace kind must have a label. Adding a variant
    // to either enum without updating these maps is a compile error in
    // this test — new engine events cannot silently ship untraced.
    // ------------------------------------------------------------------

    /// Which trace kinds each engine event class can emit (empty = the
    /// event is pure bookkeeping with no wire-visible effect of its own;
    /// its consequences surface through the packet-path events).
    fn trace_coverage(k: EvKind) -> &'static [TraceKind] {
        match k {
            EvKind::Arrive => &[
                TraceKind::Enqueue,
                TraceKind::DropTail,
                TraceKind::DropFault,
                TraceKind::Deliver,
                TraceKind::MsgDone,
            ],
            EvKind::PortFree => &[TraceKind::WireStart],
            EvKind::NicPull => &[TraceKind::NicData, TraceKind::NicVoid, TraceKind::DropFault],
            EvKind::Rto => &[TraceKind::RtoFire],
            // Workload generators emit through the send path.
            EvKind::EtcArrival => &[TraceKind::TokenWait, TraceKind::Enqueue],
            EvKind::Oldi => &[TraceKind::TokenWait, TraceKind::Enqueue],
            EvKind::PoissonMsg => &[TraceKind::TokenWait, TraceKind::Enqueue],
            EvKind::HoseEpoch => &[],
            EvKind::PaceResume => &[TraceKind::TokenWait, TraceKind::Enqueue],
            EvKind::BulkStart => &[TraceKind::TokenWait, TraceKind::Enqueue],
            EvKind::FaultStart => &[TraceKind::FaultStart, TraceKind::DropFault],
            EvKind::FaultEnd => &[TraceKind::FaultEnd],
        }
    }

    #[test]
    fn every_event_kind_declares_trace_coverage() {
        assert_eq!(EvKind::ALL.len(), EvKind::COUNT);
        for k in EvKind::ALL {
            // The match in trace_coverage is exhaustive (no wildcard);
            // calling it for every variant also exercises the labels.
            let _ = trace_coverage(k);
            assert!(!k.label().is_empty());
        }
        let mut labels: Vec<&str> = EvKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), EvKind::COUNT, "profile labels must be unique");
    }

    #[test]
    fn every_trace_kind_has_unique_label_and_span_class() {
        assert_eq!(TraceKind::ALL.len(), TraceKind::COUNT);
        let mut labels: Vec<&str> = TraceKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(
            labels.len(),
            TraceKind::COUNT,
            "trace labels must be unique"
        );
        // Spans and instants partition the kinds (is_span is exhaustive
        // by construction of the matches! list; this pins the split).
        let spans = TraceKind::ALL.iter().filter(|k| k.is_span()).count();
        assert_eq!(spans, 6);
    }

    #[test]
    fn perfetto_export_has_tracks_and_markers() {
        let cfg = TraceConfig::default();
        let mut s = TraceSink::new(&cfg, 1);
        let m = PktMeta {
            host: 0,
            conn: 0,
            tenant: 1,
            pk: PktTag::Data,
            pseq: 0,
            size: 1500,
            retx: false,
        };
        s.wire_start(Time::from_us(5), 2, Dur::from_ns(1200), Dur::ZERO, m);
        s.msg_done(Time::from_us(1), Time::from_us(9), 0, 1, 20_000);
        let log = s.finish(
            vec!["sw_p0".into()],
            vec![FaultWindow {
                fault: 0,
                label: "link_down(0)".into(),
                start: Time::from_ms(1),
                end: Time::from_ms(2),
            }],
            2,
        );
        let json = log.to_perfetto();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("fabric ports"));
        assert!(json.contains("tenant 1"));
        assert!(json.contains("fault 0: link_down(0) start"));
        assert!(json.contains("\"ph\":\"X\""));
        // 5 µs in exact microsecond fixed-point.
        assert!(json.contains("\"ts\":5.000000"));
    }
}
