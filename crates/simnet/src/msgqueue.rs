//! The Table 1 model: message latency of a single guaranteed sender.
//!
//! "To understand the interplay between the amount of guaranteed bandwidth
//! and message latency, we experiment with a synthetic application that
//! generates messages, with Poisson arrivals, between two VMs" (§2.3.1).
//! Messages of size `M` arrive at average offered bandwidth `B`; the VM is
//! *guaranteed* bandwidth `B_g` (a multiple of `B`), a burst allowance `S`
//! (a multiple of `M`), and a burst rate `Bmax`. A message is **late** when
//! its latency exceeds the §2.3.1 guarantee `M/B_g + d` — `d` delays every
//! message equally and cancels, so the model needs no network at all: all
//! queueing happens in the sender's token bucket.
//!
//! The message stream is serialized through the VM's bucket chain in MTU
//! chunks (exactly what the pacer does), so the latency of a message is
//! the departure time of its last chunk minus its arrival.

use rand::rngs::StdRng;
use silo_base::{exponential, Bytes, Dur, Rate, Time};
use silo_pacer::TokenBucket;

/// Configuration of one Table 1 cell.
#[derive(Debug, Clone, Copy)]
pub struct BurstStudy {
    /// Message size `M`.
    pub msg: Bytes,
    /// Average offered bandwidth `B`.
    pub avg_bw: Rate,
    /// Guaranteed bandwidth `B_g = multiple × B`.
    pub guaranteed_bw: Rate,
    /// Burst allowance `S` (a multiple of `M`).
    pub burst: Bytes,
    /// Burst rate `Bmax`.
    pub bmax: Rate,
    /// MTU used for chunking.
    pub mtu: Bytes,
}

impl BurstStudy {
    /// The §2.3.1 message-latency guarantee (`M/B_g`, eq. 1) net of the
    /// fixed delay `d`.
    pub fn latency_guarantee(&self) -> Dur {
        self.guaranteed_bw.tx_time(self.msg)
    }

    /// Simulate `n` Poisson messages; returns the fraction whose latency
    /// exceeds the guarantee.
    pub fn late_fraction(&self, n: usize, rng: &mut StdRng) -> f64 {
        let rate_msgs = self.avg_bw.as_bps() as f64 / self.msg.bits() as f64;
        let mut bucket = TokenBucket::new(self.guaranteed_bw, self.burst);
        let mut cap = TokenBucket::new(self.bmax, self.mtu);
        let guarantee = self.latency_guarantee();
        let mut now = Time::ZERO;
        // The sender is FIFO: a message starts after its predecessor's
        // last chunk departs.
        let mut prev_done = Time::ZERO;
        let mut late = 0usize;
        for _ in 0..n {
            now += Dur::from_secs_f64(exponential(rng, rate_msgs));
            let start = now.max(prev_done);
            let mut remaining = self.msg.as_u64();
            let mut done = start;
            while remaining > 0 {
                let chunk = Bytes(remaining.min(self.mtu.as_u64()));
                let t1 = bucket.earliest(done, chunk);
                let t2 = cap.earliest(done, chunk);
                let t = t1.max(t2);
                bucket.commit(t, chunk);
                cap.commit(t, chunk);
                // The chunk occupies the wire until its Bmax slot ends.
                done = t + self.bmax.tx_time(chunk);
                remaining -= chunk.as_u64();
            }
            prev_done = done;
            if done - now > guarantee {
                late += 1;
            }
        }
        late as f64 / n as f64
    }
}

/// One Table 1 sweep: rows = burst multiples, cols = bandwidth multiples.
pub fn table1(
    msg: Bytes,
    avg_bw: Rate,
    bw_multiples: &[f64],
    burst_multiples: &[u64],
    n: usize,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    burst_multiples
        .iter()
        .map(|&bm| {
            bw_multiples
                .iter()
                .map(|&wm| {
                    let study = BurstStudy {
                        msg,
                        avg_bw,
                        guaranteed_bw: avg_bw.mul_f64(wm),
                        burst: Bytes(msg.as_u64() * bm),
                        bmax: Rate::from_gbps(1),
                        mtu: Bytes(1500),
                    };
                    study.late_fraction(n, rng)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_base::seeded_rng;

    fn study(bw_mult: f64, burst_mult: u64) -> BurstStudy {
        let msg = Bytes::from_kb(15);
        BurstStudy {
            msg,
            avg_bw: Rate::from_mbps(100),
            guaranteed_bw: Rate::from_mbps(100).mul_f64(bw_mult),
            burst: Bytes(msg.as_u64() * burst_mult),
            bmax: Rate::from_gbps(1),
            mtu: Bytes(1500),
        }
    }

    #[test]
    fn average_bandwidth_with_single_burst_is_mostly_late() {
        // Table 1 top-left: guarantee = B, burst = M -> 99% late.
        let mut rng = seeded_rng(42);
        let late = study(1.0, 1).late_fraction(20_000, &mut rng);
        assert!(late > 0.9, "late fraction {late}");
    }

    #[test]
    fn generous_burst_and_bandwidth_is_rarely_late() {
        // Table 1 bottom-right region: 9M burst, 3B bandwidth -> ~0.
        let mut rng = seeded_rng(42);
        let late = study(3.0, 9).late_fraction(20_000, &mut rng);
        assert!(late < 0.005, "late fraction {late}");
    }

    #[test]
    fn paper_sweet_spot_7m_18b() {
        // "with a burst of 7 messages and 1.8x the average bandwidth, only
        // 0.09% messages are late" — we assert the same order of
        // magnitude (< 1%).
        let mut rng = seeded_rng(42);
        let late = study(1.8, 7).late_fraction(50_000, &mut rng);
        assert!(late < 0.01, "late fraction {late}");
    }

    #[test]
    fn late_fraction_monotone_in_burst() {
        let mut rng = seeded_rng(7);
        let l1 = study(1.4, 1).late_fraction(20_000, &mut rng);
        let l5 = study(1.4, 5).late_fraction(20_000, &mut rng);
        let l9 = study(1.4, 9).late_fraction(20_000, &mut rng);
        assert!(l1 > l5 && l5 >= l9, "{l1} {l5} {l9}");
    }

    #[test]
    fn late_fraction_monotone_in_bandwidth() {
        let mut rng = seeded_rng(8);
        let a = study(1.0, 3).late_fraction(20_000, &mut rng);
        let b = study(2.2, 3).late_fraction(20_000, &mut rng);
        assert!(a > b, "{a} vs {b}");
    }

    #[test]
    fn guarantee_is_size_over_guaranteed_bandwidth() {
        let s = study(2.0, 3);
        assert_eq!(
            s.latency_guarantee(),
            Rate::from_mbps(200).tx_time(Bytes::from_kb(15))
        );
    }
}
