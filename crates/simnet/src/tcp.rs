//! Per-connection TCP state: NewReno congestion control with DCTCP's
//! fraction-based reduction layered on top.
//!
//! The connection object holds pure protocol state; packet emission and
//! timers live in [`crate::sim`], which drives these methods. Keeping the
//! window logic free of simulator plumbing makes it unit-testable below.

use crate::packet::PathId;
use silo_base::{Dur, EvKey, Time};
use silo_topology::HostId;
use std::collections::VecDeque;

/// Sender-side message record (application message boundaries within the
/// byte stream).
#[derive(Debug, Clone)]
pub struct MsgBound {
    /// Stream byte at which this message ends.
    pub end: u64,
    pub size: u64,
    pub created: Time,
    /// Did an RTO fire while this message was outstanding?
    pub rto_hit: bool,
    /// If set, the receiver app responds with a message of this size,
    /// tagged with the same transaction id.
    pub respond: Option<u64>,
    /// Transaction id for request/response latency accounting.
    pub txn: Option<u64>,
}

/// Congestion-control numbers of one direction of a connection.
#[derive(Debug, Clone)]
pub struct TcpConn {
    pub id: u32,
    pub tenant: u16,
    pub src_vm: u32,
    pub dst_vm: u32,
    pub src_host: HostId,
    pub dst_host: HostId,
    pub prio: u8,
    pub path: PathId,
    /// Reverse path for ACKs.
    pub rpath: PathId,

    // ---- sender ----
    /// First unacknowledged stream byte.
    pub una: u64,
    /// Next stream byte to send.
    pub nxt: u64,
    /// Total bytes written by the application.
    pub wr_end: u64,
    /// Congestion window, bytes (f64: DCTCP scales fractionally).
    pub cwnd: f64,
    pub ssthresh: f64,
    pub dupacks: u32,
    pub in_recovery: bool,
    /// NewReno recovery point.
    pub recover: u64,
    /// Highest stream byte ever sent (for partial-ack logic).
    pub high_tx: u64,
    pub srtt: Option<Dur>,
    pub rttvar: Dur,
    pub rto_backoff: u32,
    /// Monotone marker invalidating stale RTO timer events (the tombstone
    /// scheme, kept as the semantic source of truth and exercised with
    /// `SimConfig::cancel_timers = false`).
    pub rto_marker: u32,
    /// Cancellation handle of the currently armed RTO event, when the
    /// engine runs with cancelable timers.
    pub rto_key: Option<EvKey>,
    /// When the currently armed RTO was set (read only by the flight
    /// recorder for RTO spans — never by the protocol logic).
    pub rto_armed_at: Time,
    /// Latest wire-departure stamp of any sent segment: the RTO clock
    /// starts here, not at the app write — hypervisor pacing delay is not
    /// network RTT (the guest's RTT estimator absorbs it in reality).
    pub last_depart: Time,
    /// A PaceResume event is pending (pacer backpressure).
    pub pace_blocked: bool,
    /// Highest sequence already hole-retransmitted in this recovery
    /// episode (avoid duplicating retransmissions on every dupack).
    pub retx_upto: u64,
    /// Send times of in-flight segments: (end_seq, sent_at, retransmitted).
    pub inflight_meta: VecDeque<(u64, Time, bool)>,
    pub rto_events: u64,

    // ---- DCTCP ----
    pub alpha: f64,
    pub ce_bytes: u64,
    pub acked_bytes: u64,
    pub dctcp_window_end: u64,

    // ---- receiver ----
    /// Cumulative bytes delivered in order.
    pub delivered: u64,
    /// Out-of-order intervals `(start, end)` sorted by start.
    pub ooo: Vec<(u64, u64)>,

    // ---- application ----
    /// Message boundaries (sender side, popped on completion at receiver).
    pub msgs: VecDeque<MsgBound>,
    /// Index (count) of messages already completed.
    pub msgs_done: u64,
    /// Bytes delivered in total (goodput accounting).
    pub goodput_bytes: u64,
}

pub const MIN_SSTHRESH_SEGS: f64 = 2.0;

impl TcpConn {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        tenant: u16,
        src_vm: u32,
        dst_vm: u32,
        src_host: HostId,
        dst_host: HostId,
        prio: u8,
        path: PathId,
        rpath: PathId,
        init_cwnd_bytes: f64,
    ) -> TcpConn {
        TcpConn {
            id,
            tenant,
            src_vm,
            dst_vm,
            src_host,
            dst_host,
            prio,
            path,
            rpath,
            una: 0,
            nxt: 0,
            wr_end: 0,
            cwnd: init_cwnd_bytes,
            ssthresh: f64::INFINITY,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            high_tx: 0,
            srtt: None,
            rttvar: Dur::ZERO,
            rto_backoff: 0,
            rto_marker: 0,
            rto_key: None,
            rto_armed_at: Time::ZERO,
            last_depart: Time::ZERO,
            pace_blocked: false,
            retx_upto: 0,
            inflight_meta: VecDeque::new(),
            rto_events: 0,
            alpha: 0.0,
            ce_bytes: 0,
            acked_bytes: 0,
            dctcp_window_end: 0,
            delivered: 0,
            ooo: Vec::new(),
            msgs: VecDeque::new(),
            msgs_done: 0,
            goodput_bytes: 0,
        }
    }

    pub fn flight(&self) -> u64 {
        self.nxt - self.una
    }

    pub fn has_unsent(&self) -> bool {
        self.nxt < self.wr_end
    }

    pub fn active(&self) -> bool {
        self.una < self.wr_end
    }

    /// Bytes the window permits sending right now — fractional. The
    /// window grows in sub-byte steps (congestion avoidance adds
    /// `mss·acked/cwnd`, DCTCP scales by `1 − α/2`), so the credit must
    /// stay `f64` until the final send decision: truncating the window
    /// to whole bytes first would silently discard the accumulated
    /// fraction each time it is read. Callers compare against the
    /// candidate payload (`avail < payload as f64` blocks the send).
    pub fn window_avail(&self) -> f64 {
        (self.cwnd.max(0.0) - self.flight() as f64).max(0.0)
    }

    /// Current RTO (RFC 6298 with a floor and binary backoff).
    pub fn rto(&self, min_rto: Dur) -> Dur {
        let base = match self.srtt {
            Some(srtt) => srtt + (self.rttvar * 4).max(Dur::from_ms(1)),
            None => Dur::from_ms(200),
        };
        base.max(min_rto) * (1u64 << self.rto_backoff.min(6))
    }

    /// RTT sample (Karn-filtered by the caller).
    pub fn on_rtt_sample(&mut self, rtt: Dur) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let diff = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = Dur::from_ps(
                    (self.rttvar.as_ps() as f64 * 0.75 + diff.as_ps() as f64 * 0.25) as u64,
                );
                self.srtt = Some(Dur::from_ps(
                    (srtt.as_ps() as f64 * 0.875 + rtt.as_ps() as f64 * 0.125) as u64,
                ));
            }
        }
    }

    /// Slow start / congestion avoidance growth on a new ack of
    /// `acked` bytes.
    pub fn grow_cwnd(&mut self, acked: u64, mss: f64) {
        if self.in_recovery {
            return;
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += acked as f64;
        } else {
            self.cwnd += mss * (acked as f64 / self.cwnd).min(1.0);
        }
    }

    /// Fast retransmit entry: halve (Reno) and mark recovery.
    pub fn enter_recovery(&mut self, mss: f64) {
        self.ssthresh = (self.flight() as f64 / 2.0).max(MIN_SSTHRESH_SEGS * mss);
        self.cwnd = self.ssthresh + 3.0 * mss;
        self.in_recovery = true;
        self.recover = self.high_tx;
    }

    /// DCTCP end-of-window update; returns true if the window should be
    /// scaled by `(1 − α/2)`.
    pub fn dctcp_window_rollover(&mut self, g: f64, mss: f64) -> bool {
        if self.una < self.dctcp_window_end || self.acked_bytes == 0 {
            return false;
        }
        let f = self.ce_bytes as f64 / self.acked_bytes as f64;
        self.alpha = (1.0 - g) * self.alpha + g * f;
        let marked = self.ce_bytes > 0;
        self.ce_bytes = 0;
        self.acked_bytes = 0;
        self.dctcp_window_end = self.nxt;
        if marked && !self.in_recovery {
            self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(MIN_SSTHRESH_SEGS * mss);
            self.ssthresh = self.cwnd;
            return true;
        }
        false
    }

    /// RTO: collapse to one segment.
    pub fn on_rto(&mut self, mss: f64) {
        self.ssthresh = (self.flight() as f64 / 2.0).max(MIN_SSTHRESH_SEGS * mss);
        self.cwnd = mss;
        self.in_recovery = false;
        self.dupacks = 0;
        self.rto_backoff = (self.rto_backoff + 1).min(8);
        self.rto_events += 1;
        // Everything in flight is presumed lost: rewind the send frontier
        // (go-back-N).
        self.nxt = self.una;
        self.retx_upto = 0;
        self.high_tx = self.high_tx.max(self.nxt);
        self.inflight_meta.clear();
        // Mark the oldest incomplete message as RTO-affected.
        for m in self.msgs.iter_mut() {
            if m.end > self.una {
                m.rto_hit = true;
                break;
            }
        }
    }

    /// Receiver-side reassembly: account a segment `[seq, seq+len)`;
    /// returns the *previous* delivered mark so the caller can detect
    /// message completions.
    pub fn receive_segment(&mut self, seq: u64, len: u64) -> u64 {
        let prev = self.delivered;
        let end = seq + len;
        if end <= self.delivered {
            return prev; // duplicate
        }
        // Insert/merge into the OOO set.
        self.ooo.push((seq.max(self.delivered), end));
        self.ooo.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.ooo.len());
        for &(s, e) in self.ooo.iter() {
            if let Some(last) = merged.last_mut() {
                if s <= last.1 {
                    last.1 = last.1.max(e);
                    continue;
                }
            }
            merged.push((s, e));
        }
        self.ooo = merged;
        // Advance the cumulative mark.
        while let Some(&(s, e)) = self.ooo.first() {
            if s <= self.delivered {
                self.delivered = self.delivered.max(e);
                self.ooo.remove(0);
            } else {
                break;
            }
        }
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn() -> TcpConn {
        TcpConn::new(
            0,
            0,
            0,
            1,
            HostId(0),
            HostId(1),
            0,
            PathId(0),
            PathId(0),
            14_400.0,
        )
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut c = conn();
        let mss = 1440.0;
        let start = c.cwnd;
        // Acking a full window in slow start doubles cwnd.
        c.grow_cwnd(start as u64, mss);
        assert!((c.cwnd - 2.0 * start).abs() < 1.0);
    }

    #[test]
    fn congestion_avoidance_adds_one_mss_per_rtt() {
        let mut c = conn();
        let mss = 1440.0;
        c.ssthresh = 10_000.0;
        c.cwnd = 20_000.0;
        let before = c.cwnd;
        // Ack a whole window in MSS chunks.
        let mut acked = 0.0;
        while acked < before {
            c.grow_cwnd(1440, mss);
            acked += 1440.0;
        }
        assert!((c.cwnd - before - mss).abs() < mss * 0.1, "{}", c.cwnd);
    }

    #[test]
    fn recovery_halves_window() {
        let mut c = conn();
        c.una = 0;
        c.nxt = 100_000;
        c.high_tx = 100_000;
        c.cwnd = 100_000.0;
        c.enter_recovery(1440.0);
        assert!(c.in_recovery);
        assert_eq!(c.recover, 100_000);
        assert!((c.ssthresh - 50_000.0).abs() < 1.0);
    }

    #[test]
    fn rto_collapses_to_one_segment_and_rewinds() {
        let mut c = conn();
        c.una = 5_000;
        c.nxt = 50_000;
        c.high_tx = 50_000;
        c.cwnd = 80_000.0;
        c.msgs.push_back(MsgBound {
            end: 60_000,
            size: 60_000,
            created: Time::ZERO,
            rto_hit: false,
            respond: None,
            txn: None,
        });
        c.on_rto(1440.0);
        assert_eq!(c.cwnd, 1440.0);
        assert_eq!(c.nxt, 5_000, "go-back-N");
        assert_eq!(c.rto_events, 1);
        assert!(c.msgs[0].rto_hit);
        assert_eq!(c.rto_backoff, 1);
    }

    #[test]
    fn rto_backoff_doubles_timeout() {
        let mut c = conn();
        c.srtt = Some(Dur::from_ms(1));
        c.rttvar = Dur::from_us(100);
        let r0 = c.rto(Dur::from_ms(10));
        c.rto_backoff = 2;
        let r2 = c.rto(Dur::from_ms(10));
        assert_eq!(r2, r0 * 4);
    }

    #[test]
    fn dctcp_alpha_tracks_marks() {
        let mut c = conn();
        let g = 1.0 / 16.0;
        c.nxt = 10_000;
        c.dctcp_window_end = 0;
        // Window fully marked.
        c.una = 10_000;
        c.ce_bytes = 10_000;
        c.acked_bytes = 10_000;
        let cut = c.dctcp_window_rollover(g, 1440.0);
        assert!(cut);
        assert!((c.alpha - g).abs() < 1e-12);
        // Unmarked window decays alpha.
        c.una = 20_000;
        c.nxt = 20_000;
        c.dctcp_window_end = 15_000;
        c.ce_bytes = 0;
        c.acked_bytes = 10_000;
        let cut2 = c.dctcp_window_rollover(g, 1440.0);
        assert!(!cut2);
        assert!(c.alpha < g);
    }

    #[test]
    fn reassembly_in_order_and_ooo() {
        let mut c = conn();
        assert_eq!(c.receive_segment(0, 1000), 0);
        assert_eq!(c.delivered, 1000);
        // Gap: 2000..3000 held out of order.
        c.receive_segment(2000, 1000);
        assert_eq!(c.delivered, 1000);
        // Fill the gap: everything delivers.
        c.receive_segment(1000, 1000);
        assert_eq!(c.delivered, 3000);
        assert!(c.ooo.is_empty());
        // Duplicate is a no-op.
        c.receive_segment(500, 100);
        assert_eq!(c.delivered, 3000);
    }

    #[test]
    fn window_avail_keeps_fractional_credit() {
        let mut c = conn();
        let mss = 1440.0;
        // A window a hair under 2 MSS with 1 MSS in flight must block a
        // full-MSS send…
        c.cwnd = 2.0 * mss - 0.25;
        c.una = 0;
        c.nxt = 1440;
        assert!(c.window_avail() < mss);
        // …and exactly 2 MSS must allow it: the old `cwnd as u64`
        // truncation and the f64 comparison agree at integer boundaries.
        c.cwnd = 2.0 * mss;
        assert!(c.window_avail() >= mss);
        // Fractional growth accumulates instead of being re-floored away:
        // congestion avoidance adds mss²/cwnd per ACK (≈ 144 B here), so
        // 100 ACKs grow the window by several MSS (analytically
        // √(W₀² + 2·mss²·n) − W₀ ≈ 7.3 MSS), every step sub-MSS.
        c.cwnd = 10.0 * mss;
        c.ssthresh = 1.0; // force congestion avoidance
        let before = c.cwnd;
        for _ in 0..100 {
            c.grow_cwnd(1440, mss);
        }
        assert!(
            c.cwnd - before > 7.0 * mss,
            "fractional growth lost: {} -> {}",
            before,
            c.cwnd
        );
        // And the growth is visible through window_avail (no truncation).
        c.nxt = c.una;
        assert!((c.window_avail() - c.cwnd).abs() < 1e-9);
    }

    #[test]
    fn window_avail_never_negative() {
        let mut c = conn();
        c.cwnd = 1440.0;
        c.una = 0;
        c.nxt = 10_000; // flight far above the (collapsed) window
        assert_eq!(c.window_avail(), 0.0);
        c.cwnd = -5.0; // DCTCP arithmetic can transiently undershoot
        assert_eq!(c.window_avail(), 0.0);
    }

    #[test]
    fn rtt_estimator_converges() {
        let mut c = conn();
        for _ in 0..50 {
            c.on_rtt_sample(Dur::from_us(200));
        }
        let srtt = c.srtt.unwrap();
        assert!((srtt.as_us_f64() - 200.0).abs() < 1.0);
        assert!(c.rttvar < Dur::from_us(20));
    }
}
