//! Simulation results: per-message records and per-tenant aggregates.

use silo_base::{Dur, Summary, Time};

/// One completed application message.
#[derive(Debug, Clone, Copy)]
pub struct MsgRecord {
    pub tenant: u16,
    /// Stream bytes.
    pub size: u64,
    /// Creation (app write) to full delivery at the receiver.
    pub latency: Dur,
    /// An RTO fired while this message was outstanding.
    pub rto: bool,
    pub created: Time,
    /// Request→response round trip, recorded on the response completion
    /// of a transaction.
    pub txn_latency: Option<Dur>,
    /// Delivered over the vswitch loopback (sender and receiver VM on the
    /// same host) — excluded from network-latency analyses.
    pub same_host: bool,
}

/// Everything a run reports.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    pub messages: Vec<MsgRecord>,
    /// Per-tenant delivered stream bytes (goodput).
    pub goodput: Vec<u64>,
    /// Total packet drops at switch ports.
    pub drops: u64,
    /// Total RTO events.
    pub rtos: u64,
    /// Simulated duration.
    pub duration: Dur,
    /// Data bytes and void bytes put on host links (pacer accounting).
    pub wire_data_bytes: u64,
    pub wire_void_bytes: u64,
    /// Per-port utilization fractions (indexed by `PortId.0`).
    pub port_utilization: Vec<f64>,
    /// Per-port drop counts (indexed by `PortId.0`).
    pub port_drops: Vec<u64>,
    /// Per-port queue high-water marks in bytes (indexed by `PortId.0`) —
    /// directly comparable to the placement manager's backlog bounds.
    pub port_max_queue: Vec<u64>,
    /// Engine events dispatched inside the horizon (throughput
    /// denominator for events/sec reporting).
    pub events_processed: u64,
    /// High-water mark of the pending-event queue.
    pub peak_event_queue: u64,
}

impl Metrics {
    /// Message latencies of one tenant, in microseconds.
    pub fn latencies_us(&self, tenant: u16) -> Summary {
        let mut s = Summary::new();
        s.extend(
            self.messages
                .iter()
                .filter(|m| m.tenant == tenant)
                .map(|m| m.latency.as_us_f64()),
        );
        s
    }

    /// Transaction (request→response) latencies of one tenant, µs.
    pub fn txn_latencies_us(&self, tenant: u16) -> Summary {
        let mut s = Summary::new();
        s.extend(
            self.messages
                .iter()
                .filter(|m| m.tenant == tenant)
                .filter_map(|m| m.txn_latency.map(|d| d.as_us_f64())),
        );
        s
    }

    /// Exact canonical serialization of a run's results. Every field is
    /// emitted with a fixed order and an exact representation (times in
    /// integer picoseconds, floats via Rust's shortest round-trip
    /// formatting), so two runs produced the same results **iff** their
    /// serializations are byte-identical — the comparison the determinism
    /// tests rely on. Hand-rolled: the workspace is dependency-free.
    pub fn canonical_json(&self) -> String {
        let mut out = String::with_capacity(64 * self.messages.len() + 1024);
        out.push_str("{\"messages\":[");
        for (i, m) in self.messages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tenant\":{},\"size\":{},\"latency_ps\":{},\"rto\":{},\"created_ps\":{},\"txn_ps\":{},\"same_host\":{}}}",
                m.tenant,
                m.size,
                m.latency.0,
                m.rto,
                m.created.0,
                m.txn_latency.map_or("null".to_string(), |d| d.0.to_string()),
                m.same_host,
            ));
        }
        out.push_str("],");
        fn num_list<T: std::fmt::Debug>(out: &mut String, key: &str, xs: &[T]) {
            out.push_str(&format!("\"{key}\":["));
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{x:?}"));
            }
            out.push_str("],");
        }
        num_list(&mut out, "goodput", &self.goodput);
        out.push_str(&format!(
            "\"drops\":{},\"rtos\":{},\"duration_ps\":{},\"wire_data_bytes\":{},\"wire_void_bytes\":{},",
            self.drops, self.rtos, self.duration.0, self.wire_data_bytes, self.wire_void_bytes,
        ));
        num_list(&mut out, "port_utilization", &self.port_utilization);
        num_list(&mut out, "port_drops", &self.port_drops);
        num_list(&mut out, "port_max_queue", &self.port_max_queue);
        out.push_str(&format!(
            "\"events_processed\":{},\"peak_event_queue\":{}}}",
            self.events_processed, self.peak_event_queue,
        ));
        out
    }

    /// Per-tenant stats table.
    pub fn tenant_stats(&self, tenant: u16) -> TenantStats {
        let msgs: Vec<&MsgRecord> = self
            .messages
            .iter()
            .filter(|m| m.tenant == tenant)
            .collect();
        let total = msgs.len();
        let rto = msgs.iter().filter(|m| m.rto).count();
        TenantStats {
            tenant,
            messages: total,
            rto_messages: rto,
            goodput_bps: self
                .goodput
                .get(tenant as usize)
                .map(|&b| b as f64 * 8.0 / self.duration.as_secs_f64().max(1e-12))
                .unwrap_or(0.0),
        }
    }
}

/// Aggregate numbers for one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantStats {
    pub tenant: u16,
    pub messages: usize,
    pub rto_messages: usize,
    pub goodput_bps: f64,
}

impl TenantStats {
    /// Fraction of messages that suffered an RTO (Fig. 13's metric).
    pub fn rto_fraction(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.rto_messages as f64 / self.messages as f64
        }
    }
}
