//! Simulation results: per-message records and per-tenant aggregates.

use crate::audit::AuditReport;
use crate::telemetry::TelemetryLog;
use crate::trace::TraceLog;
use silo_base::{Dur, LogHistogram, Summary, Time};

/// Sub-bucket resolution of the per-tenant streaming latency histograms:
/// 32 sub-buckets per octave ⇒ quantile error ≤ 3.2%, ~15 KB per tenant.
pub const LATENCY_HIST_SUB_BITS: u32 = 5;

/// Event classes the engine dispatches, for profiling (one slot per
/// `sim::Ev` variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum EvKind {
    Arrive,
    PortFree,
    NicPull,
    Rto,
    EtcArrival,
    Oldi,
    PoissonMsg,
    HoseEpoch,
    PaceResume,
    BulkStart,
    FaultStart,
    FaultEnd,
}

impl EvKind {
    pub const COUNT: usize = 12;
    pub const ALL: [EvKind; EvKind::COUNT] = [
        EvKind::Arrive,
        EvKind::PortFree,
        EvKind::NicPull,
        EvKind::Rto,
        EvKind::EtcArrival,
        EvKind::Oldi,
        EvKind::PoissonMsg,
        EvKind::HoseEpoch,
        EvKind::PaceResume,
        EvKind::BulkStart,
        EvKind::FaultStart,
        EvKind::FaultEnd,
    ];

    pub fn label(self) -> &'static str {
        match self {
            EvKind::Arrive => "arrive",
            EvKind::PortFree => "port_free",
            EvKind::NicPull => "nic_pull",
            EvKind::Rto => "rto",
            EvKind::EtcArrival => "etc_arrival",
            EvKind::Oldi => "oldi",
            EvKind::PoissonMsg => "poisson_msg",
            EvKind::HoseEpoch => "hose_epoch",
            EvKind::PaceResume => "pace_resume",
            EvKind::BulkStart => "bulk_start",
            EvKind::FaultStart => "fault_start",
            EvKind::FaultEnd => "fault_end",
        }
    }
}

/// Per-event-kind accounting of what the engine did with its events:
/// `scheduled` were pushed into the queue, `fired` were dispatched,
/// `stale` were dispatched but discarded as superseded (tombstone timers
/// whose marker no longer matched — pure dispatch-loop waste), and
/// `cancelled` were removed from the queue before firing (disarmed RTOs,
/// superseded NIC pulls, under `SimConfig::cancel_timers`). The elision
/// layer's win is `cancelled` plus the drop in `stale`: every cancelled
/// timer is a tombstone the engine never had to store, cascade through
/// the wheel, pop, and dispatch into a no-op.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventProfile {
    pub scheduled: [u64; EvKind::COUNT],
    pub fired: [u64; EvKind::COUNT],
    pub stale: [u64; EvKind::COUNT],
    pub cancelled: [u64; EvKind::COUNT],
}

impl EventProfile {
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled.iter().sum()
    }
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }
    pub fn total_stale(&self) -> u64 {
        self.stale.iter().sum()
    }
    pub fn total_cancelled(&self) -> u64 {
        self.cancelled.iter().sum()
    }

    /// Log2 buckets of the per-kind `fired` counts (`0` for zero fires,
    /// else `1 + floor(log2 n)`), the event-shape component of the
    /// schedule explorer's coverage signature. Bucketing deliberately
    /// discards exact counts: a schedule is novel when it changes the
    /// *order of magnitude* of some event class (say, 10x more RTO
    /// fires), not when noise moves a counter by one.
    pub fn fired_buckets(&self) -> [u8; EvKind::COUNT] {
        let mut out = [0u8; EvKind::COUNT];
        for (b, &n) in out.iter_mut().zip(self.fired.iter()) {
            *b = if n == 0 { 0 } else { 1 + n.ilog2() as u8 };
        }
        out
    }

    /// Accumulate another run's counts (for sweep-wide reporting).
    pub fn merge(&mut self, other: &EventProfile) {
        for i in 0..EvKind::COUNT {
            self.scheduled[i] += other.scheduled[i];
            self.fired[i] += other.fired[i];
            self.stale[i] += other.stale[i];
            self.cancelled[i] += other.cancelled[i];
        }
    }

    /// Aligned text table for `bench_simnet --profile`.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>14} {:>14} {:>14} {:>14}\n",
            "kind", "scheduled", "fired", "stale", "cancelled"
        ));
        for k in EvKind::ALL {
            let i = k as usize;
            if self.scheduled[i] + self.fired[i] + self.stale[i] + self.cancelled[i] == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<12} {:>14} {:>14} {:>14} {:>14}\n",
                k.label(),
                self.scheduled[i],
                self.fired[i],
                self.stale[i],
                self.cancelled[i]
            ));
        }
        out.push_str(&format!(
            "{:<12} {:>14} {:>14} {:>14} {:>14}\n",
            "total",
            self.total_scheduled(),
            self.total_fired(),
            self.total_stale(),
            self.total_cancelled()
        ));
        out
    }
}

/// One completed application message.
#[derive(Debug, Clone, Copy)]
pub struct MsgRecord {
    pub tenant: u16,
    /// Stream bytes.
    pub size: u64,
    /// Creation (app write) to full delivery at the receiver.
    pub latency: Dur,
    /// An RTO fired while this message was outstanding.
    pub rto: bool,
    pub created: Time,
    /// Request→response round trip, recorded on the response completion
    /// of a transaction.
    pub txn_latency: Option<Dur>,
    /// Delivered over the vswitch loopback (sender and receiver VM on the
    /// same host) — excluded from network-latency analyses.
    pub same_host: bool,
}

/// The realized window of one injected fault (clamped to the horizon).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// Index into the run's `FaultPlan::events`.
    pub fault: u32,
    /// Stable label from `FaultKind::label()` (e.g. `link_down(3)`).
    pub label: String,
    pub start: Time,
    pub end: Time,
}

/// One message that completed *outside* its tenant's `{B, S, d, Bmax}`
/// latency bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Violation {
    pub tenant: u16,
    /// The injected fault (plan index) whose window overlaps the
    /// message's lifetime, if any — `None` means the guarantee was broken
    /// with no fault active, which a healthy admission-controlled run
    /// must never produce.
    pub fault: Option<u32>,
    pub created: Time,
    pub completed: Time,
    pub latency: Dur,
    pub bound: Dur,
}

/// Everything a run reports.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    pub messages: Vec<MsgRecord>,
    /// Per-tenant delivered stream bytes (goodput).
    pub goodput: Vec<u64>,
    /// Total packet drops at switch ports.
    pub drops: u64,
    /// Total RTO events.
    pub rtos: u64,
    /// Simulated duration.
    pub duration: Dur,
    /// Data bytes and void bytes put on host links (pacer accounting).
    pub wire_data_bytes: u64,
    pub wire_void_bytes: u64,
    /// Per-port utilization fractions (indexed by `PortId.0`).
    pub port_utilization: Vec<f64>,
    /// Per-port drop counts (indexed by `PortId.0`).
    pub port_drops: Vec<u64>,
    /// Per-port queue high-water marks in bytes (indexed by `PortId.0`) —
    /// directly comparable to the placement manager's backlog bounds.
    pub port_max_queue: Vec<u64>,
    /// Engine events dispatched inside the horizon (throughput
    /// denominator for events/sec reporting).
    pub events_processed: u64,
    /// High-water mark of the pending-event queue.
    pub peak_event_queue: u64,
    /// Realized windows of the run's injected faults (empty without a
    /// fault plan).
    pub fault_windows: Vec<FaultWindow>,
    /// Packets black-holed by each fault, indexed like
    /// `FaultPlan::events` (empty without a fault plan).
    pub fault_drops: Vec<u64>,
    /// Messages delivered outside their tenant's latency bound, each
    /// attributed to the overlapping fault where one exists.
    pub violations: Vec<Violation>,
    /// Token-bucket conservation violations observed by the pacer's
    /// release-mode invariant check (see `silo_pacer::TokenBucket`).
    /// Always checked; any non-zero value is a pacer bug.
    pub token_violations: u64,
    /// Per-event-kind scheduled/fired/stale/cancelled counts. Engine
    /// introspection only: deliberately absent from both serializations
    /// below, so profiles may differ between equivalent engine
    /// configurations without breaking fingerprint comparisons.
    pub profile: EventProfile,
    /// Invariant-audit results; `Some` iff the run set `SimConfig::audit`.
    /// Like `profile`, deliberately absent from both serializations: the
    /// audit layer observes the run without becoming part of its
    /// fingerprint, so audited and unaudited runs stay byte-comparable.
    pub audit: Option<AuditReport>,
    /// Flight-recorder trace; `Some` iff the run set `SimConfig::trace`.
    /// Same serialization discipline as `audit`: never part of the
    /// fingerprint (it has its own exporters — see [`TraceLog`]).
    pub trace: Option<TraceLog>,
    /// Windowed telemetry; `Some` iff the run set `SimConfig::telemetry`.
    /// Same serialization discipline as `audit`/`trace`: never part of
    /// the fingerprint (it has its own exporters — see [`TelemetryLog`]).
    pub telemetry: Option<TelemetryLog>,
    /// Every message ever completed, including those dropped by
    /// `SimConfig::msg_record_cap`. Equals `messages.len()` when no cap
    /// is set. Excluded from the serializations (engine bookkeeping).
    pub messages_total: u64,
    /// Per-tenant streaming latency histograms (picoseconds), fed by
    /// *every* completed message regardless of `msg_record_cap`, so tail
    /// quantiles survive capped sweeps at bounded memory. Excluded from
    /// the serializations: the exact per-message records remain the
    /// fingerprint; these are derived observers.
    pub latency_hist: Vec<LogHistogram>,
}

impl Metrics {
    /// Record one completed message: always counted into `messages_total`
    /// and the tenant's streaming histogram; retained in `messages` only
    /// while under `cap` (`None` = unbounded, the historical behavior).
    /// With a cap the record vector is pre-sized exactly once, so the
    /// retained footprint is `cap × size_of::<MsgRecord>()` — the bound
    /// `tests` pin down — instead of a doubling-growth overshoot.
    pub fn record_message(&mut self, rec: MsgRecord, cap: Option<usize>) {
        self.messages_total += 1;
        if let Some(h) = self.latency_hist.get_mut(rec.tenant as usize) {
            h.record(rec.latency.0);
        }
        match cap {
            Some(c) => {
                if self.messages.len() < c {
                    if self.messages.capacity() < c.min(1 << 20) {
                        self.messages
                            .reserve_exact(c.min(1 << 20) - self.messages.len());
                    }
                    self.messages.push(rec);
                }
            }
            None => self.messages.push(rec),
        }
    }

    /// Bytes retained by per-message records and the streaming
    /// histograms — the quantity `msg_record_cap` bounds.
    pub fn retained_message_bytes(&self) -> usize {
        self.messages.capacity() * std::mem::size_of::<MsgRecord>()
            + self
                .latency_hist
                .iter()
                .map(|h| h.mem_bytes())
                .sum::<usize>()
    }

    /// One tenant's streaming latency histogram (picoseconds), if the
    /// run tracked that tenant.
    pub fn latency_hist(&self, tenant: u16) -> Option<&LogHistogram> {
        self.latency_hist.get(tenant as usize)
    }

    /// Message latencies of one tenant, in microseconds.
    pub fn latencies_us(&self, tenant: u16) -> Summary {
        let mut s = Summary::new();
        s.extend(
            self.messages
                .iter()
                .filter(|m| m.tenant == tenant)
                .map(|m| m.latency.as_us_f64()),
        );
        s
    }

    /// Transaction (request→response) latencies of one tenant, µs.
    pub fn txn_latencies_us(&self, tenant: u16) -> Summary {
        let mut s = Summary::new();
        s.extend(
            self.messages
                .iter()
                .filter(|m| m.tenant == tenant)
                .filter_map(|m| m.txn_latency.map(|d| d.as_us_f64())),
        );
        s
    }

    /// Exact canonical serialization of a run's results. Every field is
    /// emitted with a fixed order and an exact representation (times in
    /// integer picoseconds, floats via Rust's shortest round-trip
    /// formatting), so two runs produced the same results **iff** their
    /// serializations are byte-identical — the comparison the determinism
    /// tests rely on. Hand-rolled: the workspace is dependency-free.
    pub fn canonical_json(&self) -> String {
        self.serialize(true)
    }

    /// [`Metrics::canonical_json`] minus the engine bookkeeping counters
    /// (`events_processed`, `peak_event_queue`). Those counters describe
    /// how the engine *got* to the answer, not the answer: timer
    /// cancellation legitimately changes them while leaving every
    /// physical observable untouched. The golden-equivalence
    /// suites compare this serialization across engine configurations.
    pub fn physics_json(&self) -> String {
        self.serialize(false)
    }

    fn serialize(&self, engine_counters: bool) -> String {
        let mut out = String::with_capacity(64 * self.messages.len() + 1024);
        out.push_str("{\"messages\":[");
        for (i, m) in self.messages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tenant\":{},\"size\":{},\"latency_ps\":{},\"rto\":{},\"created_ps\":{},\"txn_ps\":{},\"same_host\":{}}}",
                m.tenant,
                m.size,
                m.latency.0,
                m.rto,
                m.created.0,
                m.txn_latency.map_or("null".to_string(), |d| d.0.to_string()),
                m.same_host,
            ));
        }
        out.push_str("],");
        fn num_list<T: std::fmt::Debug>(out: &mut String, key: &str, xs: &[T]) {
            out.push_str(&format!("\"{key}\":["));
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{x:?}"));
            }
            out.push_str("],");
        }
        num_list(&mut out, "goodput", &self.goodput);
        out.push_str(&format!(
            "\"drops\":{},\"rtos\":{},\"duration_ps\":{},\"wire_data_bytes\":{},\"wire_void_bytes\":{},",
            self.drops, self.rtos, self.duration.0, self.wire_data_bytes, self.wire_void_bytes,
        ));
        num_list(&mut out, "port_utilization", &self.port_utilization);
        num_list(&mut out, "port_drops", &self.port_drops);
        num_list(&mut out, "port_max_queue", &self.port_max_queue);
        if engine_counters {
            out.push_str(&format!(
                "\"events_processed\":{},\"peak_event_queue\":{}",
                self.events_processed, self.peak_event_queue,
            ));
        } else {
            // Drop the trailing comma `num_list` left; the optional fault
            // section below re-introduces its own separator.
            out.pop();
        }
        // Fault-layer fields are emitted only when present, so a run with
        // an empty `FaultPlan` (and a conservation-clean pacer) stays
        // byte-identical to the pre-fault-layer serialization.
        if !self.fault_windows.is_empty() || !self.violations.is_empty() {
            out.push_str(",\"fault_windows\":[");
            for (i, w) in self.fault_windows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"fault\":{},\"label\":\"{}\",\"start_ps\":{},\"end_ps\":{}}}",
                    w.fault, w.label, w.start.0, w.end.0,
                ));
            }
            out.push_str("],");
            num_list(&mut out, "fault_drops", &self.fault_drops);
            out.push_str("\"violations\":[");
            for (i, v) in self.violations.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"tenant\":{},\"fault\":{},\"created_ps\":{},\"completed_ps\":{},\"latency_ps\":{},\"bound_ps\":{}}}",
                    v.tenant,
                    v.fault.map_or("null".to_string(), |f| f.to_string()),
                    v.created.0,
                    v.completed.0,
                    v.latency.0,
                    v.bound.0,
                ));
            }
            out.push(']');
        }
        if self.token_violations > 0 {
            out.push_str(&format!(",\"token_violations\":{}", self.token_violations));
        }
        out.push('}');
        out
    }

    /// Per-tenant guarantee-violation windows, one merged `(fault, start,
    /// end)` interval set per attributed fault: the spans of wall-clock
    /// time during which the tenant's delivered messages were outside
    /// their bound. Overlapping or touching violation lifetimes with the
    /// same attribution merge into one window.
    pub fn violation_windows(&self, tenant: u16) -> Vec<(Option<u32>, Time, Time)> {
        let mut spans: Vec<(Option<u32>, Time, Time)> = self
            .violations
            .iter()
            .filter(|v| v.tenant == tenant)
            .map(|v| (v.fault, v.created, v.completed))
            .collect();
        spans.sort_by_key(|&(f, s, e)| (f, s, e));
        let mut merged: Vec<(Option<u32>, Time, Time)> = Vec::new();
        for (f, s, e) in spans {
            if let Some(last) = merged.last_mut() {
                if last.0 == f && s <= last.2 {
                    last.2 = last.2.max(e);
                    continue;
                }
            }
            merged.push((f, s, e));
        }
        merged
    }

    /// Violations of one tenant whose message lifetime began after `t`
    /// (e.g. after a fault healed — must be empty for a re-admitted
    /// tenant once the network recovers).
    pub fn violations_after(&self, tenant: u16, t: Time) -> usize {
        self.violations
            .iter()
            .filter(|v| v.tenant == tenant && v.created >= t)
            .count()
    }

    /// Per-tenant stats table.
    pub fn tenant_stats(&self, tenant: u16) -> TenantStats {
        let msgs: Vec<&MsgRecord> = self
            .messages
            .iter()
            .filter(|m| m.tenant == tenant)
            .collect();
        let total = msgs.len();
        let rto = msgs.iter().filter(|m| m.rto).count();
        TenantStats {
            tenant,
            messages: total,
            rto_messages: rto,
            goodput_bps: self
                .goodput
                .get(tenant as usize)
                .map(|&b| b as f64 * 8.0 / self.duration.as_secs_f64().max(1e-12))
                .unwrap_or(0.0),
        }
    }
}

/// Aggregate numbers for one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantStats {
    pub tenant: u16,
    pub messages: usize,
    pub rto_messages: usize,
    pub goodput_bps: f64,
}

impl TenantStats {
    /// Fraction of messages that suffered an RTO (Fig. 13's metric).
    pub fn rto_fraction(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.rto_messages as f64 / self.messages as f64
        }
    }
}
