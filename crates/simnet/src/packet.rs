//! Packets and their routing state.

use silo_base::{Bytes, Time};
use silo_topology::PortId;

/// Handle to an interned egress-port list in the simulator's path table.
/// Packets and connections carry this 4-byte id instead of a shared
/// pointer, which keeps [`Packet`] `Copy` and spares a refcount round trip
/// per forwarded packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathId(pub u32);

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PktKind {
    /// A TCP data segment covering stream bytes `[seq, seq + payload)`.
    Data,
    /// A cumulative ACK up to `seq`; `ecn_echo` reflects the acked
    /// segment's CE mark (per-segment immediate acks give DCTCP its exact
    /// marked-byte feedback).
    Ack,
}

/// One packet in flight. `path` names the precomputed egress-port list
/// from the source NIC to the destination (interned in the simulator's
/// path table, shared per connection); `hop` is the index of the *next*
/// port to traverse.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    pub conn: u32,
    pub kind: PktKind,
    /// Data: first stream byte. Ack: cumulative ack.
    pub seq: u64,
    /// Data: stream bytes carried (0 for pure ACKs).
    pub payload: u64,
    /// Wire size (payload + headers).
    pub size: Bytes,
    /// Data: set when the segment is a retransmission (Karn's rule).
    pub retx: bool,
    /// CE codepoint (set by switches).
    pub ce: bool,
    /// Ack: echo of the acked segment's CE.
    pub ecn_echo: bool,
    /// 802.1q priority (0 high, 1 low).
    pub prio: u8,
    /// When the segment was handed to the wire path (for delay metrics).
    pub sent_at: Time,
    /// When the packet entered its current port FIFO (set by
    /// `PortState::enqueue`; read only by the flight recorder for
    /// head-of-line wait spans — never by the physics).
    pub enq_at: Time,
    pub path: PathId,
    pub hop: usize,
}

impl Packet {
    /// The next port this packet must traverse along `path` (its resolved
    /// port list), or `None` at destination.
    pub fn next_port(&self, path: &[PortId]) -> Option<PortId> {
        path.get(self.hop).copied()
    }

    /// True once every hop of `path` is done (the packet is at its
    /// destination).
    pub fn arrived(&self, path: &[PortId]) -> bool {
        self.hop >= path.len()
    }
}
