//! Packets and their routing state.

use silo_base::{Bytes, Time};
use silo_topology::PortId;
use std::rc::Rc;

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PktKind {
    /// A TCP data segment covering stream bytes `[seq, seq + payload)`.
    Data,
    /// A cumulative ACK up to `seq`; `ecn_echo` reflects the acked
    /// segment's CE mark (per-segment immediate acks give DCTCP its exact
    /// marked-byte feedback).
    Ack,
}

/// One packet in flight. `path` is the precomputed egress-port list from
/// the source NIC to the destination (shared per connection); `hop` is the
/// index of the *next* port to traverse.
#[derive(Debug, Clone)]
pub struct Packet {
    pub conn: u32,
    pub kind: PktKind,
    /// Data: first stream byte. Ack: cumulative ack.
    pub seq: u64,
    /// Data: stream bytes carried (0 for pure ACKs).
    pub payload: u64,
    /// Wire size (payload + headers).
    pub size: Bytes,
    /// Data: set when the segment is a retransmission (Karn's rule).
    pub retx: bool,
    /// CE codepoint (set by switches).
    pub ce: bool,
    /// Ack: echo of the acked segment's CE.
    pub ecn_echo: bool,
    /// 802.1q priority (0 high, 1 low).
    pub prio: u8,
    /// When the segment was handed to the wire path (for delay metrics).
    pub sent_at: Time,
    pub path: Rc<[PortId]>,
    pub hop: usize,
}

impl Packet {
    /// The next port this packet must traverse, or `None` at destination.
    pub fn next_port(&self) -> Option<PortId> {
        self.path.get(self.hop).copied()
    }

    /// True once every hop is done (the packet is at its destination).
    pub fn arrived(&self) -> bool {
        self.hop >= self.path.len()
    }
}
