//! Packets and their routing state.

use silo_base::{Bytes, Time};
use silo_topology::PortId;

/// Handle to an interned egress-port list in the simulator's path table.
/// Packets and connections carry this 4-byte id instead of a shared
/// pointer, which keeps [`Packet`] `Copy` and spares a refcount round trip
/// per forwarded packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathId(pub u32);

/// What a packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PktKind {
    /// A TCP data segment covering stream bytes `[seq, seq + payload)`.
    Data,
    /// A cumulative ACK up to `seq`; `ecn_echo` reflects the acked
    /// segment's CE mark (per-segment immediate acks give DCTCP its exact
    /// marked-byte feedback).
    Ack,
}

/// One packet in flight. `path` names the precomputed egress-port list
/// from the source NIC to the destination (interned in the simulator's
/// path table, shared per connection); `hop` is the index of the *next*
/// port to traverse.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    pub conn: u32,
    pub kind: PktKind,
    /// Data: first stream byte. Ack: cumulative ack.
    pub seq: u64,
    /// Data: stream bytes carried (0 for pure ACKs).
    pub payload: u64,
    /// Wire size (payload + headers).
    pub size: Bytes,
    /// Data: set when the segment is a retransmission (Karn's rule).
    pub retx: bool,
    /// CE codepoint (set by switches).
    pub ce: bool,
    /// Ack: echo of the acked segment's CE.
    pub ecn_echo: bool,
    /// 802.1q priority (0 high, 1 low).
    pub prio: u8,
    /// When the segment was handed to the wire path (for delay metrics).
    pub sent_at: Time,
    /// When the packet entered its current port FIFO (set by
    /// `PortState::enqueue`; read only by the flight recorder for
    /// head-of-line wait spans — never by the physics).
    pub enq_at: Time,
    pub path: PathId,
    pub hop: usize,
}

impl Packet {
    /// The next port this packet must traverse along `path` (its resolved
    /// port list), or `None` at destination.
    pub fn next_port(&self, path: &[PortId]) -> Option<PortId> {
        path.get(self.hop).copied()
    }

    /// True once every hop of `path` is done (the packet is at its
    /// destination).
    pub fn arrived(&self, path: &[PortId]) -> bool {
        self.hop >= path.len()
    }
}

/// Handle to a packet slot in a [`PktArena`]. Four bytes instead of the
/// ~96-byte [`Packet`]: events, port FIFOs and the NIC stamp queue carry
/// the handle, so an event dispatch moves one index instead of the whole
/// struct, and the packet bytes stay put in the arena for the packet's
/// entire flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PktId(u32);

/// Slab of in-flight packets with a LIFO free list. Allocation order is
/// fully deterministic (`Vec` growth plus LIFO reuse), so two identical
/// runs assign identical handles — handle values never feed back into
/// physics, but determinism keeps debugging sane.
///
/// Debug builds (and therefore the whole test suite) track per-slot
/// liveness and panic on use-after-free or double-free; release builds
/// carry no overhead beyond the slab itself.
#[derive(Debug, Default)]
pub struct PktArena {
    slots: Vec<Packet>,
    free: Vec<u32>,
    #[cfg(debug_assertions)]
    live: Vec<bool>,
}

impl PktArena {
    pub fn new() -> PktArena {
        PktArena::default()
    }

    pub fn with_capacity(n: usize) -> PktArena {
        PktArena {
            slots: Vec::with_capacity(n),
            free: Vec::new(),
            #[cfg(debug_assertions)]
            live: Vec::with_capacity(n),
        }
    }

    /// Intern a packet for its flight; returns the handle that names it
    /// until [`PktArena::free`].
    pub fn alloc(&mut self, pkt: Packet) -> PktId {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = pkt;
            #[cfg(debug_assertions)]
            {
                debug_assert!(!self.live[i as usize], "free list held a live slot");
                self.live[i as usize] = true;
            }
            PktId(i)
        } else {
            let i = self.slots.len() as u32;
            self.slots.push(pkt);
            #[cfg(debug_assertions)]
            self.live.push(true);
            PktId(i)
        }
    }

    /// Release a slot for reuse. The packet has left the simulation —
    /// delivered, tail-dropped, or eaten by a fault.
    pub fn free(&mut self, id: PktId) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.live[id.0 as usize], "double free of {id:?}");
            self.live[id.0 as usize] = false;
        }
        self.free.push(id.0);
    }

    /// Packets currently in flight.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// High-water mark of concurrently live packets (slab length: slots
    /// are only added when no freed one is available).
    pub fn peak(&self) -> usize {
        self.slots.len()
    }
}

impl std::ops::Index<PktId> for PktArena {
    type Output = Packet;
    #[inline]
    fn index(&self, id: PktId) -> &Packet {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[id.0 as usize], "read of freed {id:?}");
        &self.slots[id.0 as usize]
    }
}

impl std::ops::IndexMut<PktId> for PktArena {
    #[inline]
    fn index_mut(&mut self, id: PktId) -> &mut Packet {
        #[cfg(debug_assertions)]
        debug_assert!(self.live[id.0 as usize], "write to freed {id:?}");
        &mut self.slots[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(seq: u64) -> Packet {
        Packet {
            conn: 0,
            kind: PktKind::Data,
            seq,
            payload: 1440,
            size: Bytes(1500),
            retx: false,
            ce: false,
            ecn_echo: false,
            prio: 0,
            sent_at: Time::ZERO,
            enq_at: Time::ZERO,
            path: PathId(0),
            hop: 0,
        }
    }

    #[test]
    fn arena_reuses_slots_lifo_and_tracks_liveness() {
        let mut a = PktArena::new();
        let x = a.alloc(pkt(1));
        let y = a.alloc(pkt(2));
        assert_ne!(x, y);
        assert_eq!(a.live(), 2);
        assert_eq!(a[x].seq, 1);
        a[x].hop = 3;
        assert_eq!(a[x].hop, 3);
        a.free(x);
        assert_eq!(a.live(), 1);
        // LIFO reuse: the freed slot comes back first, fully overwritten.
        let z = a.alloc(pkt(9));
        assert_eq!(z, x, "freed slot must be reused");
        assert_eq!(a[z].seq, 9);
        assert_eq!(a[z].hop, 0, "stale fields must not leak through reuse");
        assert_eq!(a.peak(), 2, "peak counts concurrent flights, not allocs");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn arena_catches_double_free_in_debug() {
        let mut a = PktArena::new();
        let x = a.alloc(pkt(1));
        a.free(x);
        a.free(x);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "read of freed")]
    fn arena_catches_use_after_free_in_debug() {
        let mut a = PktArena::new();
        let x = a.alloc(pkt(1));
        a.free(x);
        let _ = a[x].seq;
    }
}
