//! Windowed telemetry: deterministic time-series of how close every
//! tenant ran to its guarantee, plus a wall-clock self-profile of the
//! engine itself.
//!
//! The end-of-run [`crate::Metrics`] totals say *whether* a tenant met
//! its `{B, S, d}` bound; the flight recorder says what one packet did.
//! Neither shows the *trajectory* — how the guarantee margin eroded as a
//! fault window opened, or which windows burned the margin on queueing
//! versus pacer token waits. [`TelemetrySink`] samples that trajectory on
//! a fixed sim-time grid (`TelemetryConfig::interval`, default 1 ms):
//!
//! * **per tenant, per window** — goodput bytes, message completions,
//!   p99-within-window latency (via a per-window [`LogHistogram`]), the
//!   minimum guarantee margin `d_bound − latency` over the window's
//!   completions, and the window's wait attribution: switch-queue
//!   head-of-line wait vs pacer token wait (the same two causes the
//!   flight recorder distinguishes), with realized fault windows mapped
//!   onto the grid at the end of the run;
//! * **per port, per window** — busy time of transmissions started in
//!   the window, tx bytes, tail drops, CE marks, and the queue depth at
//!   the window edge (the last depth observed before the boundary);
//! * **globally, per window** — wire data/void bytes from the pacer's
//!   NIC batches.
//!
//! Same discipline as `audit` and `trace`: the sink is pure observation.
//! It never mutates engine state, draws randomness, or schedules events,
//! so a telemetry-on run is byte-identical to a telemetry-off run
//! (`tests/telemetry_identical.rs`), and every series is conservative:
//! the sum over windows equals the end-of-run `Metrics` total bit-exactly
//! (the conservation suite in `tests/telemetry_identical.rs`) — the
//! windowed analogue of the
//! trace rings' `retained + dropped == recorded`.
//!
//! The **self-profile** is the one deliberately non-deterministic part:
//! wall-clock spans for the sharded engine's K-way merge, barrier
//! mailbox drains and `prepare` pre-drains (from
//! [`silo_base::shardq::ShardQueueProfile`]) plus sampled per-event-kind
//! dispatch time attributed to the owning shard. It is kept out of the
//! deterministic exports ([`TelemetryLog::to_jsonl`] /
//! [`TelemetryLog::to_openmetrics`]) and rendered separately
//! ([`SelfProfile::to_table`]), so `silo-top diff` on two same-seed runs
//! is always byte-clean.

use crate::metrics::{EvKind, FaultWindow, LATENCY_HIST_SUB_BITS};
use silo_base::shardq::ShardQueueProfile;
use silo_base::{Dur, LogHistogram, Time};
use std::time::Instant;

/// Configuration of the windowed recorder.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Sim-time width of one sampling window. Every counter is
    /// attributed to the window containing its dispatch instant; the
    /// final window is clamped to the horizon, so events at exactly
    /// `duration` land in the last window rather than opening a new one.
    pub interval: Dur,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            interval: Dur::from_ms(1),
        }
    }
}

/// One tenant's sample for one window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantWindow {
    /// Delivered stream bytes (sum of per-segment delivery advances —
    /// the same quantity `Metrics::goodput` totals).
    pub goodput_bytes: u64,
    /// Messages fully delivered in this window.
    pub completions: u64,
    /// p99 of completion latencies inside the window (ps), `None` when
    /// nothing completed. Quantized by the shared `LogHistogram`
    /// resolution ([`LATENCY_HIST_SUB_BITS`]).
    pub p99_latency_ps: Option<u64>,
    /// Minimum of `latency_bound − latency` over the window's
    /// completions (ps; negative ⇒ a guarantee violation completed in
    /// this window). `None` without a delay guarantee or completions.
    pub margin_min_ps: Option<i64>,
    /// Switch-queue head-of-line wait of data packets that started
    /// transmission in this window (ps, summed).
    pub queue_wait_ps: u64,
    /// Pacer token wait of data packets stamped in this window (ps,
    /// summed) — time the token buckets held a packet past `now`.
    pub token_wait_ps: u64,
    /// RTO timers that fired for this tenant's connections.
    pub rtos: u64,
}

/// One port's sample for one window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortWindow {
    /// Transmission time of packets whose wire slot *started* in this
    /// window (ps). A transmission spanning a boundary is attributed
    /// whole to its start window, so `busy_ps / interval` can
    /// transiently exceed 1.
    pub busy_ps: u64,
    pub tx_bytes: u64,
    /// Tail drops (buffer full) — sums bit-exactly to `Metrics::drops`.
    pub drops: u64,
    /// ECN CE marks applied at enqueue.
    pub ce_marks: u64,
    /// Queued bytes at the window's trailing edge (last observed depth).
    pub depth_bytes: u64,
}

/// Global (per-run) sample for one window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GlobalWindow {
    pub wire_data_bytes: u64,
    pub wire_void_bytes: u64,
}

/// Wall-clock self-profile of the engine, aggregated per shard. All
/// values are host wall time — **not** deterministic, and therefore
/// excluded from the deterministic exports.
#[derive(Debug, Clone, Default)]
pub struct SelfProfile {
    /// Total wall time of the dispatch loop (`Sim::run_inner`).
    pub wall_ns: u64,
    /// Sampled wall time in the sharded queue's K-way head merge
    /// (every 64th pop; 0 in single-shard runs, which skip the merge).
    pub merge_ns: u64,
    pub merge_samples: u64,
    /// Window barriers taken by the sharded queue.
    pub barriers: u64,
    /// Per-shard mailbox drain wall time at barriers.
    pub drain_ns: Vec<u64>,
    /// Per-shard `prepare` pre-drain wall time.
    pub prepare_ns: Vec<u64>,
    /// Per-shard, per-event-kind dispatch wall time (sampled: every 64th
    /// dispatched event is timed; sums are raw sampled time, not scaled).
    pub dispatch_ns: Vec<[u64; EvKind::COUNT]>,
    /// Sample counts matching `dispatch_ns`.
    pub dispatch_samples: Vec<[u64; EvKind::COUNT]>,
}

impl SelfProfile {
    /// Total sampled dispatch time across shards and kinds.
    pub fn dispatch_total_ns(&self) -> u64 {
        self.dispatch_ns.iter().map(|a| a.iter().sum::<u64>()).sum()
    }

    /// One shard's instrumented span total (drain + prepare + sampled
    /// dispatch). Each term is wall time measured on the dispatch
    /// thread, so the per-shard sums are bounded by `wall_ns` whenever
    /// prepare runs inline (`shard_threads == 1`).
    pub fn shard_total_ns(&self, shard: usize) -> u64 {
        self.drain_ns.get(shard).copied().unwrap_or(0)
            + self.prepare_ns.get(shard).copied().unwrap_or(0)
            + self
                .dispatch_ns
                .get(shard)
                .map(|a| a.iter().sum::<u64>())
                .unwrap_or(0)
    }

    /// Aligned text table for `--profile` output and the DESIGN.md
    /// ROADMAP-item-1 baseline.
    pub fn to_table(&self) -> String {
        let shards = self.dispatch_ns.len().max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "engine self-profile: wall {:.3} ms, merge {:.3} ms sampled ({} samples), {} barriers\n",
            self.wall_ns as f64 / 1e6,
            self.merge_ns as f64 / 1e6,
            self.merge_samples,
            self.barriers
        ));
        out.push_str(&format!(
            "{:<8} {:>12} {:>12} {:>14} {:>12}  top event kinds (sampled us)\n",
            "shard", "drain_us", "prepare_us", "dispatch_us", "samples"
        ));
        for s in 0..shards {
            let d = self.dispatch_ns.get(s).copied().unwrap_or_default();
            let n = self.dispatch_samples.get(s).copied().unwrap_or_default();
            let mut kinds: Vec<(usize, u64)> = d.iter().copied().enumerate().collect();
            kinds.sort_by_key(|&(i, v)| (std::cmp::Reverse(v), i));
            let top: Vec<String> = kinds
                .iter()
                .take(3)
                .filter(|&&(_, v)| v > 0)
                .map(|&(i, v)| format!("{} {:.1}", EvKind::ALL[i].label(), v as f64 / 1e3))
                .collect();
            out.push_str(&format!(
                "{:<8} {:>12.1} {:>12.1} {:>14.1} {:>12}  {}\n",
                s,
                self.drain_ns.get(s).copied().unwrap_or(0) as f64 / 1e3,
                self.prepare_ns.get(s).copied().unwrap_or(0) as f64 / 1e3,
                d.iter().sum::<u64>() as f64 / 1e3,
                n.iter().sum::<u64>(),
                top.join(", ")
            ));
        }
        out
    }
}

/// Accumulator for the open window of one tenant.
struct TenantAcc {
    win: TenantWindow,
    hist: LogHistogram,
}

/// The recorder attached to a running [`crate::Sim`] (`Some` iff
/// `SimConfig::telemetry` is set). Hook methods are called from the
/// dispatch loop with the current sim time; dispatch time is monotone,
/// so windows close lazily as time first crosses each boundary.
pub struct TelemetrySink {
    interval_ps: u64,
    /// Total windows covering `[0, duration]` (the last clamps to the
    /// horizon).
    nwindows: u64,
    /// Currently open window index.
    cur: u64,
    /// First instant past the open window (`u64::MAX` once the final
    /// window is open) — the hot-path hooks compare against this instead
    /// of dividing on every call.
    cur_end_ps: u64,
    tacc: Vec<TenantAcc>,
    pacc: Vec<PortWindow>,
    gacc: GlobalWindow,
    /// Last observed queued-bytes per port (carried across windows for
    /// the depth-at-edge series).
    last_queued: Vec<u64>,
    tenant_series: Vec<Vec<TenantWindow>>,
    port_series: Vec<Vec<PortWindow>>,
    global_series: Vec<GlobalWindow>,
    // ---- self-profile (wall clock; never touches sim state) ----
    wall_start: Option<Instant>,
    wall_ns: u64,
    ev_count: u64,
    dispatch_ns: Vec<[u64; EvKind::COUNT]>,
    dispatch_samples: Vec<[u64; EvKind::COUNT]>,
}

impl TelemetrySink {
    pub fn new(
        cfg: &TelemetryConfig,
        duration: Dur,
        ntenants: usize,
        nports: usize,
        nshards: usize,
    ) -> TelemetrySink {
        let interval_ps = cfg.interval.as_ps().max(1);
        let nwindows = duration.as_ps().div_ceil(interval_ps).max(1);
        TelemetrySink {
            interval_ps,
            nwindows,
            cur: 0,
            cur_end_ps: if nwindows == 1 { u64::MAX } else { interval_ps },
            tacc: (0..ntenants)
                .map(|_| TenantAcc {
                    win: TenantWindow::default(),
                    hist: LogHistogram::new(LATENCY_HIST_SUB_BITS),
                })
                .collect(),
            pacc: vec![PortWindow::default(); nports],
            gacc: GlobalWindow::default(),
            last_queued: vec![0; nports],
            tenant_series: vec![Vec::new(); ntenants],
            port_series: vec![Vec::new(); nports],
            global_series: Vec::new(),
            wall_start: None,
            wall_ns: 0,
            ev_count: 0,
            dispatch_ns: vec![[0; EvKind::COUNT]; nshards.max(1)],
            dispatch_samples: vec![[0; EvKind::COUNT]; nshards.max(1)],
        }
    }

    /// Window containing `t`, clamped so the horizon edge lands in the
    /// final window instead of opening one past it.
    #[inline]
    fn window_of(&self, t: Time) -> u64 {
        (t.as_ps() / self.interval_ps).min(self.nwindows - 1)
    }

    /// Close every window strictly before `t`'s. The common case — `t`
    /// still inside the open window — is one compare; hooks fire several
    /// times per event, so the division lives only on the cold path.
    #[inline]
    fn advance(&mut self, t: Time) {
        if t.as_ps() >= self.cur_end_ps {
            self.advance_slow(t);
        }
    }

    #[cold]
    fn advance_slow(&mut self, t: Time) {
        let w = self.window_of(t);
        while self.cur < w {
            self.close_current();
        }
        self.cur_end_ps = if self.cur + 1 >= self.nwindows {
            // Final window: it absorbs everything up to the horizon.
            u64::MAX
        } else {
            (self.cur + 1) * self.interval_ps
        };
    }

    fn close_current(&mut self) {
        for (acc, series) in self.tacc.iter_mut().zip(self.tenant_series.iter_mut()) {
            let mut win = std::mem::take(&mut acc.win);
            if !acc.hist.is_empty() {
                win.p99_latency_ps = acc.hist.quantile(0.99);
                acc.hist.clear();
            }
            series.push(win);
        }
        for ((acc, series), &depth) in self
            .pacc
            .iter_mut()
            .zip(self.port_series.iter_mut())
            .zip(self.last_queued.iter())
        {
            let mut win = std::mem::take(acc);
            win.depth_bytes = depth;
            series.push(win);
        }
        self.global_series.push(std::mem::take(&mut self.gacc));
        self.cur += 1;
    }

    // ---- sim-time hooks (all deterministic counters) ----

    pub fn goodput(&mut self, now: Time, tenant: u16, bytes: u64) {
        self.advance(now);
        self.tacc[tenant as usize].win.goodput_bytes += bytes;
    }

    /// A message completed: `margin_ps` is `bound − latency` when the
    /// tenant has a delay guarantee.
    pub fn msg_done(&mut self, now: Time, tenant: u16, latency_ps: u64, margin_ps: Option<i64>) {
        self.advance(now);
        let acc = &mut self.tacc[tenant as usize];
        acc.win.completions += 1;
        acc.hist.record(latency_ps);
        if let Some(m) = margin_ps {
            acc.win.margin_min_ps = Some(match acc.win.margin_min_ps {
                Some(prev) => prev.min(m),
                None => m,
            });
        }
    }

    pub fn queue_wait(&mut self, now: Time, tenant: u16, wait: Dur) {
        self.advance(now);
        self.tacc[tenant as usize].win.queue_wait_ps += wait.as_ps();
    }

    pub fn token_wait(&mut self, now: Time, tenant: u16, wait: Dur) {
        self.advance(now);
        self.tacc[tenant as usize].win.token_wait_ps += wait.as_ps();
    }

    pub fn rto(&mut self, now: Time, tenant: u16) {
        self.advance(now);
        self.tacc[tenant as usize].win.rtos += 1;
    }

    /// An enqueue decision at `port`: `queued` is the post-decision
    /// depth, `accepted == false` is a tail drop.
    pub fn port_enqueue(
        &mut self,
        now: Time,
        port: usize,
        queued: u64,
        accepted: bool,
        mark_ce: bool,
    ) {
        self.advance(now);
        self.last_queued[port] = queued;
        let acc = &mut self.pacc[port];
        if !accepted {
            acc.drops += 1;
        } else if mark_ce {
            acc.ce_marks += 1;
        }
    }

    /// A transmission started at `port`; `queued_after` is the depth
    /// after the head was dequeued.
    pub fn port_tx(&mut self, now: Time, port: usize, tx: Dur, bytes: u64, queued_after: u64) {
        self.advance(now);
        self.last_queued[port] = queued_after;
        let acc = &mut self.pacc[port];
        acc.busy_ps += tx.as_ps();
        acc.tx_bytes += bytes;
    }

    /// A fault flushed `port`'s queue down to `queued_now` (depth series
    /// only; the lost packets are fault drops, not tail drops).
    pub fn port_flush(&mut self, now: Time, port: usize, queued_now: u64) {
        self.advance(now);
        self.last_queued[port] = queued_now;
    }

    /// One NIC batch went on the wire.
    pub fn wire_bytes(&mut self, now: Time, data: u64, void: u64) {
        self.advance(now);
        self.gacc.wire_data_bytes += data;
        self.gacc.wire_void_bytes += void;
    }

    // ---- self-profile hooks (wall clock only) ----

    /// Mark the start of the dispatch loop.
    pub fn wall_start(&mut self) {
        self.wall_start = Some(Instant::now());
    }

    /// Mark the end of the dispatch loop.
    pub fn wall_end(&mut self) {
        if let Some(t0) = self.wall_start.take() {
            self.wall_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Per-event tick; returns whether this dispatch should be timed
    /// (every 64th — two clock reads per sample; at ~32 ns a read the
    /// amortized cost is ~1 ns/event, well inside the overhead budget).
    #[inline]
    pub fn dispatch_tick(&mut self) -> bool {
        self.ev_count += 1;
        self.ev_count & 63 == 0
    }

    /// Record one sampled dispatch span.
    #[inline]
    pub fn dispatch_span(&mut self, kind: usize, shard: usize, ns: u64) {
        self.dispatch_ns[shard][kind] += ns;
        self.dispatch_samples[shard][kind] += 1;
    }

    /// Flush the remaining windows and assemble the log. `shardq` is the
    /// sharded queue's own wall-clock profile when one was collected.
    pub fn finish(
        mut self,
        port_labels: Vec<String>,
        fault_windows: &[FaultWindow],
        shardq: Option<ShardQueueProfile>,
    ) -> TelemetryLog {
        while self.cur < self.nwindows {
            self.close_current();
        }
        // Map realized fault windows onto the grid: a fault overlaps
        // window w = [w·iv, (w+1)·iv) when it starts before the window's
        // end and ends at-or-after its start — the at-or-after keeps a
        // fault healing exactly on a boundary attributed to the window
        // whose first instant it still covered, and gives zero-length
        // strike-and-heal faults exactly one window.
        let mut window_faults: Vec<Vec<u32>> = vec![Vec::new(); self.nwindows as usize];
        for fw in fault_windows {
            let first = fw.start.as_ps() / self.interval_ps;
            for w in first..self.nwindows {
                let ws = w * self.interval_ps;
                if fw.end.as_ps() < ws && fw.start.as_ps() < ws {
                    break;
                }
                if fw.start.as_ps() < (w + 1) * self.interval_ps && fw.end.as_ps() >= ws {
                    window_faults[w as usize].push(fw.fault);
                }
            }
        }
        let mut profile = SelfProfile {
            wall_ns: self.wall_ns,
            dispatch_ns: self.dispatch_ns,
            dispatch_samples: self.dispatch_samples,
            ..SelfProfile::default()
        };
        if let Some(q) = shardq {
            profile.merge_ns = q.merge_ns;
            profile.merge_samples = q.merge_samples;
            profile.barriers = q.barriers;
            profile.drain_ns = q.drain_ns;
            profile.prepare_ns = q.prepare_ns;
        }
        TelemetryLog {
            interval: Dur(self.interval_ps),
            windows: self.nwindows,
            tenants: self.tenant_series,
            ports: self.port_series,
            global: self.global_series,
            window_faults,
            port_labels,
            self_profile: profile,
        }
    }
}

/// Fixed-point microseconds (6 decimals = ps precision), the same
/// deterministic timestamp format the Perfetto trace exporter uses.
fn us(t_ps: u64) -> String {
    format!("{}.{:06}", t_ps / 1_000_000, t_ps % 1_000_000)
}

/// Fixed-point seconds (6 decimals = µs precision) for OpenMetrics
/// timestamps.
fn secs(t_ps: u64) -> String {
    format!(
        "{}.{:06}",
        t_ps / 1_000_000_000_000,
        (t_ps % 1_000_000_000_000) / 1_000_000
    )
}

/// A finished telemetry recording: every series fully materialized
/// (`windows` entries each), plus the wall-clock self-profile.
#[derive(Debug, Clone)]
pub struct TelemetryLog {
    pub interval: Dur,
    pub windows: u64,
    /// `[tenant][window]`.
    pub tenants: Vec<Vec<TenantWindow>>,
    /// `[port][window]` (switch/NIC ports first, then loopbacks —
    /// matching `port_labels`).
    pub ports: Vec<Vec<PortWindow>>,
    /// `[window]`.
    pub global: Vec<GlobalWindow>,
    /// Fault indices overlapping each window (empty without a plan).
    pub window_faults: Vec<Vec<u32>>,
    pub port_labels: Vec<String>,
    /// Wall-clock engine profile — excluded from the deterministic
    /// exports below.
    pub self_profile: SelfProfile,
}

impl TelemetryLog {
    // ---- conservation sums (the cross-check the test suite pins) ----

    pub fn sum_goodput(&self, tenant: usize) -> u64 {
        self.tenants[tenant].iter().map(|w| w.goodput_bytes).sum()
    }
    pub fn sum_completions(&self, tenant: usize) -> u64 {
        self.tenants[tenant].iter().map(|w| w.completions).sum()
    }
    pub fn sum_rtos(&self) -> u64 {
        self.tenants
            .iter()
            .flat_map(|t| t.iter().map(|w| w.rtos))
            .sum()
    }
    pub fn sum_drops(&self) -> u64 {
        self.ports
            .iter()
            .flat_map(|p| p.iter().map(|w| w.drops))
            .sum()
    }
    pub fn sum_wire_data(&self) -> u64 {
        self.global.iter().map(|w| w.wire_data_bytes).sum()
    }
    pub fn sum_wire_void(&self) -> u64 {
        self.global.iter().map(|w| w.wire_void_bytes).sum()
    }

    /// Deterministic `silo-telemetry-v1` JSONL: a header object, then
    /// for each window a global line, one line per tenant, and one line
    /// per port with any activity (ports are sparse; all-zero port
    /// windows are elided to keep files proportional to traffic).
    pub fn to_jsonl(&self) -> String {
        let mut out =
            String::with_capacity(128 * self.windows as usize * (self.tenants.len() + 2) + 4096);
        out.push_str(&format!(
            "{{\"format\":\"silo-telemetry-v1\",\"interval_ps\":{},\"windows\":{},\"tenants\":{},\"ports\":{},\"port_labels\":[",
            self.interval.as_ps(),
            self.windows,
            self.tenants.len(),
            self.ports.len(),
        ));
        for (i, l) in self.port_labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{l}\""));
        }
        out.push_str("]}\n");
        fn opt_u64(v: Option<u64>) -> String {
            v.map_or("null".to_string(), |x| x.to_string())
        }
        fn opt_i64(v: Option<i64>) -> String {
            v.map_or("null".to_string(), |x| x.to_string())
        }
        for w in 0..self.windows as usize {
            let g = &self.global[w];
            out.push_str(&format!(
                "{{\"w\":{w},\"wire_data\":{},\"wire_void\":{},\"faults\":[",
                g.wire_data_bytes, g.wire_void_bytes
            ));
            for (i, f) in self.window_faults[w].iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&f.to_string());
            }
            out.push_str("]}\n");
            for (t, series) in self.tenants.iter().enumerate() {
                let s = &series[w];
                out.push_str(&format!(
                    "{{\"w\":{w},\"tenant\":{t},\"goodput\":{},\"completions\":{},\"p99_ps\":{},\"margin_min_ps\":{},\"queue_wait_ps\":{},\"token_wait_ps\":{},\"rtos\":{}}}\n",
                    s.goodput_bytes,
                    s.completions,
                    opt_u64(s.p99_latency_ps),
                    opt_i64(s.margin_min_ps),
                    s.queue_wait_ps,
                    s.token_wait_ps,
                    s.rtos,
                ));
            }
            for (p, series) in self.ports.iter().enumerate() {
                let s = &series[w];
                if *s == PortWindow::default() {
                    continue;
                }
                out.push_str(&format!(
                    "{{\"w\":{w},\"port\":{p},\"busy_ps\":{},\"tx_bytes\":{},\"drops\":{},\"ce\":{},\"depth\":{}}}\n",
                    s.busy_ps, s.tx_bytes, s.drops, s.ce_marks, s.depth_bytes,
                ));
            }
        }
        out
    }

    /// OpenMetrics text exposition: one gauge family per series, samples
    /// timestamped at the window's trailing edge in seconds. Tenant
    /// families emit every window (burn-rate analyses need the zeros);
    /// port families elide all-zero samples. Ends with the mandatory
    /// `# EOF`.
    pub fn to_openmetrics(&self) -> String {
        /// One gauge family: metric name, help text, and the window
        /// field it samples.
        type Family<W> = (&'static str, &'static str, fn(&W) -> u64);
        let mut out = String::new();
        let end = |w: usize| secs(((w as u64) + 1) * self.interval.as_ps());
        // Tenant families.
        let tenant_u64: [Family<TenantWindow>; 5] = [
            (
                "silo_goodput_bytes",
                "delivered stream bytes per window",
                |s| s.goodput_bytes,
            ),
            (
                "silo_completions",
                "messages fully delivered per window",
                |s| s.completions,
            ),
            (
                "silo_queue_wait_ps",
                "switch-queue head-of-line wait per window (ps)",
                |s| s.queue_wait_ps,
            ),
            (
                "silo_token_wait_ps",
                "pacer token wait per window (ps)",
                |s| s.token_wait_ps,
            ),
            ("silo_rtos", "RTO fires per window", |s| s.rtos),
        ];
        for (name, help, get) in tenant_u64 {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            for (t, series) in self.tenants.iter().enumerate() {
                for (w, s) in series.iter().enumerate() {
                    out.push_str(&format!("{name}{{tenant=\"{t}\"}} {} {}\n", get(s), end(w)));
                }
            }
        }
        out.push_str(
            "# HELP silo_p99_latency_ps p99 completion latency within the window (ps)\n# TYPE silo_p99_latency_ps gauge\n",
        );
        for (t, series) in self.tenants.iter().enumerate() {
            for (w, s) in series.iter().enumerate() {
                if let Some(p) = s.p99_latency_ps {
                    out.push_str(&format!(
                        "silo_p99_latency_ps{{tenant=\"{t}\"}} {p} {}\n",
                        end(w)
                    ));
                }
            }
        }
        out.push_str(
            "# HELP silo_margin_min_ps minimum guarantee margin d_bound - latency within the window (ps)\n# TYPE silo_margin_min_ps gauge\n",
        );
        for (t, series) in self.tenants.iter().enumerate() {
            for (w, s) in series.iter().enumerate() {
                if let Some(m) = s.margin_min_ps {
                    out.push_str(&format!(
                        "silo_margin_min_ps{{tenant=\"{t}\"}} {m} {}\n",
                        end(w)
                    ));
                }
            }
        }
        // Port families (sparse).
        let port_u64: [Family<PortWindow>; 5] = [
            (
                "silo_port_busy_ps",
                "wire time of transmissions started in the window (ps)",
                |s| s.busy_ps,
            ),
            ("silo_port_tx_bytes", "bytes transmitted per window", |s| {
                s.tx_bytes
            }),
            ("silo_port_drops", "tail drops per window", |s| s.drops),
            ("silo_port_ce_marks", "ECN CE marks per window", |s| {
                s.ce_marks
            }),
            (
                "silo_port_depth_bytes",
                "queued bytes at the window edge",
                |s| s.depth_bytes,
            ),
        ];
        for (name, help, get) in port_u64 {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            for (p, series) in self.ports.iter().enumerate() {
                let label = &self.port_labels[p];
                for (w, s) in series.iter().enumerate() {
                    let v = get(s);
                    if v != 0 {
                        out.push_str(&format!("{name}{{port=\"{label}\"}} {v} {}\n", end(w)));
                    }
                }
            }
        }
        for (name, help, get) in [
            (
                "silo_wire_data_bytes",
                "pacer data bytes on host links per window",
                (|g: &GlobalWindow| g.wire_data_bytes) as fn(&GlobalWindow) -> u64,
            ),
            (
                "silo_wire_void_bytes",
                "pacer void bytes on host links per window",
                |g| g.wire_void_bytes,
            ),
        ] {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            for (w, g) in self.global.iter().enumerate() {
                out.push_str(&format!("{name} {} {}\n", get(g), end(w)));
            }
        }
        out.push_str("# EOF\n");
        out
    }

    /// Append this log's Perfetto counter tracks (`"ph":"C"`, pid 4) to
    /// an event stream under construction — the hook
    /// [`crate::trace::TraceLog::to_perfetto_with_counters`] uses to
    /// splice telemetry into the flight-recorder export. Counters are
    /// emitted at each window's trailing edge.
    pub fn write_perfetto_counters(&self, out: &mut String, first: &mut bool) {
        let mut push = |out: &mut String, s: String| {
            if !std::mem::take(first) {
                out.push_str(",\n");
            }
            out.push_str(&s);
        };
        push(
            out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":4,\"tid\":0,\"args\":{\"name\":\"telemetry counters\"}}".to_string(),
        );
        for (t, series) in self.tenants.iter().enumerate() {
            let has_margin = series.iter().any(|s| s.margin_min_ps.is_some());
            for (w, s) in series.iter().enumerate() {
                let ts = us(((w as u64) + 1) * self.interval.as_ps());
                push(
                    out,
                    format!(
                        "{{\"name\":\"tenant{t} goodput\",\"ph\":\"C\",\"pid\":4,\"tid\":{t},\"ts\":{ts},\"args\":{{\"bytes\":{}}}}}",
                        s.goodput_bytes
                    ),
                );
                if has_margin {
                    // Margin in ns keeps Perfetto's counter value integral
                    // while preserving sign (negative = violation).
                    let m = s.margin_min_ps.map(|m| m / 1000);
                    if let Some(m) = m {
                        push(
                            out,
                            format!(
                                "{{\"name\":\"tenant{t} margin_ns\",\"ph\":\"C\",\"pid\":4,\"tid\":{t},\"ts\":{ts},\"args\":{{\"ns\":{m}}}}}",
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Standalone Perfetto JSON of just the counter tracks.
    pub fn to_perfetto(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        let mut first = true;
        self.write_perfetto_counters(&mut out, &mut first);
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink(windows: u64, interval_ms: u64) -> TelemetrySink {
        TelemetrySink::new(
            &TelemetryConfig {
                interval: Dur::from_ms(interval_ms),
            },
            Dur::from_ms(windows * interval_ms),
            2,
            3,
            1,
        )
    }

    #[test]
    fn windows_close_lazily_and_conserve() {
        let mut s = sink(4, 1);
        s.goodput(Time::from_us(100), 0, 1000);
        s.goodput(Time::from_us(1500), 0, 500); // window 1
        s.msg_done(Time::from_us(1600), 0, 7_000_000, Some(-250));
        s.msg_done(Time::from_us(3999), 1, 1_000_000, None);
        s.rto(Time::from_ms(4), 1); // horizon edge clamps into window 3
        let log = s.finish(vec!["a".into(), "b".into(), "c".into()], &[], None);
        assert_eq!(log.windows, 4);
        assert_eq!(log.tenants[0].len(), 4);
        assert_eq!(log.sum_goodput(0), 1500);
        assert_eq!(log.tenants[0][0].goodput_bytes, 1000);
        assert_eq!(log.tenants[0][1].goodput_bytes, 500);
        assert_eq!(log.tenants[0][1].completions, 1);
        assert_eq!(log.tenants[0][1].margin_min_ps, Some(-250));
        assert!(log.tenants[0][1].p99_latency_ps.is_some());
        assert_eq!(log.tenants[1][3].completions, 1);
        assert_eq!(
            log.tenants[1][3].rtos, 1,
            "horizon edge lands in the last window"
        );
        assert_eq!(log.sum_rtos(), 1);
    }

    #[test]
    fn port_depth_carries_across_empty_windows() {
        let mut s = sink(3, 1);
        s.port_enqueue(Time::from_us(10), 1, 3000, true, false);
        s.port_enqueue(Time::from_us(20), 1, 4500, true, true);
        s.port_enqueue(Time::from_us(30), 1, 4500, false, false); // tail drop
        s.port_tx(Time::from_us(40), 1, Dur::from_us(1), 1500, 3000);
        let log = s.finish(vec!["a".into(), "b".into(), "c".into()], &[], None);
        assert_eq!(log.ports[1][0].drops, 1);
        assert_eq!(log.ports[1][0].ce_marks, 1);
        assert_eq!(log.ports[1][0].tx_bytes, 1500);
        // Depth at every later edge carries the last observation.
        assert_eq!(log.ports[1][0].depth_bytes, 3000);
        assert_eq!(log.ports[1][2].depth_bytes, 3000);
        assert_eq!(log.sum_drops(), 1);
    }

    #[test]
    fn fault_windows_map_onto_the_grid() {
        let s = sink(5, 1);
        let fw = |f, a_us, b_us| FaultWindow {
            fault: f,
            label: "x".into(),
            start: Time::from_us(a_us),
            end: Time::from_us(b_us),
        };
        let log = s.finish(
            vec!["a".into(), "b".into(), "c".into()],
            &[fw(0, 1500, 3500), fw(1, 2000, 2000), fw(2, 0, 1000)],
            None,
        );
        // Fault 0 spans windows 1..=3; zero-length fault 1 gets exactly
        // one window; fault 2 ends exactly on the w1 boundary and is
        // still attributed to w1 (its first instant was covered).
        assert_eq!(log.window_faults[0], vec![2]);
        assert_eq!(log.window_faults[1], vec![0, 2]);
        assert_eq!(log.window_faults[2], vec![0, 1]);
        assert_eq!(log.window_faults[3], vec![0]);
        assert!(log.window_faults[4].is_empty());
    }

    #[test]
    fn jsonl_is_deterministic_and_sparse_on_ports() {
        let mut s = sink(2, 1);
        s.goodput(Time::from_us(10), 0, 42);
        s.port_enqueue(Time::from_us(10), 2, 100, true, false);
        let log = s.finish(vec!["a".into(), "b".into(), "c".into()], &[], None);
        let a = log.to_jsonl();
        let b = log.to_jsonl();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"format\":\"silo-telemetry-v1\""));
        // 1 header + 2 global + 2*2 tenant + port 2 in both windows
        // (depth carries) = 9 lines.
        assert_eq!(a.lines().count(), 9);
        assert!(a.contains("\"goodput\":42"));
        assert!(a.contains("\"depth\":100"));
    }

    #[test]
    fn openmetrics_ends_with_eof_and_timestamps_are_fixed_point() {
        let mut s = sink(2, 1);
        s.goodput(Time::from_us(10), 0, 42);
        let log = s.finish(vec!["a".into(), "b".into(), "c".into()], &[], None);
        let om = log.to_openmetrics();
        assert!(om.ends_with("# EOF\n"));
        assert!(om.contains("silo_goodput_bytes{tenant=\"0\"} 42 0.001000\n"));
        assert!(om.contains("# TYPE silo_goodput_bytes gauge"));
    }

    #[test]
    fn perfetto_counters_are_well_formed() {
        let mut s = sink(1, 1);
        s.msg_done(Time::from_us(10), 0, 5_000_000, Some(2_000_000));
        let log = s.finish(vec!["a".into(), "b".into(), "c".into()], &[], None);
        let p = log.to_perfetto();
        assert!(p.contains("\"ph\":\"C\""));
        assert!(p.contains("tenant0 margin_ns"));
        assert!(p.contains("\"ns\":2000"));
        assert!(p.contains("telemetry counters"));
    }
}
