//! A packet-level discrete-event datacenter network simulator — the
//! workspace's stand-in for the paper's ns2 experiments (§6.2) and 10 GbE
//! testbed (§6.1).
//!
//! Everything is built from scratch on the shared substrates:
//!
//! * **Switches** — store-and-forward egress queues per directed port
//!   ([`port`]): tail-drop within a per-port buffer, two 802.1q priority
//!   levels, DCTCP-style ECN marking, and HULL phantom queues.
//! * **Hosts** — each host carries several tenant VMs. Depending on the
//!   [`TransportMode`], VM egress either goes straight to a FIFO NIC
//!   (TCP/DCTCP/HULL) or through Silo's token-bucket hierarchy and
//!   paced-IO batcher with void packets (Silo/Oktopus/Oktopus+).
//! * **Transport** — TCP Reno/NewReno with fast retransmit/recovery and
//!   exponential-backoff RTOs ([`tcp`]); DCTCP's fraction-based window
//!   reduction on top; HULL = DCTCP senders + phantom-queue marking.
//! * **Applications** — message-oriented apps on persistent connections:
//!   the memcached/ETC request-response tenant, netperf-style bulk
//!   senders, OLDI all-to-one bursts, and Poisson message generators
//!   (driven by `silo-workload`).
//!
//! The simulator is deterministic: one seed fixes every workload draw and
//! every event tie-break.
//!
//! [`msgqueue`] is a self-contained fluid model of a single guaranteed
//! sender used to regenerate Table 1.

pub mod audit;
pub mod config;
pub mod faults;
pub mod metrics;
pub mod msgqueue;
pub mod packet;
pub mod port;
pub mod sim;
pub mod tcp;
pub mod telemetry;
pub mod trace;

pub use audit::{AuditConfig, AuditKind, AuditReport, AuditViolation};
pub use config::{SimConfig, TenantSpec, TenantWorkload, TransportMode};
pub use faults::{FaultEvent, FaultKind, FaultPlan, PlanBounds, FAULTPLAN_FORMAT};
pub use metrics::{EvKind, EventProfile, FaultWindow, Metrics, MsgRecord, TenantStats, Violation};
pub use sim::Sim;
pub use telemetry::{SelfProfile, TelemetryConfig, TelemetryLog, TelemetrySink, TenantWindow};
pub use trace::{PktTag, TraceConfig, TraceEvent, TraceKind, TraceLog};
