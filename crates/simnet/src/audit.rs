//! silo-audit: a flag-gated invariant-audit layer for the packet simulator.
//!
//! When [`crate::SimConfig::audit`] is set, the engine feeds every queue and
//! wire operation through an [`AuditSink`] that checks, per event:
//!
//! * **byte conservation** — at every port, bytes in − bytes out must equal
//!   the bytes currently queued, after every enqueue, dequeue and flush;
//! * **FIFO causality** — a packet never departs a port before it arrived
//!   (per priority class, since the scheduler is strict-priority over two
//!   FIFO queues);
//! * **wire exclusivity** — successive frames released by one NIC (data and
//!   voids alike) occupy disjoint wire intervals: each frame starts no
//!   earlier than the previous frame finished;
//! * **token-bucket conformance** — each paced VM's *wire-level* release
//!   schedule conforms to its admitted `{B, S}` and `{Bmax, MTU}` arrival
//!   curves, measured by reference meters at the instant the first bit hits
//!   the wire (strictly stronger than auditing stamp generation: it also
//!   covers the batcher and the NIC release path);
//! * **queue bounds** — measured per-port backlog never exceeds the
//!   admission-time bound supplied in [`AuditConfig::port_bounds`] (when
//!   one is supplied; the placement crate computes these).
//!
//! The sink is pure observation: it never mutates engine state, takes no
//! randomness, and schedules no events, so an audited run is byte-identical
//! to an unaudited one (`bench_simnet` asserts this on every benchmark run).
//!
//! Violations are attributed to injected faults when they fall inside a
//! fault's realized window (plus [`AuditConfig::attribution_slack`], which
//! covers the backlog-drain tail after e.g. a pacer stall ends). A healthy
//! run, or a faulty run whose every violation is explained by an injected
//! fault, reports `unattributed == 0` — the property CI enforces over the
//! whole fault suite.
//!
//! ## Why the conformance meters clamp
//!
//! A pacer stall releases the stalled backlog back-to-back at line rate.
//! A plain token bucket would record that burst as unbounded *debt* and —
//! because refill and long-run drain rate are equal — keep flagging every
//! subsequent packet forever, long after the fault window. The audit meter
//! instead clamps back to the bucket floor after recording a violation, so
//! exactly the non-conformant excess is flagged and the meter re-converges
//! once the sender is conformant again.

use silo_base::{Bytes, Dur, Rate, Time};
use std::collections::VecDeque;

/// Tolerance on meter levels, in bytes. Commit instants are exact integer
/// picoseconds but refill is computed in `f64`; one milli-byte absorbs the
/// rounding without masking any real violation (the smallest possible
/// excess is one 84-byte frame).
const METER_TOL_BYTES: f64 = 1e-3;

/// Configuration of the audit layer (attach via `SimConfig::audit`).
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Per-port backlog bounds in bytes, indexed by `PortId`. `None` (or an
    /// index past the end) disables the bound check for that port. Callers
    /// verifying the placement theorem fill this from
    /// `SiloPlacer::backlog_bounds()` plus a batching slack.
    pub port_bounds: Vec<Option<u64>>,
    /// How long after a fault window closes a violation is still attributed
    /// to that fault. Covers the drain of backlog accumulated during the
    /// window (e.g. a stalled pacer's queue flushing at line rate).
    pub attribution_slack: Dur,
    /// NIC scheduling-delay allowance for the conformance meters. A VM's
    /// wire schedule is its (exactly conformant) stamp schedule with each
    /// frame delayed by up to the NIC's transient backlog: in-batch
    /// sequencing behind other VMs' frames, void-frame rounding, and
    /// cross-VM burst collisions draining at line rate. Order-preserved
    /// delay of at most `D` inflates the apparent burst by at most
    /// `rate · D`, so each meter's capacity is raised by that much — the
    /// wire-level analogue of the one-batch-window slack the queue-bound
    /// check absorbs. Batching-scale jitter (µs) passes; fault-scale
    /// bursts (a stalled pacer releasing milliseconds of backlog) still
    /// overflow it.
    pub conformance_slack: Dur,
    /// Cap on retained violation details; counters keep exact totals.
    pub detail_cap: usize,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            port_bounds: Vec::new(),
            attribution_slack: Dur::from_ms(5),
            conformance_slack: Dur::from_us(500),
            detail_cap: 64,
        }
    }
}

/// Which invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditKind {
    /// Port byte ledger disagrees with the queue's own byte count.
    Conservation,
    /// A packet departed before it arrived (or departed untracked).
    FifoCausality,
    /// A NIC frame started before the previous frame finished.
    WireOverlap,
    /// A VM's wire schedule exceeded its admitted arrival curve.
    Conformance,
    /// Measured backlog exceeded the configured admission-time bound.
    QueueBound,
}

impl AuditKind {
    pub fn label(self) -> &'static str {
        match self {
            AuditKind::Conservation => "conservation",
            AuditKind::FifoCausality => "fifo-causality",
            AuditKind::WireOverlap => "wire-overlap",
            AuditKind::Conformance => "conformance",
            AuditKind::QueueBound => "queue-bound",
        }
    }
}

/// One audit violation (retained up to `detail_cap`; counters are exact).
#[derive(Debug, Clone)]
pub struct AuditViolation {
    pub kind: AuditKind,
    pub at: Time,
    /// Port involved, if the check is port-local.
    pub port: Option<u32>,
    /// VM involved, for conformance checks.
    pub vm: Option<u32>,
    /// Index into the fault plan if the violation falls inside a realized
    /// fault window (plus slack); `None` means unexplained.
    pub fault: Option<u32>,
    pub detail: String,
}

/// Aggregated audit results, copied into `Metrics::audit` at run end.
///
/// Never serialized into physics or canonical JSON: audit output must not
/// perturb golden-schedule comparisons.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Operations checked (enqueues + dequeues + flushes + wire frames).
    pub events_checked: u64,
    pub conservation: u64,
    pub fifo: u64,
    pub wire_overlap: u64,
    pub conformance: u64,
    pub queue_bound: u64,
    /// Release-causality counter folded in from the NIC batchers
    /// ([`silo_pacer::PacedBatcher::early_releases`]); always zero for a
    /// correct batcher and *not* part of [`AuditReport::total`].
    pub early_releases: u64,
    /// Violations inside a fault window (+ slack).
    pub attributed: u64,
    /// Violations no injected fault explains — the CI-gated number.
    pub unattributed: u64,
    pub details: Vec<AuditViolation>,
}

impl AuditReport {
    /// Total violations across all invariant classes.
    pub fn total(&self) -> u64 {
        self.conservation + self.fifo + self.wire_overlap + self.conformance + self.queue_bound
    }

    /// No violations of any kind, including batcher early releases.
    pub fn is_clean(&self) -> bool {
        self.total() == 0 && self.early_releases == 0
    }

    /// The violation-counter vector in a fixed order, for coverage
    /// signatures: `[conservation, fifo, wire_overlap, conformance,
    /// queue_bound, early_releases, attributed, unattributed]`. The
    /// schedule explorer log2-buckets these, so two schedules tripping
    /// the same invariant classes at the same magnitude collapse to one
    /// frontier entry.
    pub fn counters(&self) -> [u64; 8] {
        [
            self.conservation,
            self.fifo,
            self.wire_overlap,
            self.conformance,
            self.queue_bound,
            self.early_releases,
            self.attributed,
            self.unattributed,
        ]
    }

    /// One-line summary for benchmark / fault-suite output.
    pub fn summary(&self) -> String {
        format!(
            "audit: {} events, {} violations ({} attributed, {} unattributed) \
             [conservation {}, fifo {}, wire {}, conformance {}, queue-bound {}], \
             early releases {}",
            self.events_checked,
            self.total(),
            self.attributed,
            self.unattributed,
            self.conservation,
            self.fifo,
            self.wire_overlap,
            self.conformance,
            self.queue_bound,
            self.early_releases
        )
    }
}

/// Reference token-bucket meter that records violations and then clamps
/// back to the floor (see module docs for why clamping is the right
/// semantics for an *observer*).
#[derive(Debug, Clone)]
struct CurveMeter {
    rate: f64, // bytes/sec
    cap: f64,  // bytes
    tokens: f64,
    last: Time,
}

impl CurveMeter {
    fn new(rate: Rate, cap: Bytes) -> CurveMeter {
        CurveMeter {
            rate: rate.bytes_per_sec(),
            cap: cap.as_f64(),
            tokens: cap.as_f64(),
            last: Time::ZERO,
        }
    }

    fn reset(&mut self, now: Time) {
        self.tokens = self.cap;
        self.last = now;
    }

    /// Commit `size` bytes at `t`; returns `false` on non-conformance.
    /// Mirrors `silo_pacer::TokenBucket::commit`: a packet may finish below
    /// zero only by its own overhang past the capacity (packets larger than
    /// the burst cap still pass one at a time at the sustained rate).
    fn commit(&mut self, t: Time, size: f64) -> bool {
        if t > self.last {
            self.tokens =
                (self.tokens + self.rate * t.since(self.last).as_secs_f64()).min(self.cap);
            self.last = t;
        }
        self.tokens -= size;
        let floor = -(size - self.cap).max(0.0);
        if self.tokens < floor - METER_TOL_BYTES {
            self.tokens = floor;
            return false;
        }
        true
    }
}

/// Per-VM admitted curve parameters, for building conformance meters.
#[derive(Debug, Clone, Copy)]
pub struct VmCurve {
    pub b: Rate,
    pub s: Bytes,
    pub bmax: Rate,
}

/// The audit state threaded through the engine. All methods are observers;
/// none returns anything the engine acts on.
#[derive(Debug)]
pub struct AuditSink {
    cfg: AuditConfig,
    report: AuditReport,
    /// Per-port cumulative bytes accepted into the queue.
    in_bytes: Vec<u64>,
    /// Per-port cumulative bytes removed (transmitted or flushed).
    out_bytes: Vec<u64>,
    /// Shadow arrival-time FIFOs per port, one per priority class.
    shadows: Vec<[VecDeque<Time>; 2]>,
    /// Per-VM `{B,S}` and `{Bmax,MTU}` wire-level meters.
    meters: Vec<[CurveMeter; 2]>,
    /// Per-host wire frontier: end of the last frame released by that NIC.
    wire_frontier: Vec<Time>,
    /// Realized fault windows `(fault index, start, end)`.
    windows: Vec<(u32, Time, Time)>,
}

impl AuditSink {
    pub fn new(
        cfg: AuditConfig,
        nports: usize,
        nhosts: usize,
        vms: &[VmCurve],
        mtu: Bytes,
        windows: Vec<(u32, Time, Time)>,
    ) -> AuditSink {
        let cslack = cfg.conformance_slack;
        AuditSink {
            cfg,
            report: AuditReport::default(),
            in_bytes: vec![0; nports],
            out_bytes: vec![0; nports],
            shadows: (0..nports)
                .map(|_| [VecDeque::new(), VecDeque::new()])
                .collect(),
            meters: vms
                .iter()
                .map(|v| {
                    // Burst allowance inflated by rate × conformance_slack
                    // (see the config field doc).
                    [
                        CurveMeter::new(v.b, v.s + v.b.bytes_in(cslack)),
                        CurveMeter::new(v.bmax, mtu + v.bmax.bytes_in(cslack)),
                    ]
                })
                .collect(),
            wire_frontier: vec![Time::ZERO; nhosts],
            windows,
        }
    }

    fn violation(
        &mut self,
        kind: AuditKind,
        at: Time,
        port: Option<u32>,
        vm: Option<u32>,
        detail: String,
    ) {
        let fault = self
            .windows
            .iter()
            .find(|&&(_, ws, we)| ws <= at && at <= we + self.cfg.attribution_slack)
            .map(|&(i, _, _)| i);
        match kind {
            AuditKind::Conservation => self.report.conservation += 1,
            AuditKind::FifoCausality => self.report.fifo += 1,
            AuditKind::WireOverlap => self.report.wire_overlap += 1,
            AuditKind::Conformance => self.report.conformance += 1,
            AuditKind::QueueBound => self.report.queue_bound += 1,
        }
        if fault.is_some() {
            self.report.attributed += 1;
        } else {
            self.report.unattributed += 1;
        }
        if self.report.details.len() < self.cfg.detail_cap {
            self.report.details.push(AuditViolation {
                kind,
                at,
                port,
                vm,
                fault,
                detail,
            });
        }
    }

    fn check_conservation(&mut self, now: Time, port: usize, queued: u64) {
        let ledger = self.in_bytes[port].wrapping_sub(self.out_bytes[port]);
        if ledger != queued {
            self.violation(
                AuditKind::Conservation,
                now,
                Some(port as u32),
                None,
                format!("ledger {ledger} B vs queue {queued} B"),
            );
        }
    }

    /// An enqueue attempt at `port` finished; `queued` is the queue's byte
    /// count *after* the attempt. Rejected (tail-dropped) packets never
    /// enter the ledger.
    pub fn on_enqueue(
        &mut self,
        now: Time,
        port: usize,
        size: u64,
        prio: usize,
        queued: u64,
        accepted: bool,
    ) {
        self.report.events_checked += 1;
        if accepted {
            self.in_bytes[port] += size;
            self.shadows[port][prio].push_back(now);
            if let Some(Some(bound)) = self.cfg.port_bounds.get(port) {
                if queued > *bound {
                    let bound = *bound;
                    self.violation(
                        AuditKind::QueueBound,
                        now,
                        Some(port as u32),
                        None,
                        format!("backlog {queued} B exceeds bound {bound} B"),
                    );
                }
            }
        }
        self.check_conservation(now, port, queued);
    }

    /// A packet left `port` for transmission (`queued` = bytes remaining).
    pub fn on_dequeue(&mut self, now: Time, port: usize, size: u64, prio: usize, queued: u64) {
        self.report.events_checked += 1;
        self.out_bytes[port] += size;
        match self.shadows[port][prio].pop_front() {
            None => self.violation(
                AuditKind::FifoCausality,
                now,
                Some(port as u32),
                None,
                "departure with empty shadow FIFO".into(),
            ),
            Some(arrived) if now < arrived => {
                let lead = arrived.since(now);
                self.violation(
                    AuditKind::FifoCausality,
                    now,
                    Some(port as u32),
                    None,
                    format!("departed {:.1} ns before arrival", lead.as_ns_f64()),
                );
            }
            Some(_) => {}
        }
        self.check_conservation(now, port, queued);
    }

    /// A packet was discarded from `port` by a fault flush (link down).
    /// Same ledger/shadow bookkeeping as a dequeue, but no causality check:
    /// the packet dies in place rather than departing.
    pub fn on_flush(&mut self, now: Time, port: usize, size: u64, prio: usize, queued: u64) {
        self.report.events_checked += 1;
        self.out_bytes[port] += size;
        if self.shadows[port][prio].pop_front().is_none() {
            self.violation(
                AuditKind::FifoCausality,
                now,
                Some(port as u32),
                None,
                "flush with empty shadow FIFO".into(),
            );
        }
        self.check_conservation(now, port, queued);
    }

    /// A frame (data or void) was released onto `host`'s NIC wire.
    pub fn on_wire_frame(&mut self, host: usize, start: Time, size: Bytes, link: Rate) {
        self.report.events_checked += 1;
        let frontier = self.wire_frontier[host];
        if start < frontier {
            let overlap = frontier.since(start);
            self.violation(
                AuditKind::WireOverlap,
                start,
                None,
                None,
                format!(
                    "host {host}: frame starts {:.1} ns inside previous frame",
                    overlap.as_ns_f64()
                ),
            );
        }
        self.wire_frontier[host] = start.max(frontier) + link.tx_time(size);
    }

    /// A *data* frame from `vm` hit the wire at `start`: commit both
    /// conformance meters against the admitted curve.
    pub fn on_wire_data(&mut self, start: Time, vm: usize, size: Bytes) {
        let sz = size.as_f64();
        let over_bs = !self.meters[vm][0].commit(start, sz);
        let over_max = !self.meters[vm][1].commit(start, sz);
        if over_bs || over_max {
            let which = match (over_bs, over_max) {
                (true, true) => "{B,S} and {Bmax,MTU}",
                (true, false) => "{B,S}",
                _ => "{Bmax,MTU}",
            };
            self.violation(
                AuditKind::Conformance,
                start,
                None,
                Some(vm as u32),
                format!("wire release of {} B exceeds {which} curve", size.as_u64()),
            );
        }
    }

    /// A tenant was (re)admitted: its token buckets restart full, so the
    /// reference meters must too.
    pub fn reset_vm(&mut self, now: Time, vm: usize) {
        for m in &mut self.meters[vm] {
            m.reset(now);
        }
    }

    /// Finalize: fold in the batchers' early-release count and emit the
    /// report.
    pub fn finish(&mut self, early_releases: u64) -> AuditReport {
        self.report.early_releases = early_releases;
        self.report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unit-test config: no conformance slack, so meter boundaries sit
    /// exactly at the admitted `{B, S, Bmax}` parameters.
    fn exact_cfg() -> AuditConfig {
        AuditConfig {
            conformance_slack: Dur::ZERO,
            ..AuditConfig::default()
        }
    }

    fn sink_with(windows: Vec<(u32, Time, Time)>) -> AuditSink {
        let vms = [VmCurve {
            b: Rate::from_mbps(500),
            s: Bytes::from_kb(15),
            bmax: Rate::from_gbps(1),
        }];
        AuditSink::new(exact_cfg(), 4, 2, &vms, Bytes(1500), windows)
    }

    #[test]
    fn balanced_ledger_is_clean() {
        let mut a = sink_with(vec![]);
        a.on_enqueue(Time::from_us(1), 0, 1500, 0, 1500, true);
        a.on_dequeue(Time::from_us(2), 0, 1500, 0, 0);
        let r = a.finish(0);
        assert!(r.is_clean(), "{}", r.summary());
        assert_eq!(r.events_checked, 2);
    }

    #[test]
    fn ledger_mismatch_is_conservation_violation() {
        let mut a = sink_with(vec![]);
        // Engine claims 3000 B queued after accepting one 1500 B packet.
        a.on_enqueue(Time::from_us(1), 0, 1500, 0, 3000, true);
        let r = a.finish(0);
        assert_eq!(r.conservation, 1);
        assert_eq!(r.unattributed, 1);
        assert_eq!(r.details[0].kind, AuditKind::Conservation);
    }

    #[test]
    fn rejected_enqueue_leaves_ledger_alone() {
        let mut a = sink_with(vec![]);
        a.on_enqueue(Time::from_us(1), 0, 1500, 0, 1500, true);
        a.on_enqueue(Time::from_us(2), 0, 9000, 0, 1500, false); // tail drop
        a.on_dequeue(Time::from_us(3), 0, 1500, 0, 0);
        assert!(a.finish(0).is_clean());
    }

    #[test]
    fn departure_before_arrival_is_fifo_violation() {
        let mut a = sink_with(vec![]);
        a.on_enqueue(Time::from_us(10), 0, 1500, 0, 1500, true);
        a.on_dequeue(Time::from_us(5), 0, 1500, 0, 0);
        let r = a.finish(0);
        assert_eq!(r.fifo, 1);
    }

    #[test]
    fn priority_classes_have_independent_fifo_order() {
        let mut a = sink_with(vec![]);
        // prio-1 packet arrives first, prio-0 second; strict priority
        // dequeues prio-0 first — legal, and the shadows must agree.
        a.on_enqueue(Time::from_us(1), 0, 100, 1, 100, true);
        a.on_enqueue(Time::from_us(2), 0, 200, 0, 300, true);
        a.on_dequeue(Time::from_us(3), 0, 200, 0, 100);
        a.on_dequeue(Time::from_us(4), 0, 100, 1, 0);
        assert!(a.finish(0).is_clean());
    }

    #[test]
    fn overlapping_wire_frames_are_flagged() {
        let mut a = sink_with(vec![]);
        let link = Rate::from_gbps(10);
        a.on_wire_frame(0, Time::from_us(1), Bytes(1500), link);
        // 1500 B at 10G = 1.2 us; starting 0.5 us later overlaps.
        a.on_wire_frame(0, Time::from_us(1) + Dur::from_ns(500), Bytes(84), link);
        // A different host's NIC is an independent wire.
        a.on_wire_frame(1, Time::from_us(1) + Dur::from_ns(500), Bytes(84), link);
        let r = a.finish(0);
        assert_eq!(r.wire_overlap, 1);
    }

    #[test]
    fn conformant_wire_schedule_passes_meters() {
        let mut a = sink_with(vec![]);
        // 1500 B every 3 ms = 4 Mbps << 500 Mbps sustained; spacing 3 ms
        // also respects the 1 Gbps burst cap's MTU bucket.
        for i in 0..100u64 {
            a.on_wire_data(Time::from_ms(3 * i), 0, Bytes(1500));
        }
        assert!(a.finish(0).is_clean());
    }

    #[test]
    fn line_rate_burst_violates_and_meter_recovers() {
        let mut a = sink_with(vec![]);
        // 40 MTU packets back-to-back at 10G blow through S = 15 KB.
        let link = Rate::from_gbps(10);
        let mut t = Time::from_ms(1);
        for _ in 0..40 {
            a.on_wire_data(t, 0, Bytes(1500));
            t += link.tx_time(Bytes(1500));
        }
        let burst_violations = a.report.conformance;
        assert!(burst_violations > 0);
        // After 2 s of silence the clamped meter has refilled; a lone
        // conformant packet must not be flagged.
        a.on_wire_data(t + Dur::from_secs(2), 0, Bytes(1500));
        let r = a.finish(0);
        assert_eq!(r.conformance, burst_violations, "meter did not recover");
    }

    #[test]
    fn conformance_slack_absorbs_batching_jitter() {
        // Same 12-packet Bmax-paced salvo, but with every gap compressed
        // by 1 µs (frames delayed by NIC batching, later ones less so).
        // With zero slack that violates; with a 20 µs allowance it passes,
        // while a fault-scale burst (all 12 back-to-back at 10G) does not.
        let vms = [VmCurve {
            b: Rate::from_mbps(500),
            s: Bytes::from_kb(15),
            bmax: Rate::from_gbps(1),
        }];
        let gap = Rate::from_gbps(1).tx_time(Bytes(1500));
        let jittered = |slack: Dur| {
            let cfg = AuditConfig {
                conformance_slack: slack,
                ..AuditConfig::default()
            };
            let mut a = AuditSink::new(cfg, 1, 1, &vms, Bytes(1500), vec![]);
            let mut t = Time::from_ms(1);
            for _ in 0..12 {
                a.on_wire_data(t, 0, Bytes(1500));
                t = t + gap - Dur::from_us(1);
            }
            a.finish(0).conformance
        };
        assert!(jittered(Dur::ZERO) > 0, "compressed gaps overdraw Bmax");
        assert_eq!(jittered(Dur::from_us(20)), 0, "slack absorbs the jitter");
        let cfg = AuditConfig {
            conformance_slack: Dur::from_us(20),
            ..AuditConfig::default()
        };
        let mut a = AuditSink::new(cfg, 1, 1, &vms, Bytes(1500), vec![]);
        let wire_gap = Rate::from_gbps(10).tx_time(Bytes(1500));
        let mut t = Time::from_ms(1);
        for _ in 0..12 {
            a.on_wire_data(t, 0, Bytes(1500));
            t += wire_gap;
        }
        assert!(
            a.finish(0).conformance > 0,
            "a line-rate burst must still overflow the allowance"
        );
    }

    #[test]
    fn queue_bound_checked_only_where_configured() {
        let mut cfg = exact_cfg();
        cfg.port_bounds = vec![Some(2000), None];
        let mut a = AuditSink::new(cfg, 4, 1, &[], Bytes(1500), vec![]);
        a.on_enqueue(Time::from_us(1), 0, 1500, 0, 1500, true);
        a.on_enqueue(Time::from_us(2), 0, 1500, 0, 3000, true); // over bound
        a.on_enqueue(Time::from_us(3), 1, 9000, 0, 9000, true); // unbounded
        a.on_enqueue(Time::from_us(4), 3, 9000, 0, 9000, true); // past vector end
        let r = a.finish(0);
        assert_eq!(r.queue_bound, 1);
    }

    #[test]
    fn violations_inside_fault_windows_are_attributed() {
        let w = vec![(2u32, Time::from_ms(10), Time::from_ms(20))];
        let mut a = sink_with(w);
        // Inside the window.
        a.on_enqueue(Time::from_ms(15), 0, 100, 0, 999, true);
        // Within slack (5 ms) after the window.
        a.on_enqueue(Time::from_ms(24), 1, 100, 0, 999, true);
        // Well past the slack.
        a.on_enqueue(Time::from_ms(40), 2, 100, 0, 999, true);
        let r = a.finish(0);
        assert_eq!(r.conservation, 3);
        assert_eq!(r.attributed, 2);
        assert_eq!(r.unattributed, 1);
        assert_eq!(r.details[0].fault, Some(2));
        assert_eq!(r.details[2].fault, None);
    }

    #[test]
    fn tenant_readmission_refills_meters() {
        // A burst must respect Bmax too: pace the salvo at the burst rate
        // (1500 B at 1 Gbps = 12 µs spacing).
        let gap = Rate::from_gbps(1).tx_time(Bytes(1500));
        let salvo = |a: &mut AuditSink, t0: Time| {
            for i in 0..12u64 {
                a.on_wire_data(t0 + gap.mul_f64(i as f64), 0, Bytes(1500));
            }
        };
        let t0 = Time::from_ms(1);
        let t1 = t0 + gap.mul_f64(12.0);
        // Control: a second back-to-back salvo overdraws S = 15 KB.
        let mut a = sink_with(vec![]);
        salvo(&mut a, t0);
        assert_eq!(a.report.conformance, 0, "one paced salvo is admitted");
        salvo(&mut a, t1);
        assert!(a.report.conformance > 0);
        // With a readmission reset in between, the same schedule is clean.
        let mut b = sink_with(vec![]);
        salvo(&mut b, t0);
        b.reset_vm(t1, 0);
        salvo(&mut b, t1);
        assert_eq!(b.finish(0).conformance, 0);
    }

    #[test]
    fn detail_cap_limits_memory_not_counters() {
        let mut cfg = exact_cfg();
        cfg.detail_cap = 3;
        let mut a = AuditSink::new(cfg, 1, 1, &[], Bytes(1500), vec![]);
        for i in 0..10 {
            a.on_enqueue(Time::from_us(i), 0, 1, 0, 12345, true);
        }
        let r = a.finish(0);
        assert_eq!(r.conservation, 10);
        assert_eq!(r.details.len(), 3);
    }

    #[test]
    fn early_releases_fold_into_report() {
        let mut a = sink_with(vec![]);
        let r = a.finish(7);
        assert_eq!(r.early_releases, 7);
        assert!(!r.is_clean());
        assert_eq!(r.total(), 0, "early releases are tracked separately");
    }

    #[test]
    fn oversized_packet_passes_at_sustained_rate() {
        // A packet larger than S is legal one-at-a-time (floor semantics
        // mirror the engine's TokenBucket), but two back-to-back are not.
        let vms = [VmCurve {
            b: Rate::from_mbps(500),
            s: Bytes(1000),
            bmax: Rate::from_gbps(10),
        }];
        let mut a = AuditSink::new(exact_cfg(), 1, 1, &vms, Bytes(9000), vec![]);
        a.on_wire_data(Time::from_ms(1), 0, Bytes(9000));
        assert_eq!(a.report.conformance, 0);
        a.on_wire_data(Time::from_ms(1) + Dur::from_us(8), 0, Bytes(9000));
        assert_eq!(a.report.conformance, 1);
    }
}
