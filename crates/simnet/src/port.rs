//! Switch egress-port model: tail-drop FIFO with two 802.1q priority
//! levels, optional DCTCP ECN marking, and optional HULL phantom queues.

use crate::packet::PktId;
use silo_base::{Bytes, Dur, Rate, Time};
use std::collections::VecDeque;

/// HULL's phantom (virtual) queue: a counter drained at `γ · C` that marks
/// packets when it exceeds a threshold, signaling congestion *before* any
/// real queue forms (Alizadeh et al., NSDI 2012).
#[derive(Debug, Clone)]
pub struct PhantomQueue {
    pub bytes: f64,
    pub drain_bps: f64,
    pub thresh: f64,
    pub last: Time,
}

impl PhantomQueue {
    pub fn new(line: Rate, gamma: f64, thresh: Bytes) -> PhantomQueue {
        PhantomQueue {
            bytes: 0.0,
            drain_bps: line.as_bps() as f64 * gamma,
            thresh: thresh.as_f64(),
            last: Time::ZERO,
        }
    }

    /// Account an arrival; returns true if the packet should be CE-marked.
    pub fn on_arrival(&mut self, now: Time, size: Bytes) -> bool {
        let dt = now.since(self.last).as_secs_f64();
        self.bytes = (self.bytes - self.drain_bps / 8.0 * dt).max(0.0);
        self.last = now;
        self.bytes += size.as_f64();
        self.bytes > self.thresh
    }
}

/// A packet sitting in a port FIFO: the arena handle plus its wire size
/// (duplicated here so occupancy accounting never touches the arena).
#[derive(Debug, Clone, Copy)]
pub struct QueuedPkt {
    pub id: PktId,
    pub size: Bytes,
}

/// Outcome of [`PortState::enqueue`]. The port decides; the caller owns
/// the packet state and applies the decision (sets `enq_at`, the CE
/// mark) through the arena — the port never dereferences the handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    Accepted {
        /// ECN/phantom says mark this packet CE.
        mark_ce: bool,
    },
    /// Tail drop: the buffer is full. The drop is already counted.
    Dropped,
}

/// Runtime state of one directed egress port.
#[derive(Debug, Clone)]
pub struct PortState {
    pub rate: Rate,
    pub buffer: Bytes,
    pub prop: Dur,
    /// FIFO per priority level (0 served strictly first).
    pub queues: [VecDeque<QueuedPkt>; 2],
    pub queued_bytes: u64,
    /// Instant the current (or last) transmission ends; the port is idle
    /// whenever `now >= busy_until`.
    pub busy_until: Time,
    /// A `PortFree` wakeup event is in flight for `busy_until` — i.e. the
    /// port is mid-transmission. Exactly one is armed per transmission
    /// (see `Sim::start_tx`); an enqueue must never start service while
    /// one is pending, or same-instant ordering shifts.
    pub wakeup_armed: bool,
    /// Bit `i` set ⇔ `queues[i]` nonempty (dequeue/is_empty without
    /// scanning both VecDeques).
    nonempty: u8,
    /// DCTCP marking threshold; `None` disables ECN.
    pub ecn_k: Option<Bytes>,
    pub phantom: Option<PhantomQueue>,
    // Counters.
    pub drops: u64,
    pub tx_bytes: u64,
    pub tx_packets: u64,
    pub busy_time: Dur,
    /// High-water mark of the queue occupancy (bytes) — compared against
    /// the placement manager's backlog bounds in verification runs.
    pub max_queued: u64,
    /// Instant the high-water mark was reached (diagnostics).
    pub max_at: Time,
}

impl PortState {
    pub fn new(rate: Rate, buffer: Bytes, prop: Dur) -> PortState {
        PortState {
            rate,
            buffer,
            prop,
            queues: [VecDeque::new(), VecDeque::new()],
            queued_bytes: 0,
            busy_until: Time::ZERO,
            wakeup_armed: false,
            nonempty: 0,
            ecn_k: None,
            phantom: None,
            drops: 0,
            tx_bytes: 0,
            tx_packets: 0,
            busy_time: Dur::ZERO,
            max_queued: 0,
            max_at: Time::ZERO,
        }
    }

    /// Try to enqueue; decides tail drop and ECN/phantom marking from the
    /// wire size alone. Returns the decision for the caller to apply to
    /// the arena-resident packet.
    pub fn enqueue(&mut self, now: Time, id: PktId, size: Bytes, prio: u8) -> Enqueue {
        if self.queued_bytes + size.as_u64() > self.buffer.as_u64() {
            self.drops += 1;
            return Enqueue::Dropped;
        }
        let mut mark_ce = false;
        if let Some(k) = self.ecn_k {
            if self.queued_bytes + size.as_u64() > k.as_u64() {
                mark_ce = true;
            }
        }
        if let Some(pq) = &mut self.phantom {
            if pq.on_arrival(now, size) {
                mark_ce = true;
            }
        }
        self.queued_bytes += size.as_u64();
        if self.queued_bytes > self.max_queued {
            self.max_queued = self.queued_bytes;
            self.max_at = now;
        }
        let prio = (prio as usize).min(1);
        self.queues[prio].push_back(QueuedPkt { id, size });
        self.nonempty |= 1 << prio;
        Enqueue::Accepted { mark_ce }
    }

    /// Pop the next packet to transmit (strict priority).
    pub fn dequeue(&mut self) -> Option<QueuedPkt> {
        if self.nonempty == 0 {
            return None;
        }
        let i = self.nonempty.trailing_zeros() as usize;
        let p = self.queues[i].pop_front().expect("mask says nonempty");
        if self.queues[i].is_empty() {
            self.nonempty &= !(1 << i);
        }
        self.queued_bytes -= p.size.as_u64();
        Some(p)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nonempty == 0
    }

    /// Current utilization over a window (busy time / window).
    pub fn utilization(&self, window: Dur) -> f64 {
        if window == Dur::ZERO {
            0.0
        } else {
            self.busy_time.as_secs_f64() / window.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PathId, PktArena, PktKind};

    fn pkt(size: u64, prio: u8) -> Packet {
        Packet {
            conn: 0,
            kind: PktKind::Data,
            seq: 0,
            payload: size - 60,
            size: Bytes(size),
            retx: false,
            ce: false,
            ecn_echo: false,
            prio,
            sent_at: Time::ZERO,
            enq_at: Time::ZERO,
            path: PathId(0),
            hop: 0,
        }
    }

    /// Intern a packet and offer its handle to the port, mirroring what
    /// `Sim::enqueue_port` does (apply `mark_ce` through the arena, free
    /// the slot on a tail drop).
    fn offer(p: &mut PortState, a: &mut PktArena, now: Time, size: u64, prio: u8) -> bool {
        let id = a.alloc(pkt(size, prio));
        match p.enqueue(now, id, Bytes(size), prio) {
            Enqueue::Accepted { mark_ce } => {
                a[id].enq_at = now;
                if mark_ce {
                    a[id].ce = true;
                }
                true
            }
            Enqueue::Dropped => {
                a.free(id);
                false
            }
        }
    }

    #[test]
    fn tail_drop_at_buffer_limit() {
        let mut a = PktArena::new();
        let mut p = PortState::new(Rate::from_gbps(10), Bytes(3000), Dur::ZERO);
        assert!(offer(&mut p, &mut a, Time::ZERO, 1500, 0));
        assert!(offer(&mut p, &mut a, Time::ZERO, 1500, 0));
        assert!(!offer(&mut p, &mut a, Time::ZERO, 1500, 0));
        assert_eq!(p.drops, 1);
        assert_eq!(p.queued_bytes, 3000);
        assert_eq!(a.live(), 2, "the dropped packet's slot must be freed");
    }

    #[test]
    fn strict_priority_dequeue() {
        let mut a = PktArena::new();
        let mut p = PortState::new(Rate::from_gbps(10), Bytes(10_000), Dur::ZERO);
        assert!(offer(&mut p, &mut a, Time::ZERO, 1000, 1));
        assert!(offer(&mut p, &mut a, Time::ZERO, 1500, 0));
        let first = p.dequeue().unwrap();
        assert_eq!(a[first.id].prio, 0, "high priority preempts");
        assert_eq!(first.size, Bytes(1500), "queue entry carries the wire size");
        assert_eq!(a[p.dequeue().unwrap().id].prio, 1);
        assert!(p.dequeue().is_none());
        assert_eq!(p.queued_bytes, 0);
    }

    #[test]
    fn ecn_marks_above_k() {
        let mut a = PktArena::new();
        let mut p = PortState::new(Rate::from_gbps(10), Bytes(100_000), Dur::ZERO);
        p.ecn_k = Some(Bytes(3000));
        for _ in 0..3 {
            assert!(offer(&mut p, &mut a, Time::ZERO, 1500, 0));
        }
        let marks: Vec<bool> = (0..3).map(|_| a[p.dequeue().unwrap().id].ce).collect();
        assert_eq!(marks, vec![false, false, true]);
    }

    #[test]
    fn phantom_marks_before_real_queue() {
        // Packets arriving at exactly line rate never build a real queue,
        // but the phantom (drained at 95%) accumulates 5% per packet and
        // eventually marks.
        let line = Rate::from_gbps(10);
        let mut a = PktArena::new();
        let mut p = PortState::new(line, Bytes::from_mb(1), Dur::ZERO);
        p.phantom = Some(PhantomQueue::new(line, 0.95, Bytes(6_000)));
        let mut now = Time::ZERO;
        let mut marked = 0;
        for _ in 0..200 {
            assert!(offer(&mut p, &mut a, now, 1500, 0));
            let got = p.dequeue().unwrap();
            if a[got.id].ce {
                marked += 1;
            }
            a.free(got.id);
            now += line.tx_time(Bytes(1500));
        }
        assert!(marked > 0, "phantom queue must mark at sustained line rate");
    }

    #[test]
    fn phantom_drains_when_idle() {
        let line = Rate::from_gbps(10);
        let mut pq = PhantomQueue::new(line, 0.95, Bytes(6_000));
        for _ in 0..100 {
            pq.on_arrival(Time::ZERO, Bytes(1500));
        }
        assert!(pq.bytes > 6_000.0);
        // 1 ms of idle drains ~1.19 MB: back to zero.
        assert!(!pq.on_arrival(Time::from_ms(1), Bytes(1500)));
        assert!(pq.bytes <= 1500.0);
    }
}
