//! Property-based verification of the curve algebra (ISSUE 4 tentpole b).
//!
//! Every algebraic operation the placement bounds rest on — `add`,
//! `min_with`, `scale`, `propagate_egress` — is checked for closure
//! (results are valid normalized concave curves), pointwise agreement
//! with the defining formula, and concavity, on randomized curves whose
//! breakpoints span microseconds to seconds. The three bound functions
//! are checked against dense numerical scans: soundness (the claimed
//! bound is never exceeded anywhere on a fine grid) and tightness (the
//! scan attains it). Counterexamples shrink to small round numbers via
//! `silo_base::prop`.
//!
//! Run with `SILO_PROP_SEED`/`SILO_PROP_CASES` to reproduce or widen a
//! search; CI pins the seed.

use silo_base::prop::{forall, shrink_f64, shrink_vec, Rng, StdRng};
use silo_base::{Bytes, Dur, Rate};
use silo_netcalc::{
    backlog_bound, drain_time, propagate_egress, queue_delay_bound, Curve, Line, ServiceCurve,
};

/// Random affine lines whose crossings land near a per-case timescale
/// drawn from {µs, ms, s} — the second-scale cases are what the old
/// absolute breakpoint tolerances mishandled.
fn gen_lines(rng: &mut StdRng) -> Vec<Line> {
    let n = rng.random_range(1usize..5);
    let timescale = [1e-6, 1e-3, 1.0][rng.random_range(0usize..3)];
    (0..n)
        .map(|_| {
            let rate = 10f64.powf(3.0 + 6.0 * rng.random::<f64>()); // 1e3..1e9 B/s
            let burst = if rng.random_bool(0.15) {
                0.0
            } else {
                rng.random::<f64>() * rate * timescale
            };
            Line { rate, burst }
        })
        .collect()
}

fn gen_service(rng: &mut StdRng) -> ServiceCurve {
    ServiceCurve {
        rate: 10f64.powf(3.0 + 6.0 * rng.random::<f64>()),
        latency: if rng.random_bool(0.5) {
            0.0
        } else {
            rng.random::<f64>() * 1e-3
        },
    }
}

fn shrink_lines(lines: &[Line]) -> Vec<Vec<Line>> {
    shrink_vec(lines, |l| {
        let mut out = Vec::new();
        for r in shrink_f64(l.rate) {
            if r > 0.0 {
                out.push(Line { rate: r, ..*l });
            }
        }
        for b in shrink_f64(l.burst) {
            out.push(Line { burst: b, ..*l });
        }
        out
    })
}

/// Evaluation grid: both operands' breakpoints, midpoints between
/// consecutive ones, the service latency, near-zero epsilons and a tail
/// past the last breakpoint.
fn grid(curves: &[&Curve], s: Option<&ServiceCurve>) -> Vec<f64> {
    let mut ts = vec![0.0, 1e-12, 1e-9, 1e-6, 1e-3, 1.0, 10.0];
    for c in curves {
        ts.extend(c.breakpoints());
    }
    if let Some(s) = s {
        ts.push(s.latency);
        ts.push(s.latency + 1e-9);
    }
    ts.retain(|t| t.is_finite() && *t >= 0.0);
    ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut out = ts.clone();
    for w in ts.windows(2) {
        out.push(0.5 * (w[0] + w[1]));
    }
    if let Some(&last) = ts.last() {
        out.push(last * 2.0 + 1.0);
        out.push(last * 10.0 + 10.0);
    }
    out
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// Structural invariants `Curve::normalize` promises.
fn check_closure(c: &Curve) -> Result<(), String> {
    if c.lines().is_empty() {
        return Err("curve with no lines".into());
    }
    for l in c.lines() {
        if !(l.rate >= 0.0 && l.burst >= 0.0 && l.rate.is_finite() && l.burst.is_finite()) {
            return Err(format!("invalid line {l:?}"));
        }
    }
    for w in c.lines().windows(2) {
        if w[0].rate <= w[1].rate {
            return Err(format!("rates not strictly decreasing: {:?}", c.lines()));
        }
        if w[0].burst >= w[1].burst {
            return Err(format!("bursts not strictly increasing: {:?}", c.lines()));
        }
    }
    Ok(())
}

#[test]
fn add_is_pointwise_sum_and_closed() {
    forall(
        "add agrees pointwise and stays a valid concave curve",
        |rng| (gen_lines(rng), gen_lines(rng)),
        |(a, b)| {
            let mut out: Vec<_> = shrink_lines(a)
                .into_iter()
                .map(|a| (a, b.clone()))
                .collect();
            out.extend(shrink_lines(b).into_iter().map(|b| (a.clone(), b)));
            out
        },
        |(la, lb)| {
            let a = Curve::from_lines(la.clone());
            let b = Curve::from_lines(lb.clone());
            let s = a.add(&b);
            check_closure(&s)?;
            for t in grid(&[&a, &b, &s], None) {
                let want = a.eval(t) + b.eval(t);
                if !rel_close(s.eval(t), want, 1e-7) {
                    return Err(format!("sum mismatch at t={t}: {} vs {want}", s.eval(t)));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn min_with_is_pointwise_min_and_closed() {
    forall(
        "min_with agrees pointwise and stays a valid concave curve",
        |rng| (gen_lines(rng), gen_lines(rng)),
        |(a, b)| {
            let mut out: Vec<_> = shrink_lines(a)
                .into_iter()
                .map(|a| (a, b.clone()))
                .collect();
            out.extend(shrink_lines(b).into_iter().map(|b| (a.clone(), b)));
            out
        },
        |(la, lb)| {
            let a = Curve::from_lines(la.clone());
            let b = Curve::from_lines(lb.clone());
            let m = a.min_with(&b);
            check_closure(&m)?;
            for t in grid(&[&a, &b, &m], None) {
                let want = a.eval(t).min(b.eval(t));
                if !rel_close(m.eval(t), want, 1e-7) {
                    return Err(format!("min mismatch at t={t}: {} vs {want}", m.eval(t)));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn algebra_results_are_concave() {
    forall(
        "midpoint concavity of add/min_with results",
        |rng| (gen_lines(rng), gen_lines(rng)),
        |(a, b)| {
            let mut out: Vec<_> = shrink_lines(a)
                .into_iter()
                .map(|a| (a, b.clone()))
                .collect();
            out.extend(shrink_lines(b).into_iter().map(|b| (a.clone(), b)));
            out
        },
        |(la, lb)| {
            let a = Curve::from_lines(la.clone());
            let b = Curve::from_lines(lb.clone());
            for c in [a.add(&b), a.min_with(&b)] {
                let ts = grid(&[&c], None);
                for i in 0..ts.len() {
                    for j in (i + 1)..ts.len().min(i + 8) {
                        let (t1, t2) = (ts[i], ts[j]);
                        let mid = 0.5 * (t1 + t2);
                        let chord = 0.5 * (c.eval(t1) + c.eval(t2));
                        if c.eval(mid) < chord - 1e-7 * chord.abs().max(1.0) {
                            return Err(format!(
                                "not concave between t={t1} and t={t2}: mid {} < chord {chord}",
                                c.eval(mid)
                            ));
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn normalize_is_pointwise_idempotent() {
    forall(
        "re-normalizing a curve's own lines changes nothing pointwise",
        gen_lines,
        |lines| shrink_lines(lines),
        |lines| {
            let c = Curve::from_lines(lines.clone());
            let c2 = Curve::from_lines(c.lines().to_vec());
            for t in grid(&[&c], None) {
                if !rel_close(c.eval(t), c2.eval(t), 1e-9) {
                    return Err(format!(
                        "idempotence broken at t={t}: {} vs {}",
                        c.eval(t),
                        c2.eval(t)
                    ));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn queue_delay_bound_is_sound_and_tight() {
    forall(
        "queue_delay_bound vs dense horizontal-deviation scan",
        |rng| (gen_lines(rng), gen_service(rng)),
        |(a, s)| shrink_lines(a).into_iter().map(|a| (a, *s)).collect(),
        |(lines, s)| {
            let a = Curve::from_lines(lines.clone());
            let Some(q) = queue_delay_bound(&a, s) else {
                if a.long_term_rate() <= s.rate {
                    return Err("bounded arrival reported as unbounded".into());
                }
                return Ok(());
            };
            if q < 0.0 {
                return Err(format!("negative delay bound {q}"));
            }
            let mut scan_max = 0.0f64;
            for t in grid(&[&a], Some(s)) {
                // Independent horizontal deviation at t: earliest d ≥ 0
                // with A(t) ≤ β(t+d).
                let y = a.eval(t);
                let d = if y <= 0.0 {
                    0.0
                } else {
                    (s.latency + y / s.rate - t).max(0.0)
                };
                // Soundness: no point on the grid may beat the bound
                // (1e-11·t absorbs the deliberate 1e-12 overload slack).
                if d > q + 1e-9 + 1e-7 * q + 1e-11 * t {
                    return Err(format!("delay {d} at t={t} exceeds bound {q}"));
                }
                scan_max = scan_max.max(d);
            }
            // The t → 0⁺ limit for burstless sources.
            if a.burst() == 0.0 && a.slope_at(0.0) > 0.0 {
                scan_max = scan_max.max(s.latency);
            }
            if q > scan_max + 1e-9 + 1e-7 * scan_max {
                return Err(format!("bound {q} not attained; scan max {scan_max}"));
            }
            Ok(())
        },
    );
}

#[test]
fn backlog_bound_matches_dense_scan() {
    forall(
        "backlog_bound vs dense vertical-deviation scan",
        |rng| (gen_lines(rng), gen_service(rng)),
        |(a, s)| shrink_lines(a).into_iter().map(|a| (a, *s)).collect(),
        |(lines, s)| {
            let a = Curve::from_lines(lines.clone());
            let Some(bound) = backlog_bound(&a, s) else {
                if a.long_term_rate() <= s.rate {
                    return Err("bounded arrival reported as unbounded".into());
                }
                return Ok(());
            };
            if bound < 0.0 {
                return Err(format!("negative backlog bound {bound}"));
            }
            let mut scan_max = 0.0f64;
            for t in grid(&[&a], Some(s)) {
                let v = a.eval(t) - s.eval(t);
                if v > bound + 1e-6 + 1e-7 * bound + 1e-11 * s.rate * t {
                    return Err(format!("backlog {v} at t={t} exceeds bound {bound}"));
                }
                scan_max = scan_max.max(v);
            }
            if bound > scan_max + 1e-6 + 1e-7 * scan_max {
                return Err(format!("bound {bound} not attained; scan max {scan_max}"));
            }
            Ok(())
        },
    );
}

#[test]
fn drain_time_matches_dense_scan() {
    forall(
        "drain_time vs dense positive-region scan",
        |rng| (gen_lines(rng), gen_service(rng)),
        |(a, s)| shrink_lines(a).into_iter().map(|a| (a, *s)).collect(),
        |(lines, s)| {
            let a = Curve::from_lines(lines.clone());
            let g = |t: f64| a.eval(t) - s.eval(t);
            match drain_time(&a, s) {
                None => {
                    // Never drains only when the final rate is at (or
                    // within rounding of) the service rate, or above it.
                    if a.long_term_rate() < s.rate * (1.0 - 1e-9) {
                        return Err(format!(
                            "None but long-term rate {} clears service rate {}",
                            a.long_term_rate(),
                            s.rate
                        ));
                    }
                    Ok(())
                }
                Some(p) => {
                    if p < 0.0 || !p.is_finite() {
                        return Err(format!("drain time {p} not a finite non-negative value"));
                    }
                    // Soundness: past p the queue stays empty.
                    for t in grid(&[&a], Some(s)) {
                        let t_past = p + t + 1e-12;
                        let slack = 1e-6 + 1e-9 * s.rate * t_past.max(1.0);
                        if g(t_past) > slack {
                            return Err(format!(
                                "queue still positive ({}) at t={t_past} past drain point {p}",
                                g(t_past)
                            ));
                        }
                    }
                    // Tightness: just before a positive p the queue is
                    // still (numerically) nonempty.
                    if p > 0.0 {
                        let before = p * (1.0 - 1e-6);
                        if g(before) < -(1e-6 + 1e-6 * s.rate * p) {
                            return Err(format!(
                                "queue already drained ({}) before claimed drain point {p}",
                                g(before)
                            ));
                        }
                    }
                    Ok(())
                }
            }
        },
    );
}

#[test]
fn propagate_egress_is_closed_and_conservative() {
    forall(
        "propagate_egress keeps the rate, inflates the burst to A(c)",
        |rng| {
            (
                gen_lines(rng),
                rng.random_range(1u64..200_000), // queue capacity in µs
                rng.random_bool(0.5),
            )
        },
        |(a, c, line)| {
            shrink_lines(a)
                .into_iter()
                .map(|a| (a, *c, *line))
                .collect()
        },
        |(lines, cap_us, with_line)| {
            let a = Curve::from_lines(lines.clone());
            let cap = Dur::from_us(*cap_us);
            let line_rate = with_line.then(|| Rate::from_gbps(10));
            let out = propagate_egress(&a, cap, line_rate, Bytes(1500));
            check_closure(&out)?;
            if !rel_close(
                out.long_term_rate(),
                a.long_term_rate()
                    .min(line_rate.map_or(f64::INFINITY, |r| r.bytes_per_sec())),
                1e-9,
            ) {
                return Err(format!(
                    "long-term rate moved: {} vs {}",
                    out.long_term_rate(),
                    a.long_term_rate()
                ));
            }
            // The egress burst is exactly A(c); under a line cap it is
            // additionally limited to the cap curve's MTU intercept.
            let expect_burst = if line_rate.is_some() {
                a.eval(cap.as_secs_f64()).min(1500.0)
            } else {
                a.eval(cap.as_secs_f64())
            };
            if !rel_close(out.burst(), expect_burst, 1e-9) {
                return Err(format!("burst {} vs A(c) {}", out.burst(), expect_burst));
            }
            Ok(())
        },
    );
}

#[test]
fn service_inverse_never_negative_and_rounds_trip() {
    forall(
        "β⁻¹ is total, non-negative, and inverts β above zero",
        |rng| {
            (
                10f64.powf(3.0 + 6.0 * rng.random::<f64>()),
                rng.random::<f64>() * 1e-3,
                (rng.random::<f64>() - 0.5) * 2e9,
            )
        },
        |&(r, l, y)| shrink_f64(y.abs()).into_iter().map(|y| (r, l, y)).collect(),
        |&(rate, latency, y)| {
            let s = ServiceCurve { rate, latency };
            let t = s.inverse(y);
            if t < 0.0 {
                return Err(format!("inverse({y}) = {t} is negative"));
            }
            if y > 0.0 && !rel_close(s.eval(t), y, 1e-9) {
                return Err(format!("β(β⁻¹({y})) = {} does not round-trip", s.eval(t)));
            }
            Ok(())
        },
    );
}
