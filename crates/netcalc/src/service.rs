//! Rate-latency service curves for switch ports.

use silo_base::{Dur, Rate};

/// The rate-latency service curve `β_{R,T}(t) = R · max(0, t − T)`:
/// after at most `latency` seconds of scheduling delay the port serves at
/// least `rate` bytes per second.
///
/// A plain FIFO output port of a store-and-forward switch is `β_{C,0}`
/// where `C` is the line rate; a strict-priority low class behind a bounded
/// high class gets a non-zero `T`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceCurve {
    /// Service rate in bytes per second.
    pub rate: f64,
    /// Scheduling latency in seconds.
    pub latency: f64,
}

impl ServiceCurve {
    /// A constant-rate server (FIFO port at line rate).
    pub fn constant_rate(rate: Rate) -> ServiceCurve {
        ServiceCurve {
            rate: rate.bytes_per_sec(),
            latency: 0.0,
        }
    }

    /// A rate-latency server.
    pub fn rate_latency(rate: Rate, latency: Dur) -> ServiceCurve {
        ServiceCurve {
            rate: rate.bytes_per_sec(),
            latency: latency.as_secs_f64(),
        }
    }

    /// `β(t)` in bytes.
    pub fn eval(&self, t: f64) -> f64 {
        self.rate * (t - self.latency).max(0.0)
    }

    /// Earliest `t` with `β(t) ≥ y` — used by the horizontal-deviation
    /// computation (`β` is invertible past its latency for `rate > 0`).
    ///
    /// Total over all of `f64`: `y ≤ 0` (exactly zero for a burstless
    /// source at `t = 0`, or pushed below zero by float cancellation in a
    /// caller) is already served at `t = 0` since `β(0) = 0 ≥ y`. The
    /// result is never negative, so delay terms `inverse(A(t)) − t` folded
    /// through `max(0, ·)` can never drag a bound below zero.
    pub fn inverse(&self, y: f64) -> f64 {
        if y <= 0.0 {
            return 0.0;
        }
        assert!(self.rate > 0.0, "cannot invert a zero-rate service curve");
        self.latency + y / self.rate
    }

    /// Concatenation of two servers traversed in sequence: rates take the
    /// min, latencies add (standard min-plus convolution of rate-latency
    /// curves).
    pub fn then(&self, next: &ServiceCurve) -> ServiceCurve {
        ServiceCurve {
            rate: self.rate.min(next.rate),
            latency: self.latency + next.latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_eval() {
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        assert_eq!(s.eval(0.0), 0.0);
        assert!((s.eval(1e-3) - 1.25e6).abs() < 1e-6);
    }

    #[test]
    fn rate_latency_has_dead_time() {
        let s = ServiceCurve::rate_latency(Rate::from_gbps(10), Dur::from_us(10));
        assert_eq!(s.eval(5e-6), 0.0);
        assert!((s.eval(15e-6) - 1.25e9 * 5e-6).abs() < 1e-3);
    }

    #[test]
    fn inverse_roundtrip() {
        let s = ServiceCurve::rate_latency(Rate::from_gbps(10), Dur::from_us(10));
        let y = 123_456.0;
        let t = s.inverse(y);
        assert!((s.eval(t) - y).abs() < 1e-6);
        assert_eq!(s.inverse(0.0), 0.0);
    }

    #[test]
    fn inverse_zero_with_latency_is_zero() {
        // β(0) = 0 already serves y = 0, latency or not: the earliest
        // time is 0, not `latency`. Pinned so `queue_delay_bound`'s
        // per-breakpoint delays stay exact when A(0) = 0.
        let s = ServiceCurve::rate_latency(Rate::from_gbps(10), Dur::from_us(100));
        assert_eq!(s.inverse(0.0), 0.0);
    }

    #[test]
    fn inverse_negative_is_clamped_to_zero() {
        // Negative y can reach `inverse` via float cancellation in
        // callers; the result must never be a negative time (the old
        // code debug-asserted and then returned latency + y/rate, which
        // goes negative for y < -latency·rate).
        let s = ServiceCurve::rate_latency(Rate::from_gbps(10), Dur::from_us(10));
        assert_eq!(s.inverse(-1.0), 0.0);
        assert_eq!(s.inverse(-1e12), 0.0);
        assert_eq!(s.inverse(f64::MIN), 0.0);
    }

    #[test]
    fn inverse_is_never_negative() {
        let s = ServiceCurve::rate_latency(Rate::from_gbps(1), Dur::from_us(50));
        for i in -100..100 {
            let y = i as f64 * 1e3;
            assert!(s.inverse(y) >= 0.0, "inverse({y}) went negative");
        }
    }

    #[test]
    fn concatenation() {
        let a = ServiceCurve::rate_latency(Rate::from_gbps(10), Dur::from_us(10));
        let b = ServiceCurve::rate_latency(Rate::from_gbps(1), Dur::from_us(5));
        let c = a.then(&b);
        assert_eq!(c.rate, 1.25e8);
        assert!((c.latency - 15e-6).abs() < 1e-12);
    }
}
