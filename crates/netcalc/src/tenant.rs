//! Tenant-level curve construction: hose-model aggregation and multi-hop
//! burst propagation (paper §4.2.2, "Adding arrival curves" and
//! "Propagating arrival curves").

use crate::curve::Curve;
use silo_base::{Bytes, Dur, Rate};

/// The network guarantee of one tenant, in curve-friendly form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantTraffic {
    /// Number of VMs, `N`.
    pub n_vms: usize,
    /// Per-VM average (hose) bandwidth guarantee, `B`.
    pub b: Rate,
    /// Per-VM burst allowance, `S`.
    pub s: Bytes,
    /// Per-VM burst rate cap, `Bmax`.
    pub bmax: Rate,
    /// MTU used to account for the packet already in flight.
    pub mtu: Bytes,
}

impl TenantTraffic {
    /// Arrival curve of a single VM: the paper's `A'` dual-slope curve.
    pub fn vm_curve(&self) -> Curve {
        Curve::dual_slope(self.b, self.s, self.bmax, self.mtu)
    }

    /// Tight aggregate curve of this tenant's traffic across a cut with `m`
    /// of its `N` VMs on the sending side.
    ///
    /// The hose model caps the tenant's *sustained* rate across the cut at
    /// `min(m, N−m)·B` — more senders cannot help once receivers saturate —
    /// but burst allowances are *not* destination-limited (§4.1), so the
    /// worst-case burst is the full `m·S` delivered at `m·Bmax`:
    ///
    /// `A(t) = min( m·Bmax·t + m·MTU , min(m, N−m)·B·t + m·S )`.
    pub fn cut_curve(&self, m: usize) -> Curve {
        assert!(m <= self.n_vms, "cut larger than tenant");
        if m == 0 || self.n_vms < 2 {
            return Curve::zero();
        }
        tenant_hose_aggregate(m, self.n_vms, self.b, self.s, self.bmax, self.mtu)
    }
}

/// The tight tenant aggregate across a cut (free function form). See
/// [`TenantTraffic::cut_curve`].
pub fn tenant_hose_aggregate(
    m: usize,
    n: usize,
    b: Rate,
    s: Bytes,
    bmax: Rate,
    mtu: Bytes,
) -> Curve {
    assert!(m >= 1 && m <= n, "need 1 <= m <= n, got m={m} n={n}");
    let hose = (m.min(n - m)) as u64;
    let m64 = m as u64;
    Curve::dual_slope(b * hose, s * m64, bmax * m64, mtu * m64)
}

/// Arrival curve of traffic *after* it egresses a port whose queue is
/// guaranteed to empty at least once every `queue_capacity` (paper
/// §4.2.2, after Kurose '92).
///
/// In the worst case every byte the source may emit over one queue-capacity
/// interval is forwarded back-to-back as a single burst, so the egress burst
/// is `A(c)` while the long-term rate is unchanged. When `line_rate` is
/// given, the burst can physically drain no faster than the egress line, so
/// the curve is additionally capped by `line·t + mtu`.
pub fn propagate_egress(
    ingress: &Curve,
    queue_capacity: Dur,
    line_rate: Option<Rate>,
    mtu: Bytes,
) -> Curve {
    let c = queue_capacity.as_secs_f64();
    let burst = ingress.eval(c);
    let rate = ingress.long_term_rate();
    let tb = Curve::from_lines(vec![crate::curve::Line { rate, burst }]);
    match line_rate {
        Some(line) => tb.min_with(&Curve::token_bucket(line, mtu)),
        None => tb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::backlog_bound;
    use crate::service::ServiceCurve;

    fn tt(n: usize) -> TenantTraffic {
        TenantTraffic {
            n_vms: n,
            b: Rate::from_gbps(1),
            s: Bytes::from_kb(100),
            bmax: Rate::from_gbps(10),
            mtu: Bytes(1500),
        }
    }

    #[test]
    fn hose_rate_is_min_of_cut_sides() {
        let t = tt(9);
        // 6 senders, 3 receivers: sustained rate min(6,3)·1G = 3 Gbps.
        let c = t.cut_curve(6);
        assert!((c.long_term_rate() - 3.0 * 1.25e8).abs() < 1.0);
        // Burst is NOT destination-limited: 6·100 KB.
        assert!((c.eval(1.0) - (3.0 * 1.25e8 + 600_000.0)).abs() < 10.0);
    }

    #[test]
    fn burst_scales_with_senders() {
        let t = tt(9);
        let c = t.cut_curve(8);
        // At the burst timescale the m·Bmax line is active.
        assert_eq!(c.slope_at(0.0), 8.0 * 1.25e9);
        assert!((c.burst() - 8.0 * 1500.0).abs() < 1e-9);
    }

    #[test]
    fn tighter_than_naive_scaling() {
        // The naive sum m·A_{B,S} has sustained rate m·B; the hose-aware
        // aggregate caps it at min(m, n−m)·B — strictly tighter when
        // m > n/2.
        let t = tt(9);
        let tight = t.cut_curve(8);
        let naive = t.vm_curve().scale(8.0);
        let at_1ms = 1e-3;
        assert!(tight.eval(at_1ms) < naive.eval(at_1ms));
    }

    #[test]
    fn cut_of_zero_or_single_vm_tenant_is_zero() {
        assert_eq!(tt(9).cut_curve(0).eval(1.0), 0.0);
        // A 1-VM tenant has no network traffic between its own VMs.
        assert_eq!(tt(1).cut_curve(1).eval(1.0), 0.0);
    }

    #[test]
    fn figure5_more_crossing_senders_need_more_buffer() {
        // Without physical link caps, the raw cut curves still order the
        // two Fig. 5 placements correctly: 8 crossing senders always need
        // strictly more buffering than 6.
        let t = tt(9);
        let svc = ServiceCurve::constant_rate(Rate::from_gbps(10));
        let b8 = backlog_bound(&t.cut_curve(8), &svc).unwrap();
        let b6 = backlog_bound(&t.cut_curve(6), &svc).unwrap();
        assert!(b8 > b6, "8-sender cut {b8} vs 6-sender cut {b6}");
        assert!(b8 > 400_000.0);
    }

    #[test]
    fn propagation_inflates_burst_only() {
        // Paper's closing example: a VM with curve A_{B,S} crossing a port
        // with queue capacity c egresses as A_{B, B·c+S}.
        let a = Curve::token_bucket(Rate::from_gbps(1), Bytes::from_kb(10));
        let c = Dur::from_us(80); // 100 KB @ 10G
        let out = propagate_egress(&a, c, None, Bytes(1500));
        assert_eq!(out.long_term_rate(), 1.25e8);
        let expected_burst = 1.25e8 * 80e-6 + 10_000.0;
        assert!((out.burst() - expected_burst).abs() < 1e-6);
    }

    #[test]
    fn propagation_with_line_cap() {
        let a = Curve::token_bucket(Rate::from_gbps(1), Bytes::from_kb(10));
        let out = propagate_egress(&a, Dur::from_us(80), Some(Rate::from_gbps(10)), Bytes(1500));
        // Near t=0 the line-rate cap is active.
        assert_eq!(out.burst(), 1500.0);
        assert_eq!(out.slope_at(0.0), 1.25e9);
        assert_eq!(out.long_term_rate(), 1.25e8);
    }

    #[test]
    fn figure7_packet_bunching() {
        // Fig. 7: f1 at C/2 with a 1-packet burst shares a port with f2;
        // after the switch f1's burst can double. With queue capacity equal
        // to the drain time of the competing mix, the propagated burst for
        // f1 grows past one packet.
        let c10 = Rate::from_gbps(10);
        let pkt = Bytes(1500);
        let f1 = Curve::token_bucket(c10 / 2, pkt);
        // Queue capacity = 2 packets' transmission time (one of each flow
        // may be queued ahead).
        let cap = c10.tx_time(pkt) * 2;
        let out = propagate_egress(&f1, cap, Some(c10), pkt);
        // Burst after egress: A(c) = C/2 · c + 1500 = 3000 B = 2 packets.
        assert!((out.eval(1e-9) - 1500.0).abs() < 10.0); // line cap at t≈0
        let long_burst = out.lines().last().unwrap().burst;
        assert!(
            (long_burst - 3000.0).abs() < 1.0,
            "burst doubled: {long_burst}"
        );
    }
}
