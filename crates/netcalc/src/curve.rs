//! Concave piecewise-linear arrival curves as minima of affine lines.

use silo_base::{Bytes, Rate};

/// One affine piece `f(t) = rate·t + burst` (`rate` in bytes/second,
/// `burst` in bytes, `t` in seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    pub rate: f64,
    pub burst: f64,
}

impl Line {
    pub fn eval(&self, t: f64) -> f64 {
        self.rate * t + self.burst
    }
}

/// True when two breakpoint abscissae are the same point up to float
/// rounding. Breakpoints come out of `(Δburst)/(Δrate)` divisions whose
/// rounding error is *relative* to the magnitude of the result, so an
/// absolute window cannot work at every timescale: near `t = 1 s` genuine
/// duplicates differ by ~1e-15 (a few ULPs) while at microsecond scale the
/// same window would be six orders of magnitude too wide. Use a relative
/// tolerance with a small absolute floor so sub-microsecond breakpoints
/// keep the old exact-ish behaviour.
pub(crate) fn same_breakpoint(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1e-3)
}

/// A concave, non-decreasing, piecewise-linear arrival curve on `t ≥ 0`,
/// stored as the pointwise **minimum** of its lines.
///
/// ```
/// use silo_netcalc::Curve;
/// use silo_base::{Bytes, Rate};
///
/// // A VM guaranteed 1 Gbps with a 100 KB burst drained at 10 Gbps:
/// let a = Curve::dual_slope(
///     Rate::from_gbps(1), Bytes::from_kb(100),
///     Rate::from_gbps(10), Bytes(1500),
/// );
/// // In the first 10 us it can emit at most ~12.5 KB + one MTU…
/// assert!(a.eval(10e-6) <= 14_100.0);
/// // …and over a millisecond the sustained rate dominates.
/// assert!((a.eval(1e-3) - (1.25e8 * 1e-3 + 100_000.0)).abs() < 1.0);
/// ```
///
/// Invariants maintained by `Curve::normalize` (private):
/// * at least one line;
/// * lines sorted by strictly decreasing rate and strictly increasing burst;
/// * every line is active somewhere on `t ≥ 0` (no dominated lines).
///
/// With that invariant, line 0 (steepest, smallest burst) is active at
/// `t = 0` and the last line (shallowest) determines the long-term rate.
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    lines: Vec<Line>,
}

impl Curve {
    /// The classic token bucket `A_{B,S}(t) = B·t + S`.
    pub fn token_bucket(rate: Rate, burst: Bytes) -> Curve {
        Curve::from_lines(vec![Line {
            rate: rate.bytes_per_sec(),
            burst: burst.as_f64(),
        }])
    }

    /// The paper's `A'` (Fig. 6a): a token bucket `{B, S}` whose burst is
    /// drained at `Bmax` rather than instantaneously:
    /// `A'(t) = min(Bmax·t + mtu, B·t + S)`.
    ///
    /// The `mtu` term accounts for the one packet that may already be in
    /// flight when the burst starts (packetized traffic can never be
    /// *perfectly* fluid).
    pub fn dual_slope(b: Rate, s: Bytes, bmax: Rate, mtu: Bytes) -> Curve {
        Curve::from_lines(vec![
            Line {
                rate: bmax.bytes_per_sec(),
                burst: mtu.as_f64(),
            },
            Line {
                rate: b.bytes_per_sec(),
                burst: s.as_f64(),
            },
        ])
    }

    /// Build a curve from raw lines (normalizing away dominated ones).
    pub fn from_lines(lines: Vec<Line>) -> Curve {
        assert!(!lines.is_empty(), "curve needs at least one line");
        for l in &lines {
            assert!(
                l.rate >= 0.0 && l.burst >= 0.0 && l.rate.is_finite() && l.burst.is_finite(),
                "curve lines must be non-negative and finite, got {l:?}"
            );
        }
        let mut c = Curve { lines };
        c.normalize();
        c
    }

    /// The zero curve (a source that never sends).
    pub fn zero() -> Curve {
        Curve {
            lines: vec![Line {
                rate: 0.0,
                burst: 0.0,
            }],
        }
    }

    pub fn lines(&self) -> &[Line] {
        &self.lines
    }

    /// `A(t)` in bytes; `t` in seconds, must be ≥ 0.
    pub fn eval(&self, t: f64) -> f64 {
        debug_assert!(t >= 0.0);
        self.lines
            .iter()
            .map(|l| l.eval(t))
            .fold(f64::INFINITY, f64::min)
    }

    /// Instantaneous burst `A(0)` — the smallest line intercept.
    pub fn burst(&self) -> f64 {
        self.lines[0].burst
    }

    /// Long-term rate (bytes/sec) — the shallowest line's slope.
    pub fn long_term_rate(&self) -> f64 {
        self.lines.last().expect("normalized curve").rate
    }

    /// Right-derivative at `t` (bytes/sec): slope of the active line.
    pub fn slope_at(&self, t: f64) -> f64 {
        let mut best = self.lines[0];
        let mut best_v = best.eval(t);
        for &l in &self.lines[1..] {
            let v = l.eval(t);
            // On ties the *shallower* line wins to the right of a
            // breakpoint. The tie tolerance must scale with the value:
            // at crossings, float rounding is relative, not absolute.
            let tol = 1e-9 * best_v.abs().max(1.0);
            if v < best_v - tol || (v < best_v + tol && l.rate < best.rate) {
                best = l;
                best_v = v;
            }
        }
        best.rate
    }

    /// Breakpoint abscissae: `t = 0` plus each intersection where the active
    /// line changes, in increasing order.
    pub fn breakpoints(&self) -> Vec<f64> {
        let mut ts = vec![0.0];
        for w in self.lines.windows(2) {
            let (a, b) = (w[0], w[1]);
            // a.rate > b.rate and a.burst < b.burst by the invariant.
            let t = (b.burst - a.burst) / (a.rate - b.rate);
            ts.push(t);
        }
        ts
    }

    /// Pointwise minimum of two curves — e.g. capping a curve by a link's
    /// line rate.
    pub fn min_with(&self, other: &Curve) -> Curve {
        let mut lines = self.lines.clone();
        lines.extend_from_slice(&other.lines);
        Curve::from_lines(lines)
    }

    /// Pointwise sum — aggregating independent sources at a port.
    ///
    /// The sum of two concave PL functions is concave PL; its breakpoints
    /// are a subset of the union of the operands' breakpoints, so we sum
    /// values and slopes region by region and rebuild the line set.
    pub fn add(&self, other: &Curve) -> Curve {
        let mut ts: Vec<f64> = self
            .breakpoints()
            .into_iter()
            .chain(other.breakpoints())
            .collect();
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ts.dedup_by(|a, b| same_breakpoint(*a, *b));
        let mut lines = Vec::with_capacity(ts.len());
        for &t in &ts {
            let v = self.eval(t) + other.eval(t);
            let s = self.slope_at(t) + other.slope_at(t);
            lines.push(Line {
                rate: s,
                // `v - s·t` is mathematically ≥ 0 for concave non-negative
                // operands but can round a few ULPs below zero when a line
                // passes near the origin; clamp so `from_lines` accepts it.
                burst: (v - s * t).max(0.0),
            });
        }
        Curve::from_lines(lines)
    }

    /// Sum many curves. Returns the zero curve for an empty iterator.
    pub fn sum<'a>(curves: impl IntoIterator<Item = &'a Curve>) -> Curve {
        curves.into_iter().fold(Curve::zero(), |acc, c| acc.add(c))
    }

    /// Scale both rate and burst by `k ≥ 0` — `k` identical independent
    /// sources (note: for *same-tenant* VMs use
    /// [`crate::tenant_hose_aggregate`], which is tighter).
    pub fn scale(&self, k: f64) -> Curve {
        assert!(k >= 0.0 && k.is_finite());
        if k == 0.0 {
            return Curve::zero();
        }
        Curve::from_lines(
            self.lines
                .iter()
                .map(|l| Line {
                    rate: l.rate * k,
                    burst: l.burst * k,
                })
                .collect(),
        )
    }

    /// Restore the invariant: keep exactly the lower envelope on `t ≥ 0`.
    fn normalize(&mut self) {
        // 1. Pareto-prune: a line with both rate ≥ and burst ≥ another is
        //    never strictly below it on t ≥ 0. Ties on rate break by
        //    burst so the cheaper duplicate is scanned (and kept) first —
        //    otherwise two equal-rate lines could both survive and the
        //    hull pass below would divide by their zero rate difference.
        self.lines.sort_by(|a, b| {
            a.rate
                .partial_cmp(&b.rate)
                .unwrap()
                .then(a.burst.partial_cmp(&b.burst).unwrap())
        });
        let mut pareto: Vec<Line> = Vec::with_capacity(self.lines.len());
        // Scan from shallowest to steepest; keep a line only if its burst is
        // strictly below every burst seen so far (shallower lines).
        let mut min_burst = f64::INFINITY;
        for &l in self.lines.iter() {
            if l.burst < min_burst - 1e-12 {
                pareto.push(l);
                min_burst = l.burst;
            } else if pareto.is_empty() {
                // Degenerate: duplicate rates — keep the cheaper burst.
                pareto.push(l);
                min_burst = l.burst;
            }
        }
        // `pareto` is sorted by rate asc / burst desc; flip to rate desc.
        pareto.reverse();

        // 2. Envelope-prune (convex hull trick for minima): drop any middle
        //    line that is not strictly below the envelope of its neighbours
        //    at their crossing.
        let mut hull: Vec<Line> = Vec::with_capacity(pareto.len());
        for l in pareto {
            while hull.len() >= 2 {
                let a = hull[hull.len() - 2];
                let b = hull[hull.len() - 1];
                // Crossing of a (steeper) and l (shallower).
                let t_al = (l.burst - a.burst) / (a.rate - l.rate);
                if b.eval(t_al) >= a.eval(t_al) - 1e-9 {
                    hull.pop();
                } else {
                    break;
                }
            }
            hull.push(l);
        }
        self.lines = hull;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_base::{Bytes, Rate};

    fn tb(mbps: u64, kb: u64) -> Curve {
        Curve::token_bucket(Rate::from_mbps(mbps), Bytes::from_kb(kb))
    }

    #[test]
    fn token_bucket_eval() {
        let c = tb(800, 10); // 100 KB/s per Mbps -> 1e8 B/s
        assert_eq!(c.burst(), 10_000.0);
        assert_eq!(c.eval(0.0), 10_000.0);
        assert!((c.eval(1.0) - 100_010_000.0).abs() < 1.0);
        assert_eq!(c.long_term_rate(), 1e8);
    }

    #[test]
    fn dual_slope_matches_paper_figure() {
        // A VM with B = 1 Gbps, S = 100 KB, Bmax = 10 Gbps, MTU 1.5 KB.
        let c = Curve::dual_slope(
            Rate::from_gbps(1),
            Bytes::from_kb(100),
            Rate::from_gbps(10),
            Bytes(1500),
        );
        assert_eq!(c.lines().len(), 2);
        // Near zero the Bmax line is active.
        assert!((c.eval(0.0) - 1500.0).abs() < 1e-6);
        assert_eq!(c.slope_at(0.0), 1.25e9);
        // Long after the burst drains, the B line is active.
        assert_eq!(c.slope_at(1.0), 1.25e8);
        // The burst of S = 100 KB drains at Bmax-B = 9 Gbps:
        // crossing at t = (100000-1500)/(1.25e9-1.25e8) ≈ 87.6 us.
        let bps = c.breakpoints();
        assert_eq!(bps.len(), 2);
        assert!((bps[1] - (100_000.0 - 1500.0) / 1.125e9).abs() < 1e-12);
    }

    #[test]
    fn dominated_lines_are_pruned() {
        let c = Curve::from_lines(vec![
            Line {
                rate: 10.0,
                burst: 5.0,
            },
            Line {
                rate: 20.0,
                burst: 9.0,
            }, // dominated: steeper AND higher burst than (10,5)
        ]);
        assert_eq!(c.lines().len(), 1);
        assert_eq!(c.long_term_rate(), 10.0);
    }

    #[test]
    fn equal_rate_lines_keep_the_cheaper_burst() {
        // Regardless of input order, duplicate rates must collapse to the
        // lower intercept — two surviving equal-rate lines would give the
        // hull pass a zero rate difference to divide by.
        for lines in [
            vec![
                Line {
                    rate: 5.0,
                    burst: 2.0,
                },
                Line {
                    rate: 5.0,
                    burst: 7.0,
                },
            ],
            vec![
                Line {
                    rate: 5.0,
                    burst: 7.0,
                },
                Line {
                    rate: 5.0,
                    burst: 2.0,
                },
            ],
        ] {
            let c = Curve::from_lines(lines);
            assert_eq!(c.lines().len(), 1);
            assert_eq!(c.burst(), 2.0);
            assert_eq!(c.long_term_rate(), 5.0);
        }
    }

    #[test]
    fn middle_line_above_envelope_is_pruned() {
        // l1=(10,0), l3=(1,9): cross at t=1, value 10.
        // l2=(5,6) evaluates to 11 at t=1 -> never on the envelope.
        let c = Curve::from_lines(vec![
            Line {
                rate: 10.0,
                burst: 0.0,
            },
            Line {
                rate: 5.0,
                burst: 6.0,
            },
            Line {
                rate: 1.0,
                burst: 9.0,
            },
        ]);
        assert_eq!(c.lines().len(), 2);
    }

    #[test]
    fn middle_line_below_envelope_is_kept() {
        // l2=(5,3) at t=1 gives 8 < 10 -> needed.
        let c = Curve::from_lines(vec![
            Line {
                rate: 10.0,
                burst: 0.0,
            },
            Line {
                rate: 5.0,
                burst: 3.0,
            },
            Line {
                rate: 1.0,
                burst: 9.0,
            },
        ]);
        assert_eq!(c.lines().len(), 3);
        // Envelope evaluation agrees with brute-force min.
        for i in 0..100 {
            let t = i as f64 * 0.05;
            let brute = [10.0 * t, 5.0 * t + 3.0, t + 9.0]
                .into_iter()
                .fold(f64::INFINITY, f64::min);
            assert!((c.eval(t) - brute).abs() < 1e-9);
        }
    }

    #[test]
    fn add_token_buckets() {
        // A_{B1,S1} + A_{B2,S2} = A_{B1+B2, S1+S2} (paper §4.2.2).
        let a = tb(100, 10);
        let b = tb(200, 5);
        let s = a.add(&b);
        assert_eq!(s.lines().len(), 1);
        assert!((s.burst() - 15_000.0).abs() < 1e-6);
        assert!((s.long_term_rate() - 3.75e7).abs() < 1.0);
    }

    #[test]
    fn add_dual_slopes_pointwise() {
        let a = Curve::dual_slope(
            Rate::from_gbps(1),
            Bytes::from_kb(100),
            Rate::from_gbps(10),
            Bytes(1500),
        );
        let b = Curve::dual_slope(
            Rate::from_mbps(250),
            Bytes::from_kb(15),
            Rate::from_gbps(1),
            Bytes(1500),
        );
        let s = a.add(&b);
        for i in 0..1000 {
            let t = i as f64 * 1e-6;
            assert!(
                (s.eval(t) - (a.eval(t) + b.eval(t))).abs() < 1e-3,
                "mismatch at t={t}"
            );
        }
    }

    #[test]
    fn sum_of_none_is_zero() {
        let z = Curve::sum([]);
        assert_eq!(z.eval(1000.0), 0.0);
    }

    #[test]
    fn scale_matches_repeated_add() {
        let a = Curve::dual_slope(
            Rate::from_gbps(1),
            Bytes::from_kb(100),
            Rate::from_gbps(10),
            Bytes(1500),
        );
        let three = a.scale(3.0);
        let added = a.add(&a).add(&a);
        for i in 0..200 {
            let t = i as f64 * 5e-6;
            assert!((three.eval(t) - added.eval(t)).abs() < 1e-3);
        }
    }

    #[test]
    fn min_with_line_rate_cap() {
        let a = tb(1000, 100);
        let cap = Curve::token_bucket(Rate::from_mbps(400), Bytes(1500));
        let m = a.min_with(&cap);
        assert_eq!(m.burst(), 1500.0);
        assert_eq!(m.long_term_rate(), 5e7);
    }

    #[test]
    fn add_merges_near_duplicate_breakpoints_at_second_scale() {
        // Two operands whose crossings both land near t = 2 s but differ by
        // ~1e-13 (well beyond ULP noise at microsecond scale, well within
        // it relative to seconds). The old absolute 1e-15 dedup kept both
        // candidates and built the summed curve on near-duplicate regions;
        // the relative tolerance must merge them into one region.
        let a = Curve::from_lines(vec![
            Line {
                rate: 10.0,
                burst: 0.0,
            },
            Line {
                rate: 1.0,
                burst: 18.0, // crossing at t = 2
            },
        ]);
        let b = Curve::from_lines(vec![
            Line {
                rate: 20.0,
                burst: 0.0,
            },
            Line {
                rate: 2.0,
                burst: 36.0 * (1.0 + 1e-13), // crossing at t = 2 + 2e-13
            },
        ]);
        let s = a.add(&b);
        // One region boundary, two lines — not three.
        assert_eq!(s.lines().len(), 2, "near-dup regions kept: {:?}", s.lines());
        // And the sum still agrees pointwise, including around t = 2.
        for i in 0..400 {
            let t = i as f64 * 0.01;
            assert!(
                (s.eval(t) - (a.eval(t) + b.eval(t))).abs() < 1e-9,
                "mismatch at t={t}"
            );
        }
    }

    #[test]
    fn add_keeps_distinct_second_scale_breakpoints() {
        // Distinct breakpoints at second scale (1.0 and 1.000001) must NOT
        // be merged by the relative tolerance.
        let a = Curve::from_lines(vec![
            Line {
                rate: 10.0,
                burst: 0.0,
            },
            Line {
                rate: 1.0,
                burst: 9.0, // crossing at t = 1
            },
        ]);
        let b = Curve::from_lines(vec![
            Line {
                rate: 20.0,
                burst: 0.0,
            },
            Line {
                rate: 2.0,
                burst: 18.000018, // crossing at t = 1.000001
            },
        ]);
        let s = a.add(&b);
        assert_eq!(s.lines().len(), 3);
        for i in 0..300 {
            let t = 0.99 + i as f64 * 1e-4;
            assert!(
                (s.eval(t) - (a.eval(t) + b.eval(t))).abs() < 1e-9,
                "mismatch at t={t}"
            );
        }
    }

    #[test]
    fn add_clamps_rounded_negative_intercepts() {
        // Lines through the origin with rates that are not exactly
        // representable make `v - s·t` round a few ULPs negative at the
        // crossing; `add` must clamp instead of panicking in `from_lines`.
        let a = Curve::from_lines(vec![
            Line {
                rate: 1.0 / 3.0,
                burst: 0.0,
            },
            Line {
                rate: 0.1,
                burst: 0.7,
            },
        ]);
        let b = Curve::from_lines(vec![Line {
            rate: 1.0 / 7.0,
            burst: 0.0,
        }]);
        let s = a.add(&b);
        assert!(s.burst() >= 0.0);
        for i in 0..100 {
            let t = i as f64 * 0.1;
            assert!((s.eval(t) - (a.eval(t) + b.eval(t))).abs() < 1e-9);
        }
    }

    #[test]
    fn slope_at_breakpoint_is_right_derivative() {
        let c = Curve::from_lines(vec![
            Line {
                rate: 10.0,
                burst: 0.0,
            },
            Line {
                rate: 2.0,
                burst: 8.0,
            },
        ]);
        // Breakpoint at t = 1.
        assert_eq!(c.slope_at(1.0), 2.0);
        assert_eq!(c.slope_at(0.999), 10.0);
    }
}
