//! Multi-hop delay composition (Le Boudec & Thiran, ch. 1).
//!
//! Silo's placement bounds per-hop delay with queue *capacities* (§4.2.3)
//! because capacities are load-independent. Network calculus can do
//! better when the actual loads are known: this module composes a path's
//! service curves two classical ways and exposes the gap —
//!
//! * **Per-hop sum** ([`path_delay_sum`]): bound the delay at each hop
//!   against the (burst-inflated) arrival curve entering it, and add.
//! * **Concatenation / "pay bursts only once"** ([`path_delay_sfa`]):
//!   a tandem of rate-latency servers `β_{R₁,T₁}, …, β_{Rₖ,Tₖ}` is itself
//!   a rate-latency server `β_{min Rᵢ, ΣTᵢ}`; bounding once against it is
//!   provably tighter because the burst term is paid a single time.
//!
//! Both produce valid upper bounds; the concatenation form is what makes
//! fine-grained per-tenant delay estimates worthwhile for short paths.

use crate::bounds::queue_delay_bound;
use crate::curve::{Curve, Line};
use crate::service::ServiceCurve;

/// Upper bound on the output (egress) arrival curve of a server, via line
/// -by-line deconvolution: for a rate-latency server `β_{R,T}` and an
/// arrival line `r·t + b` with `r ≤ R`, the output is bounded by
/// `r·t + b + r·T`. Lines steeper than the service rate impose no
/// constraint at large `t` and are dropped (the result stays a valid,
/// slightly conservative bound).
///
/// Returns `None` if every line exceeds the service rate (unstable).
pub fn output_bound(a: &Curve, s: &ServiceCurve) -> Option<Curve> {
    let lines: Vec<Line> = a
        .lines()
        .iter()
        .filter(|l| l.rate <= s.rate * (1.0 + 1e-12))
        .map(|l| Line {
            rate: l.rate,
            burst: l.burst + l.rate * s.latency,
        })
        .collect();
    if lines.is_empty() {
        return None;
    }
    Some(Curve::from_lines(lines))
}

/// End-to-end delay bound by summing per-hop bounds, propagating the
/// arrival curve hop by hop. `None` if any hop is unstable.
pub fn path_delay_sum(a: &Curve, hops: &[ServiceCurve]) -> Option<f64> {
    let mut cur = a.clone();
    let mut total = 0.0;
    for s in hops {
        total += queue_delay_bound(&cur, s)?;
        cur = output_bound(&cur, s)?;
    }
    Some(total)
}

/// End-to-end delay bound via the concatenation theorem: the tandem
/// collapses to `β_{min Rᵢ, ΣTᵢ}` and the burst is paid once. `None` if
/// the path is unstable.
pub fn path_delay_sfa(a: &Curve, hops: &[ServiceCurve]) -> Option<f64> {
    let mut it = hops.iter();
    let first = *it.next()?;
    let tandem = it.fold(first, |acc, s| acc.then(s));
    queue_delay_bound(a, &tandem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_base::{Bytes, Dur, Rate};

    fn tb(gbps: u64, kb: u64) -> Curve {
        Curve::token_bucket(Rate::from_gbps(gbps), Bytes::from_kb(kb))
    }

    fn hop(gbps: u64, lat_us: u64) -> ServiceCurve {
        ServiceCurve::rate_latency(Rate::from_gbps(gbps), Dur::from_us(lat_us))
    }

    #[test]
    fn output_bound_shifts_burst_by_latency() {
        let a = tb(1, 10);
        let out = output_bound(&a, &hop(10, 100)).unwrap();
        // burst' = b + r·T = 10 KB + 1 Gbps x 100 us = 22.5 KB.
        assert!((out.burst() - (10_000.0 + 1.25e8 * 100e-6)).abs() < 1e-6);
        assert_eq!(out.long_term_rate(), 1.25e8);
    }

    #[test]
    fn output_bound_drops_super_rate_lines() {
        // Dual-slope with Bmax above the service rate: the Bmax line
        // vanishes, the sustained line survives.
        let a = Curve::dual_slope(
            Rate::from_gbps(1),
            Bytes::from_kb(100),
            Rate::from_gbps(40),
            Bytes(1500),
        );
        let out = output_bound(&a, &hop(10, 0)).unwrap();
        assert_eq!(out.lines().len(), 1);
        assert_eq!(out.long_term_rate(), 1.25e8);
    }

    #[test]
    fn unstable_hop_returns_none() {
        let a = tb(12, 10);
        assert!(output_bound(&a, &hop(10, 0)).is_none());
        assert!(path_delay_sum(&a, &[hop(10, 0)]).is_none());
        assert!(path_delay_sfa(&a, &[hop(10, 0)]).is_none());
    }

    #[test]
    fn single_hop_agrees_between_methods() {
        let a = tb(1, 100);
        let hops = [hop(10, 50)];
        let sum = path_delay_sum(&a, &hops).unwrap();
        let sfa = path_delay_sfa(&a, &hops).unwrap();
        assert!((sum - sfa).abs() < 1e-12);
        // S/R + T exactly.
        assert!((sfa - (100_000.0 / 1.25e9 + 50e-6)).abs() < 1e-12);
    }

    #[test]
    fn pay_bursts_only_once_is_tighter() {
        // Three identical hops: the per-hop sum pays the (growing) burst
        // three times; the concatenated bound pays it once.
        let a = tb(1, 100);
        let hops = [hop(10, 10), hop(10, 10), hop(10, 10)];
        let sum = path_delay_sum(&a, &hops).unwrap();
        let sfa = path_delay_sfa(&a, &hops).unwrap();
        assert!(sfa < sum, "sfa {sfa} must beat sum {sum}");
        // SFA closed form: S/R + ΣT.
        assert!((sfa - (100_000.0 / 1.25e9 + 30e-6)).abs() < 1e-12);
    }

    #[test]
    fn sfa_bound_grows_with_path_length() {
        let a = tb(1, 100);
        let short = path_delay_sfa(&a, &[hop(10, 10)]).unwrap();
        let long = path_delay_sfa(&a, &[hop(10, 10), hop(10, 10), hop(10, 10)]).unwrap();
        assert!(long > short);
    }

    #[test]
    fn heterogeneous_rates_take_the_bottleneck() {
        let a = tb(1, 50);
        let hops = [hop(40, 5), hop(2, 20), hop(10, 5)];
        let sfa = path_delay_sfa(&a, &hops).unwrap();
        // Tandem = β_{2G, 30us}: delay = S/2G + 30us.
        assert!((sfa - (50_000.0 / 0.25e9 + 30e-6)).abs() < 1e-12);
    }
}
