//! Per-port admission arithmetic: Silo's constraint C1
//! (`Q-bound ≤ Q-capacity`, paper §4.2.3) evaluated from aggregated
//! arrival curves.

use crate::bounds::{backlog_bound, queue_delay_bound};
use crate::curve::Curve;
use crate::service::ServiceCurve;
use silo_base::{Bytes, Dur, Rate};

/// Static description of one switch port for admission purposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortCalc {
    /// Egress line rate.
    pub line_rate: Rate,
    /// Packet buffer dedicated to this port.
    pub buffer: Bytes,
}

/// The result of checking an aggregate arrival curve against a port.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortVerdict {
    /// Worst-case queueing delay (the paper's *queue bound*), if finite.
    pub queue_bound: Option<Dur>,
    /// Worst-case buffer occupancy, if finite.
    pub backlog: Option<Bytes>,
    /// Does the worst case fit the buffer (constraint C1)?
    pub fits: bool,
}

impl PortCalc {
    pub fn new(line_rate: Rate, buffer: Bytes) -> PortCalc {
        assert!(line_rate.as_bps() > 0, "port needs a positive line rate");
        PortCalc { line_rate, buffer }
    }

    /// The port's *queue capacity*: the time to drain a full buffer — the
    /// maximum queueing delay any packet can suffer without being dropped
    /// (paper §4.2.1; e.g. 10 Gbps + 100 KB ⇒ 80 µs).
    pub fn queue_capacity(&self) -> Dur {
        self.line_rate.tx_time(self.buffer)
    }

    /// The port as a constant-rate server.
    pub fn service(&self) -> ServiceCurve {
        ServiceCurve::constant_rate(self.line_rate)
    }

    /// Check an aggregate arrival curve against this port.
    pub fn check(&self, aggregate: &Curve) -> PortVerdict {
        let svc = self.service();
        let q = queue_delay_bound(aggregate, &svc);
        let b = backlog_bound(aggregate, &svc);
        let fits = match b {
            Some(bytes) => bytes <= self.buffer.as_f64() + 1e-6,
            None => false,
        };
        PortVerdict {
            queue_bound: q.map(Dur::from_secs_f64),
            backlog: b.map(|x| Bytes(x.round() as u64)),
            fits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_capacity_matches_paper() {
        let p = PortCalc::new(Rate::from_gbps(10), Bytes::from_kb(100));
        assert_eq!(p.queue_capacity(), Dur::from_us(80));
        let p2 = PortCalc::new(Rate::from_gbps(10), Bytes::from_kb(312));
        // The ns2 experiments use 312 KB ≈ 250 µs queue capacity.
        assert!((p2.queue_capacity().as_us_f64() - 249.6).abs() < 0.01);
    }

    #[test]
    fn fits_is_monotone_in_load() {
        let p = PortCalc::new(Rate::from_gbps(10), Bytes::from_kb(300));
        let one = Curve::dual_slope(
            Rate::from_gbps(1),
            Bytes::from_kb(100),
            Rate::from_gbps(10),
            Bytes(1500),
        );
        assert!(p.check(&one.scale(2.0)).fits);
        assert!(!p.check(&one.scale(9.0)).fits);
    }

    #[test]
    fn overload_never_fits() {
        let p = PortCalc::new(Rate::from_gbps(10), Bytes::from_kb(300));
        let a = Curve::token_bucket(Rate::from_gbps(20), Bytes(0));
        let v = p.check(&a);
        assert!(!v.fits);
        assert_eq!(v.queue_bound, None);
        assert_eq!(v.backlog, None);
    }

    #[test]
    fn queue_bound_below_capacity_when_fits() {
        let p = PortCalc::new(Rate::from_gbps(10), Bytes::from_kb(300));
        let a = Curve::dual_slope(
            Rate::from_gbps(1),
            Bytes::from_kb(100),
            Rate::from_gbps(10),
            Bytes(1500),
        )
        .scale(2.0);
        let v = p.check(&a);
        assert!(v.fits);
        assert!(v.queue_bound.unwrap() <= p.queue_capacity());
    }
}
