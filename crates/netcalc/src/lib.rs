//! Network calculus for Silo (paper §4.2.2).
//!
//! Silo bounds switch queueing deterministically by describing every
//! traffic source with an *arrival curve* `A(t)` — an upper bound on the
//! bytes the source may emit in any interval of length `t` — and every
//! switch port with a *service curve* `β(t)` — a lower bound on the bytes
//! the port serves in any interval of length `t`. Three classic results
//! (Cruz '91, Kurose '92, Le Boudec & Thiran '01) then give everything the
//! placement manager needs:
//!
//! * the **queue bound** (maximum queueing delay) at a port is the maximum
//!   *horizontal* deviation between `A` and `β`;
//! * the **backlog bound** (maximum buffer occupancy) is the maximum
//!   *vertical* deviation;
//! * after traversing a port whose queue is guaranteed to empty at least
//!   once every `c` seconds (its *queue capacity*), traffic with arrival
//!   curve `A` conforms to an egress curve with the same long-term rate and
//!   burst inflated to `A(c)` (paper §4.2.2, "Propagating arrival curves").
//!
//! The paper's two placement constraints (§4.2.3) are computed on top of
//! these primitives by [`PortCalc`].
//!
//! # Representation
//!
//! Arrival curves here are *concave piecewise-linear* functions represented
//! as the minimum of affine lines `r·t + b` ([`Curve`]). This closed family
//! covers everything Silo needs — the token bucket `A_{B,S}`, the paper's
//! dual-slope curve `A'` that caps burst rate at `Bmax` (Fig. 6a), tenant
//! hose aggregates, and propagated curves — and it is closed under addition,
//! minimum, scaling, and egress propagation.
//!
//! Internally curves use `f64` seconds and bytes: placement is an admission
//! *bound*, not an event-ordering computation, so floating point is
//! appropriate (unlike the picosecond-exact simulators).

pub mod bounds;
pub mod cache;
pub mod curve;
pub mod path;
pub mod port;
pub mod service;
pub mod tenant;

pub use bounds::{backlog_bound, drain_time, queue_delay_bound};
pub use cache::BoundCache;
pub use curve::{Curve, Line};
pub use path::{output_bound, path_delay_sfa, path_delay_sum};
pub use port::{PortCalc, PortVerdict};
pub use service::ServiceCurve;
pub use tenant::{propagate_egress, tenant_hose_aggregate, TenantTraffic};
