//! Version-keyed memoization of per-port bound computations.
//!
//! The placement manager recomputes a port's backlog bound only when the
//! aggregate load at that port has changed since the last query. Callers
//! maintain a monotone *version* per port (bumped on every admit/evict
//! that touches the port) and pass it with each lookup; the cache returns
//! the memoized value while the version matches and recomputes otherwise.
//!
//! The memoized value is the *rounded* bound in bytes (`Option<u64>`,
//! `None` = unbounded), so a cache hit is bit-identical to a fresh
//! computation by construction — there is no float state to drift. The
//! equality of cached and from-scratch bounds is asserted end-to-end by
//! `silo_placement::SiloPlacer::verify_scratch_consistency` and the
//! admission-service differential suite.

/// One port's memo slot.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Load version the memoized value was computed at.
    version: u64,
    /// Memoized bound in bytes; `None` means the bound is unbounded
    /// (sustained rate oversubscribes the line), which is cached too.
    value: Option<u64>,
    /// False until the first computation at any version.
    valid: bool,
}

const EMPTY: Slot = Slot {
    version: 0,
    value: None,
    valid: false,
};

/// Version-keyed cache of per-port bounds (bytes), indexed densely by
/// port id.
#[derive(Debug, Clone)]
pub struct BoundCache {
    slots: Vec<Slot>,
    hits: u64,
    misses: u64,
}

impl BoundCache {
    pub fn new(ports: usize) -> BoundCache {
        BoundCache {
            slots: vec![EMPTY; ports],
            hits: 0,
            misses: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The memoized bound for `idx` at load version `version`, computing
    /// (and memoizing) it with `compute` when the slot is stale or empty.
    pub fn get_or_insert_with(
        &mut self,
        idx: usize,
        version: u64,
        compute: impl FnOnce() -> Option<u64>,
    ) -> Option<u64> {
        let slot = &mut self.slots[idx];
        if slot.valid && slot.version == version {
            self.hits += 1;
            return slot.value;
        }
        let value = compute();
        *slot = Slot {
            version,
            value,
            valid: true,
        };
        self.misses += 1;
        value
    }

    /// Lookups answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to recompute (stale version or first query).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drop every memoized value (e.g. after wholesale state replacement).
    pub fn invalidate_all(&mut self) {
        self.slots.fill(EMPTY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_per_version() {
        use std::cell::Cell;
        let mut c = BoundCache::new(4);
        let calls = Cell::new(0);
        let get = |c: &mut BoundCache, v: u64| {
            c.get_or_insert_with(2, v, || {
                calls.set(calls.get() + 1);
                Some(100 + v)
            })
        };
        assert_eq!(get(&mut c, 0), Some(100));
        assert_eq!(get(&mut c, 0), Some(100));
        assert_eq!(calls.get(), 1, "same version must hit the memo");
        assert_eq!(get(&mut c, 1), Some(101));
        assert_eq!(calls.get(), 2, "version bump must recompute");
        assert_eq!((c.hits(), c.misses()), (1, 2));
    }

    #[test]
    fn caches_unbounded_results() {
        let mut c = BoundCache::new(1);
        let mut calls = 0;
        for _ in 0..3 {
            let v = c.get_or_insert_with(0, 7, || {
                calls += 1;
                None
            });
            assert_eq!(v, None);
        }
        assert_eq!(calls, 1, "None must be memoized like any value");
    }

    #[test]
    fn version_zero_is_not_confused_with_empty() {
        let mut c = BoundCache::new(1);
        assert_eq!(c.get_or_insert_with(0, 0, || Some(5)), Some(5));
        assert_eq!(c.get_or_insert_with(0, 0, || panic!("must hit")), Some(5));
        c.invalidate_all();
        assert_eq!(c.get_or_insert_with(0, 0, || Some(9)), Some(9));
    }
}
