//! Deviation bounds between arrival and service curves (paper Fig. 6b).
//!
//! For a concave PL arrival curve `A` and a convex rate-latency service
//! curve `β`, every bound below is attained at a breakpoint of `A` (or at
//! `β`'s latency knee), so all three functions are exact, not numerical
//! approximations.

use crate::curve::Curve;
use crate::service::ServiceCurve;

/// Maximum *horizontal* deviation `q = sup_t inf{ d ≥ 0 : A(t) ≤ β(t+d) }`
/// — the **queue (delay) bound** of a FIFO port, in seconds.
///
/// Returns `None` when the long-term arrival rate exceeds the service rate
/// (the queue grows without bound).
pub fn queue_delay_bound(a: &Curve, s: &ServiceCurve) -> Option<f64> {
    if a.long_term_rate() > s.rate * (1.0 + 1e-12) {
        return None;
    }
    // d(t) = β⁻¹(A(t)) − t is concave PL; max over breakpoints of A.
    let mut best = 0.0f64;
    for t in a.breakpoints() {
        let d = s.inverse(a.eval(t)) - t;
        best = best.max(d);
    }
    Some(best)
}

/// Maximum *vertical* deviation `sup_t A(t) − β(t)` — the **backlog bound**
/// (maximum buffer occupancy) in bytes.
///
/// Returns `None` when the backlog is unbounded.
pub fn backlog_bound(a: &Curve, s: &ServiceCurve) -> Option<f64> {
    if a.long_term_rate() > s.rate * (1.0 + 1e-12) {
        return None;
    }
    let mut cands = a.breakpoints();
    cands.push(s.latency);
    let mut best = 0.0f64;
    for t in cands {
        best = best.max(a.eval(t) - s.eval(t));
    }
    Some(best)
}

/// The *drain point* `p`: the length of the longest interval over which the
/// port's queue need not empty — i.e. the last instant with `A(t) > β(t)`
/// (paper Fig. 6b). Kurose's burst-propagation bound needs an upper bound
/// on `p`; Silo uses the port's queue capacity instead, but we expose the
/// exact value for analysis and tests.
///
/// Returns `Some(0.0)` if the queue never builds (`A ≤ β` everywhere) and
/// `None` if it never drains.
pub fn drain_time(a: &Curve, s: &ServiceCurve) -> Option<f64> {
    let g0 = a.eval(0.0) - s.eval(0.0);
    if g0 <= 0.0 && a.long_term_rate() <= s.rate {
        return Some(0.0);
    }
    if a.long_term_rate() >= s.rate {
        // Equal rates with positive burst never drain either.
        return None;
    }
    // g(t) = A(t) − β(t) is concave with g(0) > 0 and final slope < 0:
    // the positive region is [0, p); find the root in the last segment
    // where g is still positive.
    let mut cands = a.breakpoints();
    cands.push(s.latency);
    cands.sort_by(|x, y| x.partial_cmp(y).unwrap());
    cands.dedup_by(|x, y| (*x - *y).abs() < 1e-15);
    // Last candidate with g > 0.
    let mut t0 = 0.0;
    for &t in &cands {
        if a.eval(t) - s.eval(t) > 0.0 {
            t0 = t;
        }
    }
    let g_t0 = a.eval(t0) - s.eval(t0);
    // In the segment after t0 the slope of g is (A' − R) < 0 (t0 is past
    // the latency knee because A > 0 ≥ β before it).
    let slope = a.slope_at(t0) - s.rate;
    debug_assert!(slope < 0.0);
    Some(t0 + g_t0 / (-slope))
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_base::{Bytes, Dur, Rate};

    #[test]
    fn single_token_bucket_delay_is_burst_over_rate() {
        // A_{B,S} against β_{C,0}: q = S/C (classic result).
        let a = Curve::token_bucket(Rate::from_gbps(1), Bytes::from_kb(100));
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        let q = queue_delay_bound(&a, &s).unwrap();
        assert!((q - 100_000.0 / 1.25e9).abs() < 1e-12);
        // Backlog bound is the full burst (arrives instantaneously).
        assert!((backlog_bound(&a, &s).unwrap() - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn dual_slope_tightens_the_bound() {
        // With the burst drained at Bmax = 10G into a 10G port the backlog
        // from a single source is only ~MTU, far below S.
        let a = Curve::dual_slope(
            Rate::from_gbps(1),
            Bytes::from_kb(100),
            Rate::from_gbps(10),
            Bytes(1500),
        );
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        let b = backlog_bound(&a, &s).unwrap();
        assert!(b <= 1500.0 + 1e-6, "backlog {b}");
    }

    #[test]
    fn paper_example_fig5_bursting_vms() {
        // Fig. 5: a tenant with 9 VMs, each {B = 1 Gbps, S = 100 KB,
        // Bmax = 10 Gbps}, on 3 servers behind 10 Gbps NICs. We model the
        // traffic crossing the port toward the receiving server as the sum
        // of per-server curves — each capped by the server's 10 G link —
        // then capped by the tenant hose rate min(m, N−m)·B.
        let s10 = ServiceCurve::constant_rate(Rate::from_gbps(10));
        let link = Curve::token_bucket(Rate::from_gbps(10), Bytes(1500));
        let per_server = |k: f64| {
            Curve::dual_slope(
                Rate::from_gbps(1),
                Bytes::from_kb(100),
                Rate::from_gbps(10),
                Bytes(1500),
            )
            .scale(k)
            .min_with(&link)
        };

        // Placement (a): 3 + 5 senders on two servers, all 8 burst to VM 9.
        // The paper's simplified arithmetic says 800 KB at 20 G into 10 G
        // needs 400 KB of buffering; the exact bound (which also counts
        // token refill during the burst) is a bit larger, ~422 KB. Either
        // way it overflows a 300 KB buffer.
        let hose_a = Curve::token_bucket(Rate::from_gbps(1), Bytes::from_kb(800));
        let agg_a = per_server(3.0).add(&per_server(5.0)).min_with(&hose_a);
        let b_a = backlog_bound(&agg_a, &s10).unwrap();
        assert!(b_a > 400_000.0, "placement (a) backlog {b_a}");
        assert!(b_a < 440_000.0, "placement (a) backlog {b_a}");

        // Placement (b): 3 + 3 senders cross the port (paper: 600 KB at
        // 20 G needs 300 KB; exact bound ~354 KB).
        let hose_b = Curve::token_bucket(Rate::from_gbps(3), Bytes::from_kb(600));
        let agg_b = per_server(3.0).add(&per_server(3.0)).min_with(&hose_b);
        let b_b = backlog_bound(&agg_b, &s10).unwrap();
        assert!(
            b_b > 300_000.0 && b_b < 360_000.0,
            "placement (b) backlog {b_b}"
        );
        // Silo's placement (b) strictly dominates the bandwidth-aware one.
        assert!(b_b < b_a);
    }

    #[test]
    fn overload_is_unbounded() {
        let a = Curve::token_bucket(Rate::from_gbps(11), Bytes(1500));
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        assert_eq!(queue_delay_bound(&a, &s), None);
        assert_eq!(backlog_bound(&a, &s), None);
        assert_eq!(drain_time(&a, &s), None);
    }

    #[test]
    fn drain_time_token_bucket() {
        // A_{B,S} vs β_{C,0}: queue drains when B·t + S = C·t, p = S/(C−B).
        let a = Curve::token_bucket(Rate::from_gbps(2), Bytes::from_kb(90));
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        let p = drain_time(&a, &s).unwrap();
        let expected = 90_000.0 / (1.25e9 - 0.25e9);
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn drain_time_zero_when_no_queue() {
        let a = Curve::token_bucket(Rate::from_gbps(1), Bytes(0));
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        assert_eq!(drain_time(&a, &s), Some(0.0));
    }

    #[test]
    fn service_latency_adds_to_delay_bound() {
        let a = Curve::token_bucket(Rate::from_gbps(1), Bytes::from_kb(10));
        let s = ServiceCurve::rate_latency(Rate::from_gbps(10), Dur::from_us(100));
        let q = queue_delay_bound(&a, &s).unwrap();
        assert!((q - (100e-6 + 10_000.0 / 1.25e9)).abs() < 1e-12);
    }

    #[test]
    fn equal_rate_with_burst_never_drains() {
        let a = Curve::token_bucket(Rate::from_gbps(10), Bytes(1500));
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        assert_eq!(drain_time(&a, &s), None);
        // But the queue bound is finite: the burst waits S/C.
        let q = queue_delay_bound(&a, &s).unwrap();
        assert!((q - 1500.0 / 1.25e9).abs() < 1e-15);
    }
}
