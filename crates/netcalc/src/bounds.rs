//! Deviation bounds between arrival and service curves (paper Fig. 6b).
//!
//! For a concave PL arrival curve `A` and a convex rate-latency service
//! curve `β`, every bound below is attained at a breakpoint of `A` (or at
//! `β`'s latency knee), so all three functions are exact, not numerical
//! approximations.

use crate::curve::{same_breakpoint, Curve};
use crate::service::ServiceCurve;

/// Maximum *horizontal* deviation `q = sup_t inf{ d ≥ 0 : A(t) ≤ β(t+d) }`
/// — the **queue (delay) bound** of a FIFO port, in seconds.
///
/// Returns `None` when the long-term arrival rate exceeds the service rate
/// (the queue grows without bound).
pub fn queue_delay_bound(a: &Curve, s: &ServiceCurve) -> Option<f64> {
    if a.long_term_rate() > s.rate * (1.0 + 1e-12) {
        return None;
    }
    // d(t) = β⁻¹(A(t)) − t is concave PL; max over breakpoints of A.
    let mut best = 0.0f64;
    if a.burst() == 0.0 && a.slope_at(0.0) > 0.0 {
        // A burstless source makes d(0) = β⁻¹(0) − 0 = 0 exactly, yet the
        // limit from the right is the full scheduling latency (the first
        // byte still waits out T). The sup lives at t → 0⁺, which no
        // breakpoint candidate sees.
        best = s.latency;
    }
    for t in a.breakpoints() {
        let d = s.inverse(a.eval(t)) - t;
        best = best.max(d);
    }
    Some(best)
}

/// Maximum *vertical* deviation `sup_t A(t) − β(t)` — the **backlog bound**
/// (maximum buffer occupancy) in bytes.
///
/// Returns `None` when the backlog is unbounded.
pub fn backlog_bound(a: &Curve, s: &ServiceCurve) -> Option<f64> {
    if a.long_term_rate() > s.rate * (1.0 + 1e-12) {
        return None;
    }
    let mut cands = a.breakpoints();
    cands.push(s.latency);
    let mut best = 0.0f64;
    for t in cands {
        best = best.max(a.eval(t) - s.eval(t));
    }
    Some(best)
}

/// The *drain point* `p`: the length of the longest interval over which the
/// port's queue need not empty — i.e. the last instant with `A(t) > β(t)`
/// (paper Fig. 6b). Kurose's burst-propagation bound needs an upper bound
/// on `p`; Silo uses the port's queue capacity instead, but we expose the
/// exact value for analysis and tests.
///
/// Returns `Some(0.0)` if the queue never builds (`A ≤ β` everywhere) and
/// `None` if it never drains.
pub fn drain_time(a: &Curve, s: &ServiceCurve) -> Option<f64> {
    let g0 = a.eval(0.0) - s.eval(0.0);
    if g0 <= 0.0 && s.latency == 0.0 && a.slope_at(0.0) <= s.rate {
        // A(0) ≤ β(0) with no dead time and an initial slope already at or
        // below the service rate: concavity keeps A under β forever.
        // (The old `long_term_rate() ≤ s.rate` version wrongly returned 0
        // for burstless sources facing a latency knee or a steep initial
        // slope — both build queue before the long-term rate takes over.)
        return Some(0.0);
    }
    if a.long_term_rate() >= s.rate {
        // Equal rates with positive burst never drain either.
        return None;
    }
    // g(t) = A(t) − β(t) is concave with g(0) > 0 and final slope < 0:
    // the positive region is [0, p); find the root in the last segment
    // where g is still positive.
    let mut cands = a.breakpoints();
    cands.push(s.latency);
    cands.sort_by(|x, y| x.partial_cmp(y).unwrap());
    cands.dedup_by(|x, y| same_breakpoint(*x, *y));
    // Last candidate with g > 0.
    let mut t0 = 0.0;
    for &t in &cands {
        if a.eval(t) - s.eval(t) > 0.0 {
            t0 = t;
        }
    }
    let g_t0 = a.eval(t0) - s.eval(t0);
    // In the segment after t0 the slope of g is (A' − R) < 0 (t0 is past
    // the latency knee because A > 0 ≥ β before it). But when the final
    // arrival rate sits within rounding of the service rate — under the
    // `>=` check above only by float noise, yet `slope_at`'s tie handling
    // can still report a slope at or above `s.rate` — the difference is
    // 0.0 or even slightly positive, and extrapolating along it yields an
    // infinite, absurdly large, or negative drain time. Treat anything
    // less than a relative margin below zero as "never drains".
    let slope = a.slope_at(t0) - s.rate;
    if slope >= -1e-12 * s.rate.max(1.0) || slope.is_nan() {
        return None;
    }
    Some(t0 + g_t0 / (-slope))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::Line;
    use silo_base::{Bytes, Dur, Rate};

    #[test]
    fn single_token_bucket_delay_is_burst_over_rate() {
        // A_{B,S} against β_{C,0}: q = S/C (classic result).
        let a = Curve::token_bucket(Rate::from_gbps(1), Bytes::from_kb(100));
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        let q = queue_delay_bound(&a, &s).unwrap();
        assert!((q - 100_000.0 / 1.25e9).abs() < 1e-12);
        // Backlog bound is the full burst (arrives instantaneously).
        assert!((backlog_bound(&a, &s).unwrap() - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn dual_slope_tightens_the_bound() {
        // With the burst drained at Bmax = 10G into a 10G port the backlog
        // from a single source is only ~MTU, far below S.
        let a = Curve::dual_slope(
            Rate::from_gbps(1),
            Bytes::from_kb(100),
            Rate::from_gbps(10),
            Bytes(1500),
        );
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        let b = backlog_bound(&a, &s).unwrap();
        assert!(b <= 1500.0 + 1e-6, "backlog {b}");
    }

    #[test]
    fn paper_example_fig5_bursting_vms() {
        // Fig. 5: a tenant with 9 VMs, each {B = 1 Gbps, S = 100 KB,
        // Bmax = 10 Gbps}, on 3 servers behind 10 Gbps NICs. We model the
        // traffic crossing the port toward the receiving server as the sum
        // of per-server curves — each capped by the server's 10 G link —
        // then capped by the tenant hose rate min(m, N−m)·B.
        let s10 = ServiceCurve::constant_rate(Rate::from_gbps(10));
        let link = Curve::token_bucket(Rate::from_gbps(10), Bytes(1500));
        let per_server = |k: f64| {
            Curve::dual_slope(
                Rate::from_gbps(1),
                Bytes::from_kb(100),
                Rate::from_gbps(10),
                Bytes(1500),
            )
            .scale(k)
            .min_with(&link)
        };

        // Placement (a): 3 + 5 senders on two servers, all 8 burst to VM 9.
        // The paper's simplified arithmetic says 800 KB at 20 G into 10 G
        // needs 400 KB of buffering; the exact bound (which also counts
        // token refill during the burst) is a bit larger, ~422 KB. Either
        // way it overflows a 300 KB buffer.
        let hose_a = Curve::token_bucket(Rate::from_gbps(1), Bytes::from_kb(800));
        let agg_a = per_server(3.0).add(&per_server(5.0)).min_with(&hose_a);
        let b_a = backlog_bound(&agg_a, &s10).unwrap();
        assert!(b_a > 400_000.0, "placement (a) backlog {b_a}");
        assert!(b_a < 440_000.0, "placement (a) backlog {b_a}");

        // Placement (b): 3 + 3 senders cross the port (paper: 600 KB at
        // 20 G needs 300 KB; exact bound ~354 KB).
        let hose_b = Curve::token_bucket(Rate::from_gbps(3), Bytes::from_kb(600));
        let agg_b = per_server(3.0).add(&per_server(3.0)).min_with(&hose_b);
        let b_b = backlog_bound(&agg_b, &s10).unwrap();
        assert!(
            b_b > 300_000.0 && b_b < 360_000.0,
            "placement (b) backlog {b_b}"
        );
        // Silo's placement (b) strictly dominates the bandwidth-aware one.
        assert!(b_b < b_a);
    }

    #[test]
    fn overload_is_unbounded() {
        let a = Curve::token_bucket(Rate::from_gbps(11), Bytes(1500));
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        assert_eq!(queue_delay_bound(&a, &s), None);
        assert_eq!(backlog_bound(&a, &s), None);
        assert_eq!(drain_time(&a, &s), None);
    }

    #[test]
    fn drain_time_token_bucket() {
        // A_{B,S} vs β_{C,0}: queue drains when B·t + S = C·t, p = S/(C−B).
        let a = Curve::token_bucket(Rate::from_gbps(2), Bytes::from_kb(90));
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        let p = drain_time(&a, &s).unwrap();
        let expected = 90_000.0 / (1.25e9 - 0.25e9);
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn drain_time_zero_when_no_queue() {
        let a = Curve::token_bucket(Rate::from_gbps(1), Bytes(0));
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        assert_eq!(drain_time(&a, &s), Some(0.0));
    }

    #[test]
    fn service_latency_adds_to_delay_bound() {
        let a = Curve::token_bucket(Rate::from_gbps(1), Bytes::from_kb(10));
        let s = ServiceCurve::rate_latency(Rate::from_gbps(10), Dur::from_us(100));
        let q = queue_delay_bound(&a, &s).unwrap();
        assert!((q - (100e-6 + 10_000.0 / 1.25e9)).abs() < 1e-12);
    }

    #[test]
    fn equal_rate_with_burst_never_drains() {
        let a = Curve::token_bucket(Rate::from_gbps(10), Bytes(1500));
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        assert_eq!(drain_time(&a, &s), None);
        // But the queue bound is finite: the burst waits S/C.
        let q = queue_delay_bound(&a, &s).unwrap();
        assert!((q - 1500.0 / 1.25e9).abs() < 1e-15);
    }

    #[test]
    fn drain_time_near_equal_rate_boundary_is_none() {
        // Arrival rate a hair *below* the service rate: the strict `>=`
        // overload check passes, but the drain slope is float noise. The
        // old code extrapolated along it — a ~1.2e7-second "drain time" —
        // or tripped `debug_assert!(slope < 0.0)` when the difference
        // rounded to exactly 0.0. Both must be reported as "never drains".
        let c = 1.25e9; // 10 Gbps in bytes/sec
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        for slack in [0.0, 1e-16, 1e-14, 1e-13] {
            let a = Curve::from_lines(vec![Line {
                rate: c * (1.0 - slack),
                burst: 1500.0,
            }]);
            assert_eq!(
                drain_time(&a, &s),
                None,
                "slack {slack}: rate within rounding of service rate must not drain"
            );
        }
        // Just outside the guard band the exact formula still applies.
        let slack = 1e-9;
        let a = Curve::from_lines(vec![Line {
            rate: c * (1.0 - slack),
            burst: 1500.0,
        }]);
        let p = drain_time(&a, &s).unwrap();
        assert!((p - 1500.0 / (c * slack)).abs() / p < 1e-6, "p = {p}");
    }

    #[test]
    fn drain_time_dual_slope_equal_final_rate_is_none() {
        // Multi-line curve whose *final* rate equals the service rate
        // exactly: the burst region queues, the tail never drains it.
        let a = Curve::dual_slope(
            Rate::from_gbps(10),
            Bytes::from_kb(100),
            Rate::from_gbps(40),
            Bytes(1500),
        );
        let s = ServiceCurve::constant_rate(Rate::from_gbps(10));
        assert_eq!(drain_time(&a, &s), None);
    }

    #[test]
    fn burstless_source_still_waits_out_the_latency() {
        // A(0) = 0 used to make the t = 0 candidate evaluate to
        // inverse(0) − 0 = 0 and the bound came out 0; the sup is the
        // limit t → 0⁺, where the first byte waits the full latency.
        let a = Curve::token_bucket(Rate::from_gbps(1), Bytes(0));
        let s = ServiceCurve::rate_latency(Rate::from_gbps(10), Dur::from_us(100));
        let q = queue_delay_bound(&a, &s).unwrap();
        assert!((q - 100e-6).abs() < 1e-15, "q = {q}");
        // The zero curve really does have a zero bound, though: no
        // traffic, no delay.
        assert_eq!(queue_delay_bound(&Curve::zero(), &s), Some(0.0));
    }

    #[test]
    fn burstless_source_builds_queue_during_latency() {
        // Old early-out returned Some(0.0) whenever A(0) = 0 and the
        // long-term rate fit, ignoring both the latency knee and a steep
        // initial slope. A 1G burstless source into a 10G port with
        // 100 us dead time queues until R·(t−T) catches up:
        // p = R·T/(R−B) = 1.25e9·1e-4/1.125e9.
        let a = Curve::token_bucket(Rate::from_gbps(1), Bytes(0));
        let s = ServiceCurve::rate_latency(Rate::from_gbps(10), Dur::from_us(100));
        let p = drain_time(&a, &s).unwrap();
        let expected = 1.25e9 * 100e-6 / (1.25e9 - 1.25e8);
        assert!((p - expected).abs() < 1e-12, "p = {p}");

        // Steep start, shallow tail, no burst, no latency: drains where
        // the first-segment surplus is worked off.
        let a = Curve::from_lines(vec![
            Line {
                rate: 20.0,
                burst: 0.0,
            },
            Line {
                rate: 1.0,
                burst: 19.0, // breakpoint at t = 1
            },
        ]);
        let s = ServiceCurve {
            rate: 10.0,
            latency: 0.0,
        };
        // g(1) = 20 − 10 = 10, then slope 1 − 10 = −9: p = 1 + 10/9.
        let p = drain_time(&a, &s).unwrap();
        assert!((p - (1.0 + 10.0 / 9.0)).abs() < 1e-12, "p = {p}");
    }

    #[test]
    fn drain_time_second_scale_breakpoints() {
        // Breakpoints at second scale: the old absolute 1e-15 dedup kept
        // near-duplicate candidates. The exact drain point must still come
        // out: A = min(2t + 0.5, t + 2.5) vs β = 1.2·t crosses last where
        // t + 2.5 = 1.2 t  →  p = 12.5 s.
        let a = Curve::from_lines(vec![
            Line {
                rate: 2.0,
                burst: 0.5,
            },
            Line {
                rate: 1.0,
                burst: 2.5, // breakpoint at t = 2 s
            },
        ]);
        let s = ServiceCurve {
            rate: 1.2,
            latency: 0.0,
        };
        let p = drain_time(&a, &s).unwrap();
        assert!((p - 12.5).abs() < 1e-9, "p = {p}");
    }
}
