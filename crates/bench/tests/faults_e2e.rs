//! End-to-end acceptance of the fault subsystem: a ToR-link failure
//! driven through BOTH layers at once.
//!
//! Placement side: admitting a cross-rack tenant, killing the ToR uplink
//! must reclaim its budgets and either re-place it on surviving capacity
//! or downgrade it with a recorded reason; restoring the link must make
//! every tenant whole again.
//!
//! Data-plane side: the same outage in the simulator must (a) attribute
//! every guarantee-violation window that overlaps the outage to the
//! injected fault, and (b) leave a tenant that was re-admitted after
//! recovery with ZERO violations — fresh guarantees actually hold on the
//! healed network.

use silo_base::{Bytes, Dur, Rate, Time};
use silo_placement::{DegradeOutcome, Guarantee, Placer, SiloPlacer, TenantRequest};
use silo_simnet::{FaultPlan, Sim, SimConfig, TenantSpec, TenantWorkload, TransportMode};
use silo_topology::{HostId, Topology, TreeParams};

fn two_rack_topo() -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 2,
        servers_per_rack: 4,
        vm_slots_per_server: 4,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

/// A guaranteed cross-rack OLDI tenant with an explicit delay bound, so
/// completed messages are checked and violations recorded.
fn cross_rack_tenant(a: u32, b: u32) -> TenantSpec {
    TenantSpec {
        vm_hosts: vec![HostId(a), HostId(b)],
        b: Rate::from_mbps(500),
        s: Bytes::from_kb(15),
        bmax: Rate::from_gbps(1),
        prio: 0,
        delay: Some(Dur::from_ms(2)),
        workload: TenantWorkload::OldiPeriodic {
            msg: Bytes::from_kb(15),
            period: Dur::from_ms(2),
        },
    }
}

#[test]
fn tor_outage_attributes_violations_and_readmitted_tenant_is_clean() {
    let topo = two_rack_topo();
    let tor0 = topo.tor_link(0).0;
    // Outage [20, 30) ms. Tenant 0 churns with the failure: it departs at
    // the outage and is re-admitted at 35 ms, after the link healed (the
    // placement layer's restore + re-admit, seen from the data plane).
    // Tenant 1 rides through the outage in place.
    let down = Time::from_ms(20);
    let up = Time::from_ms(30);
    let readmit = Time::from_ms(35);
    let run = |audit: bool| {
        let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(80), 7);
        cfg.faults = FaultPlan::new()
            .link_down(down, Some(up), tor0)
            .tenant_churn(0, down, readmit);
        if audit {
            cfg.audit = Some(silo_simnet::AuditConfig::default());
        }
        let tenants = vec![cross_rack_tenant(0, 4), cross_rack_tenant(1, 5)];
        Sim::new(topo.clone(), cfg, tenants).run()
    };
    let m = run(false);

    // Acceptance gate on the invariant-audit layer: running the same
    // faulted scenario audited must not perturb the physics, and every
    // violation the auditor records must be blamed on an injected fault.
    let audited = run(true);
    assert_eq!(
        m.canonical_json(),
        audited.canonical_json(),
        "audit layer must be pure observation"
    );
    let report = audited.audit.expect("audit was requested");
    assert_eq!(
        report.unattributed,
        0,
        "unattributed audit violation under an injected-fault scenario: {}",
        report.summary()
    );

    // The surviving tenant's guarantees broke during the outage…
    let t1_overlapping: Vec<_> = m
        .violation_windows(1)
        .into_iter()
        .filter(|&(_, start, end)| start < up && end > down)
        .collect();
    assert!(
        !t1_overlapping.is_empty(),
        "a 10 ms ToR outage must break a 2 ms delay bound"
    );
    // …and every one of those windows is attributed to the injected
    // fault (plan index 0): no mystery violations during an outage.
    for (fault, start, end) in &t1_overlapping {
        assert_eq!(
            *fault,
            Some(0),
            "violation window [{start:?}, {end:?}] must blame the ToR fault"
        );
    }

    // The re-admitted tenant starts fresh on the healed network: traffic
    // resumes and NOT ONE message created after re-admission violates.
    let resumed = m
        .messages
        .iter()
        .filter(|r| r.tenant == 0 && r.created >= readmit)
        .count();
    assert!(resumed > 0, "the re-admitted tenant must produce traffic");
    assert_eq!(
        m.violations_after(0, readmit),
        0,
        "zero guarantee violations for a tenant re-admitted after recovery"
    );
}

#[test]
fn placement_reclaims_downgrades_and_restores_across_a_tor_failure() {
    let mut p = SiloPlacer::new(two_rack_topo());
    // Pin rack 0 nearly full so the cross-rack tenant genuinely needs
    // both racks (greedy placement minimizes height).
    let pin0 = p
        .try_place(&TenantRequest::new(12, Guarantee::class_a()).with_fault_domains(4))
        .unwrap();
    let pin1 = p
        .try_place(&TenantRequest::new(12, Guarantee::class_a()).with_fault_domains(4))
        .unwrap();
    let spanning = p
        .try_place(&TenantRequest::new(8, Guarantee::class_a()).with_fault_domains(8))
        .unwrap();
    assert_eq!(spanning.hosts.len(), 8, "must span every server");

    let tor0 = p.topology().tor_link(0);
    let report = p.fail_link(tor0);
    // Only the spanning tenant crosses the dead uplink.
    assert_eq!(
        report
            .outcomes
            .iter()
            .map(|(id, _)| *id)
            .collect::<Vec<_>>(),
        vec![spanning.tenant]
    );
    // 8 fault domains cannot fit 4 surviving connected servers: the
    // tenant is explicitly downgraded, with the reason on record, and its
    // budget reclaimed (admission headroom reappears).
    assert!(matches!(
        report.outcomes[0].1,
        DegradeOutcome::Downgraded { .. }
    ));
    assert_eq!(
        p.degraded_tenants(),
        vec![(
            spanning.tenant,
            silo_placement::RejectReason::NetworkUnsatisfiable
        )]
    );
    // Its slots are retained (best-effort VMs keep running)…
    assert_eq!(p.used_slots(), 32);
    // …and new admissions refuse to span the dead link.
    assert!(p
        .try_place(&TenantRequest::new(2, Guarantee::class_a()).with_fault_domains(2))
        .is_err());

    // Healing the link re-validates the original placement in place:
    // no VM moved, guarantees are back for everyone.
    let healed = p.restore_link(tor0);
    assert_eq!(
        healed.outcomes,
        vec![(spanning.tenant, DegradeOutcome::Restored)]
    );
    assert!(p.degraded_tenants().is_empty());
    assert!(p.failed_links().is_empty());
    // Fully reversible: removing everything restores a blank cell.
    for t in [pin0.tenant, pin1.tenant, spanning.tenant] {
        assert!(p.remove(t));
    }
    assert_eq!(p.used_slots(), 0);
}
