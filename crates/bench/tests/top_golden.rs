//! Golden tests for `silo-top`: the telemetry diff must pinpoint *the
//! exact window and series* where two almost-identical runs part ways —
//! a perturbed fault schedule diverges in the window holding the fault
//! edge, and a seed change diverges exactly where a by-hand scan says it
//! does. Plus the `show` renderer's headlines and the OpenMetrics lint
//! against real exports, and the Perfetto counter splice validating
//! alongside the flight recorder's spans.

use silo_base::{Bytes, Dur, Rate, Time};
use silo_bench::telemetryfile::{
    openmetrics_lint, parse_telemetry, render_top, telemetry_divergence, TelemetryKind,
};
use silo_bench::tracefile::check_perfetto;
use silo_simnet::{
    FaultPlan, Metrics, Sim, SimConfig, TelemetryConfig, TenantSpec, TenantWorkload, TraceConfig,
    TransportMode,
};
use silo_topology::{HostId, Topology, TreeParams};

fn topo() -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: 2,
        vm_slots_per_server: 2,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

fn tenants() -> Vec<TenantSpec> {
    vec![TenantSpec {
        vm_hosts: vec![HostId(0), HostId(1)],
        b: Rate::from_mbps(500),
        s: Bytes::from_kb(15),
        bmax: Rate::from_gbps(1),
        prio: 0,
        // A delay guarantee so the margin series populates.
        delay: Some(Dur::from_ms(1)),
        // Poisson draws make the schedule seed-sensitive (the seed-change
        // golden test depends on it).
        workload: TenantWorkload::OldiAllToOne {
            msg_mean: Bytes::from_kb(15),
            interval: Dur::from_ms(2),
        },
    }]
}

fn telemetered_run(seed: u64, faults: FaultPlan, trace: bool) -> Metrics {
    let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(20), seed);
    cfg.faults = faults;
    cfg.telemetry = Some(TelemetryConfig::default());
    if trace {
        cfg.trace = Some(TraceConfig::default());
    }
    Sim::new(topo(), cfg, tenants()).run()
}

fn jsonl(seed: u64, faults: FaultPlan) -> String {
    telemetered_run(seed, faults, false)
        .telemetry
        .expect("telemetered run")
        .to_jsonl()
}

#[test]
fn identical_runs_have_no_divergence() {
    let a = parse_telemetry(&jsonl(7, FaultPlan::new())).expect("parse");
    let b = parse_telemetry(&jsonl(7, FaultPlan::new())).expect("parse");
    assert!(telemetry_divergence(&a, &b).expect("comparable").is_none());
}

#[test]
fn perturbed_fault_schedule_diverges_in_the_fault_window() {
    // Same seed, same physics until t = 10 ms — then run A's link dies
    // 200 µs earlier than run B's. The first divergent sample must land
    // in window 9 or 10 (the windows the perturbation straddles), never
    // earlier.
    let t0 = Time::from_ms(10);
    let t1 = Time::from_ms(15);
    let a = parse_telemetry(&jsonl(7, FaultPlan::new().link_down(t0, Some(t1), 0))).expect("parse");
    let b = parse_telemetry(&jsonl(
        7,
        FaultPlan::new().link_down(t0 - Dur::from_us(200), Some(t1), 0),
    ))
    .expect("parse");
    let d = telemetry_divergence(&a, &b)
        .expect("comparable")
        .expect("series must diverge");
    assert!(d.index > 0, "runs agree before the perturbation");
    let left = d.left.as_ref().expect("both files cover the window");
    assert!(
        left.w == 9 || left.w == 10,
        "divergence must sit in the perturbed fault's window, got {}",
        left.w
    );
    for r in &a.rows[..d.index] {
        assert!(r.w <= left.w, "no earlier window may differ");
    }
    let report = d.report();
    assert!(report.contains(&format!("window {}", left.w)));
    assert!(report.contains("left raw:"));
}

#[test]
fn seed_change_diverges_exactly_where_a_hand_scan_says() {
    let a = parse_telemetry(&jsonl(7, FaultPlan::new())).expect("parse");
    let b = parse_telemetry(&jsonl(8, FaultPlan::new())).expect("parse");
    let d = telemetry_divergence(&a, &b)
        .expect("comparable")
        .expect("different seeds diverge");
    let hand = a
        .rows
        .iter()
        .zip(b.rows.iter())
        .position(|(x, y)| x.raw != y.raw)
        .unwrap_or_else(|| a.rows.len().min(b.rows.len()));
    assert_eq!(d.index, hand, "diff must agree with an exhaustive scan");
}

#[test]
fn show_renders_margins_and_fault_flags() {
    let f = parse_telemetry(&jsonl(
        7,
        FaultPlan::new().link_down(Time::from_ms(8), Some(Time::from_ms(12)), 0),
    ))
    .expect("parse");
    let top = render_top(&f);
    assert!(top.contains("20 windows x 1.000 ms"), "{top}");
    assert!(
        top.contains("min margin"),
        "guaranteed tenant headline: {top}"
    );
    assert!(
        top.contains("fault[0]"),
        "outage windows must be flagged: {top}"
    );
    // The flagged windows are exactly the grid windows the fault overlaps.
    let fault_rows: Vec<u64> = f
        .rows
        .iter()
        .filter_map(|r| match &r.kind {
            TelemetryKind::Global { faults, .. } if !faults.is_empty() => Some(r.w),
            _ => None,
        })
        .collect();
    assert_eq!(fault_rows, vec![8, 9, 10, 11, 12]);
}

#[test]
fn openmetrics_export_passes_the_lint() {
    let m = telemetered_run(7, FaultPlan::new(), false);
    let om = m.telemetry.expect("telemetered run").to_openmetrics();
    let samples = openmetrics_lint(&om).expect("export must satisfy its own grammar");
    assert!(
        samples > 100,
        "20 windows of series should emit plenty of samples"
    );
}

#[test]
fn perfetto_counter_splice_stays_structurally_valid() {
    let m = telemetered_run(
        7,
        FaultPlan::new().link_down(Time::from_ms(8), Some(Time::from_ms(12)), 0),
        true,
    );
    let tel = m.telemetry.as_ref().expect("telemetered run");
    let trace = m.trace.as_ref().expect("traced run");
    let spliced = trace.to_perfetto_with_counters(Some(tel));
    check_perfetto(&spliced, true, true).expect("splice keeps the export valid");
    assert!(spliced.contains("\"ph\":\"C\""), "counter tracks present");
    assert!(spliced.contains("telemetry counters"));
    // Counter events are additive: the splice never rewrites the
    // recorder's own stream.
    let plain = trace.to_perfetto();
    assert!(spliced.len() > plain.len());
}
