//! Tier-2 promotion of the `verify_queue_bounds` binary: the C1 theorem
//! check (placed + paced ⇒ every switch queue within its admission-time
//! bound) at a CI-friendly scale, with the engine's invariant-audit layer
//! checking the same bounds online.
//!
//! These are `#[ignore]`d in the default tier-1 run — they simulate
//! hundreds of VMs for hundreds of milliseconds — and run explicitly in
//! the CI audit job via `cargo test -p silo-bench --test queue_bounds
//! --release -- --ignored`.

use silo_base::Dur;
use silo_bench::verify::{build_verify_population, run_verify};
use silo_topology::{Topology, TreeParams};

#[test]
#[ignore = "tier-2: run explicitly (CI audit job)"]
fn placed_and_paced_traffic_respects_queue_bounds() {
    let topo = Topology::build(TreeParams::ns2_scaled(0.12));
    let (placer, specs, used) = build_verify_population(&topo, 0.9, 1);
    assert!(used > 0, "population must admit tenants at this scale");
    let out = run_verify(&topo, &placer, specs, Dur::from_ms(200), 1, None, true);
    assert_eq!(
        out.metrics.drops, 0,
        "admitted, paced traffic must never be dropped"
    );
    assert!(out.checked > 0, "the run must load switch ports");
    assert_eq!(
        out.violations, 0,
        "every measured queue must respect its admission-time bound"
    );
    let report = out.audit.expect("audit was requested");
    assert!(report.events_checked > 0);
    assert!(
        report.is_clean(),
        "online audit (conservation, FIFO, wire, conformance, online queue \
         bounds) must be violation-free: {}",
        report.summary()
    );
}

#[test]
#[ignore = "tier-2: run explicitly (CI audit job)"]
fn online_and_offline_bound_checks_agree() {
    // Second seed + tighter batching (25 µs): the audit layer's online
    // per-enqueue comparison and the end-of-run high-water-mark
    // comparison must reach the same verdict.
    let topo = Topology::build(TreeParams::ns2_scaled(0.12));
    let (placer, specs, _) = build_verify_population(&topo, 0.9, 7);
    let out = run_verify(&topo, &placer, specs, Dur::from_ms(200), 7, Some(25), true);
    let report = out.audit.expect("audit was requested");
    assert_eq!(
        out.violations == 0,
        report.queue_bound == 0,
        "offline violations {} vs online queue-bound violations {}",
        out.violations,
        report.queue_bound
    );
    assert_eq!(out.violations, 0);
    assert!(report.is_clean(), "{}", report.summary());
}
