//! The explorer's committed corpus, replayed as regressions.
//!
//! Two layers:
//!
//! * Always-on (tier-1): the corpus parses, is in canonical dump form,
//!   and the explorer's replay path is byte-identical to the fault
//!   suite's own way of running the same schedule — the differential
//!   guarantee that lets a schedule recorded by either harness stand in
//!   for the other.
//! * `#[ignore]`d (tier-2, CI explorer job): every committed schedule
//!   replays at full fault-suite scale with the audit layer on and every
//!   violation attributed — `cargo test -p silo-bench --test
//!   explorer_regressions --release -- --ignored`.

use silo_base::Dur;
use silo_bench::corpus::explorer_goldens;
use silo_explorer::{cell_tenants, cell_topo, failure, replay};
use silo_simnet::{AuditConfig, FaultPlan, Sim, SimConfig, TraceConfig, TransportMode};

const DUR_MS: u64 = 60;
const SEED: u64 = 1;

#[test]
fn corpus_replay_matches_fault_suite_run_byte_for_byte() {
    // The fault suite (`ext_faults`) configures its runs by hand; the
    // explorer replays a recorded schedule through `silo_explorer::replay`.
    // Same schedule in, byte-identical physics and trace out.
    let (label, plan) = &explorer_goldens()[0];
    let recorded = FaultPlan::from_json(&plan.to_json()).expect("round-trip");

    let dur = Dur::from_ms(DUR_MS);
    let suite_run = {
        let mut cfg = SimConfig::new(TransportMode::Silo, dur, SEED);
        cfg.faults = plan.clone();
        cfg.audit = Some(AuditConfig::default());
        cfg.trace = Some(TraceConfig::default());
        Sim::new(cell_topo(), cfg, cell_tenants()).run()
    };
    let explorer_run = replay(&recorded, dur, SEED);

    assert_eq!(
        suite_run.canonical_json(),
        explorer_run.canonical_json(),
        "{label}: explorer replay diverged from the fault-suite run"
    );
    assert_eq!(
        suite_run.trace.as_ref().unwrap().to_jsonl(),
        explorer_run.trace.as_ref().unwrap().to_jsonl(),
        "{label}: traces diverged"
    );
}

#[test]
fn corpus_is_canonical_and_non_trivial() {
    let goldens = explorer_goldens();
    assert!(goldens.len() >= 4, "corpus shrank");
    for (label, plan) in &goldens {
        assert!(!plan.events.is_empty(), "{label}: empty schedule");
        // Replays must be possible on the shared cell: validate against
        // its real dimensions.
        let topo = cell_topo();
        plan.validate(
            topo.num_links(),
            topo.num_ports(),
            topo.num_hosts(),
            cell_tenants().len(),
        );
    }
}

#[test]
#[ignore = "tier-2: run explicitly (CI explorer job)"]
fn corpus_replays_clean_under_audit() {
    for (label, plan) in explorer_goldens() {
        let m = replay(&plan, Dur::from_ms(DUR_MS), SEED);
        let audit = m.audit.as_ref().expect("replay audits");
        assert_eq!(
            audit.unattributed,
            0,
            "{label}: {} audit violation(s) no fault explains: {}",
            audit.unattributed,
            audit.summary()
        );
        assert_eq!(
            audit.early_releases, 0,
            "{label}: pacer released frames early"
        );
        assert_eq!(
            failure(&m),
            None,
            "{label}: committed schedule must replay attribution-clean"
        );
    }
}
