//! Regression lock on Figure 1's headline pathology: with the testbed
//! TCP stack's 200 ms minimum RTO, a contended memcached tenant's
//! latency tail is *the RTO itself* — a ~217 ms spike at the 99.9th
//! percentile, three orders of magnitude above the median.
//!
//! This is the problem statement the whole paper answers, so it must
//! keep reproducing: a seeded run where retransmission timeouts fire
//! (`Metrics::rtos`) and at least one delivered message waits out the
//! full 200 ms floor.

use silo_base::{Bytes, Dur};
use silo_bench::scenario::{testbed_tenants, ETC_TESTBED_LOAD, TESTBED_REQS};
use silo_simnet::{Metrics, Sim, SimConfig, TransportMode};
use silo_topology::{Topology, TreeParams};

fn testbed_run(with_netperf: bool) -> Metrics {
    let topo = Topology::build(TreeParams::testbed());
    let mut cfg = SimConfig::new(TransportMode::Tcp, Dur::from_ms(300), 1);
    cfg.min_rto = Dur::from_ms(200);
    let tenants = testbed_tenants(
        &TESTBED_REQS[0],
        Bytes(1500),
        with_netperf,
        ETC_TESTBED_LOAD,
    );
    Sim::new(topo, cfg, tenants).run()
}

#[test]
fn contended_memcached_tail_is_a_min_rto_event() {
    let m = testbed_run(true);
    assert!(
        m.rtos > 0,
        "switch-buffer overflow under incast must fire retransmission timeouts"
    );
    // The tail event itself: a message that sat through the 200 ms floor.
    let worst = m
        .messages
        .iter()
        .map(|r| r.latency)
        .max()
        .expect("the run completes messages");
    assert!(
        worst >= Dur::from_ms(200),
        "the latency tail must contain a min-RTO stall, worst = {worst}"
    );
    // And it is a *tail*: the typical request is orders of magnitude
    // faster — the spike comes from the timeout, not from uniform slowness.
    let mut lat = m.txn_latencies_us(0);
    let p50 = lat.median().expect("memcached transactions completed");
    assert!(
        p50 < 10_000.0,
        "the median must stay far below the RTO floor, p50 = {p50} us"
    );
}
