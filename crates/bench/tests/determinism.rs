//! Cross-thread determinism: the parallel sweep runner must be a pure
//! wall-clock optimization. Pushing the same seeded cells through
//! [`run_ns2_sweep`] on 1, 2 and 8 worker threads has to produce
//! **byte-identical** serialized results — any divergence means state
//! leaked between cells or scheduling order reached the physics.

use silo_bench::ns2::{run_ns2_sweep, Ns2Outcome, ALL_MODES};
use silo_bench::Args;
use silo_simnet::TransportMode;

/// Serialize a whole sweep exactly: every run's canonical metrics JSON
/// plus the placement that produced it, in output order.
fn sweep_fingerprint(outcomes: &[Ns2Outcome]) -> String {
    let mut out = String::new();
    for o in outcomes {
        out.push_str(&format!("mode={}\n", o.mode.label()));
        for (run, m) in o.metrics.iter().enumerate() {
            out.push_str(&format!("run={run} tenants={}\n", o.tenants[run].len()));
            for t in &o.tenants[run] {
                out.push_str(&format!(
                    "  class={:?} vms={} b={} s={} bmax={}\n",
                    t.class,
                    t.spec.vm_hosts.len(),
                    t.guarantee.b.as_bps(),
                    t.guarantee.s.0,
                    t.guarantee.bmax.as_bps(),
                ));
            }
            out.push_str(&m.canonical_json());
            out.push('\n');
        }
    }
    out
}

fn small_args(threads: usize) -> Args {
    Args {
        scale: 0.12,
        seed: 7,
        duration_ms: 10,
        runs: 2,
        occupancy: 0.9,
        threads,
        profile: false,
        audit: false,
        trace: None,
        trace_perfetto: None,
        no_coalesce: false,
        shards: 1,
        shard_threads: 1,
        telemetry: None,
        telemetry_openmetrics: None,
    }
}

#[test]
fn sweep_results_are_byte_identical_across_thread_counts() {
    let modes = [TransportMode::Silo, TransportMode::Tcp];
    let serial = sweep_fingerprint(&run_ns2_sweep(&modes, &small_args(1)));
    assert!(
        serial.contains("\"messages\":[{"),
        "fingerprint must cover real traffic, or the test proves nothing"
    );
    for threads in [2, 8] {
        let par = sweep_fingerprint(&run_ns2_sweep(&modes, &small_args(threads)));
        assert_eq!(
            serial, par,
            "sweep results diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn sweep_results_are_byte_identical_across_shard_counts() {
    // Same bar as the thread-count test, but for the within-cell sharded
    // engine: partitioning a cell (and adding prepare worker threads) is a
    // pure wall-clock choice, never a physics one.
    let modes = [TransportMode::Silo, TransportMode::Tcp];
    let serial = sweep_fingerprint(&run_ns2_sweep(&modes, &small_args(1)));
    assert!(serial.contains("\"messages\":[{"));
    for (shards, shard_threads) in [(2, 1), (4, 1), (4, 4)] {
        let args = Args {
            shards,
            shard_threads,
            ..small_args(1)
        };
        let sharded = sweep_fingerprint(&run_ns2_sweep(&modes, &args));
        assert_eq!(
            serial, sharded,
            "sweep results diverged at shards={shards} threads={shard_threads}"
        );
    }
}

#[test]
fn all_modes_sweep_matches_per_mode_serial_runs() {
    // The sweep over all six schemes at once must equal six single-mode
    // sweeps run back to back: fanning modes together may not perturb any
    // individual scheme's results.
    let args = Args {
        runs: 1,
        duration_ms: 10,
        ..small_args(0)
    };
    let fanned = sweep_fingerprint(&run_ns2_sweep(&ALL_MODES, &args));
    let mut serial = String::new();
    for mode in ALL_MODES {
        serial.push_str(&sweep_fingerprint(&run_ns2_sweep(&[mode], &args)));
    }
    assert_eq!(fanned, serial);
}
