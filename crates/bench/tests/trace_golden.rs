//! Golden tests for `silo-trace diff`: the first-divergence locator must
//! pinpoint *the exact event* where two almost-identical runs part ways —
//! a perturbed fault schedule diverges at the fault marker itself, and a
//! different seed diverges exactly where a by-hand scan says it does.
//! Plus structural validation of the Perfetto export of a faulted run.

use silo_base::{Bytes, Dur, Rate, Time};
use silo_bench::tracefile::{check_perfetto, first_divergence, parse_jsonl, summarize};
use silo_simnet::{
    FaultPlan, Sim, SimConfig, TenantSpec, TenantWorkload, TraceConfig, TraceLog, TransportMode,
};
use silo_topology::{HostId, Topology, TreeParams};

fn topo() -> Topology {
    Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: 2,
        vm_slots_per_server: 2,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

fn tenants() -> Vec<TenantSpec> {
    vec![TenantSpec {
        vm_hosts: vec![HostId(0), HostId(1)],
        b: Rate::from_mbps(500),
        s: Bytes::from_kb(15),
        bmax: Rate::from_gbps(1),
        prio: 0,
        delay: None,
        // Poisson draws make the schedule seed-sensitive (the seed-change
        // golden test depends on it); the traffic stays light enough that
        // the default rings never evict.
        workload: TenantWorkload::OldiAllToOne {
            msg_mean: Bytes::from_kb(15),
            interval: Dur::from_ms(2),
        },
    }]
}

fn traced_run(seed: u64, faults: FaultPlan) -> TraceLog {
    let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(20), seed);
    cfg.faults = faults;
    cfg.trace = Some(TraceConfig::default());
    let m = Sim::new(topo(), cfg, tenants()).run();
    let log = m.trace.expect("traced run");
    assert_eq!(log.dropped, 0, "golden runs must fit the default rings");
    log
}

#[test]
fn identical_runs_have_no_divergence() {
    let a = traced_run(7, FaultPlan::new());
    let b = traced_run(7, FaultPlan::new());
    let fa = parse_jsonl(&a.to_jsonl()).expect("parse");
    let fb = parse_jsonl(&b.to_jsonl()).expect("parse");
    assert!(first_divergence(&fa, &fb).is_none());
}

#[test]
fn perturbed_fault_schedule_diverges_at_the_fault_marker() {
    // Same seed, same physics until t = 10 ms — then run A's link dies
    // 1 µs earlier than run B's. The first divergent event must be the
    // fault marker itself, at exactly 10 ms.
    let t0 = Time::from_ms(10);
    let t1 = Time::from_ms(15);
    let a = traced_run(7, FaultPlan::new().link_down(t0, Some(t1), 0));
    let b = traced_run(
        7,
        FaultPlan::new().link_down(t0 + Dur::from_us(1), Some(t1), 0),
    );
    let fa = parse_jsonl(&a.to_jsonl()).expect("parse");
    let fb = parse_jsonl(&b.to_jsonl()).expect("parse");
    let d = first_divergence(&fa, &fb).expect("schedules must diverge");
    assert!(d.index > 0, "runs agree before the perturbation");
    let left = d.left.as_ref().expect("run A has the earlier event");
    assert_eq!(left.kind, "fault_start", "divergence is the fault edge");
    assert_eq!(left.t_ps, t0.0, "pinpointed at the exact instant");
    // The report names the instant and both states.
    let report = d.report();
    assert!(report.contains("fault_start"));
    assert!(report.contains(&format!("t={} ps", t0.0)));
}

#[test]
fn seed_change_diverges_exactly_where_a_hand_scan_says() {
    let a = traced_run(7, FaultPlan::new());
    let b = traced_run(8, FaultPlan::new());
    let fa = parse_jsonl(&a.to_jsonl()).expect("parse");
    let fb = parse_jsonl(&b.to_jsonl()).expect("parse");
    let d = first_divergence(&fa, &fb).expect("different seeds diverge");
    // Recompute the first mismatch by hand against the raw logs.
    let hand = a
        .events
        .iter()
        .zip(b.events.iter())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.events.len().min(b.events.len()));
    assert_eq!(d.index, hand, "diff must agree with an exhaustive scan");
}

#[test]
fn faulted_perfetto_export_is_structurally_valid() {
    let log = traced_run(
        7,
        FaultPlan::new().link_down(Time::from_ms(8), Some(Time::from_ms(12)), 0),
    );
    assert!(!log.fault_windows.is_empty());
    check_perfetto(&log.to_perfetto(), true, true).expect("valid with tenant tracks + markers");
    // The JSONL round-trips and summarizes cleanly too.
    let f = parse_jsonl(&log.to_jsonl()).expect("parse");
    let s = summarize(&f);
    assert!(s.contains("fault_start"));
    assert!(s.contains("tenant 0:"));
}
