//! Bench-scale golden equivalence for the cancelable-timer engine: the
//! full §6.2 cell pipeline (placement, population build, packet
//! simulation) must produce byte-identical *physical* results with timer
//! cancellation on and off, on both queue backends — including under an
//! injected ToR outage. The simnet-level differential suite proves this
//! on the engine's own scenarios; this test proves it end-to-end through
//! the bench harness that generates every figure.

use silo_base::{Bytes, Dur, Rate, Time};
use silo_bench::ns2::{run_ns2_cell_with_engine, EngineOpts, Ns2Cell};
use silo_bench::Args;
use silo_simnet::{FaultPlan, Sim, SimConfig, TenantSpec, TenantWorkload, TransportMode};
use silo_topology::{HostId, Topology, TreeParams};

fn small_args() -> Args {
    Args {
        scale: 0.12,
        seed: 11,
        duration_ms: 10,
        runs: 1,
        occupancy: 0.9,
        threads: 1,
        profile: false,
        audit: false,
        trace: None,
        trace_perfetto: None,
        no_coalesce: false,
        shards: 1,
        shard_threads: 1,
        telemetry: None,
        telemetry_openmetrics: None,
    }
}

/// Engine configurations that must all agree on physics: the full
/// `{wheel, heap} x {cancel on, off} x {event diet on, off}` cross
/// product — the default engine, the tombstone baseline, the reference
/// heap, and the pre-diet (per-chunk voids, un-elided pulls) engine.
fn engine_grid() -> Vec<EngineOpts> {
    let mut grid = Vec::with_capacity(8);
    for queue in [
        silo_base::QueueBackend::default(),
        silo_base::QueueBackend::Heap,
    ] {
        for cancel_timers in [true, false] {
            for coalesce in [true, false] {
                grid.push(EngineOpts {
                    queue,
                    cancel_timers,
                    coalesce,
                    ..EngineOpts::default()
                });
            }
        }
    }
    grid
}

#[test]
fn ns2_cells_are_physics_identical_across_engines() {
    let args = small_args();
    // The RTO-heavy schemes (Fig. 12's interesting cells): Silo cancels
    // NicPull re-arms too, TCP is pure RTO churn.
    for mode in [TransportMode::Silo, TransportMode::Tcp] {
        let cell = Ns2Cell {
            mode,
            run: 0,
            seed: args.seed,
        };
        let golden: Vec<String> = engine_grid()
            .iter()
            .map(|&eng| {
                let (_, m) = run_ns2_cell_with_engine(&cell, &args, eng);
                m.physics_json()
            })
            .collect();
        assert!(
            golden[0].contains("\"messages\":[{"),
            "cell must carry real traffic, or the comparison proves nothing"
        );
        for (i, g) in golden.iter().enumerate().skip(1) {
            assert_eq!(
                &golden[0],
                g,
                "{} physics diverged between engine configs 0 and {i}",
                mode.label()
            );
        }
    }
}

#[test]
fn faulted_run_is_physics_identical_across_engines() {
    // A ToR outage mid-run exercises the fault paths' timer churn (link
    // flaps force RTO storms and pacer stalls) — cancellation must not
    // move a single byte of it.
    let topo = || {
        Topology::build(TreeParams {
            pods: 1,
            racks_per_pod: 2,
            servers_per_rack: 4,
            vm_slots_per_server: 4,
            host_link: Rate::from_gbps(10),
            tor_oversub: 1.0,
            agg_oversub: 1.0,
            switch_buffer: Bytes::from_kb(312),
            nic_buffer: Bytes::from_kb(64),
            prop_delay: Dur::from_ns(500),
        })
    };
    let tenant = |a: u32, b: u32| TenantSpec {
        vm_hosts: vec![HostId(a), HostId(b)],
        b: Rate::from_mbps(500),
        s: Bytes::from_kb(15),
        bmax: Rate::from_gbps(1),
        prio: 0,
        delay: Some(Dur::from_ms(2)),
        workload: TenantWorkload::OldiPeriodic {
            msg: Bytes::from_kb(15),
            period: Dur::from_ms(2),
        },
    };
    let golden: Vec<String> = engine_grid()
        .iter()
        .map(|&eng| {
            let t = topo();
            let tor0 = t.tor_link(0).0;
            let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(60), 7);
            cfg.queue = eng.queue;
            cfg.cancel_timers = eng.cancel_timers;
            cfg.coalesce_voids = eng.coalesce;
            cfg.elide_nic_pulls = eng.coalesce;
            cfg.faults =
                FaultPlan::new().link_down(Time::from_ms(20), Some(Time::from_ms(30)), tor0);
            let m = Sim::new(t, cfg, vec![tenant(0, 4), tenant(1, 5)]).run();
            assert!(
                !m.violation_windows(0).is_empty() || !m.violation_windows(1).is_empty(),
                "the outage must actually bite, or the comparison proves nothing"
            );
            m.physics_json()
        })
        .collect();
    for (i, g) in golden.iter().enumerate().skip(1) {
        assert_eq!(
            &golden[0], g,
            "faulted physics diverged between engine configs 0 and {i}"
        );
    }
}
