//! Plain-text table/CDF output shared by the experiment binaries.

use silo_base::Summary;

pub fn print_header(title: &str, cols: &[&str]) {
    println!("\n== {title} ==");
    println!("{}", cols.join("\t"));
}

pub fn print_row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Print an empirical CDF as `value<TAB>probability` rows.
pub fn print_cdf(name: &str, summary: &mut Summary, points: usize) {
    println!("\n-- CDF: {name} ({} samples) --", summary.len());
    for (v, p) in summary.cdf(points).points {
        println!("{v:.1}\t{p:.3}");
    }
}

pub fn fmt_dur_us(us: f64) -> String {
    if us >= 1000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{us:.0}us")
    }
}
