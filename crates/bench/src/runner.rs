//! Deterministic parallel sweep execution.
//!
//! Every experiment in this crate is a *sweep*: a grid of independent
//! simulation cells (transport mode × tenant class × seed), each of which
//! builds its own `Sim` from plain inputs and returns plain outputs. The
//! runner fans cells across OS threads with [`run_cells`] and collects
//! results **in cell order**, so the output of a sweep is bit-identical
//! whether it ran on 1 thread or 64 — parallelism is purely a wall-clock
//! choice. (Each cell carries its own seeded RNG; nothing is shared, so
//! scheduling order cannot leak into results.)
//!
//! The runner also defines the `BENCH_*.json` reporting format: per-cell
//! wall-clock, simulator events/sec, and peak event-queue depth, plus the
//! machine context (core count, thread count) needed to read the numbers
//! honestly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Threads to use when the caller does not pin a count: one per available
/// core, capped by the number of cells (spawning idle workers is free but
/// pointless).
pub fn auto_threads(cells: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(cells.max(1))
}

/// A cell's result plus how long that cell took on its worker thread.
#[derive(Debug, Clone)]
pub struct Timed<R> {
    pub result: R,
    pub wall: Duration,
}

/// Run `f` over every cell on `threads` worker threads and return the
/// results **in cell order**, each with its wall-clock time.
///
/// Work is claimed dynamically (an atomic cursor), so stragglers don't
/// serialize the sweep; determinism comes from cells being self-contained
/// and results being re-ordered by index, never from scheduling.
pub fn run_cells_timed<T, R, F>(cells: &[T], threads: usize, f: F) -> Vec<Timed<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, cells.len().max(1));
    if threads <= 1 {
        // One worker (or one cell): run inline on the caller thread.
        // Spawning a scoped worker here costs a thread create/join plus a
        // mutex round-trip per sweep for zero parallelism — measured as
        // the `parallel_speedup_t1 ≈ 0.96` regression on 1-core hosts.
        return cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let t0 = Instant::now();
                let result = f(i, c);
                Timed {
                    result,
                    wall: t0.elapsed(),
                }
            })
            .collect();
    }
    run_cells_timed_spawned(cells, threads, f)
}

/// The always-spawning worker pool behind [`run_cells_timed`]. Public only
/// for before/after benchmarking of the `threads == 1` inline fast path
/// (the `bench_simnet` `runner/t1` comparison); sweeps should call
/// [`run_cells_timed`], which picks the right strategy.
pub fn run_cells_timed_spawned<T, R, F>(cells: &[T], threads: usize, f: F) -> Vec<Timed<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, cells.len().max(1));
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Timed<R>)>> = Mutex::new(Vec::with_capacity(cells.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, Timed<R>)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let t0 = Instant::now();
                    let result = f(i, &cells[i]);
                    local.push((
                        i,
                        Timed {
                            result,
                            wall: t0.elapsed(),
                        },
                    ));
                }
                done.lock().expect("no worker panicked").extend(local);
            });
        }
    });
    let mut done = done.into_inner().expect("no worker panicked");
    assert_eq!(done.len(), cells.len(), "every cell produced a result");
    done.sort_unstable_by_key(|&(i, _)| i);
    done.into_iter().map(|(_, r)| r).collect()
}

/// [`run_cells_timed`] without the timing wrapper.
pub fn run_cells<T, R, F>(cells: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_cells_timed(cells, threads, f)
        .into_iter()
        .map(|t| t.result)
        .collect()
}

// ----------------------------------------------------------------------
// BENCH_*.json reporting
// ----------------------------------------------------------------------

/// One line of a `BENCH_*.json` report: what a cell was and what it cost.
#[derive(Debug, Clone)]
pub struct BenchCell {
    /// `"<mode>/<workload-or-class>/seed<k>"`-style identifier.
    pub label: String,
    /// Worker-thread wall-clock for this cell, seconds.
    pub wall_s: f64,
    /// Simulator events dispatched inside the cell.
    pub events: u64,
    /// Peak pending-event queue depth inside the cell.
    pub peak_event_queue: u64,
}

impl BenchCell {
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// A machine-readable benchmark report (hand-rolled JSON: the workspace
/// is deliberately dependency-free).
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Report name; written to `BENCH_<name>.json`.
    pub name: String,
    /// Free-form notes (measurement caveats belong here, e.g. the core
    /// count the numbers were taken on).
    pub notes: String,
    /// Cores the machine exposed and threads the sweep used.
    pub host_cores: usize,
    pub threads: usize,
    /// Wall-clock for the whole sweep (includes thread orchestration).
    pub total_wall_s: f64,
    pub cells: Vec<BenchCell>,
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl BenchReport {
    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.events).sum()
    }

    /// Sum of per-cell wall-clocks — the serial-equivalent cost, so
    /// `cell_wall_s / total_wall_s` is the realized parallel speedup.
    pub fn cell_wall_s(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_s).sum()
    }

    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 160 * self.cells.len());
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", esc(&self.name)));
        out.push_str(&format!("  \"notes\": \"{}\",\n", esc(&self.notes)));
        out.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"total_wall_s\": {:.6},\n", self.total_wall_s));
        out.push_str(&format!(
            "  \"cell_wall_s\": {:.6},\n  \"speedup\": {:.3},\n",
            self.cell_wall_s(),
            if self.total_wall_s > 0.0 {
                self.cell_wall_s() / self.total_wall_s
            } else {
                0.0
            }
        ));
        out.push_str(&format!("  \"total_events\": {},\n", self.total_events()));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"wall_s\": {:.6}, \"events\": {}, \"events_per_sec\": {:.0}, \"peak_event_queue\": {}}}{}\n",
                esc(&c.label),
                c.wall_s,
                c.events,
                c.events_per_sec(),
                c.peak_event_queue,
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_<name>.json` into `dir` and return the path.
    pub fn write(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_cell_order_for_any_thread_count() {
        let cells: Vec<u64> = (0..97).collect();
        let serial = run_cells(&cells, 1, |i, &c| (i as u64) * 1_000 + c * c);
        for threads in [2, 3, 8, 64] {
            let par = run_cells(&cells, threads, |i, &c| (i as u64) * 1_000 + c * c);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn inline_t1_matches_spawned_t1() {
        let cells: Vec<u64> = (0..31).collect();
        let f = |i: usize, c: &u64| (i as u64) ^ c.wrapping_mul(2654435761);
        let inline: Vec<u64> = run_cells(&cells, 1, f);
        let spawned: Vec<u64> = run_cells_timed_spawned(&cells, 1, f)
            .into_iter()
            .map(|t| t.result)
            .collect();
        assert_eq!(inline, spawned);
        // Single cell also takes the inline path, whatever the thread ask.
        let one = [7u64];
        assert_eq!(run_cells(&one, 64, f), run_cells(&one, 1, f));
    }

    #[test]
    fn timed_results_carry_positive_wall() {
        let cells = [10_000u64, 20_000];
        let timed = run_cells_timed(&cells, 2, |_, &n| {
            (0..n).map(|x| x.wrapping_mul(x)).sum::<u64>()
        });
        assert_eq!(timed.len(), 2);
        for t in &timed {
            assert!(t.wall.as_nanos() > 0);
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let r = BenchReport {
            name: "unit".into(),
            notes: "a \"quoted\" note".into(),
            host_cores: 8,
            threads: 2,
            total_wall_s: 1.5,
            cells: vec![BenchCell {
                label: "Silo/seed1".into(),
                wall_s: 0.5,
                events: 1000,
                peak_event_queue: 42,
            }],
        };
        let j = r.to_json();
        assert!(j.contains("\"events_per_sec\": 2000"));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"speedup\": 0.333"));
        assert!(j.ends_with("}\n"));
    }
}
