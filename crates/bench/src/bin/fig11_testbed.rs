//! Figure 11: the §6.1 testbed experiments — memcached latency CDF (a),
//! 99th/99.9th tails (b), and relative throughput (c) for Silo req1–3 vs
//! TCP and TCP-idle, per Table 2.

use silo_base::{Bytes, Dur, Rate};
use silo_bench::scenario::{testbed_tenants, ETC_TESTBED_LOAD, TESTBED_REQS};
use silo_bench::{print_cdf, Args};
use silo_simnet::{Metrics, Sim, SimConfig, TransportMode};
use silo_topology::{Topology, TreeParams};

fn main() {
    let args = Args::parse();
    let topo = Topology::build(TreeParams::testbed());
    let dur = Dur::from_ms(args.duration_ms.max(200));

    let run = |mode: TransportMode, req_idx: usize, with_b: bool| -> Metrics {
        let mut cfg = SimConfig::new(mode, dur, args.seed);
        cfg.min_rto = Dur::from_ms(200); // stock-stack testbed TCP
        let tenants = testbed_tenants(
            &TESTBED_REQS[req_idx],
            Bytes(1500),
            with_b,
            ETC_TESTBED_LOAD,
        );
        Sim::new(topo.clone(), cfg, tenants).run()
    };

    // Baselines for relative throughput: each tenant running alone.
    let a_alone = run(TransportMode::Tcp, 0, false);
    let a_alone_txns = a_alone.tenant_stats(0).messages;
    let b_alone = {
        let mut cfg = SimConfig::new(TransportMode::Tcp, dur, args.seed);
        cfg.min_rto = Dur::from_ms(200);
        let mut tenants = testbed_tenants(&TESTBED_REQS[0], Bytes(1500), true, ETC_TESTBED_LOAD);
        tenants.remove(0); // only netperf
        Sim::new(topo.clone(), cfg, tenants).run()
    };
    let b_alone_goodput = b_alone.goodput[0];

    println!("== Fig 11b: memcached tail latency (us) ==");
    println!("scheme\tp50\tp99\tp99.9\tSilo guarantee: 2010 us");
    let mut cdfs: Vec<(String, silo_base::Summary)> = Vec::new();
    let mut idle = a_alone.txn_latencies_us(0);
    println!(
        "TCP(idle)\t{:.0}\t{:.0}\t{:.0}",
        idle.median().unwrap_or(0.0),
        idle.p99().unwrap_or(0.0),
        idle.p999().unwrap_or(0.0)
    );
    cdfs.push(("TCP (idle)".into(), idle));

    let tcp = run(TransportMode::Tcp, 0, true);
    let mut tcp_lat = tcp.txn_latencies_us(0);
    println!(
        "TCP\t{:.0}\t{:.0}\t{:.0}",
        tcp_lat.median().unwrap_or(0.0),
        tcp_lat.p99().unwrap_or(0.0),
        tcp_lat.p999().unwrap_or(0.0)
    );
    cdfs.push(("TCP".into(), tcp_lat));

    println!("\n== Fig 11c: relative throughput ==");
    println!("scheme\tmemcached(A)\tnetperf(B)");
    println!(
        "TCP\t{:.2}\t{:.2}",
        tcp.tenant_stats(0).messages as f64 / a_alone_txns.max(1) as f64,
        tcp.goodput[1] as f64 / b_alone_goodput.max(1) as f64
    );
    for (i, req) in TESTBED_REQS.iter().enumerate() {
        let m = run(TransportMode::Silo, i, true);
        let mut lat = m.txn_latencies_us(0);
        println!(
            "Silo-{}\tA_txn_rel={:.2}\tB_goodput_rel={:.2}\tlat p50/p99/p999 = {:.0}/{:.0}/{:.0} us",
            req.name,
            m.tenant_stats(0).messages as f64 / a_alone_txns.max(1) as f64,
            m.goodput[1] as f64 / b_alone_goodput.max(1) as f64,
            lat.median().unwrap_or(0.0),
            lat.p99().unwrap_or(0.0),
            lat.p999().unwrap_or(0.0)
        );
        cdfs.push((format!("Silo {}", req.name), lat));
    }
    println!("\npaper: Silo stays within the 2.01 ms guarantee at p99 for all reqs;");
    println!("TCP p99 = 2.3 ms / p999 = 217 ms; netperf keeps 92-99% of its solo rate.");
    println!(
        "guarantee check: A's messages fit {} at Bmax=1G + d=1ms each way",
        Rate::from_gbps(1).tx_time(Bytes(1024)) + Dur::from_ms(1)
    );

    println!("\n== Fig 11a: latency CDFs ==");
    for (name, mut s) in cdfs {
        print_cdf(&name, &mut s, 21);
    }
}
