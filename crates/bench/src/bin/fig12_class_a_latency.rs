//! Figure 12: class-A message latency (median / 95th / 99th) under Silo,
//! TCP, DCTCP, HULL, Oktopus and Okto+ (§6.2).

use silo_bench::ns2::{run_ns2_sweep, ALL_MODES};
use silo_bench::scenario::NsClass;
use silo_bench::Args;

fn main() {
    let args = Args::parse();
    println!("== Fig 12: class-A message latency (ms) ==");
    println!("scheme\tmedian\tp95\tp99\tmessages");
    for out in run_ns2_sweep(&ALL_MODES, &args) {
        let mut lat = silo_base::Summary::new();
        for (run, m) in out.metrics.iter().enumerate() {
            for msg in &m.messages {
                if out.tenant_meta(run, msg.tenant).class == NsClass::A {
                    lat.record(msg.latency.as_ms_f64());
                }
            }
        }
        println!(
            "{}\t{:.2}\t{:.2}\t{:.2}\t{}",
            out.mode.label(),
            lat.median().unwrap_or(f64::NAN),
            lat.p95().unwrap_or(f64::NAN),
            lat.p99().unwrap_or(f64::NAN),
            lat.len()
        );
    }
    println!("\npaper shape: Silo lowest at every quantile; DCTCP/HULL 22x worse at p99");
    println!("(2.5x at p95); Okto ~60x worse (no bursting); Okto+ better at median, bad tail.");
}
