//! Simnet engine microbenchmark: event-loop throughput (timer wheel vs
//! the reference `BinaryHeap` backend) and sweep-level parallel speedup,
//! written to `BENCH_simnet.json` in the current directory.
//!
//! Three phases run the **same** `(mode × seed)` cell grid:
//!
//! 1. `heap/t1`   — reference heap backend, one worker thread (baseline);
//! 2. `wheel/t1`  — timer wheel, one worker thread (engine speedup);
//! 3. `wheel/tN`  — timer wheel, one worker per core (sweep speedup).
//!
//! Results are bit-identical across all three phases (asserted here —
//! this binary doubles as an end-to-end determinism check), so the only
//! thing being compared is cost.

use silo_base::QueueBackend;
use silo_bench::ns2::{ns2_cells, run_ns2_cell_with_queue, Ns2Cell};
use silo_bench::{auto_threads, run_cells_timed, Args, BenchCell, BenchReport};
use silo_simnet::TransportMode;
use std::time::Instant;

struct Phase {
    report: BenchReport,
    fingerprints: Vec<String>,
}

fn run_phase(
    tag: &str,
    cells: &[Ns2Cell],
    args: &Args,
    queue: QueueBackend,
    threads: usize,
) -> Phase {
    let t0 = Instant::now();
    let timed = run_cells_timed(cells, threads, |_, c| {
        run_ns2_cell_with_queue(c, args, queue)
    });
    let total_wall_s = t0.elapsed().as_secs_f64();
    let mut bench_cells = Vec::with_capacity(cells.len());
    let mut fingerprints = Vec::with_capacity(cells.len());
    for (cell, t) in cells.iter().zip(&timed) {
        let (_, m) = &t.result;
        bench_cells.push(BenchCell {
            label: format!("{}/{}/seed{}", tag, cell.mode.label(), cell.seed),
            wall_s: t.wall.as_secs_f64(),
            events: m.events_processed,
            peak_event_queue: m.peak_event_queue,
        });
        fingerprints.push(m.canonical_json());
    }
    Phase {
        report: BenchReport {
            name: format!("simnet_{}", tag.replace('/', "_")),
            notes: String::new(),
            host_cores: auto_threads(usize::MAX),
            threads,
            total_wall_s,
            cells: bench_cells,
        },
        fingerprints,
    }
}

fn main() {
    let args = Args::parse();
    let modes = [
        TransportMode::Silo,
        TransportMode::Tcp,
        TransportMode::Dctcp,
    ];
    let cells = ns2_cells(&modes, &args);
    let cores = auto_threads(usize::MAX);
    let par_threads = args.effective_threads(cells.len());

    eprintln!(
        "bench_simnet: {} cells ({} modes x {} seeds), {} ms sim time, {} cores",
        cells.len(),
        modes.len(),
        args.runs,
        args.duration_ms,
        cores
    );

    let heap1 = run_phase("heap/t1", &cells, &args, QueueBackend::Heap, 1);
    let wheel1 = run_phase("wheel/t1", &cells, &args, QueueBackend::Wheel, 1);
    let wheeln = run_phase(
        &format!("wheel/t{par_threads}"),
        &cells,
        &args,
        QueueBackend::Wheel,
        par_threads,
    );

    // The backend and the thread count are pure cost knobs: results must
    // not move. (Serialized metrics are compared byte for byte.)
    assert_eq!(
        heap1.fingerprints, wheel1.fingerprints,
        "heap and wheel backends diverged"
    );
    assert_eq!(
        wheel1.fingerprints, wheeln.fingerprints,
        "thread count changed results"
    );

    let eps = |p: &Phase| p.report.total_events() as f64 / p.report.cell_wall_s();
    let engine_gain = eps(&wheel1) / eps(&heap1);
    let parallel_speedup = wheel1.report.total_wall_s / wheeln.report.total_wall_s;

    let notes = format!(
        "wheel-vs-heap events/sec gain {:.2}x (single thread); \
         {}-thread sweep speedup {:.2}x over 1 thread on a {}-core host; \
         results byte-identical across backends and thread counts",
        engine_gain, par_threads, parallel_speedup, cores
    );

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"name\": \"simnet\",\n");
    out.push_str(&format!(
        "  \"notes\": \"{}\",\n",
        notes.replace('"', "\\\"")
    ));
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!(
        "  \"sim_duration_ms\": {}, \"scale\": {}, \"cells\": {},\n",
        args.duration_ms,
        args.scale,
        cells.len()
    ));
    out.push_str(&format!(
        "  \"wheel_vs_heap_events_per_sec_gain\": {engine_gain:.3},\n"
    ));
    out.push_str(&format!(
        "  \"parallel_speedup_t{par_threads}\": {parallel_speedup:.3},\n"
    ));
    out.push_str("  \"phases\": [\n");
    for (i, p) in [&heap1, &wheel1, &wheeln].iter().enumerate() {
        for line in p.report.to_json().trim_end().lines() {
            out.push_str("    ");
            out.push_str(line);
            out.push('\n');
        }
        if i < 2 {
            let last = out.pop();
            debug_assert_eq!(last, Some('\n'));
            out.push_str(",\n");
        }
    }
    out.push_str("  ]\n}\n");

    std::fs::write("BENCH_simnet.json", &out).expect("write BENCH_simnet.json");
    eprintln!("{notes}");
    eprintln!("wrote BENCH_simnet.json");
}
