//! Simnet engine microbenchmark: event-loop throughput across the queue
//! backends (timer wheel vs reference `BinaryHeap`), the timer-cancellation
//! engine win over the tombstone scheme, and sweep-level parallel speedup —
//! written to `BENCH_simnet.json` in the current directory.
//!
//! Ten phases run the **same** `(mode × seed)` cell grid:
//!
//! 1. `heap/t1`           — reference heap backend, one thread;
//! 2. `wheel_nocancel/t1` — timer wheel, tombstone timers (the
//!    pre-cancellation engine baseline);
//! 3. `coalesce_off/t1`   — default engine with the hot-path event diet
//!    off (per-chunk void frames, eager NIC pulls: the pre-diet engine);
//! 4. `wheel/t1`          — timer wheel + cancelable timers + event diet
//!    (the default engine), one thread;
//! 5. `wheel/tN`          — default engine, one worker per core;
//! 6. `shard4/t1`         — within-cell sharded engine (4 rack
//!    partitions, windowed merge), prepare pass inline;
//! 7. `shard4/pN`         — same, prepare pass on worker threads;
//! 8. `spawned/t1`        — default engine through the always-spawning
//!    worker pool (the pre-inline-fast-path runner baseline);
//! 9. `audit/t1`          — default engine with the invariant-audit layer
//!    on (its wall-clock overhead and counters go into the report);
//! 10. `trace/t1`         — default engine with the flight recorder on
//!     (its wall-clock overhead and event counts go into the report);
//! 11. `telemetry/t1`     — default engine with the windowed telemetry
//!     recorder on (1 ms windows; its wall-clock overhead goes into the
//!     report and is asserted under 15%).
//!
//! Physical results are asserted byte-identical across all eleven phases
//! (this binary doubles as an end-to-end equivalence check); engine
//! counters are additionally identical wherever the engine config matches.
//!
//! `--profile` instead runs one Silo cell (audit on) and prints the
//! per-event-kind scheduled/fired/stale/cancelled table, per-tenant
//! streaming latency histograms, and the audit summary, failing if the
//! cancellation layer did no work or the audit flags a healthy run — the
//! CI smoke test that both stay live.

use silo_base::QueueBackend;
use silo_bench::ns2::{ns2_cells, run_ns2_cell_with_engine, EngineOpts, Ns2Cell};
use silo_bench::{
    auto_threads, run_cells_timed, run_cells_timed_spawned, Args, BenchCell, BenchReport,
};
use silo_simnet::TransportMode;
use std::time::Instant;

struct Phase {
    report: BenchReport,
    /// Full canonical fingerprints (physics + engine counters).
    canonical: Vec<String>,
    /// Physics-only fingerprints (what every engine config must agree on).
    physics: Vec<String>,
    peak_sum: u64,
    /// Summed invariant-audit counters (zeros unless the phase audits).
    audit_events: u64,
    audit_violations: u64,
    audit_unattributed: u64,
    /// Summed flight-recorder counters (zeros unless the phase traces).
    trace_events: u64,
    trace_dropped: u64,
    /// Summed telemetry window counts (zeros unless the phase records).
    telemetry_windows: u64,
    /// Per-tenant latency quantiles of the phase's first cell:
    /// `(tenant, msgs, p50, p90, p99, max)` in ps.
    tenant_latency: Vec<(u16, u64, u64, u64, u64, u64)>,
}

fn run_phase(tag: &str, cells: &[Ns2Cell], args: &Args, eng: EngineOpts, threads: usize) -> Phase {
    run_phase_inner(tag, cells, args, eng, threads, false)
}

/// `run_phase` through the always-spawning worker pool — the pre-fast-path
/// runner, for the `spawned/t1` before/after comparison.
fn run_phase_spawned(
    tag: &str,
    cells: &[Ns2Cell],
    args: &Args,
    eng: EngineOpts,
    threads: usize,
) -> Phase {
    run_phase_inner(tag, cells, args, eng, threads, true)
}

fn run_phase_inner(
    tag: &str,
    cells: &[Ns2Cell],
    args: &Args,
    eng: EngineOpts,
    threads: usize,
    spawned: bool,
) -> Phase {
    let t0 = Instant::now();
    let cell_fn = |_: usize, c: &Ns2Cell| run_ns2_cell_with_engine(c, args, eng);
    let timed = if spawned {
        run_cells_timed_spawned(cells, threads, cell_fn)
    } else {
        run_cells_timed(cells, threads, cell_fn)
    };
    let total_wall_s = t0.elapsed().as_secs_f64();
    let mut bench_cells = Vec::with_capacity(cells.len());
    let mut canonical = Vec::with_capacity(cells.len());
    let mut physics = Vec::with_capacity(cells.len());
    let mut peak_sum = 0u64;
    let (mut audit_events, mut audit_violations, mut audit_unattributed) = (0u64, 0u64, 0u64);
    let (mut trace_events, mut trace_dropped) = (0u64, 0u64);
    let mut telemetry_windows = 0u64;
    for (cell, t) in cells.iter().zip(&timed) {
        let (_, m) = &t.result;
        bench_cells.push(BenchCell {
            label: format!("{}/{}/seed{}", tag, cell.mode.label(), cell.seed),
            wall_s: t.wall.as_secs_f64(),
            events: m.events_processed,
            peak_event_queue: m.peak_event_queue,
        });
        canonical.push(m.canonical_json());
        physics.push(m.physics_json());
        peak_sum += m.peak_event_queue;
        if let Some(a) = &m.audit {
            audit_events += a.events_checked;
            audit_violations += a.total();
            audit_unattributed += a.unattributed;
        }
        if let Some(t) = &m.trace {
            trace_events += t.events.len() as u64;
            trace_dropped += t.dropped;
        }
        if let Some(tl) = &m.telemetry {
            telemetry_windows += tl.windows;
        }
    }
    // Per-tenant latency quantiles from the phase's first cell (the
    // grid's Silo cell at the base seed) — the streaming histograms are
    // always on, so this is free.
    let m0 = &timed[0].result.1;
    let mut tenant_latency: Vec<(u16, u64, u64, u64, u64, u64)> = (0..m0.latency_hist.len() as u16)
        .filter_map(|t| {
            m0.latency_hist(t).filter(|h| !h.is_empty()).map(|h| {
                (
                    t,
                    h.count(),
                    h.quantile(0.50).unwrap_or(0),
                    h.quantile(0.90).unwrap_or(0),
                    h.quantile(0.99).unwrap_or(0),
                    h.max().unwrap_or(0),
                )
            })
        })
        .collect();
    tenant_latency.sort_by_key(|&(t, _, _, _, p99, _)| (std::cmp::Reverse(p99), t));
    Phase {
        report: BenchReport {
            name: format!("simnet_{}", tag.replace('/', "_")),
            notes: String::new(),
            host_cores: auto_threads(usize::MAX),
            threads,
            total_wall_s,
            cells: bench_cells,
        },
        canonical,
        physics,
        peak_sum,
        audit_events,
        audit_violations,
        audit_unattributed,
        trace_events,
        trace_dropped,
        telemetry_windows,
        tenant_latency,
    }
}

/// `--profile`: one Silo cell on the default engine, profile table to
/// stdout. Exits nonzero when no timer was ever cancelled — that would
/// mean the elision layer is configured out and the engine is silently
/// back to dispatching tombstones.
fn profile_smoke(args: &Args) -> ! {
    let cell = Ns2Cell {
        mode: TransportMode::Silo,
        run: 0,
        seed: args.seed,
    };
    let eng = EngineOpts {
        audit: true,
        telemetry: true,
        shards: args.shards.max(1),
        shard_threads: args.shard_threads,
        ..EngineOpts::default()
    };
    let (_, m) = run_ns2_cell_with_engine(&cell, args, eng);
    println!(
        "Silo/seed{} ({} ms sim): {} events, peak queue {}",
        args.seed, args.duration_ms, m.events_processed, m.peak_event_queue
    );
    print!("{}", m.profile.to_table());
    print!(
        "\n{}",
        m.telemetry
            .as_ref()
            .expect("profile runs telemetry")
            .self_profile
            .to_table()
    );
    // Streaming per-tenant latency histograms: always on, fixed memory,
    // exact min/max/mean with ≤3.2% quantile error (sub_bits = 5). The
    // noisiest tenants by p99 head the list.
    println!(
        "\n{} messages over {} tenants (streaming histograms):",
        m.messages_total,
        m.latency_hist.len()
    );
    let mut order: Vec<u16> = (0..m.latency_hist.len() as u16)
        .filter(|&t| m.latency_hist(t).is_some_and(|h| !h.is_empty()))
        .collect();
    order.sort_by_key(|&t| std::cmp::Reverse(m.latency_hist(t).unwrap().quantile(0.99)));
    for &t in order.iter().take(8) {
        let h = m.latency_hist(t).unwrap();
        let q = |p: f64| h.quantile(p).unwrap_or(0) as f64 / 1e6;
        println!(
            "  tenant {t:<3} {:>7} msgs  p50 {:>9.1} us  p90 {:>9.1} us  p99 {:>9.1} us  p99.9 {:>9.1} us  max {:>9.1} us",
            h.count(),
            q(0.50),
            q(0.90),
            q(0.99),
            q(0.999),
            h.max().unwrap_or(0) as f64 / 1e6,
        );
    }
    if order.len() > 8 {
        println!("  ... {} more tenants", order.len() - 8);
    }
    let report = m.audit.as_ref().expect("profile runs audit");
    println!("{}", report.summary());
    if !report.is_clean() {
        eprintln!("FAIL: invariant audit found violations on a healthy run");
        std::process::exit(1);
    }
    let cancelled = m.profile.total_cancelled();
    let stale = m.profile.total_stale();
    if cancelled == 0 {
        eprintln!("FAIL: no timers were cancelled — the cancellation layer is dead");
        std::process::exit(1);
    }
    if stale > 0 {
        eprintln!("FAIL: {stale} stale dispatches under cancel_timers — tombstones leaked");
        std::process::exit(1);
    }
    println!("profile smoke OK: {cancelled} cancelled, 0 stale");
    std::process::exit(0);
}

fn main() {
    let args = Args::parse();
    if args.profile {
        profile_smoke(&args);
    }
    let modes = [
        TransportMode::Silo,
        TransportMode::Tcp,
        TransportMode::Dctcp,
    ];
    let cells = ns2_cells(&modes, &args);
    let cores = auto_threads(usize::MAX);
    let par_threads = args.effective_threads(cells.len());

    eprintln!(
        "bench_simnet: {} cells ({} modes x {} seeds), {} ms sim time, {} cores",
        cells.len(),
        modes.len(),
        args.runs,
        args.duration_ms,
        cores
    );

    let wheel = EngineOpts::default();
    let heap = EngineOpts {
        queue: QueueBackend::Heap,
        ..wheel
    };
    let nocancel = EngineOpts {
        cancel_timers: false,
        ..wheel
    };
    let nodiet = EngineOpts {
        coalesce: false,
        ..wheel
    };
    let audit_eng = EngineOpts {
        audit: true,
        ..wheel
    };
    let trace_eng = EngineOpts {
        trace: true,
        ..wheel
    };
    let telemetry_eng = EngineOpts {
        telemetry: true,
        ..wheel
    };
    let shard_eng = EngineOpts { shards: 4, ..wheel };
    // Exercise the threaded prepare pass even on a 1-core host (the
    // byte-identity assert is the point; the wall number is caveated in
    // the notes).
    let prep_threads = cores.max(2);
    let shard_eng_n = EngineOpts {
        shard_threads: prep_threads,
        ..shard_eng
    };
    let heap1 = run_phase("heap/t1", &cells, &args, heap, 1);
    let base1 = run_phase("wheel_nocancel/t1", &cells, &args, nocancel, 1);
    let nodiet1 = run_phase("coalesce_off/t1", &cells, &args, nodiet, 1);
    let wheel1 = run_phase("wheel/t1", &cells, &args, wheel, 1);
    let wheeln = run_phase(
        &format!("wheel/t{par_threads}"),
        &cells,
        &args,
        wheel,
        par_threads,
    );
    let shard1 = run_phase("shard4/t1", &cells, &args, shard_eng, 1);
    let shardn = run_phase(
        &format!("shard4/p{prep_threads}"),
        &cells,
        &args,
        shard_eng_n,
        1,
    );
    let spawned1 = run_phase_spawned("spawned/t1", &cells, &args, wheel, 1);
    let audit1 = run_phase("audit/t1", &cells, &args, audit_eng, 1);
    let trace1 = run_phase("trace/t1", &cells, &args, trace_eng, 1);
    let telemetry1 = run_phase("telemetry/t1", &cells, &args, telemetry_eng, 1);

    // Physics must not move under any engine config; full canonical
    // results (engine counters included) must not move across backends or
    // thread counts when the engine config is the same.
    assert_eq!(
        wheel1.physics, base1.physics,
        "timer cancellation changed physical results"
    );
    assert_eq!(
        heap1.physics, wheel1.physics,
        "queue backend changed physical results"
    );
    // The event diet (coalesced voids + elided pulls) is an engine-only
    // change: same physics, strictly fewer dispatched events.
    assert_eq!(
        nodiet1.physics, wheel1.physics,
        "the void-coalesce/fast-forward diet changed physical results"
    );
    assert!(
        wheel1.report.total_events() < nodiet1.report.total_events(),
        "the event diet must shed dispatches ({} vs {})",
        wheel1.report.total_events(),
        nodiet1.report.total_events()
    );
    assert_eq!(
        heap1.canonical, wheel1.canonical,
        "heap and wheel backends diverged on engine counters"
    );
    assert_eq!(
        wheel1.canonical, wheeln.canonical,
        "thread count changed results"
    );
    // Within-cell sharding (the windowed merge engine) is a pure
    // wall-clock lever: full canonical results — engine counters
    // included — must be byte-identical to the serial engine at every
    // partition and prepare-thread count.
    assert_eq!(
        shard1.canonical, wheel1.canonical,
        "4-way sharding changed results"
    );
    assert_eq!(
        shardn.canonical, wheel1.canonical,
        "sharded prepare threads changed results"
    );
    // The runner's t1 inline fast path is result-identical to the
    // spawned pool it replaced, and may not be slower (small tolerance
    // for wall-clock noise: the win is one thread create/join plus a
    // mutex round-trip per sweep).
    assert_eq!(
        spawned1.canonical, wheel1.canonical,
        "the spawned worker pool changed results"
    );
    // The invariant-audit layer is pure observation: same physics, same
    // engine counters, and zero unattributed violations on healthy cells.
    assert_eq!(
        audit1.canonical, wheel1.canonical,
        "audit layer changed physical results"
    );
    assert_eq!(
        audit1.audit_unattributed, 0,
        "healthy ns2 cells reported unattributed audit violations"
    );
    assert!(audit1.audit_events > 0, "audit phase checked no events");
    // The flight recorder is pure observation too: canonical results are
    // byte-identical with tracing on, and the rings actually recorded.
    assert_eq!(
        trace1.canonical, wheel1.canonical,
        "flight recorder changed physical results"
    );
    assert!(trace1.trace_events > 0, "trace phase recorded no events");
    // The windowed telemetry recorder is the third pure observer:
    // canonical results byte-identical with it on, and every cell
    // produced its full window grid.
    assert_eq!(
        telemetry1.canonical, wheel1.canonical,
        "telemetry recorder changed physical results"
    );
    assert_eq!(
        telemetry1.telemetry_windows,
        args.duration_ms * cells.len() as u64,
        "every cell must record one window per simulated millisecond"
    );

    let eps = |p: &Phase| p.report.total_events() as f64 / p.report.cell_wall_s();
    let engine_gain = eps(&wheel1) / eps(&heap1);
    // The diet changes the event population, so its win is measured in
    // *pre-diet event units*: the same simulated workload used to take
    // `nodiet` events — the dieted engine retires it in less wall time,
    // so (pre-diet events)/(dieted wall) over (pre-diet events)/(pre-diet
    // wall) is the events/sec gain, which reduces to the wall ratio. The
    // event cut itself is reported alongside.
    let void_event_cut = nodiet1.report.total_events() as f64 / wheel1.report.total_events() as f64;
    let void_eps_gain = nodiet1.report.cell_wall_s() / wheel1.report.cell_wall_s();
    let silo_void_eps_gain = nodiet1.report.cells[0].wall_s / wheel1.report.cells[0].wall_s;
    // Cancellation changes the event population, so its win is wall-clock
    // per cell against the tombstone engine, not events/sec.
    let cancel_speedup = base1.report.cell_wall_s() / wheel1.report.cell_wall_s();
    let silo_cancel_speedup = base1.report.cells[0].wall_s / wheel1.report.cells[0].wall_s;
    let peak_reduction = 1.0 - wheel1.peak_sum as f64 / base1.peak_sum.max(1) as f64;
    let parallel_speedup = wheel1.report.total_wall_s / wheeln.report.total_wall_s;
    // Sharding works within a cell, so its speedups are per-cell wall
    // ratios; the inline-runner win is sweep-level (the orchestration
    // itself is what changed).
    let shard_speedup_t1 = wheel1.report.cell_wall_s() / shard1.report.cell_wall_s();
    let shard_speedup_tn = wheel1.report.cell_wall_s() / shardn.report.cell_wall_s();
    let t1_inline_speedup = spawned1.report.total_wall_s / wheel1.report.total_wall_s;
    assert!(
        t1_inline_speedup > 0.95,
        "the t1 inline fast path regressed vs the spawned pool ({t1_inline_speedup:.3}x)"
    );
    let audit_overhead = audit1.report.cell_wall_s() / wheel1.report.cell_wall_s();
    let trace_overhead = trace1.report.cell_wall_s() / wheel1.report.cell_wall_s();
    let telemetry_overhead = telemetry1.report.cell_wall_s() / wheel1.report.cell_wall_s();
    assert!(
        telemetry_overhead < 1.15,
        "telemetry at 1 ms windows must stay under 15% wall overhead ({telemetry_overhead:.3}x)"
    );

    let notes = format!(
        "timer cancellation {:.2}x wall-clock over tombstones ({:.2}x on {}; \
         peak event-queue occupancy -{:.0}%); event diet (coalesced voids + \
         elided pulls) {:.2}x events/sec in pre-diet units ({:.2}x on the Silo \
         cell; {:.2}x fewer dispatches); wheel-vs-heap events/sec gain {:.2}x; \
         {}-thread sweep speedup {:.2}x over 1 thread on a {}-core host; \
         4-way within-cell sharding {:.2}x wall-clock ({:.2}x with {} prepare \
         threads) — the windowed merge dispatches in serial order by \
         construction, so ~1.0x is the honest expectation on this host and \
         the win is the byte-identity it proves; t1 inline runner {:.2}x over \
         the spawned pool; \
         invariant audit {:.2}x wall-clock, {} events checked, {} violations \
         ({} unattributed); flight recorder {:.2}x wall-clock, {} events retained \
         ({} evicted from rings); windowed telemetry {:.2}x wall-clock at 1 ms \
         windows ({} windows recorded); physics byte-identical across engines, \
         backends, thread counts, shard counts, diet on/off, audit on/off, \
         trace on/off and telemetry on/off",
        cancel_speedup,
        silo_cancel_speedup,
        wheel1.report.cells[0].label,
        peak_reduction * 100.0,
        void_eps_gain,
        silo_void_eps_gain,
        void_event_cut,
        engine_gain,
        par_threads,
        parallel_speedup,
        cores,
        shard_speedup_t1,
        shard_speedup_tn,
        prep_threads,
        t1_inline_speedup,
        audit_overhead,
        audit1.audit_events,
        audit1.audit_violations,
        audit1.audit_unattributed,
        trace_overhead,
        trace1.trace_events,
        trace1.trace_dropped,
        telemetry_overhead,
        telemetry1.telemetry_windows
    );

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"name\": \"simnet\",\n");
    out.push_str(&format!(
        "  \"notes\": \"{}\",\n",
        notes.replace('"', "\\\"")
    ));
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!(
        "  \"sim_duration_ms\": {}, \"scale\": {}, \"cells\": {},\n",
        args.duration_ms,
        args.scale,
        cells.len()
    ));
    out.push_str(&format!(
        "  \"cancel_vs_tombstone_speedup\": {cancel_speedup:.3},\n"
    ));
    out.push_str(&format!(
        "  \"cancel_vs_tombstone_speedup_silo_seed{}\": {silo_cancel_speedup:.3},\n",
        args.seed
    ));
    out.push_str(&format!(
        "  \"peak_event_queue_reduction\": {peak_reduction:.3},\n"
    ));
    out.push_str(&format!(
        "  \"void_coalesce_events_per_sec_gain\": {void_eps_gain:.3},\n"
    ));
    out.push_str(&format!(
        "  \"void_coalesce_events_per_sec_gain_silo_seed{}\": {silo_void_eps_gain:.3},\n",
        args.seed
    ));
    out.push_str(&format!(
        "  \"void_coalesce_event_reduction\": {void_event_cut:.3},\n"
    ));
    out.push_str(&format!(
        "  \"wheel_vs_heap_events_per_sec_gain\": {engine_gain:.3},\n"
    ));
    out.push_str(&format!(
        "  \"parallel_speedup_t{par_threads}\": {parallel_speedup:.3},\n"
    ));
    out.push_str(&format!(
        "  \"shard_speedup_shards4_t1\": {shard_speedup_t1:.3},\n"
    ));
    out.push_str(&format!(
        "  \"shard_speedup_shards4_p{prep_threads}\": {shard_speedup_tn:.3},\n"
    ));
    out.push_str(&format!(
        "  \"t1_inline_speedup\": {t1_inline_speedup:.3},\n"
    ));
    out.push_str(&format!(
        "  \"audit_wall_overhead\": {audit_overhead:.3},\n"
    ));
    out.push_str(&format!(
        "  \"audit_events_checked\": {}, \"audit_violations\": {}, \
         \"audit_unattributed\": {},\n",
        audit1.audit_events, audit1.audit_violations, audit1.audit_unattributed
    ));
    out.push_str(&format!(
        "  \"trace_wall_overhead\": {trace_overhead:.3},\n"
    ));
    out.push_str(&format!(
        "  \"trace_events_retained\": {}, \"trace_events_evicted\": {},\n",
        trace1.trace_events, trace1.trace_dropped
    ));
    out.push_str(&format!(
        "  \"telemetry_wall_overhead\": {telemetry_overhead:.3},\n"
    ));
    out.push_str(&format!(
        "  \"telemetry_windows_recorded\": {},\n",
        telemetry1.telemetry_windows
    ));
    // Per-tenant latency quantiles of the default engine's Silo cell
    // (worst p99 first) — the JSON face of `--profile`'s histogram table.
    out.push_str("  \"tenant_latency_us\": [\n");
    for (i, &(t, msgs, p50, p90, p99, max)) in wheel1.tenant_latency.iter().take(8).enumerate() {
        out.push_str(&format!(
            "    {{\"tenant\": {t}, \"msgs\": {msgs}, \"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \"max\": {:.1}}}{}\n",
            p50 as f64 / 1e6,
            p90 as f64 / 1e6,
            p99 as f64 / 1e6,
            max as f64 / 1e6,
            if i + 1 < wheel1.tenant_latency.len().min(8) { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"phases\": [\n");
    let phases = [
        &heap1,
        &base1,
        &nodiet1,
        &wheel1,
        &wheeln,
        &shard1,
        &shardn,
        &spawned1,
        &audit1,
        &trace1,
        &telemetry1,
    ];
    for (i, p) in phases.iter().enumerate() {
        for line in p.report.to_json().trim_end().lines() {
            out.push_str("    ");
            out.push_str(line);
            out.push('\n');
        }
        if i + 1 < phases.len() {
            let last = out.pop();
            debug_assert_eq!(last, Some('\n'));
            out.push_str(",\n");
        }
    }
    out.push_str("  ]\n}\n");

    std::fs::write("BENCH_simnet.json", &out).expect("write BENCH_simnet.json");
    eprintln!("{notes}");
    eprintln!("wrote BENCH_simnet.json");
}
