//! Table 4: outlier tenants — class-A tenants whose 99th-percentile
//! message latency exceeds their latency estimate by 1x / 2x / 8x (§6.2).

use silo_bench::ns2::{run_ns2_sweep, ALL_MODES};
use silo_bench::scenario::NsClass;
use silo_bench::Args;

fn main() {
    let args = Args::parse();
    println!("== Table 4: % outlier class-A tenants (p99 latency > k x estimate) ==");
    println!("scheme\t>1x\t>2x\t>8x\ttenants");
    for out in run_ns2_sweep(&ALL_MODES, &args) {
        let (mut o1, mut o2, mut o8, mut total) = (0usize, 0usize, 0usize, 0usize);
        for (run, m) in out.metrics.iter().enumerate() {
            for (ti, t) in out.tenants[run].iter().enumerate() {
                if t.class != NsClass::A {
                    continue;
                }
                // Per-tenant p99 of the latency / estimate ratio.
                let mut ratios = silo_base::Summary::new();
                for msg in m.messages.iter().filter(|x| x.tenant == ti as u16) {
                    let est = out.estimate_us(run, ti as u16, msg.size);
                    ratios.record(msg.latency.as_us_f64() / est);
                }
                if ratios.is_empty() {
                    continue;
                }
                total += 1;
                let p99 = ratios.p99().unwrap();
                if p99 > 1.0 {
                    o1 += 1;
                }
                if p99 > 2.0 {
                    o2 += 1;
                }
                if p99 > 8.0 {
                    o8 += 1;
                }
            }
        }
        let pct = |x: usize| 100.0 * x as f64 / total.max(1) as f64;
        println!(
            "{}\t{:.1}\t{:.1}\t{:.1}\t{}",
            out.mode.label(),
            pct(o1),
            pct(o2),
            pct(o8),
            total
        );
    }
    println!("\npaper: Silo 0/0/0; TCP 23/22/21; DCTCP 47/17/14; HULL 47/16/14;");
    println!("Okto 91/81/37; Okto+ 20/19/19.");
}
