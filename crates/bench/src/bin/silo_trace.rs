//! `silo-trace` — inspect and compare flight-recorder traces.
//!
//! ```text
//! silo-trace dump <trace.jsonl> [--head N]     print events (default 20)
//! silo-trace summarize <trace.jsonl>           per-kind counts + tenant latency
//! silo-trace diff <a.jsonl> <b.jsonl>          first divergent event; exit 1 if any
//! silo-trace check-perfetto <trace.json>       structural validation
//!     [--expect-tenant-tracks] [--expect-fault-markers]
//! ```
//!
//! `diff` is the determinism debugger: two runs of the simulator are
//! identical iff their traces are, so the first divergent event names
//! the exact instant, packet and mechanism where two schedules split.

use silo_bench::tracefile::{check_perfetto, first_divergence, parse_jsonl, summarize, TraceFile};

fn usage() -> ! {
    eprintln!(
        "usage: silo-trace <dump|summarize|diff|check-perfetto> <file> [file2] [options]\n\
         \n\
         dump <trace.jsonl> [--head N]   print the first N events (default 20)\n\
         summarize <trace.jsonl>         per-kind counts and tenant latency quantiles\n\
         diff <a.jsonl> <b.jsonl>        report the first divergent event (exit 1)\n\
         check-perfetto <trace.json>     validate a Perfetto export\n\
             [--expect-tenant-tracks] [--expect-fault-markers]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> TraceFile {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("silo-trace: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("silo-trace: {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    match cmd.as_str() {
        "dump" => {
            let path = argv.get(1).unwrap_or_else(|| usage());
            let mut head = 20usize;
            let mut i = 2;
            while i < argv.len() {
                match argv[i].as_str() {
                    "--head" => {
                        head = argv
                            .get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage());
                        i += 2;
                    }
                    _ => usage(),
                }
            }
            let f = load(path);
            println!(
                "{path}: {} events, {} dropped, {} tenants",
                f.rows.len(),
                f.dropped,
                f.tenants
            );
            for r in f.rows.iter().take(head) {
                println!(
                    "{:>8}  t={:>15} ps  dur={:>12} ps  {:<12} loc={:<4} conn={:<6} pseq={:<8} {} {}",
                    r.seq,
                    r.t_ps,
                    r.dur_ps,
                    r.kind,
                    r.loc,
                    r.conn,
                    r.pseq,
                    r.pkt,
                    if r.retx { "retx" } else { "" },
                );
            }
            if f.rows.len() > head {
                println!("... {} more (raise --head)", f.rows.len() - head);
            }
        }
        "summarize" => {
            let path = argv.get(1).unwrap_or_else(|| usage());
            print!("{}", summarize(&load(path)));
        }
        "diff" => {
            let (a_path, b_path) = match (argv.get(1), argv.get(2)) {
                (Some(a), Some(b)) => (a, b),
                _ => usage(),
            };
            let a = load(a_path);
            let b = load(b_path);
            match first_divergence(&a, &b) {
                None => {
                    println!("identical: {} events", a.rows.len());
                }
                Some(d) => {
                    print!("{}", d.report());
                    std::process::exit(1);
                }
            }
        }
        "check-perfetto" => {
            let path = argv.get(1).unwrap_or_else(|| usage());
            let expect_tenants = argv.iter().any(|a| a == "--expect-tenant-tracks");
            let expect_faults = argv.iter().any(|a| a == "--expect-fault-markers");
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("silo-trace: cannot read {path}: {e}");
                std::process::exit(2);
            });
            match check_perfetto(&text, expect_tenants, expect_faults) {
                Ok(()) => println!("{path}: structurally valid Perfetto trace"),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
