//! §4.4 extension: best-effort tenants behind 802.1q priorities.
//!
//! "Silo relies on rate limiting tenants to give packet delay guarantees.
//! However, this can hurt network utilization ... Silo leverages 802.1q
//! priority forwarding in switches to support best-effort tenants" — they
//! soak up residual capacity at low priority without perturbing
//! guaranteed tenants. This experiment measures exactly that: a
//! guaranteed OLDI tenant's tail latency and a best-effort bulk tenant's
//! throughput, with and without the best-effort tenant present.

use silo_base::{Bytes, Dur, Rate};
use silo_bench::Args;
use silo_simnet::{Sim, SimConfig, TenantSpec, TenantWorkload, TransportMode};
use silo_topology::{HostId, Topology, TreeParams};

fn main() {
    let args = Args::parse();
    let topo = Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: 8,
        vm_slots_per_server: 4,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    });
    let dur = Dur::from_ms(args.duration_ms.max(200));
    // Provisioned by Table 1's recipe: burst of ~7 messages, bandwidth
    // ≈ 1.8x the offered average — so the guarantee is actually meetable.
    let guaranteed = TenantSpec {
        vm_hosts: (0..8).map(HostId).collect(),
        b: Rate::from_mbps(500),
        s: Bytes::from_kb(35),
        bmax: Rate::from_gbps(1),
        prio: 0,
        delay: None,
        workload: TenantWorkload::OldiAllToOne {
            msg_mean: Bytes(4_500),
            interval: Dur::from_ms(2),
        },
    };
    // The best-effort tenant offers far more than any guarantee could
    // admit: it may only use leftovers (prio 1, generous rate limit).
    let best_effort = TenantSpec {
        vm_hosts: (0..8).map(HostId).collect(),
        b: Rate::from_gbps(9),
        s: Bytes(1500),
        bmax: Rate::from_gbps(10),
        prio: 1,
        delay: None,
        workload: TenantWorkload::BulkAllToAll {
            msg: Bytes::from_mb(1),
        },
    };

    println!("== §4.4: best-effort tenants on residual capacity ==");
    let run = |tenants: Vec<TenantSpec>| {
        let cfg = SimConfig::new(TransportMode::Silo, dur, args.seed);
        Sim::new(topo.clone(), cfg, tenants).run()
    };
    let alone = run(vec![guaranteed.clone()]);
    let mut lat_alone = alone.latencies_us(0);
    let both = run(vec![guaranteed, best_effort]);
    let mut lat_both = both.latencies_us(0);

    println!(
        "guaranteed tenant alone:   p50 {:>6.0} us, p99 {:>6.0} us",
        lat_alone.median().unwrap_or(f64::NAN),
        lat_alone.p99().unwrap_or(f64::NAN)
    );
    println!(
        "with best-effort sharing:  p50 {:>6.0} us, p99 {:>6.0} us",
        lat_both.median().unwrap_or(f64::NAN),
        lat_both.p99().unwrap_or(f64::NAN)
    );
    let util = |m: &silo_simnet::Metrics| {
        let n = m.port_utilization.len().max(1);
        m.port_utilization.iter().sum::<f64>() / n as f64
    };
    println!(
        "network utilization: {:.1}% alone -> {:.1}% with best-effort",
        util(&alone) * 100.0,
        util(&both) * 100.0
    );
    println!(
        "best-effort goodput: {:.2} Gbps over leftover capacity",
        both.goodput[1] as f64 * 8.0 / dur.as_secs_f64() / 1e9
    );
    let p99_a = lat_alone.p99().unwrap_or(0.0);
    let p99_b = lat_both.p99().unwrap_or(0.0);
    assert!(
        p99_b < p99_a * 2.0 && p99_b < 1100.0,
        "strict priority must protect the guaranteed tail: {p99_a} -> {p99_b}"
    );
    println!("\nguaranteed tail preserved while utilization multiplies — the");
    println!("work-conservation Silo recovers without touching its guarantees.");
}
