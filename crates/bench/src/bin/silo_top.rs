//! `silo-top` — inspect and compare windowed telemetry recordings.
//!
//! ```text
//! silo-top show <telemetry.jsonl>             per-tenant margin/goodput tables
//! silo-top diff <a.jsonl> <b.jsonl>           first divergent sample; exit 1 if any
//! silo-top check-openmetrics <metrics.txt>    grammar lint of the exposition
//! ```
//!
//! `diff` is the windowed analogue of `silo-trace diff`: the telemetry
//! JSONL is deterministic (the self-profile never enters it), so two
//! same-seed runs must produce byte-identical files and the first
//! divergent sample names the window and series where they split.

use silo_bench::telemetryfile::{
    openmetrics_lint, parse_telemetry, render_top, telemetry_divergence, TelemetryFile,
};

fn usage() -> ! {
    eprintln!(
        "usage: silo-top <show|diff|check-openmetrics> <file> [file2]\n\
         \n\
         show <telemetry.jsonl>            per-tenant margin/goodput tables\n\
         diff <a.jsonl> <b.jsonl>          report the first divergent sample (exit 1)\n\
         check-openmetrics <metrics.txt>   lint an OpenMetrics exposition"
    );
    std::process::exit(2);
}

fn load(path: &str) -> TelemetryFile {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("silo-top: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_telemetry(&text).unwrap_or_else(|e| {
        eprintln!("silo-top: {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    match cmd.as_str() {
        "show" => {
            let path = argv.get(1).unwrap_or_else(|| usage());
            print!("{}", render_top(&load(path)));
        }
        "diff" => {
            let (a_path, b_path) = match (argv.get(1), argv.get(2)) {
                (Some(a), Some(b)) => (a, b),
                _ => usage(),
            };
            let a = load(a_path);
            let b = load(b_path);
            match telemetry_divergence(&a, &b) {
                Err(e) => {
                    eprintln!("silo-top: {e}");
                    std::process::exit(2);
                }
                Ok(None) => {
                    println!(
                        "identical: {} samples over {} windows",
                        a.rows.len(),
                        a.windows
                    );
                }
                Ok(Some(d)) => {
                    print!("{}", d.report());
                    std::process::exit(1);
                }
            }
        }
        "check-openmetrics" => {
            let path = argv.get(1).unwrap_or_else(|| usage());
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("silo-top: cannot read {path}: {e}");
                std::process::exit(2);
            });
            match openmetrics_lint(&text) {
                Ok(samples) => println!("{path}: valid OpenMetrics exposition, {samples} samples"),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
