//! Figure 14: CDF over class-B tenants of average message latency
//! normalized to the latency estimate (§6.2). Guaranteed-bandwidth
//! schemes finish by the estimate (ratio ≤ 1); fair-sharing schemes
//! spread — some tenants luck into extra bandwidth, a long tail starves.

use silo_bench::ns2::run_ns2_sweep;
use silo_bench::scenario::NsClass;
use silo_bench::{print_cdf, Args};
use silo_simnet::TransportMode;

fn main() {
    let args = Args::parse();
    println!("== Fig 14: class-B mean latency / estimate ==");
    let modes = [
        TransportMode::Silo,
        TransportMode::Tcp,
        TransportMode::Hull,
        TransportMode::Okto,
    ];
    for out in run_ns2_sweep(&modes, &args) {
        let mut per_tenant = silo_base::Summary::new();
        for (run, m) in out.metrics.iter().enumerate() {
            for (ti, t) in out.tenants[run].iter().enumerate() {
                if t.class != NsClass::B {
                    continue;
                }
                let mut sum = 0.0;
                let mut n = 0usize;
                // Same-host messages ride the vswitch, not the network.
                for msg in m
                    .messages
                    .iter()
                    .filter(|x| x.tenant == ti as u16 && !x.same_host)
                {
                    let est = out.estimate_us(run, ti as u16, msg.size);
                    sum += msg.latency.as_us_f64() / est;
                    n += 1;
                }
                if n > 0 {
                    per_tenant.record(sum / n as f64);
                }
            }
        }
        println!(
            "{}: tenants={} median ratio={:.2} p95={:.2}",
            out.mode.label(),
            per_tenant.len(),
            per_tenant.median().unwrap_or(f64::NAN),
            per_tenant.p95().unwrap_or(f64::NAN)
        );
        print_cdf(
            &format!("{} class-B latency/estimate", out.mode.label()),
            &mut per_tenant,
            11,
        );
    }
    println!("\npaper shape: Silo/Okto a step at <= 1 (guarantees met); TCP/HULL spread");
    println!("around 1 with 65% of tenants faster but a long starved tail.");
}
