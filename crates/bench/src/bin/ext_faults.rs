//! Fault-injection extension: graceful degradation under infrastructure
//! failures.
//!
//! The paper's guarantees assume a healthy network; this experiment asks
//! what Silo's data plane and placement layer do when that assumption
//! breaks. A fixed two-rack cell runs one guaranteed cross-rack OLDI
//! tenant and one intra-rack bulk tenant through a sweep of deterministic
//! fault scenarios (ToR outage, permanent host-link death, pacer stall /
//! clock drift, tenant churn), all fanned across threads with
//! `run_cells`. For each scenario we report completed messages, goodput,
//! guarantee violations and — the property under test — how many of
//! those violations are *attributed* to the injected fault.
//!
//! A second section drives the placement layer directly: admit tenants,
//! kill a ToR uplink with [`SiloPlacer::fail_link`], and show each
//! affected tenant being re-placed on surviving capacity or explicitly
//! downgraded to best-effort; then heal the link and show restoration.

use silo_base::Dur;
use silo_bench::{run_cells, Args};
use silo_explorer::{cell_tenants, cell_topo, seed_plans};
use silo_placement::{DegradeOutcome, Guarantee, Placer, SiloPlacer, TenantRequest};
use silo_simnet::{AuditConfig, FaultPlan, Metrics, Sim, SimConfig, TransportMode};
use silo_topology::Topology;

// The cell itself — topology, tenants, and the six hand-written
// schedules — lives in `silo_explorer::cell`, shared with the
// coverage-guided schedule search so that a schedule recorded by either
// harness replays bit-identically in the other.

struct Scenario {
    label: &'static str,
    plan: FaultPlan,
}

fn scenarios(topo: &Topology, dur_ms: u64) -> Vec<Scenario> {
    let mut out: Vec<Scenario> = seed_plans(topo, dur_ms)
        .into_iter()
        .map(|(label, plan)| Scenario { label, plan })
        .collect();
    // Schedules the explorer found interesting, promoted to goldens: the
    // sweep runs them alongside the hand-written six under the same
    // attribution asserts.
    out.extend(
        silo_bench::corpus::explorer_goldens()
            .into_iter()
            .map(|(label, plan)| Scenario { label, plan }),
    );
    out
}

fn report_row(label: &str, m: &Metrics, dur: Dur) {
    let attributed = m.violations.iter().filter(|v| v.fault.is_some()).count();
    let drops: u64 = m.fault_drops.iter().sum();
    let gbps = m.goodput[0] as f64 * 8.0 / dur.as_secs_f64() / 1e9;
    println!(
        "{label:<30} {:>5} msgs  {:>4}/{:<4} viol (attr/total)  {drops:>6} fault-drops  {:>3} rtos  {gbps:>6.3} Gbps(t0)",
        m.messages.len(),
        attributed,
        m.violations.len(),
        m.rtos,
    );
}

fn main() {
    let args = Args::parse();
    let topo = cell_topo();
    let dur_ms = args.duration_ms.max(60);
    let dur = Dur::from_ms(dur_ms);
    let cells = scenarios(&topo, dur_ms);

    println!(
        "== fault sweep: {} scenarios, {} ms each ==",
        cells.len(),
        dur_ms
    );
    let results = run_cells(&cells, args.effective_threads(cells.len()), |i, sc| {
        let mut cfg = SimConfig::new(TransportMode::Silo, dur, args.seed);
        cfg.faults = sc.plan.clone();
        cfg.shards = args.shards;
        cfg.shard_threads = args.shard_threads;
        if args.audit {
            cfg.audit = Some(AuditConfig::default());
        }
        // Flight-record and/or telemeter the ToR-outage scenario (the
        // interesting one: fault markers, flush drops, margin collapse
        // and recovery all in one window).
        if args.trace_requested() && i == 1 {
            cfg.trace = Some(silo_simnet::TraceConfig::default());
        }
        if args.telemetry_requested() && i == 1 {
            cfg.telemetry = Some(silo_simnet::TelemetryConfig::default());
        }
        Sim::new(topo.clone(), cfg, cell_tenants()).run()
    });
    for (sc, m) in cells.iter().zip(&results) {
        report_row(sc.label, m, dur);
    }
    if let Some(log) = results[1].trace.as_ref() {
        if let Some(path) = &args.trace {
            std::fs::write(path, log.to_jsonl()).expect("write trace jsonl");
            println!(
                "trace ({}): {} events -> {path}",
                cells[1].label,
                log.events.len()
            );
        }
        if let Some(path) = &args.trace_perfetto {
            // Telemetry on too? Splice its counter tracks (per-tenant
            // goodput and guarantee margin) into the same timeline.
            let json = log.to_perfetto_with_counters(results[1].telemetry.as_ref());
            std::fs::write(path, json).expect("write perfetto json");
            println!("perfetto trace -> {path} (open at ui.perfetto.dev)");
        }
    }
    if let Some(log) = results[1].telemetry.as_ref() {
        println!("telemetry scenario: {}", cells[1].label);
        silo_bench::telemetryfile::write_telemetry_outputs(&args, log);
    }

    // With --audit, every scenario also ran under the invariant-audit
    // layer: any violation it reports must be blamed on the injected
    // fault whose window covers it — an unattributed one is an engine bug.
    if args.audit {
        println!("\n== invariant audit (per scenario) ==");
        let mut unattributed_audit = 0u64;
        for (sc, m) in cells.iter().zip(&results) {
            let report = m.audit.as_ref().expect("audit was requested");
            println!("{:<30} {}", sc.label, report.summary());
            unattributed_audit += report.unattributed;
            assert!(
                report.early_releases == 0,
                "{}: pacer released a frame before its stamp",
                sc.label
            );
        }
        assert_eq!(
            unattributed_audit, 0,
            "every audit violation must be attributed to an injected fault"
        );
        println!("all audit violations attributed to injected faults.");
    }

    // The headline property: a healthy admission-controlled run breaks no
    // guarantees, and every violation under injected faults is explained.
    let baseline = &results[0];
    assert!(
        baseline.violations.is_empty(),
        "no faults, no violations: {:?}",
        baseline.violations.first()
    );
    // A violation is unattributed only when the message's whole lifetime
    // falls outside every fault window — residual queue drain after a
    // restoration ("aftershocks"), never a blame-assignment miss.
    let unattributed: usize = results
        .iter()
        .map(|m| m.violations.iter().filter(|v| v.fault.is_none()).count())
        .sum();
    println!("\npost-restoration aftershock violations, all scenarios: {unattributed}");

    // ------------------------------------------------------------------
    // Placement-layer degradation on the same shape of cell.
    // ------------------------------------------------------------------
    println!("\n== placement: ToR failure, reclaim, re-admit, restore ==");
    let mut placer = SiloPlacer::new(cell_topo());
    // Fill most of rack 0 plus cross-rack spans so a ToR death strands
    // someone: 4 tenants x 4 VMs over 32 slots.
    let reqs = [
        TenantRequest::new(4, Guarantee::class_a()),
        TenantRequest::new(4, Guarantee::class_a()),
        TenantRequest::new(6, Guarantee::class_a()).with_fault_domains(6),
        TenantRequest::new(8, Guarantee::class_a()).with_fault_domains(8),
    ];
    for (i, r) in reqs.iter().enumerate() {
        match placer.try_place(r) {
            Ok(p) => println!(
                "admit tenant {i}: {} VMs spanning {:?} over {} hosts",
                p.total_vms(),
                p.span,
                p.hosts.len()
            ),
            Err(e) => println!("admit tenant {i}: rejected ({e:?})"),
        }
    }
    let tor0 = placer.topology().tor_link(0);
    let report = placer.fail_link(tor0);
    println!(
        "\nfail {tor0:?}: {} tenant(s) affected",
        report.outcomes.len()
    );
    for (id, outcome) in &report.outcomes {
        match outcome {
            DegradeOutcome::Replaced { hosts, span } => println!(
                "  tenant {id:?}: re-placed on {} surviving hosts (span {span:?})",
                hosts.len()
            ),
            DegradeOutcome::Downgraded { reason } => {
                println!("  tenant {id:?}: DOWNGRADED to best-effort ({reason:?})")
            }
            other => println!("  tenant {id:?}: {other:?}"),
        }
    }
    println!(
        "degraded tenants while the link is down: {:?}",
        placer.degraded_tenants()
    );
    let healed = placer.restore_link(tor0);
    println!("\nrestore {tor0:?}:");
    for (id, outcome) in &healed.outcomes {
        println!("  tenant {id:?}: {outcome:?}");
    }
    assert!(
        placer.degraded_tenants().is_empty(),
        "every tenant must be whole again after restoration"
    );
    println!("all guarantees re-validated after the link healed.");

    // A host-link death under a spread tenant shows the other path:
    // reclaim frees its slots and the re-admission lands on surviving
    // servers — guarantees intact, no downgrade. (3 fault domains, so one
    // dead server still leaves a valid spread.)
    let victim = placer
        .try_place(&TenantRequest::new(6, Guarantee::class_a()).with_fault_domains(3))
        .expect("room for one more tenant");
    let spread = victim.hosts[0].0;
    let dead = placer.topology().host_link(spread);
    let report = placer.fail_link(dead);
    println!("\nfail {dead:?} (host {spread:?}'s access link):");
    for (id, outcome) in &report.outcomes {
        match outcome {
            DegradeOutcome::Replaced { hosts, span } => println!(
                "  tenant {id:?}: re-placed on {} surviving hosts (span {span:?})",
                hosts.len()
            ),
            other => println!("  tenant {id:?}: {other:?}"),
        }
    }
}
