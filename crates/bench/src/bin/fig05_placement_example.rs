//! Figure 5: why bandwidth-aware placement is insufficient.
//!
//! Three 10 G servers under one switch with 300 KB/port; a tenant wants 9
//! VMs with {1 Gbps, 100 KB burst, 1 ms, Bmax 10 G}. We evaluate both of
//! the figure's placements with (a) the paper's simplified burst
//! arithmetic and (b) our exact network-calculus bound, then show what
//! each placer actually chooses.

use silo_base::{Bytes, Dur, Rate};
use silo_netcalc::{backlog_bound, Curve, ServiceCurve};
use silo_placement::{Guarantee, OktopusPlacer, Placer, SiloPlacer, TenantRequest};
use silo_topology::{Topology, TreeParams};

fn exact_backlog(senders_per_server: &[usize], total_vms: usize) -> f64 {
    // Per-server curves capped by the 10 G NIC, summed, capped by the
    // tenant hose; receiver port drains at 10 G.
    let link = Curve::token_bucket(Rate::from_gbps(10), Bytes(1500));
    let per_server = |k: usize| {
        Curve::dual_slope(
            Rate::from_gbps(1),
            Bytes::from_kb(100),
            Rate::from_gbps(10),
            Bytes(1500),
        )
        .scale(k as f64)
        .min_with(&link)
    };
    let m: usize = senders_per_server.iter().sum();
    let hose = Curve::token_bucket(
        Rate::from_gbps(1) * m.min(total_vms - m) as u64,
        Bytes::from_kb(100) * m as u64,
    );
    let mut agg = Curve::zero();
    for &k in senders_per_server {
        agg = agg.add(&per_server(k));
    }
    let agg = agg.min_with(&hose);
    backlog_bound(&agg, &ServiceCurve::constant_rate(Rate::from_gbps(10))).expect("stable")
}

fn paper_arithmetic(senders: usize, servers: usize) -> f64 {
    // "m×100 KB arrives at servers×10 G, drains at 10 G".
    let burst = senders as f64 * 100_000.0;
    let arrival = servers as f64 * 10.0;
    burst * (1.0 - 10.0 / arrival)
}

fn main() {
    println!("== Fig 5: worst-case queue at the port toward the receiver ==");
    println!("placement\tpaper-arith\texact-bound\tfits 300KB?");
    for (name, split) in [
        ("(a) 3+5 senders", vec![3usize, 5]),
        ("(b) 3+3 senders", vec![3usize, 3]),
    ] {
        let senders: usize = split.iter().sum();
        let paper = paper_arithmetic(senders, split.len());
        let exact = exact_backlog(&split, 9);
        println!(
            "{name}\t{:.0} KB\t{:.0} KB\t{}",
            paper / 1e3,
            exact / 1e3,
            if exact <= 300_000.0 { "yes" } else { "no" },
        );
    }
    println!("(paper quotes 400 KB vs 300 KB; the exact bound also counts");
    println!(" token refill during the burst, hence slightly larger values)");

    // What the placers actually do, with 4 slots per server so dense
    // packing is possible but invalid.
    let topo = Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: 3,
        vm_slots_per_server: 4,
        host_link: Rate::from_gbps(10),
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(360),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    });
    let req = TenantRequest::new(
        9,
        Guarantee {
            b: Rate::from_gbps(1),
            s: Bytes::from_kb(100),
            bmax: Rate::from_gbps(10),
            delay: Some(Dur::from_ms(1)),
        },
    );
    println!("\n== What each placer chooses (3 servers x 4 slots) ==");
    let mut okto = OktopusPlacer::new(topo.clone());
    match okto.try_place(&req) {
        Ok(p) => println!(
            "Oktopus (bandwidth-aware): {:?}  <- dense, would overflow on a burst",
            p.hosts.iter().map(|&(_, k)| k).collect::<Vec<_>>()
        ),
        Err(e) => println!("Oktopus rejected: {e:?}"),
    }
    let mut silo = SiloPlacer::new(topo);
    match silo.try_place(&req) {
        Ok(p) => println!(
            "Silo (burst-aware):        {:?}  <- balanced so buffers absorb the worst burst",
            p.hosts.iter().map(|&(_, k)| k).collect::<Vec<_>>()
        ),
        Err(e) => println!("Silo rejected: {e:?}"),
    }
}
