//! Figure 7: packet bunching — a switch can double a flow's burst.
//!
//! Flow f1 (rate C/2, 1-packet burst) shares a port with f2 (rate C/4);
//! after egress, f1's packets can leave back-to-back, so its arrival
//! curve's burst term grows. We show it twice: analytically via Kurose
//! propagation, and empirically in the packet simulator.

use silo_base::{Bytes, Dur, Rate};
use silo_bench::Args;
use silo_netcalc::{propagate_egress, Curve};
use silo_simnet::{Sim, SimConfig, TenantSpec, TenantWorkload, TraceConfig, TransportMode};
use silo_topology::{HostId, Topology, TreeParams};

fn main() {
    let args = Args::parse();
    let c = Rate::from_gbps(10);
    let pkt = Bytes(1500);

    println!("== Analytic (Kurose egress bound) ==");
    let f1 = Curve::token_bucket(c / 2, pkt);
    // The port's drain interval with both flows: at most 2 packets queue.
    let cap = c.tx_time(pkt) * 2;
    let out = propagate_egress(&f1, cap, Some(c), pkt);
    println!("f1 ingress:  rate C/2, burst = {} B", f1.burst());
    println!(
        "f1 egress:   rate C/2, burst = {} B  (doubled by the switch)",
        out.lines().last().unwrap().burst
    );

    println!("\n== Packet-level confirmation ==");
    // Two hosts send through one ToR port to a third host; f1 at C/2,
    // f2 at C/4 as paced tenants; we measure f1's worst 2-packet gap at
    // the destination: bunched packets arrive back-to-back even though
    // the source spaced them 2 slots apart.
    let topo = Topology::build(TreeParams {
        pods: 1,
        racks_per_pod: 1,
        servers_per_rack: 3,
        vm_slots_per_server: 2,
        host_link: c,
        tor_oversub: 1.0,
        agg_oversub: 1.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    });
    let mk = |src: u32, rate: Rate| TenantSpec {
        vm_hosts: vec![HostId(src), HostId(2)],
        b: rate,
        s: Bytes(1500),
        bmax: rate,
        prio: 0,
        delay: None,
        workload: TenantWorkload::BulkAllToAll {
            msg: Bytes::from_mb(1),
        },
    };
    let mut cfg = SimConfig::new(TransportMode::Silo, Dur::from_ms(20), 7);
    cfg.coalesce_voids = !args.no_coalesce;
    cfg.elide_nic_pulls = !args.no_coalesce;
    if args.trace_requested() {
        cfg.trace = Some(TraceConfig::default());
    }
    if args.telemetry_requested() {
        cfg.telemetry = Some(silo_simnet::TelemetryConfig::default());
    }
    let m = Sim::new(topo, cfg, vec![mk(0, c / 2), mk(1, c / 4)]).run();
    if let Some(log) = &m.trace {
        if let Some(path) = &args.trace {
            std::fs::write(path, log.to_jsonl()).expect("write trace jsonl");
            println!("trace: {} events -> {path}", log.events.len());
        }
        if let Some(path) = &args.trace_perfetto {
            let json = log.to_perfetto_with_counters(m.telemetry.as_ref());
            std::fs::write(path, json).expect("write perfetto json");
            println!("perfetto trace -> {path} (open at ui.perfetto.dev)");
        }
    }
    if let Some(log) = &m.telemetry {
        silo_bench::telemetryfile::write_telemetry_outputs(&args, log);
    }
    // BulkAllToAll runs both directions; report per-direction goodput.
    println!(
        "f1 goodput: {:.2} Gbps per direction (paced to C/2 = 5 Gbps)",
        m.goodput[0] as f64 * 8.0 / 20e-3 / 1e9 / 2.0
    );
    println!(
        "f2 goodput: {:.2} Gbps per direction (paced to C/4 = 2.5 Gbps)",
        m.goodput[1] as f64 * 8.0 / 20e-3 / 1e9 / 2.0
    );
    println!(
        "drops: {} (both conform; the shared port absorbs bunching)",
        m.drops
    );
}
