//! Figure 15: fraction of tenant requests admitted at 75% and 90% target
//! occupancy for Locality, Oktopus and Silo (flow-level, §6.3).

use silo_base::{Bytes, Dur, Rate};
use silo_bench::Args;
use silo_flowsim::{Allocator, FlowSim, FlowSimConfig};
use silo_placement::{LocalityPlacer, OktopusPlacer, SiloPlacer};
use silo_topology::{Topology, TreeParams};

pub fn flow_topo(scale: f64) -> Topology {
    // Full scale (1.0): 16 pods x 40 racks x 50 servers = 32 K servers.
    let pods = ((16.0 * scale).round() as usize).max(2);
    let racks = ((40.0 * scale).round() as usize).max(2);
    Topology::build(TreeParams {
        pods,
        racks_per_pod: racks,
        servers_per_rack: 50,
        vm_slots_per_server: 4,
        host_link: Rate::from_gbps(10),
        tor_oversub: 5.0,
        agg_oversub: 5.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

fn cfg(occ: f64, seed: u64) -> FlowSimConfig {
    FlowSimConfig {
        occupancy: occ,
        seed,
        ..FlowSimConfig::default()
    }
}

fn main() {
    let args = Args::parse();
    let topo = flow_topo(args.scale);
    println!(
        "== Fig 15: admitted requests (%), {} servers ==",
        topo.num_hosts()
    );
    println!("occupancy\tscheme\ttotal\tclass-B\tclass-A\tutil\tmean-occ");
    // One self-contained cell per (occupancy, scheme); the runner fans them
    // across threads and hands results back in this exact grid order.
    let cells: Vec<(f64, &str)> = [0.75, 0.90]
        .iter()
        .flat_map(|&occ| ["Locality", "Oktopus", "Silo"].map(|s| (occ, s)))
        .collect();
    let results = silo_bench::run_cells(
        &cells,
        args.effective_threads(cells.len()),
        |_, &(occ, scheme)| {
            let c = cfg(occ, args.seed);
            match scheme {
                "Locality" => {
                    FlowSim::new(LocalityPlacer::new(topo.clone()), Allocator::FairShare, c).run()
                }
                "Oktopus" => {
                    FlowSim::new(OktopusPlacer::new(topo.clone()), Allocator::Guaranteed, c).run()
                }
                _ => FlowSim::new(SiloPlacer::new(topo.clone()), Allocator::Guaranteed, c).run(),
            }
        },
    );
    for (&(occ, scheme), r) in cells.iter().zip(&results) {
        println!(
            "{:.0}%\t{}\t{:.1}\t{:.1}\t{:.1}\t{:.2}\t{:.2}",
            occ * 100.0,
            scheme,
            r.admitted_frac() * 100.0,
            r.admitted_frac_b() * 100.0,
            r.admitted_frac_a() * 100.0,
            r.utilization,
            r.mean_occupancy
        );
    }
    println!("\npaper: at 75% Silo rejects 4.5% (Okto 0.3%, Locality 0%); at 90%");
    println!("Locality flips to 11% rejects vs Silo 5.1% — slow outlier jobs clog slots.");
}
