//! Table 1: percentage of messages whose latency exceeds the guarantee,
//! sweeping the bandwidth guarantee (columns, B…3B) and the burst
//! allowance (rows, M…9M) for Poisson messages of size M.

use silo_base::{seeded_rng, Bytes, Rate};
use silo_bench::Args;
use silo_simnet::msgqueue::table1;

fn main() {
    let args = Args::parse();
    let mut rng = seeded_rng(args.seed);
    let msg = Bytes::from_kb(15);
    let avg = Rate::from_mbps(100);
    let bw = [1.0, 1.4, 1.8, 2.2, 2.6, 3.0];
    let burst = [1u64, 3, 5, 7, 9];
    let n = 100_000;
    let table = table1(msg, avg, &bw, &burst, n, &mut rng);

    println!("== Table 1: % messages later than the guarantee ==");
    println!("(rows: burst S in multiples of M; cols: guarantee in multiples of B)");
    print!("S\\B\t");
    for w in bw {
        print!("{w:.1}B\t");
    }
    println!();
    for (ri, row) in table.iter().enumerate() {
        print!("{}M\t", burst[ri]);
        for v in row {
            print!("{:.2}\t", v * 100.0);
        }
        println!();
    }
    println!("\npaper reference (same sweep):");
    println!("1M: 99 77 55 45 38 33 | 3M: 99 22 8 3.6 1.9 1.1 | 5M: 99 6.1 0.9 0.2 0.06 0.02");
    println!("7M: 99 1.6 0.09 0.01 0 0 | 9M: 98 0.4 0.01 0 0 0");
}
