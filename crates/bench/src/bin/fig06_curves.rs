//! Figure 6: arrival/service curve geometry.
//!
//! Prints (a) the token-bucket curve `A_{B,S}` and the dual-slope `A'`
//! with `Bmax`, and (b) the queue bound `q` (max horizontal deviation) and
//! drain point `p` of `A'` against a constant-rate service curve — the
//! two quantities the placement manager is built on.

use silo_base::{Bytes, Rate};
use silo_netcalc::{backlog_bound, drain_time, queue_delay_bound, Curve, ServiceCurve};

fn main() {
    let b = Rate::from_gbps(1);
    let s = Bytes::from_kb(100);
    let bmax = Rate::from_gbps(10);
    let mtu = Bytes(1500);
    let a = Curve::token_bucket(b, s);
    let a_prime = Curve::dual_slope(b, s, bmax, mtu);

    println!("== Fig 6(a): arrival curves (t in us, bytes) ==");
    println!("t_us\tA(t)=Bt+S\tA'(t) with Bmax");
    for i in 0..=20 {
        let t = i as f64 * 10e-6;
        println!("{:.0}\t{:.0}\t{:.0}", t * 1e6, a.eval(t), a_prime.eval(t));
    }

    println!("\n== Fig 6(b): deviations vs a 2 Gbps service curve ==");
    let svc = ServiceCurve::constant_rate(Rate::from_gbps(2));
    let q = queue_delay_bound(&a_prime, &svc).expect("stable");
    let p = drain_time(&a_prime, &svc).expect("drains");
    let backlog = backlog_bound(&a_prime, &svc).expect("stable");
    println!("queue bound q      = {:.1} us", q * 1e6);
    println!("drain point p      = {:.1} us", p * 1e6);
    println!("backlog bound      = {:.0} bytes", backlog);
    assert!(p >= q, "the queue must drain after the worst backlog");

    println!("\n== same source into a 10 Gbps port (Silo's placement case) ==");
    let svc10 = ServiceCurve::constant_rate(Rate::from_gbps(10));
    let q10 = queue_delay_bound(&a_prime, &svc10).expect("stable");
    println!(
        "queue bound q      = {:.2} us (burst absorbed at line rate)",
        q10 * 1e6
    );
}
