//! Figure 13: CDF over class-A tenants of the fraction of their messages
//! that suffered a retransmission timeout (§6.2).

use silo_bench::ns2::run_ns2_sweep;
use silo_bench::scenario::NsClass;
use silo_bench::{print_cdf, Args};
use silo_simnet::TransportMode;

fn main() {
    let args = Args::parse();
    println!("== Fig 13: class-A tenants' messages with RTOs ==");
    let modes = [
        TransportMode::Silo,
        TransportMode::Tcp,
        TransportMode::Hull,
        TransportMode::Okto,
    ];
    for out in run_ns2_sweep(&modes, &args) {
        let mut per_tenant = silo_base::Summary::new();
        for (run, m) in out.metrics.iter().enumerate() {
            for (ti, t) in out.tenants[run].iter().enumerate() {
                if t.class != NsClass::A {
                    continue;
                }
                let stats = m.tenant_stats(ti as u16);
                if stats.messages > 0 {
                    per_tenant.record(stats.rto_fraction() * 100.0);
                }
            }
        }
        let frac_with_rtos = per_tenant.frac_above(1.0);
        println!(
            "{}: tenants with >1% RTO-hit messages: {:.1}%  (paper: TCP 21%, HULL 14%, Silo 0%)",
            out.mode.label(),
            frac_with_rtos * 100.0
        );
        print_cdf(
            &format!("{} % messages with RTOs", out.mode.label()),
            &mut per_tenant,
            11,
        );
    }
}
