//! `silo-explorer` — coverage-guided fault-schedule search.
//!
//! ```text
//! silo-explorer search [--budget N] [--seed S] [--duration-ms D]
//!                      [--corpus-out DIR] [--fail-on-counterexample]
//! silo-explorer replay <plan.json> [--seed S] [--duration-ms D] [--strict]
//!                      [--canonical-out FILE] [--trace-out FILE]
//! silo-explorer minimize <plan.json> [--seed S] [--duration-ms D] [--out FILE]
//! ```
//!
//! `search` runs the frontier loop on the fault-suite cell and prints a
//! deterministic report; with `--corpus-out` every frontier schedule is
//! written as replayable `silo-faultplan-v1` JSON (`frontier_NNN.json`)
//! next to the report. `replay` re-simulates one recorded schedule with
//! the audit layer on and shows how its violations were attributed;
//! `--strict` exits 1 if the schedule breaks an attribution guarantee
//! (the check CI runs over the committed corpus). `minimize` shrinks a
//! failing schedule to a locally-minimal counterexample.
//!
//! Seed and budget default from `SILO_PROP_SEED` / `SILO_PROP_CASES`, the
//! same knobs as the property harness, so one environment replays both.

use silo_base::Dur;
use silo_explorer::{explore, failure, minimize, replay, ExploreConfig};
use silo_simnet::FaultPlan;

fn usage() -> ! {
    eprintln!(
        "usage: silo-explorer <search|replay|minimize> [options]\n\
         \n\
         search [--budget N] [--seed S] [--duration-ms D]\n\
                [--corpus-out DIR] [--fail-on-counterexample]\n\
         replay <plan.json> [--seed S] [--duration-ms D] [--strict]\n\
                [--canonical-out FILE] [--trace-out FILE]\n\
         minimize <plan.json> [--seed S] [--duration-ms D] [--out FILE]"
    );
    std::process::exit(2);
}

fn load_plan(path: &str) -> FaultPlan {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("silo-explorer: cannot read {path}: {e}");
        std::process::exit(2);
    });
    FaultPlan::from_json(&text).unwrap_or_else(|e| {
        eprintln!("silo-explorer: {path}: {e}");
        std::process::exit(2);
    })
}

/// Parse `--key value` / bare-flag options shared by all subcommands,
/// mutating an [`ExploreConfig`] that starts from the environment.
struct Opts {
    cfg: ExploreConfig,
    corpus_out: Option<String>,
    fail_on_cx: bool,
    strict: bool,
    canonical_out: Option<String>,
    trace_out: Option<String>,
    out: Option<String>,
}

fn parse_opts(argv: &[String]) -> Opts {
    let mut o = Opts {
        cfg: ExploreConfig::from_env(),
        corpus_out: None,
        fail_on_cx: false,
        strict: false,
        canonical_out: None,
        trace_out: None,
        out: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--fail-on-counterexample" => {
                o.fail_on_cx = true;
                i += 1;
                continue;
            }
            "--strict" => {
                o.strict = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        let Some(val) = argv.get(i + 1) else { usage() };
        match argv[i].as_str() {
            "--budget" => o.cfg.budget = val.parse().expect("--budget takes an integer"),
            "--seed" => o.cfg.seed = val.parse().expect("--seed takes an integer"),
            "--duration-ms" => {
                o.cfg.dur = Dur::from_ms(val.parse().expect("--duration-ms takes an integer"))
            }
            "--corpus-out" => o.corpus_out = Some(val.clone()),
            "--canonical-out" => o.canonical_out = Some(val.clone()),
            "--trace-out" => o.trace_out = Some(val.clone()),
            "--out" => o.out = Some(val.clone()),
            _ => usage(),
        }
        i += 2;
    }
    o
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    match cmd.as_str() {
        "search" => {
            let o = parse_opts(&argv[1..]);
            let report = explore(&o.cfg);
            print!("{}", report.render());
            if let Some(dir) = &o.corpus_out {
                std::fs::create_dir_all(dir).expect("create corpus dir");
                for (i, (plan, _)) in report.frontier.iter().enumerate() {
                    let path = format!("{dir}/frontier_{i:03}.json");
                    std::fs::write(&path, plan.to_json()).expect("write corpus entry");
                }
                for (i, cx) in report.counterexamples.iter().enumerate() {
                    let path = format!("{dir}/counterexample_{i:03}.json");
                    std::fs::write(&path, cx.plan.to_json()).expect("write counterexample");
                }
                std::fs::write(format!("{dir}/report.txt"), report.render()).expect("write report");
                println!(
                    "corpus: {} frontier + {} counterexample schedule(s) -> {dir}/",
                    report.frontier.len(),
                    report.counterexamples.len()
                );
            }
            if o.fail_on_cx && !report.counterexamples.is_empty() {
                eprintln!(
                    "silo-explorer: {} counterexample(s) found",
                    report.counterexamples.len()
                );
                std::process::exit(1);
            }
        }
        "replay" => {
            let path = argv.get(1).unwrap_or_else(|| usage());
            let o = parse_opts(&argv[2..]);
            let plan = load_plan(path);
            let m = replay(&plan, o.cfg.dur, o.cfg.seed);
            let audit = m.audit.as_ref().expect("replay audits");
            println!(
                "{path}: {} fault event(s), {} ms horizon, seed {}",
                plan.events.len(),
                o.cfg.dur.0 / 1_000_000_000,
                o.cfg.seed
            );
            println!("{}", audit.summary());
            let attributed = m.violations.iter().filter(|v| v.fault.is_some()).count();
            println!(
                "guarantee violations: {} ({} attributed to fault windows), token violations: {}",
                m.violations.len(),
                attributed,
                m.token_violations
            );
            for w in &m.fault_windows {
                println!(
                    "  window [{}]: {} from {} ps to {} ps",
                    w.fault, w.label, w.start.0, w.end.0
                );
            }
            if let Some(p) = &o.canonical_out {
                std::fs::write(p, m.canonical_json()).expect("write canonical json");
                println!("canonical metrics -> {p}");
            }
            if let Some(p) = &o.trace_out {
                std::fs::write(p, m.trace.as_ref().unwrap().to_jsonl()).expect("write trace jsonl");
                println!("trace -> {p}");
            }
            match failure(&m) {
                None => println!("attribution clean: every violation is explained."),
                Some(why) => {
                    println!("ATTRIBUTION FAILURE: {why}");
                    if o.strict {
                        std::process::exit(1);
                    }
                }
            }
        }
        "minimize" => {
            let path = argv.get(1).unwrap_or_else(|| usage());
            let o = parse_opts(&argv[2..]);
            let plan = load_plan(path);
            let m = replay(&plan, o.cfg.dur, o.cfg.seed);
            let Some(why) = failure(&m) else {
                println!("{path}: schedule replays clean; nothing to minimize");
                std::process::exit(1);
            };
            let topo = silo_explorer::cell_topo();
            let (shrunk, runs) = minimize(&topo, &plan, why, &o.cfg);
            println!(
                "minimized {} -> {} event(s) in {} accepted step(s) ({} sim runs)",
                plan.events.len(),
                shrunk.input.events.len(),
                shrunk.steps,
                runs
            );
            println!("still fails with: {}", shrunk.why);
            let json = shrunk.input.to_json();
            match &o.out {
                Some(p) => {
                    std::fs::write(p, &json).expect("write minimized plan");
                    println!("minimized plan -> {p}");
                }
                None => print!("{json}"),
            }
        }
        _ => usage(),
    }
}
