//! Figure 16: average network utilization (a) vs datacenter occupancy
//! with Permutation-1 class-B traffic and (b) vs the Permutation-x
//! pattern at 90% occupancy (flow-level, §6.3).

use silo_base::{Bytes, Dur, Rate};
use silo_bench::Args;
use silo_flowsim::{Allocator, ClassMix, FlowSim, FlowSimConfig};
use silo_placement::{LocalityPlacer, OktopusPlacer, SiloPlacer};
use silo_topology::{Topology, TreeParams};

fn flow_topo(scale: f64) -> Topology {
    let pods = ((16.0 * scale).round() as usize).max(2);
    let racks = ((40.0 * scale).round() as usize).max(2);
    Topology::build(TreeParams {
        pods,
        racks_per_pod: racks,
        servers_per_rack: 50,
        vm_slots_per_server: 4,
        host_link: Rate::from_gbps(10),
        tor_oversub: 5.0,
        agg_oversub: 5.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

fn run(topo: &Topology, scheme: &str, occ: f64, x: Option<f64>, seed: u64) -> f64 {
    let mix = ClassMix {
        class_b_x: x,
        ..ClassMix::default()
    };
    let cfg = FlowSimConfig {
        occupancy: occ,
        mix,
        seed,
        ..FlowSimConfig::default()
    };
    let r = match scheme {
        "Locality" => {
            FlowSim::new(LocalityPlacer::new(topo.clone()), Allocator::FairShare, cfg).run()
        }
        "Oktopus" => {
            FlowSim::new(OktopusPlacer::new(topo.clone()), Allocator::Guaranteed, cfg).run()
        }
        _ => FlowSim::new(SiloPlacer::new(topo.clone()), Allocator::Guaranteed, cfg).run(),
    };
    r.utilization
}

fn main() {
    let args = Args::parse();
    let topo = flow_topo(args.scale);
    println!(
        "== Fig 16a: network utilization vs occupancy (Permutation-1), {} servers ==",
        topo.num_hosts()
    );
    println!("occupancy\tSilo\tOktopus\tLocality");
    // Both panels share one cell grid: (occupancy, permutation-x, scheme).
    // Each cell is self-contained, so the runner can fan them across
    // threads; results come back in grid order for printing.
    const SCHEMES: [&str; 3] = ["Silo", "Oktopus", "Locality"];
    let occs_a = [0.2, 0.4, 0.6, 0.75, 0.9];
    let xs_b = [Some(0.5), Some(0.75), Some(1.0), Some(2.0), None];
    let mut cells: Vec<(f64, Option<f64>, &str)> = Vec::new();
    for occ in occs_a {
        for scheme in SCHEMES {
            cells.push((occ, Some(1.0), scheme));
        }
    }
    for x in xs_b {
        for scheme in SCHEMES {
            cells.push((0.9, x, scheme));
        }
    }
    let utils = silo_bench::run_cells(
        &cells,
        args.effective_threads(cells.len()),
        |_, &(occ, x, scheme)| run(&topo, scheme, occ, x, args.seed),
    );
    let mut rows = cells.chunks(3).zip(utils.chunks(3));
    for (occ, (_, u)) in occs_a.iter().zip(rows.by_ref()) {
        println!("{:.0}%\t{:.3}\t{:.3}\t{:.3}", occ * 100.0, u[0], u[1], u[2]);
    }

    println!("\n== Fig 16b: utilization vs Permutation-x at 90% occupancy ==");
    println!("x\tSilo\tOktopus\tLocality");
    for (x, (_, u)) in xs_b.iter().zip(rows) {
        let label = match x {
            Some(v) => format!("{v}"),
            None => "N(all-to-all)".to_string(),
        };
        println!("{label}\t{:.3}\t{:.3}\t{:.3}", u[0], u[1], u[2]);
    }
    println!("\npaper shape: at 75%+ Silo's utilization beats Locality by ~6% but");
    println!("trails Oktopus by 9-11%; denser traffic (larger x) favors Silo.");
}
