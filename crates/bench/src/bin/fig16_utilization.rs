//! Figure 16: average network utilization (a) vs datacenter occupancy
//! with Permutation-1 class-B traffic and (b) vs the Permutation-x
//! pattern at 90% occupancy (flow-level, §6.3).

use silo_bench::Args;
use silo_flowsim::{Allocator, ClassMix, FlowSim, FlowSimConfig};
use silo_placement::{LocalityPlacer, OktopusPlacer, SiloPlacer};
use silo_topology::{Topology, TreeParams};
use silo_base::{Bytes, Dur, Rate};

fn flow_topo(scale: f64) -> Topology {
    let pods = ((16.0 * scale).round() as usize).max(2);
    let racks = ((40.0 * scale).round() as usize).max(2);
    Topology::build(TreeParams {
        pods,
        racks_per_pod: racks,
        servers_per_rack: 50,
        vm_slots_per_server: 4,
        host_link: Rate::from_gbps(10),
        tor_oversub: 5.0,
        agg_oversub: 5.0,
        switch_buffer: Bytes::from_kb(312),
        nic_buffer: Bytes::from_kb(64),
        prop_delay: Dur::from_ns(500),
    })
}

fn run(topo: &Topology, scheme: &str, occ: f64, x: Option<f64>, seed: u64) -> f64 {
    let mut mix = ClassMix::default();
    mix.class_b_x = x;
    let cfg = FlowSimConfig {
        occupancy: occ,
        mix,
        seed,
        ..FlowSimConfig::default()
    };
    let r = match scheme {
        "Locality" => FlowSim::new(LocalityPlacer::new(topo.clone()), Allocator::FairShare, cfg).run(),
        "Oktopus" => FlowSim::new(OktopusPlacer::new(topo.clone()), Allocator::Guaranteed, cfg).run(),
        _ => FlowSim::new(SiloPlacer::new(topo.clone()), Allocator::Guaranteed, cfg).run(),
    };
    r.utilization
}

fn main() {
    let args = Args::parse();
    let topo = flow_topo(args.scale);
    println!(
        "== Fig 16a: network utilization vs occupancy (Permutation-1), {} servers ==",
        topo.num_hosts()
    );
    println!("occupancy\tSilo\tOktopus\tLocality");
    for occ in [0.2, 0.4, 0.6, 0.75, 0.9] {
        let s = run(&topo, "Silo", occ, Some(1.0), args.seed);
        let o = run(&topo, "Oktopus", occ, Some(1.0), args.seed);
        let l = run(&topo, "Locality", occ, Some(1.0), args.seed);
        println!("{:.0}%\t{:.3}\t{:.3}\t{:.3}", occ * 100.0, s, o, l);
    }

    println!("\n== Fig 16b: utilization vs Permutation-x at 90% occupancy ==");
    println!("x\tSilo\tOktopus\tLocality");
    for x in [Some(0.5), Some(0.75), Some(1.0), Some(2.0), None] {
        let s = run(&topo, "Silo", 0.9, x, args.seed);
        let o = run(&topo, "Oktopus", 0.9, x, args.seed);
        let l = run(&topo, "Locality", 0.9, x, args.seed);
        let label = match x {
            Some(v) => format!("{v}"),
            None => "N(all-to-all)".to_string(),
        };
        println!("{label}\t{s:.3}\t{o:.3}\t{l:.3}");
    }
    println!("\npaper shape: at 75%+ Silo's utilization beats Locality by ~6% but");
    println!("trails Oktopus by 9-11%; denser traffic (larger x) favors Silo.");
}
